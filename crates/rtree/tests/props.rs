//! Property and scenario tests across all four R-tree variants: structural
//! invariants, query correctness against a brute-force oracle, and CBB
//! maintenance safety under random update interleavings.

use cbb_core::{ClipConfig, ClipMethod};
use cbb_geom::{Point, Rect};
use cbb_rtree::{ClippedRTree, DataId, RTree, TreeConfig, Variant};
use proptest::prelude::*;

fn r2(lx: f64, ly: f64, hx: f64, hy: f64) -> Rect<2> {
    Rect::new(Point([lx, ly]), Point([hx, hy]))
}

fn arb_box() -> impl Strategy<Value = Rect<2>> {
    (0.0f64..900.0, 0.0f64..900.0, 0.1f64..40.0, 0.1f64..40.0)
        .prop_map(|(x, y, w, h)| r2(x, y, x + w, y + h))
}

fn arb_variant() -> impl Strategy<Value = Variant> {
    prop_oneof![
        Just(Variant::Quadratic),
        Just(Variant::Hilbert),
        Just(Variant::RStar),
        Just(Variant::RRStar),
    ]
}

fn world() -> Rect<2> {
    r2(0.0, 0.0, 1000.0, 1000.0)
}

fn brute_force(objects: &[(Rect<2>, DataId)], q: &Rect<2>) -> Vec<DataId> {
    let mut out: Vec<DataId> = objects
        .iter()
        .filter(|(r, _)| r.intersects(q))
        .map(|(_, d)| *d)
        .collect();
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn inserts_preserve_invariants_and_queries(
        variant in arb_variant(),
        boxes in prop::collection::vec(arb_box(), 1..120),
        queries in prop::collection::vec(arb_box(), 1..12),
    ) {
        let mut tree = RTree::new(TreeConfig::tiny(variant).with_world(world()));
        let mut objects = Vec::new();
        for (i, b) in boxes.iter().enumerate() {
            tree.insert(*b, DataId(i as u32));
            objects.push((*b, DataId(i as u32)));
        }
        tree.validate().unwrap();
        prop_assert_eq!(tree.len(), boxes.len());
        for q in &queries {
            let mut got = tree.range_query(q);
            got.sort();
            prop_assert_eq!(got, brute_force(&objects, q), "{:?}", variant);
        }
    }

    #[test]
    fn deletes_preserve_invariants_and_queries(
        variant in arb_variant(),
        boxes in prop::collection::vec(arb_box(), 10..100),
        delete_ratio in 0.1f64..0.9,
        q in arb_box(),
    ) {
        let mut tree = RTree::new(TreeConfig::tiny(variant).with_world(world()));
        for (i, b) in boxes.iter().enumerate() {
            tree.insert(*b, DataId(i as u32));
        }
        let delete_count = (boxes.len() as f64 * delete_ratio) as usize;
        let mut objects = Vec::new();
        for (i, b) in boxes.iter().enumerate() {
            if i < delete_count {
                prop_assert!(tree.delete(b, DataId(i as u32)).is_some(), "{:?}", variant);
            } else {
                objects.push((*b, DataId(i as u32)));
            }
        }
        tree.validate().unwrap();
        prop_assert_eq!(tree.len(), objects.len());
        let mut got = tree.range_query(&q);
        got.sort();
        prop_assert_eq!(got, brute_force(&objects, &q), "{:?}", variant);
        // Deleting something absent is a no-op.
        prop_assert!(tree.delete(&boxes[0], DataId(0)).is_none());
    }

    #[test]
    fn bulk_load_matches_tuple_insert_results(
        variant in arb_variant(),
        boxes in prop::collection::vec(arb_box(), 1..200),
        q in arb_box(),
    ) {
        let items: Vec<(Rect<2>, DataId)> = boxes
            .iter()
            .enumerate()
            .map(|(i, b)| (*b, DataId(i as u32)))
            .collect();
        let tree = RTree::bulk_load(TreeConfig::tiny(variant).with_world(world()), &items);
        tree.validate().unwrap();
        prop_assert_eq!(tree.len(), items.len());
        let mut got = tree.range_query(&q);
        got.sort();
        prop_assert_eq!(got, brute_force(&items, &q));
    }

    #[test]
    fn clipped_tree_equals_base_tree_on_all_queries(
        variant in arb_variant(),
        method in prop_oneof![Just(ClipMethod::Skyline), Just(ClipMethod::Stairline)],
        boxes in prop::collection::vec(arb_box(), 5..150),
        queries in prop::collection::vec(arb_box(), 1..15),
    ) {
        let mut tree = RTree::new(TreeConfig::tiny(variant).with_world(world()));
        for (i, b) in boxes.iter().enumerate() {
            tree.insert(*b, DataId(i as u32));
        }
        let clipped = ClippedRTree::from_tree(tree, ClipConfig::paper_default::<2>(method));
        clipped.verify_clips().unwrap();
        for q in &queries {
            let mut base = clipped.tree.range_query(q);
            let mut with = clipped.range_query(q);
            base.sort();
            with.sort();
            prop_assert_eq!(base, with, "{:?} {:?} {:?}", variant, method, q);
        }
    }

    #[test]
    fn clipped_maintenance_sound_under_random_updates(
        variant in arb_variant(),
        initial in prop::collection::vec(arb_box(), 20..80),
        updates in prop::collection::vec((arb_box(), any::<bool>()), 1..60),
        q in arb_box(),
    ) {
        let mut tree = RTree::new(TreeConfig::tiny(variant).with_world(world()));
        let mut objects: Vec<(Rect<2>, DataId)> = Vec::new();
        for (i, b) in initial.iter().enumerate() {
            tree.insert(*b, DataId(i as u32));
            objects.push((*b, DataId(i as u32)));
        }
        let mut clipped = ClippedRTree::from_tree(
            tree,
            ClipConfig::paper_default::<2>(ClipMethod::Stairline),
        );
        let mut next_id = initial.len() as u32;
        for (b, is_insert) in &updates {
            if *is_insert || objects.is_empty() {
                clipped.insert(*b, DataId(next_id));
                objects.push((*b, DataId(next_id)));
                next_id += 1;
            } else {
                let (r, d) = objects.swap_remove(objects.len() / 2);
                prop_assert!(clipped.delete(&r, d), "{:?}", variant);
            }
        }
        clipped.tree.validate().unwrap();
        clipped.verify_clips().unwrap();
        let mut got = clipped.range_query(&q);
        got.sort();
        prop_assert_eq!(got, brute_force(&objects, &q), "{:?}", variant);
    }

    #[test]
    fn clipping_never_increases_leaf_accesses(
        variant in arb_variant(),
        boxes in prop::collection::vec(arb_box(), 30..150),
        queries in prop::collection::vec(arb_box(), 5..15),
    ) {
        let items: Vec<(Rect<2>, DataId)> = boxes
            .iter()
            .enumerate()
            .map(|(i, b)| (*b, DataId(i as u32)))
            .collect();
        let tree = RTree::bulk_load(TreeConfig::tiny(variant).with_world(world()), &items);
        let clipped = ClippedRTree::from_tree(
            tree,
            ClipConfig::paper_default::<2>(ClipMethod::Stairline),
        );
        for q in &queries {
            let mut base = cbb_rtree::AccessStats::new();
            clipped.tree.range_query_stats(q, &mut base);
            let mut with = cbb_rtree::AccessStats::new();
            clipped.range_query_stats(q, &mut with);
            prop_assert!(with.leaf_accesses <= base.leaf_accesses);
            prop_assert_eq!(with.results, base.results);
        }
    }
}

/// Point data (degenerate rectangles) must work throughout — the rea03
/// dataset is pure points.
#[test]
fn point_data_everywhere() {
    for variant in Variant::ALL {
        let mut tree: RTree<3> = RTree::new(
            TreeConfig::tiny(variant).with_world(Rect::new(Point([0.0; 3]), Point([100.0; 3]))),
        );
        let mut rng = cbb_geom::SplitMix64::new(17);
        let mut pts = Vec::new();
        for i in 0..200 {
            let p = Point([
                rng.gen_range(0.0, 100.0),
                rng.gen_range(0.0, 100.0),
                rng.gen_range(0.0, 100.0),
            ]);
            tree.insert(Rect::point(p), DataId(i));
            pts.push((Rect::point(p), DataId(i)));
        }
        tree.validate().unwrap();
        let clipped =
            ClippedRTree::from_tree(tree, ClipConfig::paper_default::<3>(ClipMethod::Stairline));
        clipped.verify_clips().unwrap();
        let q: Rect<3> = Rect::new(Point([20.0; 3]), Point([60.0; 3]));
        let mut base = clipped.tree.range_query(&q);
        let mut with = clipped.range_query(&q);
        base.sort();
        with.sort();
        assert_eq!(base, with, "{variant:?}");
        let expected: Vec<DataId> = {
            let mut v: Vec<DataId> = pts
                .iter()
                .filter(|(r, _)| r.intersects(&q))
                .map(|(_, d)| *d)
                .collect();
            v.sort();
            v
        };
        assert_eq!(with, expected, "{variant:?}");
    }
}

/// Duplicate rectangles with distinct ids must round-trip.
#[test]
fn duplicate_rects_supported() {
    for variant in Variant::ALL {
        let mut tree: RTree<2> = RTree::new(TreeConfig::tiny(variant).with_world(world()));
        let b = r2(10.0, 10.0, 12.0, 12.0);
        for i in 0..50 {
            tree.insert(b, DataId(i));
        }
        tree.validate().unwrap();
        assert_eq!(tree.range_query(&b).len(), 50, "{variant:?}");
        assert!(tree.delete(&b, DataId(25)).is_some());
        assert_eq!(tree.range_query(&b).len(), 49);
        tree.validate().unwrap();
    }
}
