//! 3-d coverage across all variants: the experiments' 3-d datasets stress
//! different code paths (8 corners per node, 3-axis splits, order-16
//! Hilbert keys in 3-d), so every core behaviour is re-checked here in
//! three dimensions against brute-force oracles.

use cbb_core::{ClipConfig, ClipMethod};
use cbb_geom::{Point, Rect, SplitMix64};
use cbb_rtree::{AccessStats, ClippedRTree, DataId, RTree, TreeConfig, Variant};

fn boxes3(n: usize, seed: u64) -> Vec<Rect<3>> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            let x = rng.gen_range(0.0, 900.0);
            let y = rng.gen_range(0.0, 900.0);
            let z = rng.gen_range(0.0, 900.0);
            // Skinny in one random dimension, like the neuro data.
            let mut ext = [
                rng.gen_range(1.0, 8.0),
                rng.gen_range(1.0, 8.0),
                rng.gen_range(1.0, 8.0),
            ];
            ext[rng.gen_index(3)] = rng.gen_range(30.0, 80.0);
            Rect::new(
                Point([x, y, z]),
                Point([x + ext[0], y + ext[1], z + ext[2]]),
            )
        })
        .collect()
}

fn world3() -> Rect<3> {
    Rect::new(Point([0.0; 3]), Point([1000.0; 3]))
}

fn brute<const D: usize>(objs: &[(Rect<D>, DataId)], q: &Rect<D>) -> Vec<DataId> {
    let mut v: Vec<DataId> = objs
        .iter()
        .filter(|(r, _)| r.intersects(q))
        .map(|(_, d)| *d)
        .collect();
    v.sort();
    v
}

#[test]
fn insert_query_delete_all_variants_3d() {
    for variant in Variant::ALL {
        let mut tree: RTree<3> = RTree::new(TreeConfig::tiny(variant).with_world(world3()));
        let data = boxes3(400, 21);
        let mut objs = Vec::new();
        for (i, b) in data.iter().enumerate() {
            tree.insert(*b, DataId(i as u32));
            objs.push((*b, DataId(i as u32)));
        }
        tree.validate().unwrap();

        let q = Rect::new(Point([100.0; 3]), Point([400.0; 3]));
        let mut got = tree.range_query(&q);
        got.sort();
        assert_eq!(got, brute(&objs, &q), "{variant:?} after inserts");

        // Delete every third object.
        let mut survivors = Vec::new();
        for (i, b) in data.iter().enumerate() {
            if i % 3 == 0 {
                assert!(tree.delete(b, DataId(i as u32)).is_some(), "{variant:?}");
            } else {
                survivors.push((*b, DataId(i as u32)));
            }
        }
        tree.validate().unwrap();
        let mut got = tree.range_query(&q);
        got.sort();
        assert_eq!(got, brute(&survivors, &q), "{variant:?} after deletes");
    }
}

#[test]
fn clipped_3d_exactness_and_savings() {
    let data = boxes3(1_500, 33);
    let items: Vec<(Rect<3>, DataId)> = data
        .iter()
        .enumerate()
        .map(|(i, b)| (*b, DataId(i as u32)))
        .collect();
    for variant in Variant::ALL {
        let tree = RTree::bulk_load(TreeConfig::tiny(variant).with_world(world3()), &items);
        let clipped =
            ClippedRTree::from_tree(tree, ClipConfig::paper_default::<3>(ClipMethod::Stairline));
        clipped.verify_clips().unwrap();
        // All 8 corners can carry clips in 3-d.
        let mut masks_seen = std::collections::HashSet::new();
        for (id, _) in clipped.tree.iter_nodes() {
            for c in clipped.clips_of(id) {
                masks_seen.insert(c.mask.bits());
            }
        }
        assert!(
            masks_seen.len() >= 4,
            "{variant:?}: clips use too few corners"
        );

        let mut rng = SplitMix64::new(7);
        let mut base = AccessStats::new();
        let mut with = AccessStats::new();
        for _ in 0..200 {
            let p = Point([
                rng.gen_range(0.0, 950.0),
                rng.gen_range(0.0, 950.0),
                rng.gen_range(0.0, 950.0),
            ]);
            let q = Rect::new(p, Point([p[0] + 15.0, p[1] + 15.0, p[2] + 15.0]));
            let a = clipped.tree.range_query_stats(&q, &mut base);
            let b = clipped.range_query_stats(&q, &mut with);
            assert_eq!(a.len(), b.len(), "{variant:?}");
        }
        assert!(
            with.leaf_accesses < base.leaf_accesses,
            "{variant:?}: no 3-d savings ({} vs {})",
            with.leaf_accesses,
            base.leaf_accesses
        );
    }
}

#[test]
fn maintenance_3d_mixed_workload() {
    let data = boxes3(600, 44);
    let (initial, updates) = data.split_at(400);
    let items: Vec<(Rect<3>, DataId)> = initial
        .iter()
        .enumerate()
        .map(|(i, b)| (*b, DataId(i as u32)))
        .collect();
    for variant in [Variant::RStar, Variant::Hilbert] {
        let tree = RTree::bulk_load(TreeConfig::tiny(variant).with_world(world3()), &items);
        let mut clipped =
            ClippedRTree::from_tree(tree, ClipConfig::paper_default::<3>(ClipMethod::Skyline));
        for (i, b) in updates.iter().enumerate() {
            clipped.insert(*b, DataId(400 + i as u32));
            if i % 2 == 0 {
                assert!(clipped.delete(&initial[i], DataId(i as u32)), "{variant:?}");
            }
        }
        clipped.tree.validate().unwrap();
        clipped.verify_clips().unwrap();
    }
}

/// The machinery is dimension-generic: exercise it as a 1-d interval tree,
/// the degenerate base case (2 corners, 1-bit masks).
#[test]
fn one_dimensional_intervals() {
    let mut rng = SplitMix64::new(9);
    let mut tree: RTree<1> = RTree::new(
        TreeConfig::tiny(Variant::RStar).with_world(Rect::new(Point([0.0]), Point([1000.0]))),
    );
    let mut objs = Vec::new();
    for i in 0..500 {
        let lo = rng.gen_range(0.0, 990.0);
        let len = rng.gen_range(0.1, 10.0);
        let r = Rect::new(Point([lo]), Point([lo + len]));
        tree.insert(r, DataId(i));
        objs.push((r, DataId(i)));
    }
    tree.validate().unwrap();
    let clipped =
        ClippedRTree::from_tree(tree, ClipConfig::paper_default::<1>(ClipMethod::Stairline));
    clipped.verify_clips().unwrap();
    for start in [5.0, 250.0, 777.0] {
        let q = Rect::new(Point([start]), Point([start + 20.0]));
        let mut got = clipped.range_query(&q);
        got.sort();
        assert_eq!(got, brute(&objs, &q));
    }
}

#[test]
fn hilbert_lhv_invariant_after_updates() {
    // HR-tree structural invariant: within every directory node, entries
    // are ordered by their child's LHV, and each node's LHV equals the max
    // over its subtree.
    let mut tree: RTree<3> = RTree::new(TreeConfig::tiny(Variant::Hilbert).with_world(world3()));
    let data = boxes3(500, 55);
    for (i, b) in data.iter().enumerate() {
        tree.insert(*b, DataId(i as u32));
    }
    for (i, b) in data.iter().enumerate().take(200) {
        tree.delete(b, DataId(i as u32)).unwrap();
    }
    tree.validate().unwrap();

    fn check_lhv<const D: usize>(tree: &RTree<D>, id: cbb_rtree::NodeId) -> u64 {
        let node = tree.node(id);
        if node.is_leaf() {
            let max = node
                .entries
                .iter()
                .map(|e| tree.hilbert_key(&e.mbb))
                .max()
                .unwrap_or(0);
            assert_eq!(node.lhv, max, "leaf {id:?} LHV stale");
            return max;
        }
        let mut prev = 0u64;
        let mut max = 0u64;
        for e in &node.entries {
            let child = match e.child {
                cbb_rtree::Child::Node(c) => c,
                cbb_rtree::Child::Data(_) => unreachable!(),
            };
            let lhv = check_lhv(tree, child);
            assert!(lhv >= prev, "directory {id:?} not LHV-ordered");
            prev = lhv;
            max = max.max(lhv);
        }
        assert_eq!(node.lhv, max, "directory {id:?} LHV stale");
        max
    }
    check_lhv(&tree, tree.root_id());
}

#[test]
#[should_panic(expected = "non-finite")]
fn nan_rect_rejected() {
    let mut tree: RTree<2> = RTree::new(TreeConfig::tiny(Variant::Quadratic));
    let bad = Rect {
        lo: Point([f64::NAN, 0.0]),
        hi: Point([1.0, 1.0]),
    };
    tree.insert(bad, DataId(0));
}

#[test]
fn delete_from_empty_and_missing() {
    let mut tree: RTree<2> = RTree::new(TreeConfig::tiny(Variant::RRStar));
    let r = Rect::new(Point([0.0, 0.0]), Point([1.0, 1.0]));
    assert!(tree.delete(&r, DataId(0)).is_none());
    tree.insert(r, DataId(0));
    // Wrong id, wrong rect.
    assert!(tree.delete(&r, DataId(1)).is_none());
    let other = Rect::new(Point([0.0, 0.0]), Point([2.0, 2.0]));
    assert!(tree.delete(&other, DataId(0)).is_none());
    // Correct delete empties the tree.
    assert!(tree.delete(&r, DataId(0)).is_some());
    assert!(tree.is_empty());
    tree.validate().unwrap();
}

#[test]
fn drain_tree_to_empty_and_refill() {
    for variant in Variant::ALL {
        let mut tree: RTree<2> = RTree::new(
            TreeConfig::tiny(variant)
                .with_world(Rect::new(Point([0.0, 0.0]), Point([1000.0, 1000.0]))),
        );
        let mut rng = SplitMix64::new(66);
        let data: Vec<Rect<2>> = (0..300)
            .map(|_| {
                let x = rng.gen_range(0.0, 990.0);
                let y = rng.gen_range(0.0, 990.0);
                Rect::new(Point([x, y]), Point([x + 5.0, y + 5.0]))
            })
            .collect();
        for (i, b) in data.iter().enumerate() {
            tree.insert(*b, DataId(i as u32));
        }
        for (i, b) in data.iter().enumerate() {
            assert!(tree.delete(b, DataId(i as u32)).is_some(), "{variant:?}");
        }
        assert!(tree.is_empty());
        assert_eq!(
            tree.height(),
            1,
            "{variant:?}: root must shrink back to a leaf"
        );
        tree.validate().unwrap();
        // Refill works after drain.
        for (i, b) in data.iter().enumerate() {
            tree.insert(*b, DataId(i as u32));
        }
        tree.validate().unwrap();
        assert_eq!(tree.len(), data.len());
    }
}
