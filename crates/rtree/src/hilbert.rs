//! d-dimensional Hilbert curve (Skilling's transform).
//!
//! Substrate for the HR-tree: maps grid coordinates to positions along the
//! Hilbert space-filling curve so that spatially close objects receive
//! close one-dimensional keys. Implements the compact transpose algorithm
//! of Skilling (2004), generalised over dimensionality, followed by MSB
//! bit-interleaving into a single integer key.

use cbb_geom::Rect;

/// Bits per dimension used by the HR-tree key (`order`). With 16 bits in
/// up to 4 dimensions the interleaved key fits `u64`.
pub const DEFAULT_ORDER: u32 = 16;

/// Hilbert index of grid cell `coords` on a `2^order`-per-side grid.
///
/// Keys of cells adjacent on the curve differ by exactly one; the curve
/// visits every cell exactly once (tested exhaustively below).
pub fn hilbert_index<const D: usize>(coords: [u32; D], order: u32) -> u64 {
    assert!(
        (order as usize) * D <= 64,
        "interleaved key must fit u64: order {order} × {D} dims"
    );
    let mut x = coords;

    // --- Skilling's AxesToTranspose ---
    let m = 1u32 << (order - 1);
    // Inverse undo.
    let mut q = m;
    while q > 1 {
        let p = q - 1;
        for i in 0..D {
            if x[i] & q != 0 {
                x[0] ^= p; // invert low bits of x[0]
            } else {
                let t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q >>= 1;
    }
    // Gray encode.
    for i in 1..D {
        x[i] ^= x[i - 1];
    }
    let mut t = 0u32;
    let mut q = m;
    while q > 1 {
        if x[D - 1] & q != 0 {
            t ^= q - 1;
        }
        q >>= 1;
    }
    for xi in x.iter_mut() {
        *xi ^= t;
    }

    // --- Interleave (transpose) to a single key, MSB first ---
    let mut h: u64 = 0;
    for b in (0..order).rev() {
        for xi in &x {
            h = (h << 1) | ((xi >> b) & 1) as u64;
        }
    }
    h
}

/// Map a continuous point (the center of `rect`) into the `2^order` grid
/// over `world` and return its Hilbert key. Coordinates outside `world`
/// are clamped — dynamic inserts may slightly exceed the initial bounds.
pub fn hilbert_key_of_rect<const D: usize>(rect: &Rect<D>, world: &Rect<D>, order: u32) -> u64 {
    let center = rect.center();
    let max_cell = (1u64 << order) - 1;
    let mut coords = [0u32; D];
    for i in 0..D {
        let extent = world.extent(i);
        let frac = if extent > 0.0 {
            ((center[i] - world.lo[i]) / extent).clamp(0.0, 1.0)
        } else {
            0.0
        };
        coords[i] = ((frac * max_cell as f64) as u64).min(max_cell) as u32;
    }
    hilbert_index(coords, order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbb_geom::Point;

    #[test]
    fn order_one_2d_is_the_canonical_u() {
        // The order-1 2-d Hilbert curve visits (0,0) → (0,1) → (1,1) → (1,0)
        // (up to the standard orientation used by Skilling's transform:
        // dimension 0 is the first interleaved bit).
        let idx: Vec<u64> = [(0u32, 0u32), (0, 1), (1, 1), (1, 0)]
            .iter()
            .map(|&(x, y)| hilbert_index([x, y], 1))
            .collect();
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3], "bijective on the 2×2 grid");
        assert_eq!(idx, vec![0, 1, 2, 3]);
    }

    #[test]
    fn bijective_and_continuous_2d() {
        // Exhaustive check at order 4 (16×16): every key distinct, and the
        // cells sorted by key form a path of unit grid steps — the defining
        // Hilbert property.
        let order = 4;
        let n = 1u32 << order;
        let mut cells: Vec<(u64, u32, u32)> = Vec::new();
        for x in 0..n {
            for y in 0..n {
                cells.push((hilbert_index([x, y], order), x, y));
            }
        }
        cells.sort_unstable();
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.0, i as u64, "keys must be a permutation of 0..n²");
        }
        for w in cells.windows(2) {
            let dx = w[0].1.abs_diff(w[1].1);
            let dy = w[0].2.abs_diff(w[1].2);
            assert_eq!(dx + dy, 1, "consecutive cells must be grid-adjacent");
        }
    }

    #[test]
    fn bijective_and_continuous_3d() {
        let order = 3;
        let n = 1u32 << order;
        let mut cells: Vec<(u64, [u32; 3])> = Vec::new();
        for x in 0..n {
            for y in 0..n {
                for z in 0..n {
                    cells.push((hilbert_index([x, y, z], order), [x, y, z]));
                }
            }
        }
        cells.sort_unstable();
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.0, i as u64);
        }
        for w in cells.windows(2) {
            let d: u32 = (0..3).map(|i| w[0].1[i].abs_diff(w[1].1[i])).sum();
            assert_eq!(d, 1);
        }
    }

    #[test]
    fn key_of_rect_clamps_and_orders() {
        let world: Rect<2> = Rect::new(Point([0.0, 0.0]), Point([100.0, 100.0]));
        let a = Rect::new(Point([1.0, 1.0]), Point([2.0, 2.0]));
        let b = Rect::new(Point([90.0, 90.0]), Point([95.0, 95.0]));
        let ka = hilbert_key_of_rect(&a, &world, DEFAULT_ORDER);
        let kb = hilbert_key_of_rect(&b, &world, DEFAULT_ORDER);
        assert_ne!(ka, kb);
        // Outside-world rect clamps instead of panicking.
        let c = Rect::new(Point([-50.0, -50.0]), Point([-40.0, -40.0]));
        let kc = hilbert_key_of_rect(&c, &world, DEFAULT_ORDER);
        assert_eq!(kc, hilbert_index([0, 0], DEFAULT_ORDER));
        // Degenerate world (zero extent) maps everything to cell 0.
        let flat: Rect<2> = Rect::new(Point([5.0, 5.0]), Point([5.0, 5.0]));
        assert_eq!(hilbert_key_of_rect(&a, &flat, DEFAULT_ORDER), 0);
    }

    #[test]
    fn locality_beats_row_major_on_average() {
        // Sanity check that the curve actually provides locality: the mean
        // key distance of grid-adjacent cells must be far below that of
        // row-major ordering at the same size.
        let order = 5;
        let n = 1u32 << order;
        let mut hilbert_sum: f64 = 0.0;
        let mut row_major_sum: f64 = 0.0;
        let mut count = 0u64;
        for x in 0..n - 1 {
            for y in 0..n {
                let h1 = hilbert_index([x, y], order) as f64;
                let h2 = hilbert_index([x + 1, y], order) as f64;
                hilbert_sum += (h1 - h2).abs();
                let r1 = (x * n + y) as f64;
                let r2 = ((x + 1) * n + y) as f64;
                row_major_sum += (r1 - r2).abs();
                count += 1;
            }
        }
        assert!(hilbert_sum / count as f64 <= row_major_sum / count as f64);
    }
}
