//! The CBB plug-in (§IV): an auxiliary clip-point table attached to an
//! unmodified R-tree, clipping-enabled queries (Algorithm 2), and the
//! eager/lazy update maintenance of §IV-D with re-clip cause accounting
//! (the Figure 12 measurement).
//!
//! The base tree's layout is untouched, exactly as the paper prescribes:
//! clip points live in a side table indexed by node id (Figure 4b), so any
//! variant can be clipped after the fact.

use cbb_core::{
    clip_node, insertion_keeps_clips_valid, query_intersects_cbb, ClipConfig, ClipPoint,
};
use cbb_geom::Rect;

use crate::node::{Child, DataId, NodeId};
use crate::stats::AccessStats;
use crate::tree::{ChangeKind, ChangeLog, RTree};

/// Why a node's CBB was recomputed (the Figure 12 stacked-bar causes).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MaintenanceStats {
    /// Re-clips forced by node splits (splits always rewrite the node).
    pub reclips_split: u64,
    /// Re-clips forced by an MBB change without a split.
    pub reclips_mbb: u64,
    /// Re-clips triggered by the eager validity test alone (MBB unchanged;
    /// Algorithm 2 with `selector = 0` returned FALSE).
    pub reclips_cbb: u64,
    /// Validity tests executed.
    pub validity_tests: u64,
    /// Top-level insert operations observed.
    pub inserts: u64,
    /// Top-level delete operations observed.
    pub deletes: u64,
}

impl MaintenanceStats {
    /// Total re-clips from any cause.
    pub fn total_reclips(&self) -> u64 {
        self.reclips_split + self.reclips_mbb + self.reclips_cbb
    }
}

/// An R-tree with the CBB auxiliary structure attached.
#[derive(Clone, Debug)]
pub struct ClippedRTree<const D: usize> {
    /// The unmodified base tree.
    pub tree: RTree<D>,
    /// Clip points per node id (dense side table, Figure 4b).
    clips: Vec<Vec<ClipPoint<D>>>,
    /// Clipping parameters (k, τ, CSKY/CSTA).
    pub clip_config: ClipConfig,
    /// Update-maintenance counters.
    pub maintenance: MaintenanceStats,
}

impl<const D: usize> ClippedRTree<D> {
    /// Clip every node of an existing tree (construction-time clipping:
    /// "clip each node prior to flushing it to disk", §V-A).
    pub fn from_tree(tree: RTree<D>, clip_config: ClipConfig) -> Self {
        let mut clipped = ClippedRTree {
            tree,
            clips: Vec::new(),
            clip_config,
            maintenance: MaintenanceStats::default(),
        };
        clipped.reclip_all();
        clipped
    }

    /// Attach an *empty* clip table: queries behave exactly like the base
    /// tree. This is the cheap baseline wrapper for executors that want
    /// the [`ClippedRTree`] API without paying Algorithm 1 construction
    /// (e.g. per-partition trees in a no-clipping comparison run).
    pub fn unclipped(tree: RTree<D>) -> Self {
        ClippedRTree {
            tree,
            clips: Vec::new(),
            clip_config: ClipConfig::paper_default::<D>(cbb_core::ClipMethod::Stairline).with_k(0),
            maintenance: MaintenanceStats::default(),
        }
    }

    /// Recompute the clip points of every live node.
    pub fn reclip_all(&mut self) {
        let ids: Vec<NodeId> = self.tree.iter_nodes().map(|(id, _)| id).collect();
        for id in ids {
            self.reclip(id);
        }
    }

    /// Clip points stored for a node (empty slice when none).
    pub fn clips_of(&self, id: NodeId) -> &[ClipPoint<D>] {
        self.clips
            .get(id.0 as usize)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Recompute one node's clip points from its current entries.
    fn reclip(&mut self, id: NodeId) {
        let node = self.tree.node(id);
        let points = if node.entries.is_empty() {
            Vec::new()
        } else {
            clip_node(&node.mbb, &node.entry_rects(), &self.clip_config)
        };
        let slot = id.0 as usize;
        if self.clips.len() <= slot {
            self.clips.resize_with(slot + 1, Vec::new);
        }
        self.clips[slot] = points;
    }

    fn drop_clips(&mut self, id: NodeId) {
        if let Some(v) = self.clips.get_mut(id.0 as usize) {
            v.clear();
        }
    }

    // ------------------------------------------------------------------
    // Updates (§IV-D)
    // ------------------------------------------------------------------

    /// Insert an object, maintaining clip points eagerly.
    pub fn insert(&mut self, rect: Rect<D>, data: DataId) {
        let log = self.tree.insert(rect, data);
        self.maintenance.inserts += 1;
        self.apply_log(&log);
    }

    /// Delete an object. Deletions are lazy (§IV-D): clips change only when
    /// an MBB changes or a node is dissolved/split; pure entry removals
    /// keep the old (still valid) clip points.
    pub fn delete(&mut self, rect: &Rect<D>, data: DataId) -> bool {
        match self.tree.delete(rect, data) {
            Some(log) => {
                self.maintenance.deletes += 1;
                self.apply_log(&log);
                true
            }
            None => false,
        }
    }

    /// Process a base-tree change log: re-clip split and MBB-changed
    /// nodes; run the eager Algorithm 2 validity test on nodes that only
    /// gained entries.
    fn apply_log(&mut self, log: &ChangeLog<D>) {
        for id in &log.freed {
            self.drop_clips(*id);
        }
        for &(id, kind) in log.changes() {
            if log.freed.contains(&id) {
                continue;
            }
            match kind {
                ChangeKind::Split => {
                    self.reclip(id);
                    self.maintenance.reclips_split += 1;
                }
                ChangeKind::MbbChanged => {
                    self.reclip(id);
                    self.maintenance.reclips_mbb += 1;
                }
                ChangeKind::EntryAdded => {
                    self.maintenance.validity_tests += 1;
                    let mbb = self.tree.node(id).mbb;
                    let clips = self.clips_of(id);
                    let invalid = log
                        .added
                        .iter()
                        .filter(|(nid, _)| *nid == id)
                        .any(|(_, r)| !insertion_keeps_clips_valid(&mbb, clips, r));
                    if invalid {
                        self.reclip(id);
                        self.maintenance.reclips_cbb += 1;
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Queries (§IV-C)
    // ------------------------------------------------------------------

    /// Clipping-enabled range query.
    pub fn range_query(&self, q: &Rect<D>) -> Vec<DataId> {
        let mut stats = AccessStats::new();
        self.range_query_stats(q, &mut stats)
    }

    /// Clipping-enabled range query with access accounting. Identical
    /// traversal to the base tree, plus one Algorithm 2 test per otherwise
    /// descended child.
    pub fn range_query_stats(&self, q: &Rect<D>, stats: &mut AccessStats) -> Vec<DataId> {
        let mut out = Vec::new();
        if self.tree.is_empty() {
            return out;
        }
        let root = self.tree.root_id();
        // The root's own CBB can prune the whole query.
        let root_mbb = self.tree.node(root).mbb;
        stats.clip_tests += self.clips_of(root).len() as u64;
        if !query_intersects_cbb(&root_mbb, self.clips_of(root), q) {
            stats.clip_prunes += 1;
            return out;
        }
        self.query_rec(root, q, stats, &mut out);
        out
    }

    fn query_rec(&self, id: NodeId, q: &Rect<D>, stats: &mut AccessStats, out: &mut Vec<DataId>) {
        let node = self.tree.node(id);
        stats.overlap_tests += node.entries.len() as u64;
        if node.is_leaf() {
            stats.leaf_accesses += 1;
            let before = out.len();
            for e in &node.entries {
                if e.mbb.intersects(q) {
                    out.push(e.child.data_id());
                }
            }
            let found = out.len() - before;
            stats.results += found as u64;
            if found > 0 {
                stats.contributing_leaf_accesses += 1;
            }
            return;
        }
        stats.internal_accesses += 1;
        for e in &node.entries {
            if !e.mbb.intersects(q) {
                continue;
            }
            let child = match e.child {
                Child::Node(c) => c,
                Child::Data(_) => unreachable!("directory node with data entry"),
            };
            let clips = self.clips_of(child);
            stats.clip_tests += clips.len() as u64;
            if !query_intersects_cbb(&e.mbb, clips, q) {
                stats.clip_prunes += 1;
                continue;
            }
            self.query_rec(child, q, stats, out);
        }
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Total stored clip points.
    pub fn total_clip_points(&self) -> usize {
        self.tree
            .iter_nodes()
            .map(|(id, _)| self.clips_of(id).len())
            .sum()
    }

    /// Average stored clip points per node (Figure 13's bar annotations).
    pub fn avg_clips_per_node(&self) -> f64 {
        let nodes = self.tree.node_count();
        if nodes == 0 {
            0.0
        } else {
            self.total_clip_points() as f64 / nodes as f64
        }
    }

    /// Per-scope average of the clipped fraction of node volume (the
    /// upper stacked segment of the Figure 10 bars). Cheap: clip-region
    /// unions are exact over ≤ k boxes. `None` when no node matches.
    pub fn avg_clipped_fraction(&self, scope: crate::metrics::NodeScope) -> Option<f64> {
        let mut clip_sum = 0.0;
        let mut count = 0usize;
        for (id, node) in self.tree.iter_nodes() {
            let keep = match scope {
                crate::metrics::NodeScope::All => true,
                crate::metrics::NodeScope::Leaves => node.is_leaf(),
                crate::metrics::NodeScope::Internal => !node.is_leaf(),
            };
            if !keep || node.entries.is_empty() || node.mbb.volume() <= 0.0 {
                continue;
            }
            let regions: Vec<Rect<D>> = self
                .clips_of(id)
                .iter()
                .map(|c| c.region(&node.mbb))
                .collect();
            clip_sum += cbb_geom::union_volume_exact(&node.mbb, &regions) / node.mbb.volume();
            count += 1;
        }
        if count == 0 {
            None
        } else {
            Some(clip_sum / count as f64)
        }
    }

    /// Per-scope averages of `(dead-space fraction, clipped fraction of
    /// node volume)` — the two stacked segments of the Figure 10 bars.
    /// Note the dead-space half is clipping-invariant; sweeps over `k`
    /// should measure it once and use [`Self::avg_clipped_fraction`].
    pub fn avg_dead_space_and_clipped(
        &self,
        scope: crate::metrics::NodeScope,
    ) -> Option<(f64, f64)> {
        let mut dead_sum = 0.0;
        let mut clip_sum = 0.0;
        let mut count = 0usize;
        for (id, node) in self.tree.iter_nodes() {
            let keep = match scope {
                crate::metrics::NodeScope::All => true,
                crate::metrics::NodeScope::Leaves => node.is_leaf(),
                crate::metrics::NodeScope::Internal => !node.is_leaf(),
            };
            if !keep || node.entries.is_empty() || node.mbb.volume() <= 0.0 {
                continue;
            }
            dead_sum += crate::metrics::node_dead_space(node);
            let regions: Vec<Rect<D>> = self
                .clips_of(id)
                .iter()
                .map(|c| c.region(&node.mbb))
                .collect();
            clip_sum += cbb_geom::union_volume_exact(&node.mbb, &regions) / node.mbb.volume();
            count += 1;
        }
        if count == 0 {
            None
        } else {
            Some((dead_sum / count as f64, clip_sum / count as f64))
        }
    }

    /// Audit helper: every stored clip point must be valid for its node's
    /// current entries (zero positive-measure overlap).
    pub fn verify_clips(&self) -> Result<(), String> {
        for (id, node) in self.tree.iter_nodes() {
            let rects = node.entry_rects();
            for c in self.clips_of(id) {
                if !c.is_valid_for(&node.mbb, &rects) {
                    return Err(format!("invalid clip {c:?} on {id:?}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{TreeConfig, Variant};
    use cbb_core::ClipMethod;
    use cbb_geom::Point;

    fn r2(lx: f64, ly: f64, hx: f64, hy: f64) -> Rect<2> {
        Rect::new(Point([lx, ly]), Point([hx, hy]))
    }

    /// Deterministic pseudo-random boxes.
    fn boxes(n: usize, seed: u64) -> Vec<Rect<2>> {
        let mut rng = cbb_geom::SplitMix64::new(seed);
        (0..n)
            .map(|_| {
                let x = rng.gen_range(0.0, 950.0);
                let y = rng.gen_range(0.0, 950.0);
                let w = rng.gen_range(0.5, 20.0);
                let h = rng.gen_range(0.5, 20.0);
                r2(x, y, x + w, y + h)
            })
            .collect()
    }

    fn build(variant: Variant, method: ClipMethod, n: usize) -> ClippedRTree<2> {
        let mut tree =
            RTree::new(TreeConfig::tiny(variant).with_world(r2(0.0, 0.0, 1000.0, 1000.0)));
        for (i, b) in boxes(n, 42).into_iter().enumerate() {
            tree.insert(b, DataId(i as u32));
        }
        tree.validate().unwrap();
        ClippedRTree::from_tree(tree, ClipConfig::paper_default::<2>(method))
    }

    #[test]
    fn clipped_queries_match_unclipped_exactly() {
        for variant in Variant::ALL {
            for method in [ClipMethod::Skyline, ClipMethod::Stairline] {
                let clipped = build(variant, method, 300);
                let mut rng = cbb_geom::SplitMix64::new(7);
                for _ in 0..120 {
                    let x = rng.gen_range(0.0, 980.0);
                    let y = rng.gen_range(0.0, 980.0);
                    let s = rng.gen_range(1.0, 60.0);
                    let q = r2(x, y, x + s, y + s);
                    let mut base = clipped.tree.range_query(&q);
                    let mut with_clips = clipped.range_query(&q);
                    base.sort();
                    with_clips.sort();
                    assert_eq!(base, with_clips, "{variant:?}/{method:?} q={q:?}");
                }
            }
        }
    }

    #[test]
    fn clipping_reduces_leaf_accesses_on_selective_queries() {
        // Aggregate over many small queries: the clipped tree must do no
        // more I/O than the base tree, and strictly less overall.
        let clipped = build(Variant::Quadratic, ClipMethod::Stairline, 500);
        let mut rng = cbb_geom::SplitMix64::new(11);
        let mut base_total = 0u64;
        let mut clip_total = 0u64;
        for _ in 0..300 {
            let x = rng.gen_range(0.0, 990.0);
            let y = rng.gen_range(0.0, 990.0);
            let q = r2(x, y, x + 4.0, y + 4.0);
            let mut s1 = AccessStats::new();
            clipped.tree.range_query_stats(&q, &mut s1);
            let mut s2 = AccessStats::new();
            clipped.range_query_stats(&q, &mut s2);
            assert!(s2.leaf_accesses <= s1.leaf_accesses, "clipping added I/O");
            base_total += s1.leaf_accesses;
            clip_total += s2.leaf_accesses;
        }
        assert!(
            clip_total < base_total,
            "expected savings: clipped {clip_total} vs base {base_total}"
        );
    }

    #[test]
    fn maintenance_keeps_clips_valid_under_inserts() {
        let mut clipped = build(Variant::RStar, ClipMethod::Stairline, 200);
        for (i, b) in boxes(150, 99).into_iter().enumerate() {
            clipped.insert(b, DataId(1000 + i as u32));
        }
        clipped.tree.validate().unwrap();
        clipped.verify_clips().unwrap();
        assert_eq!(clipped.maintenance.inserts, 150);
        assert!(clipped.maintenance.validity_tests > 0);
    }

    #[test]
    fn maintenance_keeps_clips_valid_under_deletes() {
        let mut clipped = build(Variant::Quadratic, ClipMethod::Skyline, 300);
        let objects = boxes(300, 42);
        for (i, b) in objects.iter().enumerate().take(150) {
            assert!(clipped.delete(b, DataId(i as u32)), "object {i} present");
        }
        clipped.tree.validate().unwrap();
        clipped.verify_clips().unwrap();
        assert_eq!(clipped.tree.len(), 150);
        // Deleted objects are gone; survivors still found.
        let q = objects[200];
        assert!(clipped.range_query(&q).contains(&DataId(200)));
    }

    #[test]
    fn mixed_workload_stays_consistent() {
        let mut clipped = build(Variant::Hilbert, ClipMethod::Stairline, 250);
        let objects = boxes(250, 42);
        let extra = boxes(100, 5);
        for (i, b) in extra.iter().enumerate() {
            clipped.insert(*b, DataId(5000 + i as u32));
            if i % 2 == 0 {
                clipped.delete(&objects[i], DataId(i as u32));
            }
        }
        clipped.tree.validate().unwrap();
        clipped.verify_clips().unwrap();
        // Query results still agree with brute force over live objects.
        let mut live: Vec<(Rect<2>, DataId)> = clipped.tree.all_objects();
        live.sort_by_key(|(_, d)| *d);
        let q = r2(100.0, 100.0, 400.0, 400.0);
        let mut expected: Vec<DataId> = live
            .iter()
            .filter(|(r, _)| r.intersects(&q))
            .map(|(_, d)| *d)
            .collect();
        let mut got = clipped.range_query(&q);
        expected.sort();
        got.sort();
        assert_eq!(got, expected);
    }

    #[test]
    fn stats_expose_clip_pruning() {
        let clipped = build(Variant::RRStar, ClipMethod::Stairline, 500);
        let mut rng = cbb_geom::SplitMix64::new(3);
        let mut stats = AccessStats::new();
        for _ in 0..200 {
            let x = rng.gen_range(0.0, 990.0);
            let y = rng.gen_range(0.0, 990.0);
            let q = r2(x, y, x + 3.0, y + 3.0);
            clipped.range_query_stats(&q, &mut stats);
        }
        assert!(stats.clip_tests > 0);
        assert!(stats.clip_prunes > 0, "no pruning ever happened");
        assert!(clipped.total_clip_points() > 0);
        assert!(clipped.avg_clips_per_node() > 0.0);
    }

    #[test]
    fn dead_space_and_clipped_fractions_are_sane() {
        let clipped = build(Variant::Quadratic, ClipMethod::Stairline, 400);
        let (dead, cl) = clipped
            .avg_dead_space_and_clipped(crate::metrics::NodeScope::Leaves)
            .unwrap();
        assert!((0.0..=1.0).contains(&dead));
        assert!((0.0..=1.0).contains(&cl));
        assert!(cl <= dead + 1e-9, "clipped {cl} exceeds dead space {dead}");
        assert!(cl > 0.0);
    }
}
