//! # cbb-rtree — disk-style R-tree framework with four variants
//!
//! Re-implementation of the index substrate the paper evaluates on
//! (the C benchmark of Beckmann & Seeger \[33\]): a paged R-tree with the
//! four variants of §V-A —
//!
//! * **QR-tree** — Guttman's original with quadratic split;
//! * **HR-tree** — Hilbert R-tree (Hilbert-sort bulk loading; dynamic
//!   inserts ordered by Hilbert value with 2-to-3 sibling splits);
//! * **R\*-tree** — Beckmann et al. 1990 (overlap-aware choose-subtree,
//!   margin-driven split, forced reinsertion);
//! * **RR\*-tree** — the revised R\*-tree of Beckmann & Seeger 2009
//!   (covering-aware choose-subtree, perimeter goal functions, no
//!   reinsertion).
//!
//! Plus STR bulk loading as an extra baseline, per-node quality metrics
//! (overlap, dead space — Figure 1), instrumented queries counting leaf
//! accesses (the paper's I/O metric), and the **clipped** plug-in
//! ([`clipped`]) that attaches the CBB auxiliary structure of §IV to any
//! variant without altering the base tree.

pub mod clipped;
pub mod config;
pub mod hilbert;
pub mod metrics;
pub mod node;
pub mod query;
pub mod stats;
pub mod tree;
pub mod validate;
pub mod variants;

pub use clipped::ClippedRTree;
pub use config::{TreeConfig, Variant};
pub use node::{Child, DataId, Entry, Node, NodeId};
pub use query::{push_neighbor, Neighbor};
pub use stats::AccessStats;
pub use tree::RTree;

// Parallel executors (cbb-engine) share immutable trees across worker
// threads; keep that property guarded at compile time so no interior
// mutability sneaks into the index types.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<RTree<2>>();
    assert_send_sync::<RTree<3>>();
    assert_send_sync::<ClippedRTree<2>>();
    assert_send_sync::<ClippedRTree<3>>();
    assert_send_sync::<AccessStats>();
    assert_send_sync::<TreeConfig<2>>();
};
