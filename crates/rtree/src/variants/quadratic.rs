//! Guttman's original R-tree algorithms (SIGMOD 1984): ChooseLeaf by least
//! area enlargement and the quadratic split.

use cbb_geom::Rect;

use crate::node::Entry;
use crate::variants::Split;

/// ChooseLeaf step: index of the entry needing the least area enlargement
/// to include `rect`; ties resolved by the smallest area.
pub fn choose_child<const D: usize>(entries: &[Entry<D>], rect: &Rect<D>) -> usize {
    let mut best = 0;
    let mut best_enl = f64::INFINITY;
    let mut best_area = f64::INFINITY;
    for (i, e) in entries.iter().enumerate() {
        let enl = e.mbb.enlargement(rect);
        let area = e.mbb.volume();
        if enl < best_enl || (enl == best_enl && area < best_area) {
            best = i;
            best_enl = enl;
            best_area = area;
        }
    }
    best
}

/// Quadratic split: PickSeeds chooses the pair wasting the most area if
/// grouped together; PickNext repeatedly assigns the entry with the
/// greatest enlargement difference, honouring the minimum fill `m`.
pub fn split<const D: usize>(entries: Vec<Entry<D>>, m: usize) -> Split<D> {
    let n = entries.len();
    debug_assert!(n >= 2 * m, "cannot split {n} entries with m = {m}");

    // PickSeeds: maximise d = area(J) − area(E1) − area(E2).
    let (mut s1, mut s2) = (0, 1);
    let mut worst = f64::NEG_INFINITY;
    for i in 0..n {
        for j in (i + 1)..n {
            let j_area = entries[i].mbb.union(&entries[j].mbb).volume();
            let d = j_area - entries[i].mbb.volume() - entries[j].mbb.volume();
            if d > worst {
                worst = d;
                s1 = i;
                s2 = j;
            }
        }
    }

    let mut g1: Vec<Entry<D>> = vec![entries[s1]];
    let mut g2: Vec<Entry<D>> = vec![entries[s2]];
    let mut bb1 = entries[s1].mbb;
    let mut bb2 = entries[s2].mbb;
    let mut rest: Vec<Entry<D>> = entries
        .into_iter()
        .enumerate()
        .filter(|(i, _)| *i != s1 && *i != s2)
        .map(|(_, e)| e)
        .collect();

    while !rest.is_empty() {
        // Honour m: if one group must take all the rest, assign wholesale.
        if g1.len() + rest.len() == m {
            for e in rest.drain(..) {
                bb1 = bb1.union(&e.mbb);
                g1.push(e);
            }
            break;
        }
        if g2.len() + rest.len() == m {
            for e in rest.drain(..) {
                bb2 = bb2.union(&e.mbb);
                g2.push(e);
            }
            break;
        }
        // PickNext: entry maximising |d1 − d2|.
        let mut pick = 0;
        let mut pick_diff = f64::NEG_INFINITY;
        for (i, e) in rest.iter().enumerate() {
            let d1 = bb1.enlargement(&e.mbb);
            let d2 = bb2.enlargement(&e.mbb);
            let diff = (d1 - d2).abs();
            if diff > pick_diff {
                pick_diff = diff;
                pick = i;
            }
        }
        let e = rest.swap_remove(pick);
        let d1 = bb1.enlargement(&e.mbb);
        let d2 = bb2.enlargement(&e.mbb);
        // Resolve by enlargement, then area, then count.
        let to_g1 = match d1.partial_cmp(&d2).expect("finite") {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => {
                let (a1, a2) = (bb1.volume(), bb2.volume());
                if a1 != a2 {
                    a1 < a2
                } else {
                    g1.len() <= g2.len()
                }
            }
        };
        if to_g1 {
            bb1 = bb1.union(&e.mbb);
            g1.push(e);
        } else {
            bb2 = bb2.union(&e.mbb);
            g2.push(e);
        }
    }
    (g1, g2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::DataId;
    use crate::variants::check_split;
    use cbb_geom::Point;

    fn entry(lx: f64, ly: f64, hx: f64, hy: f64, id: u32) -> Entry<2> {
        Entry::data(Rect::new(Point([lx, ly]), Point([hx, hy])), DataId(id))
    }

    #[test]
    fn choose_child_prefers_containment() {
        let entries = vec![
            entry(0.0, 0.0, 10.0, 10.0, 0),
            entry(20.0, 20.0, 30.0, 30.0, 1),
        ];
        let inside_first = Rect::new(Point([2.0, 2.0]), Point([3.0, 3.0]));
        assert_eq!(choose_child(&entries, &inside_first), 0);
        let inside_second = Rect::new(Point([21.0, 21.0]), Point([22.0, 22.0]));
        assert_eq!(choose_child(&entries, &inside_second), 1);
    }

    #[test]
    fn choose_child_ties_break_on_area() {
        let entries = vec![entry(0.0, 0.0, 10.0, 10.0, 0), entry(0.0, 0.0, 5.0, 5.0, 1)];
        // Contained in both → zero enlargement for both → smaller area wins.
        let q = Rect::new(Point([1.0, 1.0]), Point([2.0, 2.0]));
        assert_eq!(choose_child(&entries, &q), 1);
    }

    #[test]
    fn split_separates_two_clusters() {
        let mut entries = Vec::new();
        for i in 0..5 {
            let o = i as f64;
            entries.push(entry(o, o, o + 1.0, o + 1.0, i as u32));
        }
        for i in 0..5 {
            let o = 100.0 + i as f64;
            entries.push(entry(o, o, o + 1.0, o + 1.0, 5 + i as u32));
        }
        let (g1, g2) = split(entries, 2);
        check_split(10, 2, &(g1.clone(), g2.clone()));
        // Each group should be one cluster: max extent far below 100.
        let bb1 = Rect::mbb_of(&g1.iter().map(|e| e.mbb).collect::<Vec<_>>()).unwrap();
        let bb2 = Rect::mbb_of(&g2.iter().map(|e| e.mbb).collect::<Vec<_>>()).unwrap();
        assert!(bb1.extent(0) < 50.0);
        assert!(bb2.extent(0) < 50.0);
        assert_eq!(bb1.overlap_volume(&bb2), 0.0);
    }

    #[test]
    fn split_respects_minimum_fill() {
        // Pathological input: one far outlier — m forces balance anyway.
        let mut entries: Vec<Entry<2>> = (0..9)
            .map(|i| entry(i as f64, 0.0, i as f64 + 0.5, 0.5, i as u32))
            .collect();
        entries.push(entry(1000.0, 1000.0, 1001.0, 1001.0, 9));
        let m = 4;
        let s = split(entries, m);
        check_split(10, m, &s);
    }

    #[test]
    fn split_handles_identical_rects() {
        let entries: Vec<Entry<2>> = (0..8).map(|i| entry(0.0, 0.0, 1.0, 1.0, i)).collect();
        let s = split(entries, 3);
        check_split(8, 3, &s);
    }
}
