//! R*-tree algorithms (Beckmann, Kriegel, Schneider, Seeger — SIGMOD 1990):
//! overlap-aware ChooseSubtree, topological (margin-driven) split, and the
//! forced-reinsertion entry selection.

use cbb_geom::Rect;

use crate::node::Entry;
use crate::variants::Split;

/// Candidate cap for the leaf-level overlap computation — the published
/// R* optimisation: determine the overlap enlargement only for the `p`
/// entries with the least area enlargement (the paper uses `p = 32`).
const CHOOSE_SUBTREE_P: usize = 32;

/// ChooseSubtree: when the children are leaves, minimise *overlap
/// enlargement* (ties: area enlargement, then area); otherwise minimise
/// area enlargement (ties: area).
pub fn choose_child<const D: usize>(
    entries: &[Entry<D>],
    rect: &Rect<D>,
    children_are_leaves: bool,
) -> usize {
    if children_are_leaves {
        // Restrict to the p best candidates by area enlargement.
        let candidates: Vec<usize> = if entries.len() > CHOOSE_SUBTREE_P {
            let mut idx: Vec<usize> = (0..entries.len()).collect();
            idx.sort_by(|&a, &b| {
                entries[a]
                    .mbb
                    .enlargement(rect)
                    .partial_cmp(&entries[b].mbb.enlargement(rect))
                    .expect("finite")
            });
            idx.truncate(CHOOSE_SUBTREE_P);
            idx
        } else {
            (0..entries.len()).collect()
        };
        let mut best = candidates[0];
        let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        for &i in &candidates {
            let e = &entries[i];
            let enlarged = e.mbb.union(rect);
            let mut overlap_before = 0.0;
            let mut overlap_after = 0.0;
            for (j, other) in entries.iter().enumerate() {
                if i == j {
                    continue;
                }
                overlap_before += e.mbb.overlap_volume(&other.mbb);
                overlap_after += enlarged.overlap_volume(&other.mbb);
            }
            let key = (
                overlap_after - overlap_before,
                e.mbb.enlargement(rect),
                e.mbb.volume(),
            );
            if key < best_key {
                best_key = key;
                best = i;
            }
        }
        best
    } else {
        let mut best = 0;
        let mut best_key = (f64::INFINITY, f64::INFINITY);
        for (i, e) in entries.iter().enumerate() {
            let key = (e.mbb.enlargement(rect), e.mbb.volume());
            if key < best_key {
                best_key = key;
                best = i;
            }
        }
        best
    }
}

/// One candidate distribution: the first `k` entries of a sorted order go
/// left, the rest right.
fn distribution_cost<const D: usize>(sorted: &[Entry<D>], k: usize) -> (Rect<D>, Rect<D>) {
    let bb1 = Rect::mbb_of(&sorted[..k].iter().map(|e| e.mbb).collect::<Vec<_>>()).expect("k ≥ 1");
    let bb2 = Rect::mbb_of(&sorted[k..].iter().map(|e| e.mbb).collect::<Vec<_>>()).expect("k < n");
    (bb1, bb2)
}

/// All orders considered per axis: by lower then by upper coordinate.
fn axis_sorts<const D: usize>(entries: &[Entry<D>], axis: usize) -> [Vec<Entry<D>>; 2] {
    let mut by_lo = entries.to_vec();
    by_lo.sort_by(|a, b| {
        a.mbb.lo[axis]
            .partial_cmp(&b.mbb.lo[axis])
            .expect("finite")
            .then(a.mbb.hi[axis].partial_cmp(&b.mbb.hi[axis]).expect("finite"))
    });
    let mut by_hi = entries.to_vec();
    by_hi.sort_by(|a, b| {
        a.mbb.hi[axis]
            .partial_cmp(&b.mbb.hi[axis])
            .expect("finite")
            .then(a.mbb.lo[axis].partial_cmp(&b.mbb.lo[axis]).expect("finite"))
    });
    [by_lo, by_hi]
}

/// R* split. ChooseSplitAxis: the axis minimising the summed margins over
/// all candidate distributions. ChooseSplitIndex: the distribution with the
/// least overlap (ties: least combined area).
pub fn split<const D: usize>(entries: Vec<Entry<D>>, m: usize) -> Split<D> {
    let n = entries.len();
    debug_assert!(n >= 2 * m);

    // Choose the split axis by minimal margin sum.
    let mut best_axis = 0;
    let mut best_margin = f64::INFINITY;
    for axis in 0..D {
        let mut margin_sum = 0.0;
        for sorted in axis_sorts(&entries, axis) {
            for k in m..=(n - m) {
                let (bb1, bb2) = distribution_cost(&sorted, k);
                margin_sum += bb1.margin() + bb2.margin();
            }
        }
        if margin_sum < best_margin {
            best_margin = margin_sum;
            best_axis = axis;
        }
    }

    // Choose the distribution on that axis by minimal overlap, then area.
    let mut best: Option<(f64, f64, Vec<Entry<D>>, usize)> = None;
    for sorted in axis_sorts(&entries, best_axis) {
        for k in m..=(n - m) {
            let (bb1, bb2) = distribution_cost(&sorted, k);
            let overlap = bb1.overlap_volume(&bb2);
            let area = bb1.volume() + bb2.volume();
            let better = match &best {
                None => true,
                Some((bo, ba, _, _)) => overlap < *bo || (overlap == *bo && area < *ba),
            };
            if better {
                best = Some((overlap, area, sorted.clone(), k));
            }
        }
    }
    let (_, _, sorted, k) = best.expect("at least one distribution");
    let g2 = sorted[k..].to_vec();
    let mut g1 = sorted;
    g1.truncate(k);
    (g1, g2)
}

/// Forced reinsertion (R* "Reinsert"): remove the `p` entries whose centers
/// are farthest from the node's MBB center; they are re-inserted by the
/// caller in increasing distance order (the canonical *close reinsert*).
/// Returns `(kept, reinsert)`.
pub fn select_reinsert<const D: usize>(
    entries: Vec<Entry<D>>,
    node_mbb: &Rect<D>,
    p: usize,
) -> (Vec<Entry<D>>, Vec<Entry<D>>) {
    debug_assert!(p < entries.len());
    let center = node_mbb.center();
    let mut keyed: Vec<(f64, Entry<D>)> = entries
        .into_iter()
        .map(|e| (e.mbb.center().distance_sq(&center), e))
        .collect();
    // Ascending distance: the tail is removed, and the removed slice is
    // reversed so callers reinsert nearest-first.
    keyed.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
    let keep_len = keyed.len() - p;
    let mut reinsert: Vec<Entry<D>> = keyed
        .split_off(keep_len)
        .into_iter()
        .map(|(_, e)| e)
        .collect();
    reinsert.reverse();
    let kept = keyed.into_iter().map(|(_, e)| e).collect();
    (kept, reinsert)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::DataId;
    use crate::variants::check_split;
    use cbb_geom::Point;

    fn entry(lx: f64, ly: f64, hx: f64, hy: f64, id: u32) -> Entry<2> {
        Entry::data(Rect::new(Point([lx, ly]), Point([hx, hy])), DataId(id))
    }

    #[test]
    fn leaf_level_minimises_overlap_enlargement() {
        // Two siblings; inserting into the left one would newly overlap the
        // right one, inserting into the right adds no overlap.
        let entries = vec![entry(0.0, 0.0, 4.0, 10.0, 0), entry(5.0, 0.0, 9.0, 10.0, 1)];
        let q = Rect::new(Point([6.0, 4.0]), Point([7.0, 5.0]));
        assert_eq!(choose_child(&entries, &q, true), 1);
        // A rect reaching into entry 1's territory: extending entry 0 to
        // cover it would overlap entry 1, extending entry 1 would not
        // overlap entry 0 — overlap enlargement picks entry 1.
        let crossing = Rect::new(Point([4.5, 4.0]), Point([5.5, 5.0]));
        assert_eq!(choose_child(&entries, &crossing, true), 1);
    }

    #[test]
    fn internal_level_minimises_area_enlargement() {
        let entries = vec![
            entry(0.0, 0.0, 10.0, 10.0, 0),
            entry(100.0, 100.0, 101.0, 101.0, 1),
        ];
        let q = Rect::new(Point([11.0, 11.0]), Point([12.0, 12.0]));
        assert_eq!(choose_child(&entries, &q, false), 0);
    }

    #[test]
    fn split_prefers_low_overlap() {
        // Two vertical strips of boxes: the best split separates them with
        // zero overlap.
        let mut entries = Vec::new();
        for i in 0..6 {
            entries.push(entry(
                0.0,
                i as f64 * 2.0,
                1.0,
                i as f64 * 2.0 + 1.0,
                i as u32,
            ));
            entries.push(entry(
                10.0,
                i as f64 * 2.0,
                11.0,
                i as f64 * 2.0 + 1.0,
                6 + i as u32,
            ));
        }
        let (g1, g2) = split(entries, 4);
        check_split(12, 4, &(g1.clone(), g2.clone()));
        let bb1 = Rect::mbb_of(&g1.iter().map(|e| e.mbb).collect::<Vec<_>>()).unwrap();
        let bb2 = Rect::mbb_of(&g2.iter().map(|e| e.mbb).collect::<Vec<_>>()).unwrap();
        assert_eq!(bb1.overlap_volume(&bb2), 0.0);
    }

    #[test]
    fn split_respects_m_on_skewed_data() {
        let mut entries: Vec<Entry<2>> = (0..11)
            .map(|i| entry(0.0, 0.0, 1.0 + i as f64 * 0.01, 1.0, i))
            .collect();
        entries.push(entry(50.0, 50.0, 51.0, 51.0, 11));
        let s = split(entries, 5);
        check_split(12, 5, &s);
    }

    #[test]
    fn reinsert_selects_farthest() {
        let entries = vec![
            entry(4.0, 4.0, 6.0, 6.0, 0),   // center (5,5) — the middle
            entry(0.0, 0.0, 1.0, 1.0, 1),   // corner
            entry(9.0, 9.0, 10.0, 10.0, 2), // corner
            entry(4.5, 4.5, 5.5, 5.5, 3),   // middle
        ];
        let mbb = Rect::new(Point([0.0, 0.0]), Point([10.0, 10.0]));
        let (kept, reinsert) = select_reinsert(entries, &mbb, 2);
        assert_eq!(kept.len(), 2);
        assert_eq!(reinsert.len(), 2);
        let kept_ids: Vec<u32> = kept.iter().map(|e| e.child.data_id().0).collect();
        assert!(kept_ids.contains(&0));
        assert!(kept_ids.contains(&3));
    }

    #[test]
    fn reinsert_orders_nearest_first() {
        let entries = vec![
            entry(0.0, 5.0, 0.1, 5.1, 0),  // near-ish left
            entry(9.9, 5.0, 10.0, 5.1, 1), // near-ish right
            entry(4.9, 4.9, 5.1, 5.1, 2),  // dead center
        ];
        let mbb = Rect::new(Point([0.0, 0.0]), Point([10.0, 10.0]));
        let (_, reinsert) = select_reinsert(entries, &mbb, 2);
        // Both removed entries are equidistant corners here; just check the
        // dead-center entry was kept and order is deterministic.
        assert_eq!(reinsert.len(), 2);
    }
}
