//! Revised R*-tree algorithms (Beckmann & Seeger — SIGMOD 2009).
//!
//! The RR*-tree replaces the R*-tree's heuristics with perimeter-based goal
//! functions and drops forced reinsertion:
//!
//! * **ChooseSubtree** — if some children fully cover the new rectangle,
//!   take the smallest-volume one (no enlargement, no new overlap).
//!   Otherwise consider candidates in order of *perimeter* enlargement and
//!   pick the one whose inclusion adds the least overlap (perimeter-based
//!   when volumes degenerate), with an early exit when a candidate adds no
//!   overlap at all.
//! * **Split** — the split axis minimises the perimeter sum over candidate
//!   distributions; the distribution minimises a weighted goal: overlap
//!   (perimeter-based for volume-degenerate cases) divided by a Gaussian
//!   balance weight `wf` that favours even splits.
//!
//! This is a behaviourally faithful implementation of the published
//! algorithm; the full paper's asymmetry-adaptive `μ` (which tracks where
//! inserts historically landed in each node) is simplified to the
//! symmetric case `μ = 0`, as DESIGN.md documents.

use cbb_geom::Rect;

use crate::node::Entry;
use crate::variants::Split;

/// Overlap measure that stays informative when boxes degenerate to zero
/// volume (the RR*-tree's `ovlp` function): volume overlap when positive,
/// otherwise the perimeter of the intersection box (scaled down so any
/// positive volume dominates any perimeter-only overlap).
fn ovlp<const D: usize>(a: &Rect<D>, b: &Rect<D>) -> f64 {
    let v = a.overlap_volume(b);
    if v > 0.0 {
        return 1.0 + v;
    }
    match a.intersection(b) {
        Some(i) => {
            let margin = i.margin();
            if margin > 0.0 {
                // Map perimeter overlap into (0, 1).
                margin / (1.0 + margin)
            } else {
                0.0
            }
        }
        None => 0.0,
    }
}

/// ChooseSubtree (Beckmann & Seeger 2009, §4.1).
pub fn choose_child<const D: usize>(entries: &[Entry<D>], rect: &Rect<D>) -> usize {
    // Covering children: pick minimum volume (ties: minimum perimeter).
    let mut cover_best: Option<(f64, f64, usize)> = None;
    for (i, e) in entries.iter().enumerate() {
        if e.mbb.contains_rect(rect) {
            let key = (e.mbb.volume(), e.mbb.margin());
            if cover_best.is_none_or(|(v, p, _)| (key.0, key.1) < (v, p)) {
                cover_best = Some((key.0, key.1, i));
            }
        }
    }
    if let Some((_, _, i)) = cover_best {
        return i;
    }

    // Sort candidate indices by perimeter enlargement (cheap, robust).
    let mut order: Vec<usize> = (0..entries.len()).collect();
    order.sort_by(|&a, &b| {
        entries[a]
            .mbb
            .margin_enlargement(rect)
            .partial_cmp(&entries[b].mbb.margin_enlargement(rect))
            .expect("finite")
    });

    // Evaluate overlap enlargement for candidates in that order, with the
    // published early exit: a candidate adding zero overlap wins outright.
    // The published algorithm bounds the candidate set it fully evaluates;
    // we cap at 16 (first by perimeter enlargement), which in practice is
    // reached only when no zero-overlap candidate exists.
    order.truncate(16);
    let mut best = order[0];
    let mut best_key = (f64::INFINITY, f64::INFINITY);
    for &i in &order {
        let enlarged = entries[i].mbb.union(rect);
        let mut d_ovlp = 0.0;
        for (j, other) in entries.iter().enumerate() {
            if i == j {
                continue;
            }
            d_ovlp += ovlp(&enlarged, &other.mbb) - ovlp(&entries[i].mbb, &other.mbb);
        }
        if d_ovlp <= 0.0 {
            return i; // adds no overlap: take it immediately
        }
        let key = (d_ovlp, entries[i].mbb.enlargement(rect));
        if key < best_key {
            best_key = key;
            best = i;
        }
    }
    best
}

/// Candidate orders per axis (by lower and by upper coordinate).
fn axis_sorts<const D: usize>(entries: &[Entry<D>], axis: usize) -> [Vec<Entry<D>>; 2] {
    let mut by_lo = entries.to_vec();
    by_lo.sort_by(|a, b| {
        a.mbb.lo[axis]
            .partial_cmp(&b.mbb.lo[axis])
            .expect("finite")
            .then(a.mbb.hi[axis].partial_cmp(&b.mbb.hi[axis]).expect("finite"))
    });
    let mut by_hi = entries.to_vec();
    by_hi.sort_by(|a, b| {
        a.mbb.hi[axis]
            .partial_cmp(&b.mbb.hi[axis])
            .expect("finite")
            .then(a.mbb.lo[axis].partial_cmp(&b.mbb.lo[axis]).expect("finite"))
    });
    [by_lo, by_hi]
}

/// Gaussian balance weight `wf` (symmetric case, `μ = 0`, `s = 0.5`): maps
/// split position `k ∈ [m, n−m]` to `ξ ∈ [−1, 1]` and favours balanced
/// distributions.
fn wf(k: usize, m: usize, n: usize) -> f64 {
    let span = (n - 2 * m) as f64;
    let xi = if span > 0.0 {
        2.0 * (k - m) as f64 / span - 1.0
    } else {
        0.0
    };
    let s = 0.5;
    let sigma: f64 = s;
    (-(xi * xi) / (2.0 * sigma * sigma)).exp()
}

/// RR* split: perimeter-driven axis choice, weighted-overlap distribution
/// choice.
pub fn split<const D: usize>(entries: Vec<Entry<D>>, m: usize) -> Split<D> {
    let n = entries.len();
    debug_assert!(n >= 2 * m);

    // Split axis: minimal perimeter sum over all distributions.
    let mut best_axis = 0;
    let mut best_perim = f64::INFINITY;
    for axis in 0..D {
        let mut perim_sum = 0.0;
        for sorted in axis_sorts(&entries, axis) {
            for k in m..=(n - m) {
                let bb1 = Rect::mbb_of(&sorted[..k].iter().map(|e| e.mbb).collect::<Vec<_>>())
                    .expect("k ≥ 1");
                let bb2 = Rect::mbb_of(&sorted[k..].iter().map(|e| e.mbb).collect::<Vec<_>>())
                    .expect("k < n");
                perim_sum += bb1.margin() + bb2.margin();
            }
        }
        if perim_sum < best_perim {
            best_perim = perim_sum;
            best_axis = axis;
        }
    }

    // Distribution: minimise ovlp/wf; among overlap-free candidates,
    // minimise perimeter (maximise wf as tiebreak).
    let mut best: Option<(bool, f64, Vec<Entry<D>>, usize)> = None;
    for sorted in axis_sorts(&entries, best_axis) {
        for k in m..=(n - m) {
            let bb1 = Rect::mbb_of(&sorted[..k].iter().map(|e| e.mbb).collect::<Vec<_>>())
                .expect("k ≥ 1");
            let bb2 = Rect::mbb_of(&sorted[k..].iter().map(|e| e.mbb).collect::<Vec<_>>())
                .expect("k < n");
            let o = ovlp(&bb1, &bb2);
            let weight = wf(k, m, n);
            let (free, goal) = if o == 0.0 {
                // Overlap-free: prefer small perimeter, boosted by balance.
                (true, (bb1.margin() + bb2.margin()) / weight)
            } else {
                (false, o / weight)
            };
            let better = match &best {
                None => true,
                Some((bfree, bgoal, _, _)) => {
                    // Overlap-free distributions always beat overlapping.
                    (free && !bfree) || (free == *bfree && goal < *bgoal)
                }
            };
            if better {
                best = Some((free, goal, sorted.clone(), k));
            }
        }
    }
    let (_, _, sorted, k) = best.expect("at least one distribution");
    let g2 = sorted[k..].to_vec();
    let mut g1 = sorted;
    g1.truncate(k);
    (g1, g2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::DataId;
    use crate::variants::check_split;
    use cbb_geom::Point;

    fn entry(lx: f64, ly: f64, hx: f64, hy: f64, id: u32) -> Entry<2> {
        Entry::data(Rect::new(Point([lx, ly]), Point([hx, hy])), DataId(id))
    }

    #[test]
    fn covering_child_wins() {
        let entries = vec![
            entry(0.0, 0.0, 20.0, 20.0, 0), // big cover
            entry(2.0, 2.0, 8.0, 8.0, 1),   // small cover
            entry(30.0, 30.0, 40.0, 40.0, 2),
        ];
        let q = Rect::new(Point([3.0, 3.0]), Point([4.0, 4.0]));
        // Both 0 and 1 cover; the smaller (1) wins.
        assert_eq!(choose_child(&entries, &q), 1);
    }

    #[test]
    fn zero_overlap_candidate_early_exit() {
        let entries = vec![
            entry(0.0, 0.0, 4.0, 4.0, 0),
            entry(10.0, 10.0, 14.0, 14.0, 1),
        ];
        // Near the second, far from the first: extending the second adds
        // no overlap.
        let q = Rect::new(Point([15.0, 15.0]), Point([16.0, 16.0]));
        assert_eq!(choose_child(&entries, &q), 1);
    }

    #[test]
    fn overlap_aware_choice() {
        // Three children in a row; a rect between 0 and 1 such that
        // extending 2 (far) is never chosen, and the chosen child adds the
        // least overlap.
        let entries = vec![
            entry(0.0, 0.0, 4.0, 10.0, 0),
            entry(6.0, 0.0, 10.0, 10.0, 1),
            entry(20.0, 0.0, 24.0, 10.0, 2),
        ];
        let q = Rect::new(Point([4.5, 4.0]), Point([5.0, 5.0]));
        let c = choose_child(&entries, &q);
        assert!(c == 0 || c == 1);
    }

    #[test]
    fn split_balanced_and_low_overlap() {
        let mut entries = Vec::new();
        for i in 0..8 {
            entries.push(entry(
                i as f64 * 3.0,
                0.0,
                i as f64 * 3.0 + 2.0,
                2.0,
                i as u32,
            ));
        }
        let s = split(entries, 3);
        check_split(8, 3, &s);
        let bb1 = Rect::mbb_of(&s.0.iter().map(|e| e.mbb).collect::<Vec<_>>()).unwrap();
        let bb2 = Rect::mbb_of(&s.1.iter().map(|e| e.mbb).collect::<Vec<_>>()).unwrap();
        assert_eq!(bb1.overlap_volume(&bb2), 0.0, "row of boxes splits cleanly");
        // The Gaussian weight favours the balanced 4/4 split here.
        assert_eq!(s.0.len(), 4);
    }

    #[test]
    fn split_handles_degenerate_volumes() {
        // Zero-volume entries (points): the perimeter-based ovlp must still
        // discriminate and the split must not panic.
        let entries: Vec<Entry<2>> = (0..10)
            .map(|i| {
                let x = i as f64;
                entry(x, x, x, x, i as u32)
            })
            .collect();
        let s = split(entries, 4);
        check_split(10, 4, &s);
    }

    #[test]
    fn wf_is_symmetric_and_peaks_at_balance() {
        let (m, n) = (3, 12);
        let mid = wf(6, m, n);
        assert!(wf(3, m, n) < mid);
        assert!(wf(9, m, n) < mid);
        assert!((wf(4, m, n) - wf(8, m, n)).abs() < 1e-12);
        assert_eq!(mid, 1.0);
    }

    #[test]
    fn ovlp_prioritises_volume_over_perimeter() {
        let a = Rect::new(Point([0.0, 0.0]), Point([4.0, 4.0]));
        let b = Rect::new(Point([2.0, 2.0]), Point([6.0, 6.0])); // volume overlap
        let c = Rect::new(Point([4.0, 0.0]), Point([8.0, 4.0])); // edge contact
        let d = Rect::new(Point([10.0, 10.0]), Point([12.0, 12.0])); // disjoint
        assert!(ovlp(&a, &b) > ovlp(&a, &c));
        assert!(ovlp(&a, &c) > ovlp(&a, &d));
        assert_eq!(ovlp(&a, &d), 0.0);
    }
}
