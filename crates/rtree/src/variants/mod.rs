//! Variant-specific insertion algorithms: choose-subtree and node split.
//!
//! Each submodule implements one published algorithm family over plain
//! entry slices, decoupled from the arena so the policies are unit-testable
//! in isolation. The [`crate::tree::RTree`] dispatches on
//! [`crate::config::Variant`].

pub mod quadratic;
pub mod rrstar;
pub mod rstar;

use crate::node::Entry;

/// A split of a node's entries into two groups, each respecting the
/// minimum fill `m`.
pub type Split<const D: usize> = (Vec<Entry<D>>, Vec<Entry<D>>);

/// Debug helper: assert a split respects `m` and preserves all entries.
#[cfg(test)]
pub(crate) fn check_split<const D: usize>(input_len: usize, m: usize, split: &Split<D>) {
    assert_eq!(
        split.0.len() + split.1.len(),
        input_len,
        "entries lost in split"
    );
    assert!(
        split.0.len() >= m,
        "group 1 below m: {} < {m}",
        split.0.len()
    );
    assert!(
        split.1.len() >= m,
        "group 2 below m: {} < {m}",
        split.1.len()
    );
}
