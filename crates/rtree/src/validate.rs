//! Structural invariant checking — used pervasively in tests and available
//! to applications for post-update auditing.

use std::collections::HashSet;

use crate::node::{Child, NodeId};
use crate::tree::RTree;

impl<const D: usize> RTree<D> {
    /// Verify every structural invariant; returns a description of the
    /// first violation found.
    ///
    /// Checked invariants:
    /// 1. parent entry MBBs equal their child node's cached MBB;
    /// 2. cached MBBs equal the union of entry MBBs;
    /// 3. child levels are exactly `parent.level − 1`; leaves hold data;
    /// 4. every non-root node has between `m` and `M` entries;
    /// 5. each node is referenced at most once (true tree);
    /// 6. the number of reachable data entries equals `len()`.
    pub fn validate(&self) -> Result<(), String> {
        if self.is_empty() {
            return Ok(());
        }
        let mut seen: HashSet<NodeId> = HashSet::new();
        let mut data_count = 0usize;
        self.validate_node(self.root_id(), None, &mut seen, &mut data_count)?;
        if data_count != self.len() {
            return Err(format!(
                "len() = {} but {} data entries reachable",
                self.len(),
                data_count
            ));
        }
        Ok(())
    }

    fn validate_node(
        &self,
        id: NodeId,
        expected_level: Option<u32>,
        seen: &mut HashSet<NodeId>,
        data_count: &mut usize,
    ) -> Result<(), String> {
        if !seen.insert(id) {
            return Err(format!("{id:?} referenced more than once"));
        }
        let node = self.node(id);
        if let Some(lvl) = expected_level {
            if node.level != lvl {
                return Err(format!(
                    "{id:?} at level {} but parent expects {lvl}",
                    node.level
                ));
            }
        }
        let is_root = id == self.root_id();
        if node.entries.is_empty() && !is_root {
            return Err(format!("non-root {id:?} is empty"));
        }
        if !is_root && node.entries.len() < self.config.min_entries {
            return Err(format!(
                "{id:?} underfull: {} < m = {}",
                node.entries.len(),
                self.config.min_entries
            ));
        }
        if node.entries.len() > self.config.max_entries {
            return Err(format!(
                "{id:?} overfull: {} > M = {}",
                node.entries.len(),
                self.config.max_entries
            ));
        }
        // Cached MBB must equal the union of entries.
        if !node.entries.is_empty() {
            let mut union = node.entries[0].mbb;
            for e in &node.entries[1..] {
                union = union.union(&e.mbb);
            }
            if union != node.mbb {
                return Err(format!(
                    "{id:?} cached MBB {:?} != entry union {:?}",
                    node.mbb, union
                ));
            }
        }
        for e in &node.entries {
            match e.child {
                Child::Data(_) => {
                    if !node.is_leaf() {
                        return Err(format!("directory {id:?} holds a data entry"));
                    }
                    *data_count += 1;
                }
                Child::Node(child) => {
                    if node.is_leaf() {
                        return Err(format!("leaf {id:?} holds a node entry"));
                    }
                    let child_node = self.node(child);
                    if child_node.mbb != e.mbb {
                        return Err(format!(
                            "entry MBB for {child:?} in {id:?} is stale: {:?} vs {:?}",
                            e.mbb, child_node.mbb
                        ));
                    }
                    self.validate_node(child, Some(node.level - 1), seen, data_count)?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::config::{TreeConfig, Variant};
    use crate::node::DataId;
    use crate::tree::RTree;
    use cbb_geom::{Point, Rect};

    #[test]
    fn empty_tree_is_valid() {
        for variant in Variant::ALL {
            let tree: RTree<2> = RTree::new(TreeConfig::tiny(variant));
            tree.validate().unwrap();
        }
    }

    #[test]
    fn single_insert_valid() {
        let mut tree: RTree<2> = RTree::new(TreeConfig::tiny(Variant::Quadratic));
        tree.insert(Rect::new(Point([0.0, 0.0]), Point([1.0, 1.0])), DataId(0));
        tree.validate().unwrap();
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.height(), 1);
    }
}
