//! Per-node quality metrics: overlap and dead space (Figure 1a/1b and the
//! denominators of Figure 10).

use cbb_geom::{dead_space_fraction, union_volume, Rect};

use crate::node::Node;
use crate::tree::RTree;

/// Fraction of a node's volume covered by **two or more** of its children
/// (Figure 1a's per-node overlap measure). 0 for degenerate nodes.
pub fn node_overlap_fraction<const D: usize>(node: &Node<D>) -> f64 {
    let vol = node.mbb.volume();
    if vol <= 0.0 || node.entries.len() < 2 {
        return 0.0;
    }
    // The overlapped region is the union of all pairwise intersections.
    let mut pair_boxes: Vec<Rect<D>> = Vec::new();
    for i in 0..node.entries.len() {
        for j in (i + 1)..node.entries.len() {
            if let Some(b) = node.entries[i].mbb.intersection(&node.entries[j].mbb) {
                if b.volume() > 0.0 {
                    pair_boxes.push(b);
                }
            }
        }
    }
    (union_volume(&node.mbb, &pair_boxes) / vol).clamp(0.0, 1.0)
}

/// Fraction of a node's volume not covered by any child (Definition 1 /
/// Figure 1b). 0 for degenerate nodes.
pub fn node_dead_space<const D: usize>(node: &Node<D>) -> f64 {
    let rects = node.entry_rects();
    dead_space_fraction(&node.mbb, &rects)
}

/// Which nodes an aggregate runs over.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeScope {
    /// Every node in the tree.
    All,
    /// Leaves only (level 0) — where most dead space lives.
    Leaves,
    /// Directory nodes only (the Figure 1a population).
    Internal,
}

impl NodeScope {
    fn matches<const D: usize>(self, node: &Node<D>) -> bool {
        match self {
            NodeScope::All => true,
            NodeScope::Leaves => node.is_leaf(),
            NodeScope::Internal => !node.is_leaf(),
        }
    }
}

/// Average of `f` over the nodes in `scope`; `None` when no node matches.
pub fn average_over_nodes<const D: usize>(
    tree: &RTree<D>,
    scope: NodeScope,
    mut f: impl FnMut(&Node<D>) -> f64,
) -> Option<f64> {
    let mut sum = 0.0;
    let mut count = 0usize;
    for (_, node) in tree.iter_nodes() {
        if scope.matches(node) && !node.entries.is_empty() {
            sum += f(node);
            count += 1;
        }
    }
    if count == 0 {
        None
    } else {
        Some(sum / count as f64)
    }
}

/// Average per-node overlap fraction (Figure 1a; paper uses internal
/// nodes).
pub fn avg_overlap<const D: usize>(tree: &RTree<D>, scope: NodeScope) -> Option<f64> {
    average_over_nodes(tree, scope, node_overlap_fraction)
}

/// Average per-node dead-space fraction (Figure 1b / Figure 10 bars).
pub fn avg_dead_space<const D: usize>(tree: &RTree<D>, scope: NodeScope) -> Option<f64> {
    average_over_nodes(tree, scope, node_dead_space)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{TreeConfig, Variant};
    use crate::node::{DataId, Entry};
    use cbb_geom::Point;

    fn r2(lx: f64, ly: f64, hx: f64, hy: f64) -> Rect<2> {
        Rect::new(Point([lx, ly]), Point([hx, hy]))
    }

    fn leaf_with(rects: &[Rect<2>]) -> Node<2> {
        let mut n = Node::new(0);
        for (i, r) in rects.iter().enumerate() {
            n.entries.push(Entry::data(*r, DataId(i as u32)));
        }
        n.recompute_mbb();
        n
    }

    #[test]
    fn overlap_fraction_of_disjoint_children_is_zero() {
        let n = leaf_with(&[r2(0.0, 0.0, 1.0, 1.0), r2(2.0, 2.0, 3.0, 3.0)]);
        assert_eq!(node_overlap_fraction(&n), 0.0);
    }

    #[test]
    fn overlap_fraction_of_identical_children_is_full_child_area() {
        // Two identical children inside their union: overlap area = child
        // area = node area.
        let n = leaf_with(&[r2(0.0, 0.0, 2.0, 2.0), r2(0.0, 0.0, 2.0, 2.0)]);
        assert!((node_overlap_fraction(&n) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_overlap_measured_exactly() {
        // Node [0,3]×[0,2]: children [0,2]² and [1,3]×[0,2] overlap on
        // [1,2]×[0,2] = 2 of 6.
        let n = leaf_with(&[r2(0.0, 0.0, 2.0, 2.0), r2(1.0, 0.0, 3.0, 2.0)]);
        assert!((node_overlap_fraction(&n) - 2.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn dead_space_of_sparse_node() {
        // Two unit boxes in the corners of a 10×10 node: 98 % dead.
        let n = leaf_with(&[r2(0.0, 0.0, 1.0, 1.0), r2(9.0, 9.0, 10.0, 10.0)]);
        assert!((node_dead_space(&n) - 0.98).abs() < 1e-9);
    }

    #[test]
    fn averages_respect_scope() {
        let mut tree: RTree<2> = RTree::new(TreeConfig::tiny(Variant::Quadratic));
        for i in 0..100 {
            let x = (i % 10) as f64 * 5.0;
            let y = (i / 10) as f64 * 5.0;
            tree.insert(r2(x, y, x + 1.0, y + 1.0), DataId(i));
        }
        assert!(tree.height() > 1, "need internal nodes for the test");
        let all = avg_dead_space(&tree, NodeScope::All).unwrap();
        let leaves = avg_dead_space(&tree, NodeScope::Leaves).unwrap();
        let internal = avg_dead_space(&tree, NodeScope::Internal).unwrap();
        for v in [all, leaves, internal] {
            assert!((0.0..=1.0).contains(&v));
        }
        // Sparse unit boxes ⇒ leaves are mostly dead space.
        assert!(leaves > 0.5);
        let ovl = avg_overlap(&tree, NodeScope::Internal).unwrap();
        assert!((0.0..=1.0).contains(&ovl));
    }
}
