//! Access accounting — the paper's I/O metric.
//!
//! Following the paper (and the disk-based indexing literature it cites),
//! internal nodes are assumed memory-resident and **leaf accesses** are the
//! I/O cost. The stats also record which leaf accesses *contributed* at
//! least one result — the numerator of the Figure 1c optimality ratio.

use std::iter::Sum;
use std::ops::AddAssign;

/// Counters collected by instrumented traversals.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AccessStats {
    /// Leaf nodes read (the I/O metric).
    pub leaf_accesses: u64,
    /// Leaf nodes read that contained ≥ 1 result object ("useful" I/Os).
    pub contributing_leaf_accesses: u64,
    /// Internal (directory) nodes visited.
    pub internal_accesses: u64,
    /// Result objects produced.
    pub results: u64,
    /// Clip-point dominance comparisons performed (Algorithm 2, line 4).
    pub clip_tests: u64,
    /// Subtree visits avoided because a clip point pruned the recursion.
    pub clip_prunes: u64,
    /// Rectangle–rectangle intersection tests performed against entry
    /// MBBs (leaf and directory levels alike) — the machine-independent
    /// work unit that makes index traversals comparable to scan-based
    /// join kernels.
    pub overlap_tests: u64,
}

impl AccessStats {
    /// Zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merge counters from another traversal.
    pub fn absorb(&mut self, other: &AccessStats) {
        self.leaf_accesses += other.leaf_accesses;
        self.contributing_leaf_accesses += other.contributing_leaf_accesses;
        self.internal_accesses += other.internal_accesses;
        self.results += other.results;
        self.clip_tests += other.clip_tests;
        self.clip_prunes += other.clip_prunes;
        self.overlap_tests += other.overlap_tests;
    }

    /// Fraction of leaf accesses that contributed results (Figure 1c),
    /// `None` when no leaf was accessed.
    pub fn leaf_optimality(&self) -> Option<f64> {
        if self.leaf_accesses == 0 {
            None
        } else {
            Some(self.contributing_leaf_accesses as f64 / self.leaf_accesses as f64)
        }
    }

    /// Merge many partial stats (e.g. per-worker counters).
    pub fn sum<'a>(parts: impl IntoIterator<Item = &'a AccessStats>) -> AccessStats {
        parts.into_iter().copied().sum()
    }

    /// Every counter as a `(stable name, value)` pair — the bridge into
    /// telemetry layers without this crate depending on them.
    pub fn fields(&self) -> [(&'static str, u64); 7] {
        [
            ("leaf_accesses", self.leaf_accesses),
            (
                "contributing_leaf_accesses",
                self.contributing_leaf_accesses,
            ),
            ("internal_accesses", self.internal_accesses),
            ("results", self.results),
            ("clip_tests", self.clip_tests),
            ("clip_prunes", self.clip_prunes),
            ("overlap_tests", self.overlap_tests),
        ]
    }
}

impl AddAssign for AccessStats {
    fn add_assign(&mut self, other: AccessStats) {
        self.absorb(&other);
    }
}

impl AddAssign<&AccessStats> for AccessStats {
    fn add_assign(&mut self, other: &AccessStats) {
        self.absorb(other);
    }
}

impl Sum for AccessStats {
    fn sum<I: Iterator<Item = AccessStats>>(iter: I) -> AccessStats {
        iter.fold(AccessStats::default(), |mut acc, s| {
            acc += s;
            acc
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates() {
        let mut a = AccessStats::new();
        let b = AccessStats {
            leaf_accesses: 3,
            contributing_leaf_accesses: 2,
            internal_accesses: 1,
            results: 5,
            clip_tests: 7,
            clip_prunes: 1,
            overlap_tests: 4,
        };
        a.absorb(&b);
        a.absorb(&b);
        assert_eq!(a.leaf_accesses, 6);
        assert_eq!(a.results, 10);
        assert_eq!(a.clip_prunes, 2);
        assert_eq!(a.overlap_tests, 8);
    }

    #[test]
    fn optimality_ratio() {
        let s = AccessStats {
            leaf_accesses: 4,
            contributing_leaf_accesses: 1,
            ..Default::default()
        };
        assert_eq!(s.leaf_optimality(), Some(0.25));
        assert_eq!(AccessStats::new().leaf_optimality(), None);
    }
}
