//! Tree configuration: variant choice and node capacities.

use cbb_geom::Rect;

/// The R-tree variants evaluated in the paper (§V-A).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Guttman's original R-tree with the quadratic split ("QR-tree").
    Quadratic,
    /// Hilbert R-tree ("HR-tree"): Hilbert-sort bulk loading, dynamic
    /// inserts ordered by Hilbert value.
    Hilbert,
    /// R*-tree (Beckmann, Kriegel, Schneider, Seeger 1990).
    RStar,
    /// Revised R*-tree (Beckmann & Seeger 2009).
    RRStar,
}

impl Variant {
    /// All four variants, in the paper's presentation order.
    pub const ALL: [Variant; 4] = [
        Variant::Quadratic,
        Variant::Hilbert,
        Variant::RStar,
        Variant::RRStar,
    ];

    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Quadratic => "QR-tree",
            Variant::Hilbert => "HR-tree",
            Variant::RStar => "R*-tree",
            Variant::RRStar => "RR*-tree",
        }
    }
}

/// Size of a simulated disk page in bytes (the benchmark default).
pub const PAGE_SIZE: usize = 4096;

/// Per-page header bytes (level, entry count, padding) in the Figure 4
/// physical layout.
pub const NODE_HEADER_BYTES: usize = 16;

/// Bytes per node entry for dimensionality `d`: an MBB (2·d coordinates)
/// plus a 4-byte child pointer / object id.
pub const fn entry_bytes(d: usize) -> usize {
    2 * d * std::mem::size_of::<f64>() + 4
}

/// Node capacities and variant selection.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TreeConfig<const D: usize> {
    /// Variant algorithms to use for insertion and splitting.
    pub variant: Variant,
    /// Maximum entries per node (`M`).
    pub max_entries: usize,
    /// Minimum entries per node (`m`), `2 ≤ m ≤ M/2`.
    pub min_entries: usize,
    /// Fraction of entries force-reinserted on first overflow per level
    /// (R*-tree only; the canonical 30 %).
    pub reinsert_fraction: f64,
    /// World bounds used to discretise coordinates for the Hilbert curve.
    /// When `None`, bulk loading derives them from the data and dynamic
    /// inserts clamp to the bounds seen so far.
    pub world: Option<Rect<D>>,
}

impl<const D: usize> TreeConfig<D> {
    /// Paper-faithful configuration: `M` from a 4 KiB page
    /// (113 entries in 2-d, 78 in 3-d), `m = 0.4·M` for QR/HR/R\* and
    /// `m = 0.2·M` for RR\* (per Beckmann & Seeger 2009).
    pub fn paper_default(variant: Variant) -> Self {
        let max_entries = (PAGE_SIZE - NODE_HEADER_BYTES) / entry_bytes(D);
        let min_fraction = match variant {
            Variant::RRStar => 0.2,
            _ => 0.4,
        };
        let min_entries = ((max_entries as f64 * min_fraction) as usize).max(2);
        TreeConfig {
            variant,
            max_entries,
            min_entries,
            reinsert_fraction: 0.3,
            world: None,
        }
    }

    /// Small capacities for unit tests and illustrations.
    pub fn tiny(variant: Variant) -> Self {
        TreeConfig {
            variant,
            max_entries: 8,
            min_entries: 3,
            reinsert_fraction: 0.3,
            world: None,
        }
    }

    /// Override capacities (`m` clamped into `[2, M/2]`).
    pub fn with_capacity(mut self, max_entries: usize, min_entries: usize) -> Self {
        assert!(max_entries >= 4, "M must be at least 4");
        self.max_entries = max_entries;
        self.min_entries = min_entries.clamp(2, max_entries / 2);
        self
    }

    /// Set explicit world bounds (Hilbert discretisation grid).
    pub fn with_world(mut self, world: Rect<D>) -> Self {
        self.world = Some(world);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_capacities_match_page_math() {
        let c2 = TreeConfig::<2>::paper_default(Variant::RStar);
        assert_eq!(c2.max_entries, (4096 - 16) / 36); // 113
        assert_eq!(c2.max_entries, 113);
        assert_eq!(c2.min_entries, 45); // 0.4 · 113

        let c3 = TreeConfig::<3>::paper_default(Variant::RStar);
        assert_eq!(c3.max_entries, (4096 - 16) / 52); // 78
        assert_eq!(c3.max_entries, 78);

        let rr = TreeConfig::<2>::paper_default(Variant::RRStar);
        assert_eq!(rr.min_entries, 22); // 0.2 · 113
    }

    #[test]
    fn capacity_override_clamps_m() {
        let c = TreeConfig::<2>::tiny(Variant::Quadratic).with_capacity(10, 9);
        assert_eq!(c.min_entries, 5);
        let c = TreeConfig::<2>::tiny(Variant::Quadratic).with_capacity(10, 1);
        assert_eq!(c.min_entries, 2);
    }

    #[test]
    fn labels() {
        assert_eq!(Variant::Quadratic.label(), "QR-tree");
        assert_eq!(Variant::Hilbert.label(), "HR-tree");
        assert_eq!(Variant::RStar.label(), "R*-tree");
        assert_eq!(Variant::RRStar.label(), "RR*-tree");
        assert_eq!(Variant::ALL.len(), 4);
    }

    #[test]
    fn entry_bytes_formula() {
        assert_eq!(entry_bytes(2), 36);
        assert_eq!(entry_bytes(3), 52);
    }
}
