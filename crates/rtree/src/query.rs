//! Instrumented range and k-nearest-neighbour queries over the base
//! tree, plus the clip-aware kNN of [`ClippedRTree`].
//!
//! kNN is the classic best-first (MINDIST-ordered) search of Hjaltason &
//! Samet: a priority queue holds nodes and objects keyed by their squared
//! minimum distance to the query point, and the search stops once the
//! next queue entry is farther than the current k-th best.
//!
//! Clip points tighten that search: the clip regions are dead space, so
//! a node's MINDIST can be raised from the distance to its MBB to the
//! distance to its *live* remainder
//! ([`cbb_core::clipped_min_dist_sq`]). This matters exactly in corner
//! regions — a probe outside a clipped corner sees the node pushed away
//! and skips it once k candidates are closer. Answers are identical to
//! the base-tree search (the bound is a true lower bound); only the
//! visit order and the access counters improve.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use cbb_core::clipped_min_dist_sq;
use cbb_geom::{Point, Rect};

use crate::clipped::ClippedRTree;
use crate::node::{Child, DataId, NodeId};
use crate::stats::AccessStats;
use crate::tree::RTree;

/// A kNN answer entry: the object and its squared minimum distance to
/// the query point (squared to stay exact — no square root is taken
/// anywhere in the search).
pub type Neighbor = (DataId, f64);

/// What a best-first queue entry points at.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Target {
    Node(NodeId),
    Object(DataId),
}

/// Best-first queue entry ordered by (distance, target) — the target
/// tie-break makes the pop order (and therefore the access counters)
/// deterministic even among equidistant entries.
#[derive(Clone, Copy, Debug)]
struct QueueEntry {
    dist: f64,
    target: Target,
}

impl QueueEntry {
    /// Sort key: distance first, then objects before nodes, then id —
    /// a total order (distances come from finite MBBs).
    fn key(&self) -> (f64, u8, u32) {
        match self.target {
            Target::Object(id) => (self.dist, 0, id.0),
            Target::Node(id) => (self.dist, 1, id.0),
        }
    }
}

impl PartialEq for QueueEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for QueueEntry {}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, the search wants min-first.
        let (a, b) = (self.key(), other.key());
        b.0.total_cmp(&a.0)
            .then_with(|| b.1.cmp(&a.1))
            .then_with(|| b.2.cmp(&a.2))
    }
}

/// Insert `(id, dist)` into `best`, kept sorted by `(dist, id)` and
/// truncated to `k` entries — the running k-nearest set. Shared by the
/// tree-level search here and by merging layers above it (the engine's
/// per-tile kNN), so the tie-break order cannot diverge between them.
pub fn push_neighbor(best: &mut Vec<Neighbor>, k: usize, id: DataId, dist: f64) {
    let pos =
        best.partition_point(|&(bid, bd)| bd.total_cmp(&dist).then_with(|| bid.cmp(&id)).is_lt());
    if pos < k {
        best.insert(pos, (id, dist));
        best.truncate(k);
    }
}

/// The current pruning radius: the k-th best distance once `best` is
/// full, +∞ before that.
fn prune_radius(best: &[Neighbor], k: usize) -> f64 {
    if best.len() == k {
        best[k - 1].1
    } else {
        f64::INFINITY
    }
}

impl<const D: usize> RTree<D> {
    /// All objects whose MBBs intersect `q` (closed-interval semantics).
    pub fn range_query(&self, q: &Rect<D>) -> Vec<DataId> {
        let mut stats = AccessStats::new();
        self.range_query_stats(q, &mut stats)
    }

    /// Range query collecting access statistics (leaf accesses are the
    /// paper's I/O metric; internal nodes are assumed buffered).
    pub fn range_query_stats(&self, q: &Rect<D>, stats: &mut AccessStats) -> Vec<DataId> {
        let mut out = Vec::new();
        if self.is_empty() {
            return out;
        }
        self.query_node(self.root_id(), q, stats, &mut out);
        out
    }

    fn query_node(&self, id: NodeId, q: &Rect<D>, stats: &mut AccessStats, out: &mut Vec<DataId>) {
        let node = self.node(id);
        stats.overlap_tests += node.entries.len() as u64;
        if node.is_leaf() {
            stats.leaf_accesses += 1;
            let before = out.len();
            for e in &node.entries {
                if e.mbb.intersects(q) {
                    out.push(e.child.data_id());
                }
            }
            let found = out.len() - before;
            stats.results += found as u64;
            if found > 0 {
                stats.contributing_leaf_accesses += 1;
            }
        } else {
            stats.internal_accesses += 1;
            for e in &node.entries {
                if e.mbb.intersects(q) {
                    if let Child::Node(child) = e.child {
                        self.query_node(child, q, stats, out);
                    }
                }
            }
        }
    }

    /// The `k` objects nearest to `p` (by minimum distance between `p`
    /// and the object MBB), sorted by `(squared distance, id)`. Ties at
    /// the k-th place resolve to the smaller id, so the answer set is
    /// uniquely defined.
    pub fn knn(&self, p: &Point<D>, k: usize) -> Vec<Neighbor> {
        let mut stats = AccessStats::new();
        self.knn_stats(p, k, &mut stats)
    }

    /// [`Self::knn`] collecting access statistics. Best-first search:
    /// only nodes whose MINDIST beats the current k-th best are opened,
    /// so leaf accesses stay near the optimum for the tree layout.
    pub fn knn_stats(&self, p: &Point<D>, k: usize, stats: &mut AccessStats) -> Vec<Neighbor> {
        let mut best: Vec<Neighbor> = Vec::new();
        if k == 0 || self.is_empty() {
            return best;
        }
        let mut queue = BinaryHeap::new();
        queue.push(QueueEntry {
            dist: 0.0,
            target: Target::Node(self.root_id()),
        });
        while let Some(entry) = queue.pop() {
            // Strict: equidistant entries are still explored so the
            // (dist, id) tie-break stays exact at the k-th place.
            if entry.dist > prune_radius(&best, k) {
                break;
            }
            match entry.target {
                Target::Object(id) => push_neighbor(&mut best, k, id, entry.dist),
                Target::Node(id) => {
                    let node = self.node(id);
                    if node.is_leaf() {
                        stats.leaf_accesses += 1;
                    } else {
                        stats.internal_accesses += 1;
                    }
                    for e in &node.entries {
                        let dist = e.mbb.min_dist_sq(p);
                        // The radius only shrinks, so pruning against
                        // the current one is safe at push time too.
                        if dist > prune_radius(&best, k) {
                            continue;
                        }
                        let target = match e.child {
                            Child::Node(n) => Target::Node(n),
                            Child::Data(d) => Target::Object(d),
                        };
                        queue.push(QueueEntry { dist, target });
                    }
                }
            }
        }
        stats.results += best.len() as u64;
        best
    }
}

impl<const D: usize> ClippedRTree<D> {
    /// Clip-aware exact kNN: identical answers to [`RTree::knn`], with
    /// clip points tightening node MINDISTs (see the module docs).
    pub fn knn(&self, p: &Point<D>, k: usize) -> Vec<Neighbor> {
        let mut stats = AccessStats::new();
        self.knn_stats(p, k, &mut stats)
    }

    /// [`Self::knn`] collecting access statistics. `clip_tests` counts
    /// bound evaluations; `clip_prunes` counts children whose plain
    /// MINDIST would have been enqueued but whose clip-tightened bound
    /// already exceeded the pruning radius.
    pub fn knn_stats(&self, p: &Point<D>, k: usize, stats: &mut AccessStats) -> Vec<Neighbor> {
        let mut best: Vec<Neighbor> = Vec::new();
        if k == 0 || self.tree.is_empty() {
            return best;
        }
        let root = self.tree.root_id();
        let root_clips = self.clips_of(root);
        stats.clip_tests += root_clips.len() as u64;
        let mut queue = BinaryHeap::new();
        queue.push(QueueEntry {
            dist: clipped_min_dist_sq(&self.tree.node(root).mbb, root_clips, p),
            target: Target::Node(root),
        });
        while let Some(entry) = queue.pop() {
            if entry.dist > prune_radius(&best, k) {
                // The search is over: everything still queued is at
                // least this far. Attribute the nodes the *plain*
                // MINDIST would have opened — skipped only thanks to
                // their clip-tightened keys — to `clip_prunes`.
                let radius = prune_radius(&best, k);
                for e in std::iter::once(entry).chain(queue.drain()) {
                    if let Target::Node(id) = e.target {
                        if self.tree.node(id).mbb.min_dist_sq(p) <= radius {
                            stats.clip_prunes += 1;
                        }
                    }
                }
                break;
            }
            match entry.target {
                Target::Object(id) => push_neighbor(&mut best, k, id, entry.dist),
                Target::Node(id) => {
                    let node = self.tree.node(id);
                    if node.is_leaf() {
                        stats.leaf_accesses += 1;
                    } else {
                        stats.internal_accesses += 1;
                    }
                    for e in &node.entries {
                        let plain = e.mbb.min_dist_sq(p);
                        if plain > prune_radius(&best, k) {
                            continue;
                        }
                        match e.child {
                            Child::Data(d) => queue.push(QueueEntry {
                                dist: plain,
                                target: Target::Object(d),
                            }),
                            Child::Node(n) => {
                                let clips = self.clips_of(n);
                                stats.clip_tests += clips.len() as u64;
                                let dist = clipped_min_dist_sq(&e.mbb, clips, p);
                                if dist > prune_radius(&best, k) {
                                    // The plain bound admitted this child;
                                    // only the clip points excluded it.
                                    stats.clip_prunes += 1;
                                    continue;
                                }
                                queue.push(QueueEntry {
                                    dist,
                                    target: Target::Node(n),
                                });
                            }
                        }
                    }
                }
            }
        }
        stats.results += best.len() as u64;
        best
    }
}

impl<const D: usize> RTree<D> {
    /// Collect every `(mbb, id)` stored in the tree (test/debug helper).
    pub fn all_objects(&self) -> Vec<(Rect<D>, DataId)> {
        let mut out = Vec::with_capacity(self.len());
        for (_, node) in self.iter_nodes() {
            if node.is_leaf() {
                for e in &node.entries {
                    out.push((e.mbb, e.child.data_id()));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{TreeConfig, Variant};
    use cbb_geom::Point;

    fn grid_tree(variant: Variant) -> RTree<2> {
        // 10×10 grid of unit boxes.
        let mut tree = RTree::new(TreeConfig::tiny(variant));
        let mut id = 0;
        for x in 0..10 {
            for y in 0..10 {
                let lo = Point([x as f64 * 2.0, y as f64 * 2.0]);
                let r = Rect::new(lo, Point([lo[0] + 1.0, lo[1] + 1.0]));
                tree.insert(r, DataId(id));
                id += 1;
            }
        }
        tree
    }

    #[test]
    fn query_returns_exactly_intersecting_objects() {
        for variant in Variant::ALL {
            let tree = grid_tree(variant);
            // A query covering the 2×2 block of cells at origin.
            let q = Rect::new(Point([0.0, 0.0]), Point([3.0, 3.0]));
            let mut res = tree.range_query(&q);
            res.sort();
            // Cells (0,0), (0,1), (1,0), (1,1) → ids 0, 1, 10, 11.
            assert_eq!(
                res,
                vec![DataId(0), DataId(1), DataId(10), DataId(11)],
                "{variant:?}"
            );
        }
    }

    #[test]
    fn empty_query_region() {
        let tree = grid_tree(Variant::RStar);
        let q = Rect::new(Point([100.0, 100.0]), Point([110.0, 110.0]));
        assert!(tree.range_query(&q).is_empty());
    }

    #[test]
    fn stats_count_accesses() {
        let tree = grid_tree(Variant::Quadratic);
        let mut stats = AccessStats::new();
        let q = Rect::new(Point([0.0, 0.0]), Point([3.0, 3.0]));
        let res = tree.range_query_stats(&q, &mut stats);
        assert_eq!(res.len() as u64, stats.results);
        assert!(stats.leaf_accesses >= 1);
        assert!(stats.contributing_leaf_accesses <= stats.leaf_accesses);
    }

    #[test]
    fn boundary_touch_counts_as_intersection() {
        let tree = grid_tree(Variant::RRStar);
        // Query touching cell (0,0) exactly at its right edge x = 1.
        let q = Rect::new(Point([1.0, 0.0]), Point([1.5, 0.5]));
        let res = tree.range_query(&q);
        assert!(res.contains(&DataId(0)));
    }

    /// Brute-force kNN oracle: sort all objects by (dist², id), take k.
    fn brute_knn(tree: &RTree<2>, p: &Point<2>, k: usize) -> Vec<Neighbor> {
        let mut all: Vec<Neighbor> = tree
            .all_objects()
            .into_iter()
            .map(|(mbb, id)| (id, mbb.min_dist_sq(p)))
            .collect();
        all.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }

    #[test]
    fn knn_matches_brute_force_all_variants() {
        for variant in Variant::ALL {
            let tree = grid_tree(variant);
            for (px, py) in [(0.0, 0.0), (9.7, 9.7), (25.0, 3.0), (-4.0, 40.0)] {
                let p = Point([px, py]);
                for k in [1, 3, 10, 100, 150] {
                    let got = tree.knn(&p, k);
                    assert_eq!(got, brute_knn(&tree, &p, k), "{variant:?} k={k} p={p:?}");
                }
            }
        }
    }

    #[test]
    fn knn_ties_resolve_by_id() {
        // The query point is equidistant from the four cells around it;
        // the k-th place must go to the smaller ids.
        let tree = grid_tree(Variant::RStar);
        let p = Point([1.5, 1.5]); // between cells (0,0), (0,1), (1,0), (1,1)
        let got = tree.knn(&p, 2);
        assert_eq!(got, brute_knn(&tree, &p, 2));
        assert_eq!(got[0].0, DataId(0));
        assert_eq!(got[1].0, DataId(1));
        assert_eq!(got[0].1, got[1].1, "all four cells are equidistant");
    }

    #[test]
    fn knn_edge_cases_and_stats() {
        let tree = grid_tree(Variant::Quadratic);
        let p = Point([5.0, 5.0]);
        assert!(tree.knn(&p, 0).is_empty());
        let empty = RTree::<2>::new(TreeConfig::tiny(Variant::RStar));
        assert!(empty.knn(&p, 3).is_empty());
        // Inside an object: distance zero comes first.
        let inside = Point([0.5, 0.5]);
        assert_eq!(tree.knn(&inside, 1), vec![(DataId(0), 0.0)]);
        // Best-first reads fewer leaves than exhausting the tree.
        let mut stats = AccessStats::new();
        let got = tree.knn_stats(&p, 3, &mut stats);
        assert_eq!(got.len(), 3);
        assert_eq!(stats.results, 3);
        assert!(stats.leaf_accesses >= 1);
        assert!(
            stats.leaf_accesses < tree.leaf_count() as u64,
            "best-first search must not scan every leaf"
        );
    }

    /// Diagonal data: every node's MBB is a square around a stretch of
    /// the diagonal, so both off-diagonal corners are dead space — the
    /// layout clip-aware kNN exists for.
    fn diagonal_clipped(variant: Variant) -> crate::ClippedRTree<2> {
        use cbb_core::{ClipConfig, ClipMethod};
        let mut tree = RTree::new(TreeConfig::tiny(variant));
        for i in 0..150 {
            let t = i as f64 * 15.0;
            let r = Rect::new(Point([t, t]), Point([t + 10.0, t + 10.0]));
            tree.insert(r, DataId(i));
        }
        crate::ClippedRTree::from_tree(tree, ClipConfig::paper_default::<2>(ClipMethod::Stairline))
    }

    #[test]
    fn clipped_knn_matches_base_tree_exactly() {
        for variant in Variant::ALL {
            let clipped = diagonal_clipped(variant);
            // Dense probe sweep: on the diagonal, off in both corner
            // directions, and far outside the data.
            for t in [-150.0, 0.0, 400.0, 1_100.0, 2_400.0] {
                for off in [0.0, 35.0, 220.0, 900.0] {
                    for p in [Point([t + off, t - off]), Point([t - off, t + off])] {
                        for k in [1, 4, 17, 80, 200] {
                            assert_eq!(
                                clipped.knn(&p, k),
                                clipped.tree.knn(&p, k),
                                "{variant:?} p={p:?} k={k}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn clipped_knn_prunes_corner_probes() {
        // Aggregate over off-diagonal probes: the clip-tightened bound
        // must cut node accesses, never add any, and actually fire.
        let clipped = diagonal_clipped(Variant::RStar);
        let mut base_stats = AccessStats::new();
        let mut clip_stats = AccessStats::new();
        for i in 0..60 {
            // Probes sitting in the dead corners beside the diagonal.
            let t = 30.0 * i as f64;
            let off = 80.0 + 9.0 * (i % 7) as f64;
            let p = Point([t + off, t - off]);
            for k in [1, 3, 8] {
                let base = clipped.tree.knn_stats(&p, k, &mut base_stats);
                let clip = clipped.knn_stats(&p, k, &mut clip_stats);
                assert_eq!(base, clip);
            }
        }
        let base_accesses = base_stats.leaf_accesses + base_stats.internal_accesses;
        let clip_accesses = clip_stats.leaf_accesses + clip_stats.internal_accesses;
        assert!(
            clip_accesses <= base_accesses,
            "clip-aware kNN added accesses ({clip_accesses} vs {base_accesses})"
        );
        assert!(
            clip_accesses < base_accesses,
            "corner probes must save accesses ({clip_accesses} vs {base_accesses})"
        );
        assert!(clip_stats.clip_prunes > 0, "the bound never fired");
        assert!(clip_stats.clip_tests > 0);
        assert_eq!(base_stats.results, clip_stats.results);
    }

    #[test]
    fn unclipped_wrapper_knn_equals_base_with_same_stats() {
        let tree = grid_tree(Variant::Quadratic);
        let wrapped = crate::ClippedRTree::unclipped(tree);
        let p = Point([7.3, 11.9]);
        let mut s1 = AccessStats::new();
        let mut s2 = AccessStats::new();
        let a = wrapped.tree.knn_stats(&p, 6, &mut s1);
        let b = wrapped.knn_stats(&p, 6, &mut s2);
        assert_eq!(a, b);
        assert_eq!(s1, s2, "an empty clip table changes nothing");
        assert_eq!(s2.clip_prunes, 0);
    }

    #[test]
    fn clipped_knn_edge_cases() {
        let clipped = diagonal_clipped(Variant::RRStar);
        let p = Point([200.0, 200.0]);
        assert!(clipped.knn(&p, 0).is_empty());
        let empty =
            crate::ClippedRTree::unclipped(RTree::<2>::new(TreeConfig::tiny(Variant::RStar)));
        assert!(empty.knn(&p, 5).is_empty());
        // k beyond the population returns everything, base-identical.
        assert_eq!(clipped.knn(&p, 10_000), clipped.tree.knn(&p, 10_000));
    }

    #[test]
    fn all_objects_roundtrip() {
        let tree = grid_tree(Variant::Hilbert);
        let mut objs = tree.all_objects();
        objs.sort_by_key(|(_, d)| *d);
        assert_eq!(objs.len(), 100);
        assert_eq!(objs[0].1, DataId(0));
    }
}
