//! Instrumented range queries over the base (unclipped) tree.

use cbb_geom::Rect;

use crate::node::{Child, DataId, NodeId};
use crate::stats::AccessStats;
use crate::tree::RTree;

impl<const D: usize> RTree<D> {
    /// All objects whose MBBs intersect `q` (closed-interval semantics).
    pub fn range_query(&self, q: &Rect<D>) -> Vec<DataId> {
        let mut stats = AccessStats::new();
        self.range_query_stats(q, &mut stats)
    }

    /// Range query collecting access statistics (leaf accesses are the
    /// paper's I/O metric; internal nodes are assumed buffered).
    pub fn range_query_stats(&self, q: &Rect<D>, stats: &mut AccessStats) -> Vec<DataId> {
        let mut out = Vec::new();
        if self.is_empty() {
            return out;
        }
        self.query_node(self.root_id(), q, stats, &mut out);
        out
    }

    fn query_node(&self, id: NodeId, q: &Rect<D>, stats: &mut AccessStats, out: &mut Vec<DataId>) {
        let node = self.node(id);
        if node.is_leaf() {
            stats.leaf_accesses += 1;
            let before = out.len();
            for e in &node.entries {
                if e.mbb.intersects(q) {
                    out.push(e.child.data_id());
                }
            }
            let found = out.len() - before;
            stats.results += found as u64;
            if found > 0 {
                stats.contributing_leaf_accesses += 1;
            }
        } else {
            stats.internal_accesses += 1;
            for e in &node.entries {
                if e.mbb.intersects(q) {
                    if let Child::Node(child) = e.child {
                        self.query_node(child, q, stats, out);
                    }
                }
            }
        }
    }

    /// Collect every `(mbb, id)` stored in the tree (test/debug helper).
    pub fn all_objects(&self) -> Vec<(Rect<D>, DataId)> {
        let mut out = Vec::with_capacity(self.len());
        for (_, node) in self.iter_nodes() {
            if node.is_leaf() {
                for e in &node.entries {
                    out.push((e.mbb, e.child.data_id()));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{TreeConfig, Variant};
    use cbb_geom::Point;

    fn grid_tree(variant: Variant) -> RTree<2> {
        // 10×10 grid of unit boxes.
        let mut tree = RTree::new(TreeConfig::tiny(variant));
        let mut id = 0;
        for x in 0..10 {
            for y in 0..10 {
                let lo = Point([x as f64 * 2.0, y as f64 * 2.0]);
                let r = Rect::new(lo, Point([lo[0] + 1.0, lo[1] + 1.0]));
                tree.insert(r, DataId(id));
                id += 1;
            }
        }
        tree
    }

    #[test]
    fn query_returns_exactly_intersecting_objects() {
        for variant in Variant::ALL {
            let tree = grid_tree(variant);
            // A query covering the 2×2 block of cells at origin.
            let q = Rect::new(Point([0.0, 0.0]), Point([3.0, 3.0]));
            let mut res = tree.range_query(&q);
            res.sort();
            // Cells (0,0), (0,1), (1,0), (1,1) → ids 0, 1, 10, 11.
            assert_eq!(
                res,
                vec![DataId(0), DataId(1), DataId(10), DataId(11)],
                "{variant:?}"
            );
        }
    }

    #[test]
    fn empty_query_region() {
        let tree = grid_tree(Variant::RStar);
        let q = Rect::new(Point([100.0, 100.0]), Point([110.0, 110.0]));
        assert!(tree.range_query(&q).is_empty());
    }

    #[test]
    fn stats_count_accesses() {
        let tree = grid_tree(Variant::Quadratic);
        let mut stats = AccessStats::new();
        let q = Rect::new(Point([0.0, 0.0]), Point([3.0, 3.0]));
        let res = tree.range_query_stats(&q, &mut stats);
        assert_eq!(res.len() as u64, stats.results);
        assert!(stats.leaf_accesses >= 1);
        assert!(stats.contributing_leaf_accesses <= stats.leaf_accesses);
    }

    #[test]
    fn boundary_touch_counts_as_intersection() {
        let tree = grid_tree(Variant::RRStar);
        // Query touching cell (0,0) exactly at its right edge x = 1.
        let q = Rect::new(Point([1.0, 0.0]), Point([1.5, 0.5]));
        let res = tree.range_query(&q);
        assert!(res.contains(&DataId(0)));
    }

    #[test]
    fn all_objects_roundtrip() {
        let tree = grid_tree(Variant::Hilbert);
        let mut objs = tree.all_objects();
        objs.sort_by_key(|(_, d)| *d);
        assert_eq!(objs.len(), 100);
        assert_eq!(objs[0].1, DataId(0));
    }
}
