//! Node arena primitives: entries, nodes, and their identifiers.

use cbb_geom::Rect;

/// Identifier of a node in the tree's arena (a page id on disk).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Identifier of a data object referenced from a leaf.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DataId(pub u32);

/// What an entry points at: a child node (directory nodes) or a data
/// object (leaves).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Child {
    /// Child node reference.
    Node(NodeId),
    /// Data object reference.
    Data(DataId),
}

impl Child {
    /// The node id, panicking on data entries (directory-level use only).
    pub fn node_id(self) -> NodeId {
        match self {
            Child::Node(id) => id,
            Child::Data(d) => panic!("expected node child, found data {d:?}"),
        }
    }

    /// The data id, panicking on node entries (leaf-level use only).
    pub fn data_id(self) -> DataId {
        match self {
            Child::Data(id) => id,
            Child::Node(n) => panic!("expected data child, found node {n:?}"),
        }
    }
}

/// A node entry: an MBB plus a child pointer (Figure 4a layout).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Entry<const D: usize> {
    /// Bounding box of the referenced child/object.
    pub mbb: Rect<D>,
    /// The reference itself.
    pub child: Child,
}

impl<const D: usize> Entry<D> {
    /// Leaf entry for a data object.
    pub fn data(mbb: Rect<D>, id: DataId) -> Self {
        Entry {
            mbb,
            child: Child::Data(id),
        }
    }

    /// Directory entry for a child node.
    pub fn node(mbb: Rect<D>, id: NodeId) -> Self {
        Entry {
            mbb,
            child: Child::Node(id),
        }
    }
}

/// An R-tree node. `level == 0` for leaves; the root has the highest level.
///
/// The node caches its own MBB (kept in sync with the parent's entry) and,
/// for the Hilbert variant, its largest Hilbert value (LHV).
#[derive(Clone, Debug)]
pub struct Node<const D: usize> {
    /// 0 = leaf; parents have `level = child.level + 1`.
    pub level: u32,
    /// Cached MBB of all entries (undefined for an empty root).
    pub mbb: Rect<D>,
    /// Entries; between `m` and `M` except transiently and for the root.
    pub entries: Vec<Entry<D>>,
    /// Largest Hilbert value of any data object below (Hilbert variant).
    pub lhv: u64,
}

impl<const D: usize> Node<D> {
    /// Fresh empty node at `level`.
    pub fn new(level: u32) -> Self {
        Node {
            level,
            mbb: Rect::point(cbb_geom::Point::origin()),
            entries: Vec::new(),
            lhv: 0,
        }
    }

    /// Whether this is a leaf.
    pub fn is_leaf(&self) -> bool {
        self.level == 0
    }

    /// Recompute the cached MBB from the entries. No-op (degenerate MBB)
    /// for an empty node.
    pub fn recompute_mbb(&mut self) {
        if let Some(first) = self.entries.first() {
            let mut mbb = first.mbb;
            for e in &self.entries[1..] {
                mbb = mbb.union(&e.mbb);
            }
            self.mbb = mbb;
        }
    }

    /// The MBBs of all entries (what the clipper consumes).
    pub fn entry_rects(&self) -> Vec<Rect<D>> {
        self.entries.iter().map(|e| e.mbb).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbb_geom::Point;

    fn r2(lx: f64, ly: f64, hx: f64, hy: f64) -> Rect<2> {
        Rect::new(Point([lx, ly]), Point([hx, hy]))
    }

    #[test]
    fn child_accessors() {
        assert_eq!(Child::Node(NodeId(3)).node_id(), NodeId(3));
        assert_eq!(Child::Data(DataId(7)).data_id(), DataId(7));
    }

    #[test]
    #[should_panic(expected = "expected node child")]
    fn node_id_panics_on_data() {
        let _ = Child::Data(DataId(0)).node_id();
    }

    #[test]
    fn recompute_mbb_unions_entries() {
        let mut n: Node<2> = Node::new(0);
        n.entries
            .push(Entry::data(r2(0.0, 0.0, 1.0, 1.0), DataId(0)));
        n.entries
            .push(Entry::data(r2(4.0, 2.0, 6.0, 3.0), DataId(1)));
        n.recompute_mbb();
        assert_eq!(n.mbb, r2(0.0, 0.0, 6.0, 3.0));
        assert!(n.is_leaf());
    }

    #[test]
    fn entry_rects_roundtrip() {
        let mut n: Node<2> = Node::new(1);
        n.entries
            .push(Entry::node(r2(0.0, 0.0, 1.0, 1.0), NodeId(1)));
        n.entries
            .push(Entry::node(r2(2.0, 2.0, 3.0, 3.0), NodeId(2)));
        assert_eq!(n.entry_rects().len(), 2);
        assert!(!n.is_leaf());
    }
}
