//! The R-tree proper: an arena of nodes plus variant-dispatched insertion,
//! deletion and bulk loading, with change logging for the CBB maintenance
//! layer (§IV-D).

use cbb_geom::{Point, Rect};

use crate::config::{TreeConfig, Variant};
use crate::hilbert::{hilbert_key_of_rect, DEFAULT_ORDER};
use crate::node::{Child, DataId, Entry, Node, NodeId};
use crate::variants::{quadratic, rrstar, rstar};

/// What happened to a node during an update, ordered by severity. The CBB
/// maintenance layer re-clips `Split` and `MbbChanged` nodes outright and
/// runs the Algorithm 2 validity test for `EntryAdded` (§IV-D).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ChangeKind {
    /// An entry was added without (so far) changing the node's MBB.
    EntryAdded = 0,
    /// The node's MBB changed (grew on insert, shrank on delete/condense).
    MbbChanged = 1,
    /// The node was split, freshly created, or wholesale redistributed.
    Split = 2,
}

/// Record of all node changes caused by one `insert` / `delete` call.
#[derive(Clone, Debug, Default)]
pub struct ChangeLog<const D: usize> {
    kinds: Vec<(NodeId, ChangeKind)>,
    /// Rectangles added to nodes (object MBB for leaves, child MBB for
    /// directory nodes) — inputs to the eager insertion-validity test.
    pub added: Vec<(NodeId, Rect<D>)>,
    /// Nodes deallocated (their auxiliary clip entries must be dropped).
    pub freed: Vec<NodeId>,
}

impl<const D: usize> ChangeLog<D> {
    fn record(&mut self, id: NodeId, kind: ChangeKind) {
        for (nid, k) in self.kinds.iter_mut() {
            if *nid == id {
                if kind > *k {
                    *k = kind;
                }
                return;
            }
        }
        self.kinds.push((id, kind));
    }

    fn record_added(&mut self, id: NodeId, rect: Rect<D>) {
        self.added.push((id, rect));
        self.record(id, ChangeKind::EntryAdded);
    }

    /// Strongest change recorded for `id`, if any.
    pub fn kind_of(&self, id: NodeId) -> Option<ChangeKind> {
        self.kinds.iter().find(|(n, _)| *n == id).map(|(_, k)| *k)
    }

    /// All `(node, strongest-change)` pairs.
    pub fn changes(&self) -> &[(NodeId, ChangeKind)] {
        &self.kinds
    }
}

/// Sentinel level marking a freed arena slot.
const FREED: u32 = u32::MAX;

/// A multi-dimensional R-tree with pluggable variant algorithms.
///
/// Leaves are at level 0; the root is the single node at the highest
/// level. The arena recycles freed slots; `NodeId`s are stable while a
/// node is live (they double as page ids in `cbb-storage`).
#[derive(Clone, Debug)]
pub struct RTree<const D: usize> {
    nodes: Vec<Node<D>>,
    free_list: Vec<NodeId>,
    root: NodeId,
    /// Tree configuration (variant, capacities, world bounds).
    pub config: TreeConfig<D>,
    len: usize,
    /// World bounds for Hilbert keys: fixed from config or grown from data.
    world: Option<Rect<D>>,
    /// Cumulative node constructions (see [`Self::nodes_allocated`]).
    allocated: u64,
}

impl<const D: usize> RTree<D> {
    /// An empty tree (a lone empty leaf as root).
    pub fn new(config: TreeConfig<D>) -> Self {
        let world = config.world;
        RTree {
            nodes: vec![Node::new(0)],
            free_list: Vec::new(),
            root: NodeId(0),
            config,
            len: 0,
            world,
            allocated: 1,
        }
    }

    /// Cumulative count of node constructions over the tree's lifetime
    /// (bulk-load packing, splits, new roots — recycled arena slots
    /// included). Never decreases; the difference across an update batch
    /// is a machine-independent measure of structural build work, which
    /// is what `BENCH_update.json` compares between delta-apply and
    /// rebuild-per-batch.
    pub fn nodes_allocated(&self) -> u64 {
        self.allocated
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree holds no objects.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Root node id.
    pub fn root_id(&self) -> NodeId {
        self.root
    }

    /// Tree height in levels (1 = root is a leaf).
    pub fn height(&self) -> usize {
        self.node(self.root).level as usize + 1
    }

    /// Borrow a node.
    pub fn node(&self, id: NodeId) -> &Node<D> {
        let n = &self.nodes[id.0 as usize];
        debug_assert!(n.level != FREED, "access to freed node {id:?}");
        n
    }

    fn node_mut(&mut self, id: NodeId) -> &mut Node<D> {
        &mut self.nodes[id.0 as usize]
    }

    /// Iterate over all live `(id, node)` pairs.
    pub fn iter_nodes(&self) -> impl Iterator<Item = (NodeId, &Node<D>)> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.level != FREED)
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Number of live nodes.
    pub fn node_count(&self) -> usize {
        self.iter_nodes().count()
    }

    /// Number of live leaf nodes.
    pub fn leaf_count(&self) -> usize {
        self.iter_nodes().filter(|(_, n)| n.is_leaf()).count()
    }

    /// MBB of the whole tree (`None` when empty).
    pub fn bounds(&self) -> Option<Rect<D>> {
        if self.is_empty() {
            None
        } else {
            Some(self.node(self.root).mbb)
        }
    }

    fn alloc(&mut self, node: Node<D>) -> NodeId {
        self.allocated += 1;
        if let Some(id) = self.free_list.pop() {
            self.nodes[id.0 as usize] = node;
            id
        } else {
            let id = NodeId(self.nodes.len() as u32);
            self.nodes.push(node);
            id
        }
    }

    fn free(&mut self, id: NodeId, log: &mut ChangeLog<D>) {
        let n = self.node_mut(id);
        n.level = FREED;
        n.entries = Vec::new();
        self.free_list.push(id);
        log.freed.push(id);
    }

    /// World bounds used for Hilbert keys; grows with data when not fixed.
    fn hilbert_world(&self) -> Rect<D> {
        self.world
            .unwrap_or_else(|| Rect::new(Point::splat(0.0), Point::splat(1.0)))
    }

    fn grow_world(&mut self, rect: &Rect<D>) {
        self.world = Some(match self.world {
            Some(w) => w.union(rect),
            None => *rect,
        });
    }

    /// Hilbert key of a rectangle under the current world bounds.
    pub fn hilbert_key(&self, rect: &Rect<D>) -> u64 {
        hilbert_key_of_rect(rect, &self.hilbert_world(), DEFAULT_ORDER)
    }

    fn refresh_lhv(&mut self, id: NodeId) {
        if self.config.variant != Variant::Hilbert {
            return;
        }
        let world = self.hilbert_world();
        let node = self.node(id);
        let lhv = if node.is_leaf() {
            node.entries
                .iter()
                .map(|e| hilbert_key_of_rect(&e.mbb, &world, DEFAULT_ORDER))
                .max()
                .unwrap_or(0)
        } else {
            node.entries
                .iter()
                .map(|e| self.node(e.child.node_id()).lhv)
                .max()
                .unwrap_or(0)
        };
        self.node_mut(id).lhv = lhv;
    }

    // ------------------------------------------------------------------
    // Insertion
    // ------------------------------------------------------------------

    /// Insert a data object; returns the change log for CBB maintenance.
    pub fn insert(&mut self, rect: Rect<D>, data: DataId) -> ChangeLog<D> {
        assert!(rect.is_finite(), "cannot index non-finite rectangles");
        if self.config.world.is_none() {
            self.grow_world(&rect);
        }
        let mut log = ChangeLog::default();
        let mut reinserted_levels: u64 = 0;
        self.insert_entry(Entry::data(rect, data), 0, &mut log, &mut reinserted_levels);
        self.len += 1;
        log
    }

    /// Insert an entry at `level` (0 = leaf). Used by top-level inserts,
    /// forced reinsertion and delete-condense orphan handling.
    fn insert_entry(
        &mut self,
        entry: Entry<D>,
        level: u32,
        log: &mut ChangeLog<D>,
        reinserted_levels: &mut u64,
    ) {
        let path = self.choose_path(&entry.mbb, level);
        let target = *path.last().expect("path never empty");
        log.record_added(target, entry.mbb);

        // Insert at the Hilbert-sorted position for HR-trees, append
        // otherwise.
        if self.config.variant == Variant::Hilbert {
            let node = self.node(target);
            let world = self.hilbert_world();
            let pos = if node.is_leaf() {
                let key = self.hilbert_key(&entry.mbb);
                node.entries
                    .partition_point(|e| hilbert_key_of_rect(&e.mbb, &world, DEFAULT_ORDER) <= key)
            } else {
                // Directory entries stay ordered by child LHV.
                let child_lhv = self.node(entry.child.node_id()).lhv;
                node.entries
                    .partition_point(|e| self.node(e.child.node_id()).lhv <= child_lhv)
            };
            self.node_mut(target).entries.insert(pos, entry);
        } else {
            self.node_mut(target).entries.push(entry);
        }

        self.adjust_path(&path, log);
        self.handle_overflows(path, log, reinserted_levels);
    }

    /// Walk from the root down to `level`, choosing children per variant.
    fn choose_path(&self, rect: &Rect<D>, level: u32) -> Vec<NodeId> {
        let hkey = if self.config.variant == Variant::Hilbert {
            self.hilbert_key(rect)
        } else {
            0
        };
        let mut path = vec![self.root];
        let mut current = self.root;
        while self.node(current).level > level {
            let node = self.node(current);
            let idx = match self.config.variant {
                Variant::Quadratic => quadratic::choose_child(&node.entries, rect),
                Variant::RStar => rstar::choose_child(&node.entries, rect, node.level == 1),
                Variant::RRStar => rrstar::choose_child(&node.entries, rect),
                Variant::Hilbert => {
                    // First child whose LHV is ≥ the key, else the last.
                    let mut pick = node.entries.len() - 1;
                    for (i, e) in node.entries.iter().enumerate() {
                        if self.node(e.child.node_id()).lhv >= hkey {
                            pick = i;
                            break;
                        }
                    }
                    pick
                }
            };
            current = node.entries[idx].child.node_id();
            path.push(current);
        }
        path
    }

    /// Recompute MBBs (and LHVs) bottom-up along `path`, syncing parent
    /// entries and logging genuine MBB changes.
    ///
    /// A changed child MBB is also recorded as an `EntryAdded(new MBB)` on
    /// the parent: even when the parent's own MBB is unaffected, its clip
    /// points were computed against the old child boxes and may now be
    /// invalid — this is the "x+1'st CBB change" of §IV-D, caught by the
    /// eager validity test.
    fn adjust_path(&mut self, path: &[NodeId], log: &mut ChangeLog<D>) {
        for i in (0..path.len()).rev() {
            let id = path[i];
            let old = self.node(id).mbb;
            self.node_mut(id).recompute_mbb();
            self.refresh_lhv(id);
            let new = self.node(id).mbb;
            let changed = new != old && !self.node(id).entries.is_empty();
            if changed {
                log.record(id, ChangeKind::MbbChanged);
            }
            if i > 0 {
                self.sync_parent_entry(path[i - 1], id);
                if changed {
                    log.record_added(path[i - 1], new);
                }
            }
        }
    }

    /// Copy `child`'s MBB into its entry within `parent`.
    fn sync_parent_entry(&mut self, parent: NodeId, child: NodeId) {
        let mbb = self.node(child).mbb;
        let p = self.node_mut(parent);
        for e in p.entries.iter_mut() {
            if e.child == Child::Node(child) {
                e.mbb = mbb;
                return;
            }
        }
        panic!("{child:?} not found in parent {parent:?}");
    }

    /// Resolve overflows bottom-up along `path`.
    fn handle_overflows(
        &mut self,
        path: Vec<NodeId>,
        log: &mut ChangeLog<D>,
        reinserted_levels: &mut u64,
    ) {
        let mut i = path.len() - 1;
        loop {
            let nid = path[i];
            if self.node(nid).entries.len() <= self.config.max_entries {
                if i == 0 {
                    return;
                }
                i -= 1;
                continue;
            }

            let level = self.node(nid).level;
            let is_root = i == 0;

            // R*: forced reinsertion, once per level per top-level insert.
            if self.config.variant == Variant::RStar
                && !is_root
                && (*reinserted_levels >> level) & 1 == 0
            {
                *reinserted_levels |= 1 << level;
                self.force_reinsert(&path[..=i], log, reinserted_levels);
                return; // recursive inserts resolved any further overflow
            }

            // HR-tree: try redistributing with an adjacent sibling first
            // (the 2-to-3 cooperation policy).
            if self.config.variant == Variant::Hilbert
                && !is_root
                && self.try_hilbert_redistribute(path[i - 1], nid, log)
            {
                i -= 1;
                continue;
            }

            // Split.
            let sibling = self.split_node(nid, log);
            if is_root {
                let level = self.node(nid).level;
                let mut new_root = Node::new(level + 1);
                new_root.entries.push(Entry::node(self.node(nid).mbb, nid));
                new_root
                    .entries
                    .push(Entry::node(self.node(sibling).mbb, sibling));
                new_root.recompute_mbb();
                let root_id = self.alloc(new_root);
                self.refresh_lhv(root_id);
                self.root = root_id;
                log.record(root_id, ChangeKind::Split);
                return;
            }
            let parent = path[i - 1];
            self.sync_parent_entry(parent, nid);
            let sib_entry = Entry::node(self.node(sibling).mbb, sibling);
            if self.config.variant == Variant::Hilbert {
                // Keep parent entries in Hilbert (LHV) order: the sibling
                // holds the upper half of nid's keys, so it goes right
                // after nid.
                let pos = self
                    .node(parent)
                    .entries
                    .iter()
                    .position(|e| e.child == Child::Node(nid))
                    .expect("nid in parent")
                    + 1;
                self.node_mut(parent).entries.insert(pos, sib_entry);
            } else {
                self.node_mut(parent).entries.push(sib_entry);
            }
            self.adjust_path(&path[..i], log);
            i -= 1;
        }
    }

    /// Split `nid` per the variant's algorithm; returns the new sibling id.
    fn split_node(&mut self, nid: NodeId, log: &mut ChangeLog<D>) -> NodeId {
        let level = self.node(nid).level;
        let m = self.config.min_entries;
        let entries = std::mem::take(&mut self.node_mut(nid).entries);
        let (g1, g2) = match self.config.variant {
            Variant::Quadratic => quadratic::split(entries, m),
            Variant::RStar => rstar::split(entries, m),
            Variant::RRStar => rrstar::split(entries, m),
            Variant::Hilbert => {
                // Entries are kept in Hilbert order: cut in the middle.
                let mut g1 = entries;
                let g2 = g1.split_off(g1.len() / 2);
                (g1, g2)
            }
        };
        self.node_mut(nid).entries = g1;
        self.node_mut(nid).recompute_mbb();
        self.refresh_lhv(nid);

        let mut sib = Node::new(level);
        sib.entries = g2;
        sib.recompute_mbb();
        let sib_id = self.alloc(sib);
        self.refresh_lhv(sib_id);

        log.record(nid, ChangeKind::Split);
        log.record(sib_id, ChangeKind::Split);
        sib_id
    }

    /// R* forced reinsertion on the node at the end of `path`.
    fn force_reinsert(
        &mut self,
        path: &[NodeId],
        log: &mut ChangeLog<D>,
        reinserted_levels: &mut u64,
    ) {
        let nid = *path.last().expect("non-empty path");
        let level = self.node(nid).level;
        let entries = std::mem::take(&mut self.node_mut(nid).entries);
        let p = ((entries.len() as f64 * self.config.reinsert_fraction) as usize).max(1);
        let mbb = self.node(nid).mbb;
        let (kept, reinsert) = rstar::select_reinsert(entries, &mbb, p);
        self.node_mut(nid).entries = kept;
        self.adjust_path(path, log);
        for e in reinsert {
            self.insert_entry(e, level, log, reinserted_levels);
        }
    }

    /// HR-tree sibling cooperation: move entries between `nid` and an
    /// adjacent (in Hilbert order) sibling that has slack. Returns whether
    /// redistribution resolved the overflow.
    fn try_hilbert_redistribute(
        &mut self,
        parent: NodeId,
        nid: NodeId,
        log: &mut ChangeLog<D>,
    ) -> bool {
        let idx = self
            .node(parent)
            .entries
            .iter()
            .position(|e| e.child == Child::Node(nid))
            .expect("nid in parent");
        let candidates = [idx.checked_sub(1), idx.checked_add(1)];
        for cand in candidates.into_iter().flatten() {
            if cand >= self.node(parent).entries.len() {
                continue;
            }
            let sib = self.node(parent).entries[cand].child.node_id();
            if self.node(sib).entries.len() + 2 > self.config.max_entries {
                continue; // sibling (nearly) full: cooperation impossible
            }
            // Merge in Hilbert order and split evenly between the two.
            let (first, second) = if cand < idx { (sib, nid) } else { (nid, sib) };
            let mut merged = std::mem::take(&mut self.node_mut(first).entries);
            merged.extend(std::mem::take(&mut self.node_mut(second).entries));
            let half = merged.len() / 2;
            let upper = merged.split_off(half);
            self.node_mut(first).entries = merged;
            self.node_mut(second).entries = upper;
            for id in [first, second] {
                self.node_mut(id).recompute_mbb();
                self.refresh_lhv(id);
                self.sync_parent_entry(parent, id);
                // Wholesale redistribution: the redistributed boxes may
                // span the gap between the two old sibling boxes, possibly
                // invading the parent's clip regions — surface them to the
                // eager validity test.
                log.record(id, ChangeKind::Split);
                let mbb = self.node(id).mbb;
                log.record_added(parent, mbb);
            }
            return true;
        }
        false
    }

    // ------------------------------------------------------------------
    // Deletion
    // ------------------------------------------------------------------

    /// Delete the object `(rect, data)`. Returns the change log, or `None`
    /// when the object is not present.
    pub fn delete(&mut self, rect: &Rect<D>, data: DataId) -> Option<ChangeLog<D>> {
        let path = self.find_leaf(self.root, rect, data)?;
        let mut log = ChangeLog::default();
        let leaf = *path.last().expect("non-empty");
        {
            let node = self.node_mut(leaf);
            let pos = node
                .entries
                .iter()
                .position(|e| e.child == Child::Data(data) && e.mbb == *rect)
                .expect("find_leaf guarantees presence");
            node.entries.remove(pos);
        }

        // Condense: dissolve underfull nodes bottom-up, collect orphans.
        let mut orphans: Vec<(Entry<D>, u32)> = Vec::new();
        for i in (1..path.len()).rev() {
            let nid = path[i];
            if self.node(nid).entries.len() < self.config.min_entries {
                let parent = path[i - 1];
                let level = self.node(nid).level;
                let pos = self
                    .node(parent)
                    .entries
                    .iter()
                    .position(|e| e.child == Child::Node(nid))
                    .expect("child in parent");
                self.node_mut(parent).entries.remove(pos);
                let entries = std::mem::take(&mut self.node_mut(nid).entries);
                orphans.extend(entries.into_iter().map(|e| (e, level)));
                self.free(nid, &mut log);
            }
        }
        let live_prefix: Vec<NodeId> = path
            .iter()
            .copied()
            .filter(|id| self.node_raw_level(*id) != FREED)
            .collect();
        self.adjust_path(&live_prefix, &mut log);

        // Shrink the root while it is an internal node with one child.
        while !self.node(self.root).is_leaf() && self.node(self.root).entries.len() == 1 {
            let child = self.node(self.root).entries[0].child.node_id();
            let old_root = self.root;
            self.root = child;
            self.free(old_root, &mut log);
        }

        self.len -= 1;

        // Reinsert orphans at their original levels.
        let mut reinserted_levels: u64 = 0;
        for (entry, level) in orphans {
            self.insert_entry(entry, level, &mut log, &mut reinserted_levels);
        }
        Some(log)
    }

    fn node_raw_level(&self, id: NodeId) -> u32 {
        self.nodes[id.0 as usize].level
    }

    /// DFS for the leaf containing `(rect, data)`; returns the root→leaf
    /// path.
    fn find_leaf(&self, from: NodeId, rect: &Rect<D>, data: DataId) -> Option<Vec<NodeId>> {
        let node = self.node(from);
        if node.is_leaf() {
            if node
                .entries
                .iter()
                .any(|e| e.child == Child::Data(data) && e.mbb == *rect)
            {
                return Some(vec![from]);
            }
            return None;
        }
        for e in &node.entries {
            if e.mbb.contains_rect(rect) {
                if let Some(mut path) = self.find_leaf(e.child.node_id(), rect, data) {
                    let mut full = vec![from];
                    full.append(&mut path);
                    return Some(full);
                }
            }
        }
        None
    }

    // ------------------------------------------------------------------
    // Bulk loading
    // ------------------------------------------------------------------

    /// Bulk-load a tree. The Hilbert variant packs by Hilbert order (the
    /// HR-tree's native loading); all other variants use STR
    /// (Leutenegger et al. 1997), which the benchmark uses for batch
    /// construction.
    pub fn bulk_load(config: TreeConfig<D>, items: &[(Rect<D>, DataId)]) -> Self {
        let mut tree = RTree::new(config);
        if items.is_empty() {
            return tree;
        }
        let world = items
            .iter()
            .map(|(r, _)| *r)
            .reduce(|a, b| a.union(&b))
            .expect("non-empty");
        if tree.world.is_none() {
            tree.world = Some(world);
        }

        // Capacity per node: fill to 100 % like the benchmark loader.
        let cap = tree.config.max_entries;
        let mut level_entries: Vec<Entry<D>> = match tree.config.variant {
            Variant::Hilbert => {
                let w = tree.hilbert_world();
                let mut keyed: Vec<(u64, &(Rect<D>, DataId))> = items
                    .iter()
                    .map(|it| (hilbert_key_of_rect(&it.0, &w, DEFAULT_ORDER), it))
                    .collect();
                keyed.sort_by_key(|(k, _)| *k);
                keyed
                    .into_iter()
                    .map(|(_, (r, d))| Entry::data(*r, *d))
                    .collect()
            }
            _ => str_order(items, cap),
        };

        // Pack bottom-up.
        let m = tree.config.min_entries;
        let mut level = 0u32;
        loop {
            let mut next: Vec<Entry<D>> = Vec::with_capacity(level_entries.len() / cap + 1);
            for chunk in
                chunk_sizes(level_entries.len(), cap, m)
                    .into_iter()
                    .scan(0usize, |off, size| {
                        let s = *off;
                        *off += size;
                        Some(&level_entries[s..s + size])
                    })
            {
                let mut node = Node::new(level);
                node.entries = chunk.to_vec();
                node.recompute_mbb();
                let id = tree.alloc(node);
                tree.refresh_lhv(id);
                next.push(Entry::node(tree.node(id).mbb, id));
            }
            if next.len() == 1 {
                tree.root = next[0].child.node_id();
                break;
            }
            level_entries = next;
            level += 1;
        }
        // The arena slot 0 created by `new` may be orphaned; recycle it.
        if tree.root != NodeId(0) && tree.nodes[0].entries.is_empty() && tree.nodes[0].level == 0 {
            tree.nodes[0].level = FREED;
            tree.free_list.push(NodeId(0));
        }
        tree.len = items.len();
        tree
    }
}

/// Chunk sizes for packing `n` ordered entries into nodes of capacity
/// `cap` such that every chunk holds at least `m` entries (except a lone
/// chunk smaller than `m`, which becomes an under-full root — allowed).
fn chunk_sizes(n: usize, cap: usize, m: usize) -> Vec<usize> {
    debug_assert!(m <= cap / 2);
    let mut sizes = Vec::with_capacity(n / cap + 2);
    let mut remaining = n;
    while remaining > 0 {
        if remaining <= cap {
            sizes.push(remaining);
            break;
        }
        if remaining < cap + m {
            // Splitting off a full page would leave < m: rebalance the tail
            // into two legal chunks (cap ≥ 2m guarantees both ≥ m).
            sizes.push(remaining - m);
            sizes.push(m);
            break;
        }
        sizes.push(cap);
        remaining -= cap;
    }
    sizes
}

/// STR ordering (Leutenegger et al. 1997): recursively sort by each
/// dimension into slabs sized so the final runs fill leaf pages of
/// capacity `cap`.
fn str_order<const D: usize>(items: &[(Rect<D>, DataId)], cap: usize) -> Vec<Entry<D>> {
    let mut entries: Vec<Entry<D>> = items.iter().map(|(r, d)| Entry::data(*r, *d)).collect();
    str_recurse(&mut entries, 0, cap);
    entries
}

/// Recursive STR pass: sort the slice by the MBB center on `axis`, cut it
/// into `⌈pages^(1/(D−axis))⌉` slabs, recurse on the next axis per slab.
fn str_recurse<const D: usize>(entries: &mut [Entry<D>], axis: usize, cap: usize) {
    if axis >= D || entries.len() <= 1 {
        return;
    }
    entries.sort_by(|a, b| {
        let ca = a.mbb.center();
        let cb = b.mbb.center();
        ca[axis].partial_cmp(&cb[axis]).expect("finite")
    });
    if axis + 1 == D {
        return;
    }
    let n = entries.len();
    let pages = n.div_ceil(cap).max(1);
    let slabs = (pages as f64).powf(1.0 / (D - axis) as f64).ceil().max(1.0) as usize;
    let slab_size = n.div_ceil(slabs).max(1);
    for chunk in entries.chunks_mut(slab_size) {
        str_recurse(chunk, axis + 1, cap);
    }
}
