//! # cbb-joins — spatial joins over (clipped) R-trees and sorted columns
//!
//! The two classic index strategies evaluated in §V (after Brinkhoff et
//! al. \[8\]), plus an index-free scan kernel:
//!
//! * **INLJ** (Index Nested Loop Join) — one input indexed, the other
//!   streamed: one range query per outer object. Clipping accelerates
//!   every probe.
//! * **STT** (Synchronised Tree Traversal) — both inputs indexed: the
//!   trees are descended in lock-step over intersecting node pairs.
//!   Clipping restricts each recursion to the intersection of the pair's
//!   CBBs via dominance tests, exactly as §V describes.
//! * **Sweep** — neither input indexed: both sides live in a columnar
//!   [`TileColumns`] layout sorted by x-min, and a forward-scan plane
//!   sweep enumerates candidates whose x-intervals overlap, testing the
//!   remaining axes with a branch-light loop over contiguous `f64`
//!   slices. Clipping still composes: a tile-level CBB pre-check
//!   ([`sweep_precheck`]) can discard the whole sweep before it starts.
//!
//! All kernels report per-side leaf accesses (raw, unbuffered — the
//! paper's join I/O metric), the machine-independent `overlap_tests`
//! work counter, and the number of result pairs, which is invariant
//! under clipping and across kernels (verified by tests).

use std::iter::Sum;
use std::ops::AddAssign;

use cbb_core::{query_intersects_cbb, ClipPoint};
use cbb_geom::{Point, Rect};
use cbb_rtree::{AccessStats, Child, ClippedRTree, DataId, NodeId};

/// Join outcome and cost counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JoinResult {
    /// Number of intersecting object pairs found.
    pub pairs: u64,
    /// Leaf accesses on the left / outer side (0 for INLJ: the outer input
    /// is a sequential scan, not index I/O; 0 for Sweep: no index at all).
    pub leaf_accesses_left: u64,
    /// Leaf accesses on the right / indexed side.
    pub leaf_accesses_right: u64,
    /// Directory-node accesses (both sides).
    pub internal_accesses: u64,
    /// Recursions avoided by clip-point dominance tests.
    pub clip_prunes: u64,
    /// Rectangle–rectangle intersection tests performed — the
    /// machine-independent work unit that makes the three kernels
    /// directly comparable: STT counts every candidate node/object pair
    /// tested, INLJ counts every entry MBB tested during its probes, and
    /// the sweep counts every candidate its scans advance over.
    pub overlap_tests: u64,
    /// Tiles resolved to STT by a partitioned executor (0 for the bare
    /// kernels in this crate; filled in by the engine's per-tile
    /// dispatch so `Auto` mixes are observable downstream).
    pub tiles_stt: u64,
    /// Tiles resolved to INLJ (see [`JoinResult::tiles_stt`]).
    pub tiles_inlj: u64,
    /// Tiles resolved to the plane sweep (see [`JoinResult::tiles_stt`]).
    pub tiles_sweep: u64,
}

impl JoinResult {
    /// Total leaf accesses over both sides.
    pub fn leaf_accesses(&self) -> u64 {
        self.leaf_accesses_left + self.leaf_accesses_right
    }

    /// Merge many partial results (e.g. per-partition counters).
    pub fn sum<'a>(parts: impl IntoIterator<Item = &'a JoinResult>) -> JoinResult {
        parts.into_iter().copied().sum()
    }
}

impl AddAssign for JoinResult {
    fn add_assign(&mut self, other: JoinResult) {
        self.pairs += other.pairs;
        self.leaf_accesses_left += other.leaf_accesses_left;
        self.leaf_accesses_right += other.leaf_accesses_right;
        self.internal_accesses += other.internal_accesses;
        self.clip_prunes += other.clip_prunes;
        self.overlap_tests += other.overlap_tests;
        self.tiles_stt += other.tiles_stt;
        self.tiles_inlj += other.tiles_inlj;
        self.tiles_sweep += other.tiles_sweep;
    }
}

impl AddAssign<&JoinResult> for JoinResult {
    fn add_assign(&mut self, other: &JoinResult) {
        *self += *other;
    }
}

impl Sum for JoinResult {
    fn sum<I: Iterator<Item = JoinResult>>(iter: I) -> JoinResult {
        iter.fold(JoinResult::default(), |mut acc, r| {
            acc += r;
            acc
        })
    }
}

/// The PBSM reference point of an intersecting pair: the lower corner of
/// `a ∩ b` (component-wise max of the lower corners). Partitioned joins
/// count a pair only in the tile that *owns* this point, which makes
/// global pair counts exact despite multi-assignment of spanning objects.
pub fn reference_point<const D: usize>(a: &Rect<D>, b: &Rect<D>) -> Point<D> {
    a.lo.max(&b.lo)
}

/// Index Nested Loop Join: probe `inner` with every rectangle of `outer`.
/// With `use_clips = false` the probes run on the base tree (the
/// unclipped baseline on the *same* tree).
pub fn inlj<const D: usize>(
    outer: &[Rect<D>],
    inner: &ClippedRTree<D>,
    use_clips: bool,
) -> JoinResult {
    inlj_filtered(outer, inner, use_clips, |_, _| true)
}

/// Tile-local INLJ entry point: as [`inlj`], but a found `(outer rect,
/// inner id)` match is counted only when `keep` accepts it. Partitioned
/// executors use this for reference-point duplicate elimination; I/O
/// counters still reflect the full probes.
pub fn inlj_filtered<const D: usize, F>(
    outer: &[Rect<D>],
    inner: &ClippedRTree<D>,
    use_clips: bool,
    keep: F,
) -> JoinResult
where
    F: Fn(&Rect<D>, DataId) -> bool,
{
    let mut result = JoinResult::default();
    let mut stats = AccessStats::new();
    for o in outer {
        let found = if use_clips {
            inner.range_query_stats(o, &mut stats)
        } else {
            inner.tree.range_query_stats(o, &mut stats)
        };
        result.pairs += found.iter().filter(|id| keep(o, **id)).count() as u64;
    }
    result.leaf_accesses_right = stats.leaf_accesses;
    result.internal_accesses = stats.internal_accesses;
    result.clip_prunes = stats.clip_prunes;
    result.overlap_tests = stats.overlap_tests;
    result
}

/// Synchronised Tree Traversal join of two (clipped) R-trees.
pub fn stt<const D: usize>(
    left: &ClippedRTree<D>,
    right: &ClippedRTree<D>,
    use_clips: bool,
) -> JoinResult {
    stt_filtered(left, right, use_clips, |_, _| true)
}

/// Tile-local STT entry point: as [`stt`], but an intersecting leaf pair
/// is counted only when `keep` accepts its two object rectangles.
/// Partitioned executors pass a reference-point ownership test here so a
/// pair materialised in several tiles is counted exactly once globally.
pub fn stt_filtered<const D: usize, F>(
    left: &ClippedRTree<D>,
    right: &ClippedRTree<D>,
    use_clips: bool,
    keep: F,
) -> JoinResult
where
    F: Fn(&Rect<D>, &Rect<D>) -> bool,
{
    let mut result = JoinResult::default();
    if left.tree.is_empty() || right.tree.is_empty() {
        return result;
    }
    let lroot = left.tree.root_id();
    let rroot = right.tree.root_id();
    let lmbb = left.tree.node(lroot).mbb;
    let rmbb = right.tree.node(rroot).mbb;
    result.overlap_tests += 1;
    let Some(w) = lmbb.intersection(&rmbb) else {
        return result;
    };
    if use_clips && !pair_survives_clips(left, lroot, &lmbb, right, rroot, &rmbb, &w, &mut result) {
        return result;
    }
    stt_rec(left, lroot, right, rroot, use_clips, &keep, &mut result);
    result
}

/// One level of STT decomposition for parallel executors: replicate the
/// root visit of [`stt_filtered`] — window + clip pre-checks and the
/// root's directory access — and return the node-pair *subtasks* the
/// recursion would descend into, instead of descending.
///
/// Running [`stt_filtered_from`] on every returned pair and summing the
/// results together with the returned base counters reproduces
/// [`stt_filtered`] **exactly** (all counters, not just pairs), in any
/// order — which is what lets a partitioned join feed one hot tile's node
/// pairs to a shared dynamic work queue without perturbing its metrics.
///
/// When a root is a leaf the decomposition is the trivial `(root, root)`
/// pair; callers gain no parallelism but stay correct.
pub fn stt_tasks<const D: usize>(
    left: &ClippedRTree<D>,
    right: &ClippedRTree<D>,
    use_clips: bool,
) -> (JoinResult, Vec<(NodeId, NodeId)>) {
    let mut base = JoinResult::default();
    let mut tasks = Vec::new();
    if left.tree.is_empty() || right.tree.is_empty() {
        return (base, tasks);
    }
    let lroot = left.tree.root_id();
    let rroot = right.tree.root_id();
    let lnode = left.tree.node(lroot);
    let rnode = right.tree.node(rroot);
    base.overlap_tests += 1;
    let Some(w) = lnode.mbb.intersection(&rnode.mbb) else {
        return (base, tasks);
    };
    if use_clips
        && !pair_survives_clips(
            left, lroot, &lnode.mbb, right, rroot, &rnode.mbb, &w, &mut base,
        )
    {
        return (base, tasks);
    }
    match (lnode.is_leaf(), rnode.is_leaf()) {
        (true, true) => tasks.push((lroot, rroot)),
        (false, true) => {
            base.internal_accesses += 1;
            base.overlap_tests += lnode.entries.len() as u64;
            for e1 in &lnode.entries {
                let Some(w) = e1.mbb.intersection(&rnode.mbb) else {
                    continue;
                };
                let c1 = e1.child.node_id();
                if use_clips && !query_intersects_cbb(&e1.mbb, left.clips_of(c1), &w) {
                    base.clip_prunes += 1;
                    continue;
                }
                tasks.push((c1, rroot));
            }
        }
        (true, false) => {
            base.internal_accesses += 1;
            base.overlap_tests += rnode.entries.len() as u64;
            for e2 in &rnode.entries {
                let Some(w) = e2.mbb.intersection(&lnode.mbb) else {
                    continue;
                };
                let c2 = e2.child.node_id();
                if use_clips && !query_intersects_cbb(&e2.mbb, right.clips_of(c2), &w) {
                    base.clip_prunes += 1;
                    continue;
                }
                tasks.push((lroot, c2));
            }
        }
        (false, false) => {
            base.internal_accesses += 2;
            base.overlap_tests += (lnode.entries.len() * rnode.entries.len()) as u64;
            for e1 in &lnode.entries {
                for e2 in &rnode.entries {
                    let Some(w) = e1.mbb.intersection(&e2.mbb) else {
                        continue;
                    };
                    let c1 = e1.child.node_id();
                    let c2 = e2.child.node_id();
                    if use_clips
                        && !pair_survives_clips(
                            left, c1, &e1.mbb, right, c2, &e2.mbb, &w, &mut base,
                        )
                    {
                        continue;
                    }
                    tasks.push((c1, c2));
                }
            }
        }
    }
    (base, tasks)
}

/// Run the STT recursion from one node pair — a subtask produced by
/// [`stt_tasks`]. All pre-checks for the pair itself were already done
/// (and counted) by the decomposition, so this starts recursing directly.
pub fn stt_filtered_from<const D: usize, F>(
    left: &ClippedRTree<D>,
    lid: NodeId,
    right: &ClippedRTree<D>,
    rid: NodeId,
    use_clips: bool,
    keep: F,
) -> JoinResult
where
    F: Fn(&Rect<D>, &Rect<D>) -> bool,
{
    let mut result = JoinResult::default();
    stt_rec(left, lid, right, rid, use_clips, &keep, &mut result);
    result
}

/// The §V clip test for a candidate node pair: the pair's search window
/// `w` (the intersection of their MBBs) must escape the dead space of both
/// CBBs.
#[allow(clippy::too_many_arguments)]
fn pair_survives_clips<const D: usize>(
    left: &ClippedRTree<D>,
    lid: NodeId,
    lmbb: &Rect<D>,
    right: &ClippedRTree<D>,
    rid: NodeId,
    rmbb: &Rect<D>,
    w: &Rect<D>,
    result: &mut JoinResult,
) -> bool {
    if !query_intersects_cbb(lmbb, left.clips_of(lid), w)
        || !query_intersects_cbb(rmbb, right.clips_of(rid), w)
    {
        result.clip_prunes += 1;
        return false;
    }
    true
}

fn stt_rec<const D: usize, F>(
    left: &ClippedRTree<D>,
    lid: NodeId,
    right: &ClippedRTree<D>,
    rid: NodeId,
    use_clips: bool,
    keep: &F,
    result: &mut JoinResult,
) where
    F: Fn(&Rect<D>, &Rect<D>) -> bool,
{
    let lnode = left.tree.node(lid);
    let rnode = right.tree.node(rid);

    match (lnode.is_leaf(), rnode.is_leaf()) {
        (true, true) => {
            result.leaf_accesses_left += 1;
            result.leaf_accesses_right += 1;
            result.overlap_tests += (lnode.entries.len() * rnode.entries.len()) as u64;
            for e1 in &lnode.entries {
                for e2 in &rnode.entries {
                    if e1.mbb.intersects(&e2.mbb) && keep(&e1.mbb, &e2.mbb) {
                        result.pairs += 1;
                    }
                }
            }
        }
        (false, true) => {
            // Descend the left (deeper) side only.
            result.internal_accesses += 1;
            result.overlap_tests += lnode.entries.len() as u64;
            for e1 in &lnode.entries {
                let Some(w) = e1.mbb.intersection(&rnode.mbb) else {
                    continue;
                };
                let c1 = match e1.child {
                    Child::Node(c) => c,
                    Child::Data(_) => unreachable!("non-leaf with data entry"),
                };
                if use_clips {
                    // One-sided window restriction: the right node is a
                    // leaf already; test the left child's CBB against w.
                    if !query_intersects_cbb(&e1.mbb, left.clips_of(c1), &w) {
                        result.clip_prunes += 1;
                        continue;
                    }
                }
                stt_rec(left, c1, right, rid, use_clips, keep, result);
            }
        }
        (true, false) => {
            result.internal_accesses += 1;
            result.overlap_tests += rnode.entries.len() as u64;
            for e2 in &rnode.entries {
                let Some(w) = e2.mbb.intersection(&lnode.mbb) else {
                    continue;
                };
                let c2 = match e2.child {
                    Child::Node(c) => c,
                    Child::Data(_) => unreachable!("non-leaf with data entry"),
                };
                if use_clips && !query_intersects_cbb(&e2.mbb, right.clips_of(c2), &w) {
                    result.clip_prunes += 1;
                    continue;
                }
                stt_rec(left, lid, right, c2, use_clips, keep, result);
            }
        }
        (false, false) => {
            result.internal_accesses += 2;
            result.overlap_tests += (lnode.entries.len() * rnode.entries.len()) as u64;
            for e1 in &lnode.entries {
                for e2 in &rnode.entries {
                    let Some(w) = e1.mbb.intersection(&e2.mbb) else {
                        continue;
                    };
                    let c1 = match e1.child {
                        Child::Node(c) => c,
                        Child::Data(_) => unreachable!(),
                    };
                    let c2 = match e2.child {
                        Child::Node(c) => c,
                        Child::Data(_) => unreachable!(),
                    };
                    if use_clips
                        && !pair_survives_clips(left, c1, &e1.mbb, right, c2, &e2.mbb, &w, result)
                    {
                        continue;
                    }
                    stt_rec(left, c1, right, c2, use_clips, keep, result);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Plane-sweep join over a columnar SoA tile layout
// ---------------------------------------------------------------------

/// A tile's objects in structure-of-arrays form, sorted by x-min.
///
/// Each axis stores its lower and upper coordinates in separate
/// contiguous `f64` vectors (`min_x/max_x/min_y/max_y/…`), with object
/// ids in a parallel vector. The sort key is `(lo[0], id)` with
/// [`f64::total_cmp`], so the layout — and therefore every counter the
/// sweep produces — is a pure function of the object set.
///
/// `TileColumns` is the input format of the [`sweep`] kernel: the
/// x-sorted order turns candidate generation into two binary searches
/// per object, and the columnar layout turns the remaining-axes overlap
/// test into a branch-light loop over contiguous slices that the
/// compiler can auto-vectorize. Extraction costs one sort; executors
/// that join the same tile repeatedly should cache the result (the
/// engine's `TileForest` keeps columns alongside each tile tree and
/// reuses them version-exactly, rebuilding only when the tile mutates).
#[derive(Clone, Debug, PartialEq)]
pub struct TileColumns<const D: usize> {
    /// Lower coordinates per axis, each sorted order (axis 0 ascending).
    lo: [Vec<f64>; D],
    /// Upper coordinates per axis, parallel to `lo`.
    hi: [Vec<f64>; D],
    /// Object ids, parallel to the coordinate columns.
    ids: Vec<DataId>,
    /// MBB of all objects (`None` when empty), precomputed for the
    /// tile-level pre-checks.
    bounds: Option<Rect<D>>,
}

impl<const D: usize> TileColumns<D> {
    /// Extract columns from `(rect, id)` items, sorting by `(x-min, id)`.
    pub fn from_items(items: &[(Rect<D>, DataId)]) -> Self {
        let mut order: Vec<usize> = (0..items.len()).collect();
        order.sort_by(|&a, &b| {
            items[a].0.lo[0]
                .total_cmp(&items[b].0.lo[0])
                .then_with(|| items[a].1.cmp(&items[b].1))
        });
        let mut lo: [Vec<f64>; D] = std::array::from_fn(|_| Vec::with_capacity(items.len()));
        let mut hi: [Vec<f64>; D] = std::array::from_fn(|_| Vec::with_capacity(items.len()));
        let mut ids = Vec::with_capacity(items.len());
        for &i in &order {
            let (r, id) = items[i];
            for d in 0..D {
                lo[d].push(r.lo[d]);
                hi[d].push(r.hi[d]);
            }
            ids.push(id);
        }
        let bounds = Rect::mbb_of(&items.iter().map(|(r, _)| *r).collect::<Vec<_>>());
        TileColumns {
            lo,
            hi,
            ids,
            bounds,
        }
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the tile is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The id of the `i`-th object in sweep order.
    pub fn id(&self, i: usize) -> DataId {
        self.ids[i]
    }

    /// The rectangle of the `i`-th object in sweep order.
    pub fn rect(&self, i: usize) -> Rect<D> {
        Rect::new(
            Point(std::array::from_fn(|d| self.lo[d][i])),
            Point(std::array::from_fn(|d| self.hi[d][i])),
        )
    }

    /// MBB of all objects (`None` when empty).
    pub fn bounds(&self) -> Option<Rect<D>> {
        self.bounds
    }

    /// All rectangles in sweep order (the x-sorted probe list an INLJ
    /// executor can stream without re-partitioning).
    pub fn rects(&self) -> Vec<Rect<D>> {
        (0..self.len()).map(|i| self.rect(i)).collect()
    }
}

/// Which side's elements a [`sweep_scan`] chunk iterates over.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SweepSide {
    /// Scan left elements against the right columns.
    Left,
    /// Scan right elements against the left columns.
    Right,
}

/// Plane-sweep join of two column sets: every intersecting `(left id,
/// right id)` pair, counted once.
pub fn sweep<const D: usize>(left: &TileColumns<D>, right: &TileColumns<D>) -> JoinResult {
    sweep_filtered(left, right, |_, _| true)
}

/// Tile-local sweep entry point: as [`sweep`], but a found pair is
/// counted only when `keep` accepts its two object rectangles (the
/// reference-point duplicate-elimination hook, as in [`stt_filtered`]).
pub fn sweep_filtered<const D: usize, F>(
    left: &TileColumns<D>,
    right: &TileColumns<D>,
    keep: F,
) -> JoinResult
where
    F: Fn(&Rect<D>, &Rect<D>) -> bool,
{
    let mut result = sweep_scan(left, right, SweepSide::Left, 0, left.len(), &keep);
    result += sweep_scan(left, right, SweepSide::Right, 0, right.len(), &keep);
    result
}

/// One chunk of the sweep: the forward scans of elements `lo..hi` on one
/// side. Each element's scan is independent, so summing chunks over any
/// partition of `0..len` on both sides reproduces [`sweep_filtered`]
/// **exactly** (all counters, in any order) — the property parallel
/// executors rely on to split a hot tile's sweep by x-range.
///
/// The tie-break makes every intersecting pair the responsibility of
/// exactly one scan: a left element tests the right elements whose x-min
/// is `>=` its own (ties included), a right element tests the left
/// elements whose x-min is *strictly greater* than its own.
pub fn sweep_scan<const D: usize, F>(
    left: &TileColumns<D>,
    right: &TileColumns<D>,
    side: SweepSide,
    lo: usize,
    hi: usize,
    keep: F,
) -> JoinResult
where
    F: Fn(&Rect<D>, &Rect<D>) -> bool,
{
    match side {
        SweepSide::Left => scan_forward(left, right, lo, hi, false, |o, i| keep(o, i)),
        SweepSide::Right => scan_forward(right, left, lo, hi, true, |o, i| keep(i, o)),
    }
}

/// Forward scans of `outer` elements `lo..hi` against `inner`. With
/// `strict` the scan starts past x-min ties instead of at them. `keep`
/// receives `(outer rect, inner rect)`.
fn scan_forward<const D: usize, F>(
    outer: &TileColumns<D>,
    inner: &TileColumns<D>,
    lo: usize,
    hi: usize,
    strict: bool,
    keep: F,
) -> JoinResult
where
    F: Fn(&Rect<D>, &Rect<D>) -> bool,
{
    let mut result = JoinResult::default();
    let inner_lo0 = inner.lo[0].as_slice();
    for i in lo..hi {
        let o_lo0 = outer.lo[0][i];
        let o_hi0 = outer.hi[0][i];
        // Candidates: inner elements whose x-min lies in [o_lo0, o_hi0]
        // (or (o_lo0, o_hi0] under the strict tie-break). Their x-hi is
        // >= their x-min >= o_lo0, so x-overlap needs no further test.
        let start = if strict {
            inner_lo0.partition_point(|&x| x <= o_lo0)
        } else {
            inner_lo0.partition_point(|&x| x < o_lo0)
        };
        let end = start + inner_lo0[start..].partition_point(|&x| x <= o_hi0);
        result.overlap_tests += (end - start) as u64;
        let o_rect = outer.rect(i);
        for j in start..end {
            // Branch-light remaining-axes test over contiguous slices.
            let mut ok = true;
            for d in 1..D {
                ok &= inner.lo[d][j] <= o_rect.hi[d] && o_rect.lo[d] <= inner.hi[d][j];
            }
            if ok && keep(&o_rect, &inner.rect(j)) {
                result.pairs += 1;
            }
        }
    }
    result
}

/// The tile-level pre-check a partitioned executor runs once before
/// sweeping (or before handing out [`sweep_scan`] chunks): compute the
/// joint window `w = bounds(left) ∩ bounds(right)` and, when clip points
/// are supplied, test `w` against both sides' CBBs exactly as the STT
/// root check does. Returns the counters the check itself produced and
/// whether the sweep should proceed. Pass empty clip slices for the
/// unclipped baseline.
pub fn sweep_precheck<const D: usize>(
    left: &TileColumns<D>,
    lclips: &[ClipPoint<D>],
    right: &TileColumns<D>,
    rclips: &[ClipPoint<D>],
) -> (JoinResult, bool) {
    let mut result = JoinResult::default();
    let (Some(lmbb), Some(rmbb)) = (left.bounds(), right.bounds()) else {
        return (result, false);
    };
    result.overlap_tests += 1;
    let Some(w) = lmbb.intersection(&rmbb) else {
        return (result, false);
    };
    if !query_intersects_cbb(&lmbb, lclips, &w) || !query_intersects_cbb(&rmbb, rclips, &w) {
        result.clip_prunes += 1;
        return (result, false);
    }
    (result, true)
}

// ---------------------------------------------------------------------
// Shared-scan batched range execution (query fusion)
// ---------------------------------------------------------------------

/// Answer a whole micro-batch of range queries against one tile's
/// objects with a single plane sweep.
///
/// A batch of query rectangles against a tile **is** a spatial join
/// between the query set and the object set, so this is [`sweep`] with
/// per-pair attribution instead of aggregate counters: `emit` receives
/// every intersecting `(query, object)` pair exactly once as `(query
/// sweep position, object id)`, and `tests[p]` accumulates the overlap
/// tests charged to the query at sweep position `p` (`tests.len()` must
/// equal `queries.len()`). Summing `tests` reproduces
/// `sweep(queries, objects).overlap_tests` exactly — the fused path
/// stays counter-exact against the join kernel it reuses.
///
/// Both [`TileColumns`] sides use the canonical `(x-min, id)` order, so
/// every counter is a pure function of the two sets — independent of
/// the order queries arrived in the batch.
pub fn sweep_queries<const D: usize, E>(
    queries: &TileColumns<D>,
    objects: &TileColumns<D>,
    tests: &mut [u64],
    mut emit: E,
) where
    E: FnMut(usize, DataId),
{
    sweep_queries_scan(
        queries,
        objects,
        SweepSide::Left,
        0,
        queries.len(),
        tests,
        &mut emit,
    );
    sweep_queries_scan(
        queries,
        objects,
        SweepSide::Right,
        0,
        objects.len(),
        tests,
        &mut emit,
    );
}

/// One chunk of [`sweep_queries`]: the forward scans of elements
/// `lo..hi` on one side ([`SweepSide::Left`] = query rects outer,
/// [`SweepSide::Right`] = objects outer). Mirrors [`sweep_scan`]'s
/// tie-break exactly — a query scans the objects whose x-min is `>=`
/// its own (ties included), an object scans the queries whose x-min is
/// *strictly greater* — so each intersecting pair is emitted once, and
/// summing chunks over any partition of `0..len` on both sides
/// reproduces the whole sweep's pairs and per-query `tests` exactly
/// (parallel executors split a hot tile's fused batch by x-range).
pub fn sweep_queries_scan<const D: usize, E>(
    queries: &TileColumns<D>,
    objects: &TileColumns<D>,
    side: SweepSide,
    lo: usize,
    hi: usize,
    tests: &mut [u64],
    emit: &mut E,
) where
    E: FnMut(usize, DataId),
{
    debug_assert_eq!(tests.len(), queries.len(), "one test counter per query");
    match side {
        SweepSide::Left => {
            // Queries outer, non-strict: a query owns the objects whose
            // x-min ties its own.
            let obj_lo0 = objects.lo[0].as_slice();
            for (off, t) in tests[lo..hi].iter_mut().enumerate() {
                let qi = lo + off;
                let q_lo0 = queries.lo[0][qi];
                let q_hi0 = queries.hi[0][qi];
                let start = obj_lo0.partition_point(|&x| x < q_lo0);
                let end = start + obj_lo0[start..].partition_point(|&x| x <= q_hi0);
                *t += (end - start) as u64;
                let q_rect = queries.rect(qi);
                for j in start..end {
                    let mut ok = true;
                    for d in 1..D {
                        ok &= objects.lo[d][j] <= q_rect.hi[d] && q_rect.lo[d] <= objects.hi[d][j];
                    }
                    if ok {
                        emit(qi, objects.ids[j]);
                    }
                }
            }
        }
        SweepSide::Right => {
            // Objects outer, strict: past x-min ties — the Left scan
            // already owned them. The inner index IS the query sweep
            // position, so per-query attribution stays exact.
            let qry_lo0 = queries.lo[0].as_slice();
            for oi in lo..hi {
                let o_lo0 = objects.lo[0][oi];
                let o_hi0 = objects.hi[0][oi];
                let start = qry_lo0.partition_point(|&x| x <= o_lo0);
                let end = start + qry_lo0[start..].partition_point(|&x| x <= o_hi0);
                let o_rect = objects.rect(oi);
                for (off, t) in tests[start..end].iter_mut().enumerate() {
                    let qj = start + off;
                    *t += 1;
                    let mut ok = true;
                    for d in 1..D {
                        ok &=
                            queries.lo[d][qj] <= o_rect.hi[d] && o_rect.lo[d] <= queries.hi[d][qj];
                    }
                    if ok {
                        emit(qj, objects.ids[oi]);
                    }
                }
            }
        }
    }
}

/// Brute-force pair count (test oracle).
pub fn brute_force_pairs<const D: usize>(a: &[Rect<D>], b: &[Rect<D>]) -> u64 {
    let mut pairs = 0u64;
    for x in a {
        for y in b {
            if x.intersects(y) {
                pairs += 1;
            }
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbb_core::{ClipConfig, ClipMethod};
    use cbb_geom::{Point, SplitMix64};
    use cbb_rtree::{DataId, RTree, TreeConfig, Variant};

    fn r2(lx: f64, ly: f64, hx: f64, hy: f64) -> Rect<2> {
        Rect::new(Point([lx, ly]), Point([hx, hy]))
    }

    fn boxes(n: usize, seed: u64) -> Vec<Rect<2>> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| {
                let x = rng.gen_range(0.0, 480.0);
                let y = rng.gen_range(0.0, 480.0);
                let w = rng.gen_range(0.5, 20.0);
                let h = rng.gen_range(0.5, 20.0);
                r2(x, y, x + w, y + h)
            })
            .collect()
    }

    fn clipped(data: &[Rect<2>], variant: Variant) -> ClippedRTree<2> {
        let items: Vec<(Rect<2>, DataId)> = data
            .iter()
            .enumerate()
            .map(|(i, b)| (*b, DataId(i as u32)))
            .collect();
        let tree = RTree::bulk_load(
            TreeConfig::tiny(variant).with_world(r2(0.0, 0.0, 500.0, 500.0)),
            &items,
        );
        ClippedRTree::from_tree(tree, ClipConfig::paper_default::<2>(ClipMethod::Stairline))
    }

    #[test]
    fn inlj_counts_match_brute_force() {
        let a = boxes(150, 1);
        let b = boxes(200, 2);
        let inner = clipped(&b, Variant::RStar);
        let expected = brute_force_pairs(&a, &b);
        let plain = inlj(&a, &inner, false);
        let with_clips = inlj(&a, &inner, true);
        assert_eq!(plain.pairs, expected);
        assert_eq!(with_clips.pairs, expected);
        assert!(with_clips.leaf_accesses_right <= plain.leaf_accesses_right);
    }

    #[test]
    fn stt_counts_match_brute_force() {
        for variant in Variant::ALL {
            let a = boxes(150, 3);
            let b = boxes(180, 4);
            let left = clipped(&a, variant);
            let right = clipped(&b, variant);
            let expected = brute_force_pairs(&a, &b);
            let plain = stt(&left, &right, false);
            let with_clips = stt(&left, &right, true);
            assert_eq!(plain.pairs, expected, "{variant:?}");
            assert_eq!(with_clips.pairs, expected, "{variant:?}");
            assert!(
                with_clips.leaf_accesses_left + with_clips.leaf_accesses_right
                    <= plain.leaf_accesses_left + plain.leaf_accesses_right,
                "{variant:?}: clipping increased STT I/O"
            );
        }
    }

    #[test]
    fn stt_handles_different_heights() {
        let a = boxes(30, 5); // short tree
        let b = boxes(900, 6); // taller tree
        let left = clipped(&a, Variant::Quadratic);
        let right = clipped(&b, Variant::Quadratic);
        assert!(left.tree.height() < right.tree.height());
        let expected = brute_force_pairs(&a, &b);
        assert_eq!(stt(&left, &right, true).pairs, expected);
        // Symmetric order.
        assert_eq!(stt(&right, &left, true).pairs, expected);
    }

    #[test]
    fn disjoint_inputs_join_empty() {
        let a = vec![r2(0.0, 0.0, 10.0, 10.0)];
        let b = vec![r2(400.0, 400.0, 410.0, 410.0)];
        let left = clipped(&a, Variant::RRStar);
        let right = clipped(&b, Variant::RRStar);
        let res = stt(&left, &right, true);
        assert_eq!(res.pairs, 0);
        assert_eq!(res.leaf_accesses_left + res.leaf_accesses_right, 0);
        assert_eq!(inlj(&a, &right, true).pairs, 0);
    }

    #[test]
    fn empty_tree_joins() {
        let a = boxes(50, 7);
        let left = clipped(&a, Variant::Hilbert);
        let empty = ClippedRTree::from_tree(
            RTree::new(TreeConfig::tiny(Variant::Hilbert)),
            ClipConfig::paper_default::<2>(ClipMethod::Skyline),
        );
        assert_eq!(stt(&left, &empty, true).pairs, 0);
        assert_eq!(stt(&empty, &left, true).pairs, 0);
        assert_eq!(inlj(&a, &empty, true).pairs, 0);
    }

    #[test]
    fn stt_tasks_sum_reproduces_stt_exactly() {
        // The decomposition contract: base counters + per-task results sum
        // to the monolithic traversal, counter for counter.
        let a = boxes(350, 9);
        let b = boxes(400, 10);
        for variant in Variant::ALL {
            let left = clipped(&a, variant);
            let right = clipped(&b, variant);
            for use_clips in [false, true] {
                let whole = stt(&left, &right, use_clips);
                let (mut sum, tasks) = stt_tasks(&left, &right, use_clips);
                assert!(tasks.len() > 1, "{variant:?}: root never decomposed");
                for (lid, rid) in tasks {
                    sum += stt_filtered_from(&left, lid, &right, rid, use_clips, |_, _| true);
                }
                assert_eq!(sum, whole, "{variant:?} use_clips={use_clips}");
            }
        }
    }

    #[test]
    fn stt_tasks_respects_filters_and_leaf_roots() {
        // Tiny inputs: both roots are leaves, so the only task is the
        // root pair and filtering happens inside the task.
        let a = boxes(4, 11);
        let left = clipped(&a, Variant::RStar);
        assert!(left.tree.node(left.tree.root_id()).is_leaf());
        let (base, tasks) = stt_tasks(&left, &left, true);
        // The root window check is the decomposition's only work here.
        assert_eq!(
            base,
            JoinResult {
                overlap_tests: 1,
                ..JoinResult::default()
            }
        );
        assert_eq!(tasks, vec![(left.tree.root_id(), left.tree.root_id())]);
        let all = stt_filtered_from(&left, tasks[0].0, &left, tasks[0].1, true, |_, _| true);
        let none = stt_filtered_from(&left, tasks[0].0, &left, tasks[0].1, true, |_, _| false);
        assert_eq!(all.pairs, brute_force_pairs(&a, &a));
        assert_eq!(none.pairs, 0);
        // I/O counters are filter-independent.
        assert_eq!(all.leaf_accesses(), none.leaf_accesses());
    }

    #[test]
    fn stt_tasks_disjoint_and_empty() {
        let a = vec![r2(0.0, 0.0, 10.0, 10.0)];
        let b = vec![r2(400.0, 400.0, 410.0, 410.0)];
        let left = clipped(&a, Variant::RStar);
        let right = clipped(&b, Variant::RStar);
        let (base, tasks) = stt_tasks(&left, &right, true);
        // Disjoint roots still cost the one window test that proves it.
        assert_eq!(
            base,
            JoinResult {
                overlap_tests: 1,
                ..JoinResult::default()
            }
        );
        assert!(tasks.is_empty());
        let empty = ClippedRTree::from_tree(
            RTree::new(TreeConfig::tiny(Variant::RStar)),
            ClipConfig::paper_default::<2>(ClipMethod::Stairline),
        );
        let (base, tasks) = stt_tasks(&left, &empty, true);
        assert_eq!((base, tasks), (JoinResult::default(), vec![]));
    }

    #[test]
    fn self_join_counts_all_pairs_including_self() {
        let a = boxes(100, 8);
        let t = clipped(&a, Variant::RStar);
        let res = stt(&t, &t, true);
        // Self-join includes (i, i) pairs and both (i, j), (j, i).
        assert_eq!(res.pairs, brute_force_pairs(&a, &a));
        assert!(res.pairs >= a.len() as u64);
    }

    fn columns(data: &[Rect<2>]) -> TileColumns<2> {
        let items: Vec<(Rect<2>, DataId)> = data
            .iter()
            .enumerate()
            .map(|(i, b)| (*b, DataId(i as u32)))
            .collect();
        TileColumns::from_items(&items)
    }

    #[test]
    fn sweep_counts_match_brute_force() {
        let a = boxes(150, 12);
        let b = boxes(200, 13);
        let res = sweep(&columns(&a), &columns(&b));
        assert_eq!(res.pairs, brute_force_pairs(&a, &b));
        assert_eq!(res.leaf_accesses(), 0, "the sweep touches no index");
        assert!(res.overlap_tests > 0);
        assert!(
            res.overlap_tests < (a.len() * b.len()) as u64,
            "the sort must beat the nested loop"
        );
    }

    #[test]
    fn sweep_self_join_and_degenerate_inputs() {
        // Self-join: (i, i) and both orders of (i, j), like STT.
        let a = boxes(80, 14);
        let c = columns(&a);
        assert_eq!(sweep(&c, &c).pairs, brute_force_pairs(&a, &a));
        // Zero-extent rects (points) and exact duplicates, including
        // x-min ties across both sides.
        let weird = vec![
            r2(5.0, 5.0, 5.0, 5.0),
            r2(5.0, 5.0, 5.0, 5.0),
            r2(5.0, 1.0, 9.0, 9.0),
            r2(5.0, 6.0, 6.0, 7.0),
            r2(0.0, 0.0, 20.0, 20.0),
        ];
        let w = columns(&weird);
        assert_eq!(sweep(&w, &w).pairs, brute_force_pairs(&weird, &weird));
        assert_eq!(sweep(&w, &c).pairs, brute_force_pairs(&weird, &a));
        // Empty sides.
        let empty = columns(&[]);
        assert_eq!(sweep(&empty, &c), JoinResult::default());
        assert_eq!(sweep(&c, &empty), JoinResult::default());
    }

    #[test]
    fn sweep_filter_drops_pairs_but_not_work() {
        let a = boxes(60, 15);
        let b = boxes(60, 16);
        let (ca, cb) = (columns(&a), columns(&b));
        let all = sweep_filtered(&ca, &cb, |_, _| true);
        let none = sweep_filtered(&ca, &cb, |_, _| false);
        assert_eq!(none.pairs, 0);
        assert_eq!(all.overlap_tests, none.overlap_tests);
    }

    #[test]
    fn sweep_scan_chunks_sum_to_whole_exactly() {
        // The decomposition contract, as for stt_tasks: any chunking of
        // both sides' scan ranges sums to the monolithic sweep, counter
        // for counter.
        let a = boxes(300, 17);
        let b = boxes(250, 18);
        let (ca, cb) = (columns(&a), columns(&b));
        let keep = |x: &Rect<2>, y: &Rect<2>| (x.lo[0] + y.lo[0]) as u64 % 3 != 0;
        let whole = sweep_filtered(&ca, &cb, keep);
        for chunk in [1usize, 7, 64, 1000] {
            let mut sum = JoinResult::default();
            for side in [SweepSide::Left, SweepSide::Right] {
                let n = match side {
                    SweepSide::Left => ca.len(),
                    SweepSide::Right => cb.len(),
                };
                let mut lo = 0;
                while lo < n {
                    let hi = (lo + chunk).min(n);
                    sum += sweep_scan(&ca, &cb, side, lo, hi, keep);
                    lo = hi;
                }
            }
            assert_eq!(sum, whole, "chunk={chunk}");
        }
    }

    #[test]
    fn sweep_precheck_window_and_clips() {
        // Disjoint bounds: pruned by the window alone, one test counted.
        let far = columns(&[r2(400.0, 400.0, 410.0, 410.0)]);
        let near = columns(&[r2(0.0, 0.0, 10.0, 10.0)]);
        let (base, go) = sweep_precheck(&near, &[], &far, &[]);
        assert!(!go);
        assert_eq!(base.overlap_tests, 1);
        assert_eq!(base.clip_prunes, 0);
        // Empty side: nothing to do, nothing counted.
        let (base, go) = sweep_precheck(&near, &[], &columns(&[]), &[]);
        assert!(!go);
        assert_eq!(base, JoinResult::default());
        // Clip pre-check: diagonal data leaves the off-diagonal corners
        // as dead space; a probe set living only there must be pruned by
        // the CBB test even though the plain windows intersect.
        let diag = vec![r2(0.0, 0.0, 10.0, 10.0), r2(90.0, 90.0, 100.0, 100.0)];
        let corner = vec![r2(15.0, 70.0, 25.0, 80.0)];
        let (cd, cc) = (columns(&diag), columns(&corner));
        let tree = clipped(&diag, Variant::RStar);
        let root_clips = tree.clips_of(tree.tree.root_id());
        assert!(!root_clips.is_empty(), "diagonal layout must clip");
        let (_, go) = sweep_precheck(&cd, &[], &cc, &[]);
        assert!(go, "plain windows intersect");
        let (base, go) = sweep_precheck(&cd, root_clips, &cc, &[]);
        assert!(!go, "the corner window must die on the CBB");
        assert_eq!(base.clip_prunes, 1);
        // Clips never change the answer when the sweep does run.
        let a = boxes(120, 19);
        let b = boxes(120, 20);
        let (ca, cb) = (columns(&a), columns(&b));
        let ta = clipped(&a, Variant::RStar);
        let (_, go) = sweep_precheck(&ca, ta.clips_of(ta.tree.root_id()), &cb, &[]);
        assert!(go);
        assert_eq!(sweep(&ca, &cb).pairs, brute_force_pairs(&a, &b));
    }

    #[test]
    fn columns_are_sorted_and_roundtrip() {
        let a = boxes(50, 21);
        let c = columns(&a);
        assert_eq!(c.len(), a.len());
        for i in 1..c.len() {
            assert!(c.rect(i - 1).lo[0] <= c.rect(i).lo[0]);
        }
        let mut got: Vec<(u32, Rect<2>)> = (0..c.len()).map(|i| (c.id(i).0, c.rect(i))).collect();
        got.sort_by_key(|(id, _)| *id);
        for (i, (id, r)) in got.iter().enumerate() {
            assert_eq!(*id as usize, i);
            assert_eq!(*r, a[i]);
        }
        assert_eq!(c.rects().len(), a.len());
        assert_eq!(c.bounds(), Rect::mbb_of(&a));
    }

    /// Fused hits gathered per query id, sorted, plus the tests total.
    fn run_sweep_queries(queries: &[Rect<2>], objects: &[Rect<2>]) -> (Vec<Vec<DataId>>, Vec<u64>) {
        let qc = columns(queries);
        let oc = columns(objects);
        let mut tests = vec![0u64; qc.len()];
        let mut hits: Vec<Vec<DataId>> = vec![Vec::new(); queries.len()];
        sweep_queries(&qc, &oc, &mut tests, |pos, id| {
            hits[qc.id(pos).0 as usize].push(id);
        });
        for list in &mut hits {
            list.sort_unstable();
        }
        // Re-attribute tests from sweep position to query id.
        let mut by_query = vec![0u64; queries.len()];
        for (pos, n) in tests.iter().enumerate() {
            by_query[qc.id(pos).0 as usize] += n;
        }
        (hits, by_query)
    }

    #[test]
    fn sweep_queries_matches_brute_force_per_query() {
        let objects = boxes(200, 26);
        let queries = boxes(40, 27);
        let (hits, tests) = run_sweep_queries(&queries, &objects);
        for (qi, q) in queries.iter().enumerate() {
            let expected: Vec<DataId> = objects
                .iter()
                .enumerate()
                .filter(|(_, o)| q.intersects(o))
                .map(|(i, _)| DataId(i as u32))
                .collect();
            assert_eq!(hits[qi], expected, "query {qi}");
        }
        // Counter-exact against the join kernel it reuses: the summed
        // per-query tests ARE the sweep's overlap tests.
        let aggregate = sweep(&columns(&queries), &columns(&objects));
        assert_eq!(tests.iter().sum::<u64>(), aggregate.overlap_tests);
        let pairs: u64 = hits.iter().map(|h| h.len() as u64).sum();
        assert_eq!(pairs, aggregate.pairs);
    }

    #[test]
    fn sweep_queries_degenerate_inputs() {
        // Point queries, duplicate rects, x-min ties straddling both
        // sides, empty sides — each pair still found exactly once.
        let objects = vec![
            r2(5.0, 5.0, 5.0, 5.0),
            r2(5.0, 5.0, 5.0, 5.0),
            r2(5.0, 1.0, 9.0, 9.0),
            r2(0.0, 0.0, 20.0, 20.0),
        ];
        let queries = vec![
            r2(5.0, 5.0, 5.0, 5.0), // point query tying the point objects
            r2(5.0, 0.0, 5.0, 50.0),
            r2(30.0, 30.0, 40.0, 40.0), // no hits
        ];
        let (hits, _) = run_sweep_queries(&queries, &objects);
        for (qi, q) in queries.iter().enumerate() {
            let expected: Vec<DataId> = objects
                .iter()
                .enumerate()
                .filter(|(_, o)| q.intersects(o))
                .map(|(i, _)| DataId(i as u32))
                .collect();
            assert_eq!(hits[qi], expected, "query {qi}");
        }
        let empty = columns(&[]);
        let mut tests: Vec<u64> = Vec::new();
        sweep_queries(&empty, &columns(&objects), &mut tests, |_, _| {
            panic!("no queries, no pairs")
        });
        let mut tests = vec![0u64; queries.len()];
        sweep_queries(&columns(&queries), &empty, &mut tests, |_, _| {
            panic!("no objects, no pairs")
        });
        assert_eq!(tests, vec![0; queries.len()]);
    }

    #[test]
    fn sweep_queries_chunks_sum_to_whole_exactly() {
        // The decomposition contract mirrors sweep_scan: any chunking of
        // both sides' outer ranges reproduces the whole fused batch —
        // same pairs, same per-query tests.
        let objects = boxes(300, 28);
        let queries = boxes(64, 29);
        let qc = columns(&queries);
        let oc = columns(&objects);
        let mut whole_tests = vec![0u64; qc.len()];
        let mut whole_pairs: Vec<(usize, DataId)> = Vec::new();
        sweep_queries(&qc, &oc, &mut whole_tests, |pos, id| {
            whole_pairs.push((pos, id));
        });
        whole_pairs.sort_unstable();
        for chunk in [1usize, 9, 50, 1000] {
            let mut tests = vec![0u64; qc.len()];
            let mut pairs: Vec<(usize, DataId)> = Vec::new();
            for side in [SweepSide::Left, SweepSide::Right] {
                let n = match side {
                    SweepSide::Left => qc.len(),
                    SweepSide::Right => oc.len(),
                };
                let mut lo = 0;
                while lo < n {
                    let hi = (lo + chunk).min(n);
                    sweep_queries_scan(&qc, &oc, side, lo, hi, &mut tests, &mut |pos, id| {
                        pairs.push((pos, id))
                    });
                    lo = hi;
                }
            }
            pairs.sort_unstable();
            assert_eq!(tests, whole_tests, "chunk={chunk}");
            assert_eq!(pairs, whole_pairs, "chunk={chunk}");
        }
    }

    #[test]
    fn sweep_pairs_equal_stt_pairs() {
        for (na, nb, sa, sb) in [(150, 180, 22, 23), (40, 400, 24, 25)] {
            let a = boxes(na, sa);
            let b = boxes(nb, sb);
            let by_sweep = sweep(&columns(&a), &columns(&b));
            let by_stt = stt(
                &clipped(&a, Variant::RStar),
                &clipped(&b, Variant::RStar),
                true,
            );
            assert_eq!(by_sweep.pairs, by_stt.pairs);
        }
    }
}
