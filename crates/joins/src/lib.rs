//! # cbb-joins — spatial joins over (clipped) R-trees
//!
//! The two classic strategies evaluated in §V (after Brinkhoff et al.
//! \[8\]):
//!
//! * **INLJ** (Index Nested Loop Join) — one input indexed, the other
//!   streamed: one range query per outer object. Clipping accelerates
//!   every probe.
//! * **STT** (Synchronised Tree Traversal) — both inputs indexed: the
//!   trees are descended in lock-step over intersecting node pairs.
//!   Clipping restricts each recursion to the intersection of the pair's
//!   CBBs via dominance tests, exactly as §V describes.
//!
//! Both report per-side leaf accesses (raw, unbuffered — the paper's join
//! I/O metric) and the number of result pairs, which is invariant under
//! clipping (verified by tests).

use std::iter::Sum;
use std::ops::AddAssign;

use cbb_core::query_intersects_cbb;
use cbb_geom::{Point, Rect};
use cbb_rtree::{AccessStats, Child, ClippedRTree, DataId, NodeId};

/// Join outcome and cost counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JoinResult {
    /// Number of intersecting object pairs found.
    pub pairs: u64,
    /// Leaf accesses on the left / outer side (0 for INLJ: the outer input
    /// is a sequential scan, not index I/O).
    pub leaf_accesses_left: u64,
    /// Leaf accesses on the right / indexed side.
    pub leaf_accesses_right: u64,
    /// Directory-node accesses (both sides).
    pub internal_accesses: u64,
    /// Recursions avoided by clip-point dominance tests.
    pub clip_prunes: u64,
}

impl JoinResult {
    /// Total leaf accesses over both sides.
    pub fn leaf_accesses(&self) -> u64 {
        self.leaf_accesses_left + self.leaf_accesses_right
    }

    /// Merge many partial results (e.g. per-partition counters).
    pub fn sum<'a>(parts: impl IntoIterator<Item = &'a JoinResult>) -> JoinResult {
        parts.into_iter().copied().sum()
    }
}

impl AddAssign for JoinResult {
    fn add_assign(&mut self, other: JoinResult) {
        self.pairs += other.pairs;
        self.leaf_accesses_left += other.leaf_accesses_left;
        self.leaf_accesses_right += other.leaf_accesses_right;
        self.internal_accesses += other.internal_accesses;
        self.clip_prunes += other.clip_prunes;
    }
}

impl AddAssign<&JoinResult> for JoinResult {
    fn add_assign(&mut self, other: &JoinResult) {
        *self += *other;
    }
}

impl Sum for JoinResult {
    fn sum<I: Iterator<Item = JoinResult>>(iter: I) -> JoinResult {
        iter.fold(JoinResult::default(), |mut acc, r| {
            acc += r;
            acc
        })
    }
}

/// The PBSM reference point of an intersecting pair: the lower corner of
/// `a ∩ b` (component-wise max of the lower corners). Partitioned joins
/// count a pair only in the tile that *owns* this point, which makes
/// global pair counts exact despite multi-assignment of spanning objects.
pub fn reference_point<const D: usize>(a: &Rect<D>, b: &Rect<D>) -> Point<D> {
    a.lo.max(&b.lo)
}

/// Index Nested Loop Join: probe `inner` with every rectangle of `outer`.
/// With `use_clips = false` the probes run on the base tree (the
/// unclipped baseline on the *same* tree).
pub fn inlj<const D: usize>(
    outer: &[Rect<D>],
    inner: &ClippedRTree<D>,
    use_clips: bool,
) -> JoinResult {
    inlj_filtered(outer, inner, use_clips, |_, _| true)
}

/// Tile-local INLJ entry point: as [`inlj`], but a found `(outer rect,
/// inner id)` match is counted only when `keep` accepts it. Partitioned
/// executors use this for reference-point duplicate elimination; I/O
/// counters still reflect the full probes.
pub fn inlj_filtered<const D: usize, F>(
    outer: &[Rect<D>],
    inner: &ClippedRTree<D>,
    use_clips: bool,
    keep: F,
) -> JoinResult
where
    F: Fn(&Rect<D>, DataId) -> bool,
{
    let mut result = JoinResult::default();
    let mut stats = AccessStats::new();
    for o in outer {
        let found = if use_clips {
            inner.range_query_stats(o, &mut stats)
        } else {
            inner.tree.range_query_stats(o, &mut stats)
        };
        result.pairs += found.iter().filter(|id| keep(o, **id)).count() as u64;
    }
    result.leaf_accesses_right = stats.leaf_accesses;
    result.internal_accesses = stats.internal_accesses;
    result.clip_prunes = stats.clip_prunes;
    result
}

/// Synchronised Tree Traversal join of two (clipped) R-trees.
pub fn stt<const D: usize>(
    left: &ClippedRTree<D>,
    right: &ClippedRTree<D>,
    use_clips: bool,
) -> JoinResult {
    stt_filtered(left, right, use_clips, |_, _| true)
}

/// Tile-local STT entry point: as [`stt`], but an intersecting leaf pair
/// is counted only when `keep` accepts its two object rectangles.
/// Partitioned executors pass a reference-point ownership test here so a
/// pair materialised in several tiles is counted exactly once globally.
pub fn stt_filtered<const D: usize, F>(
    left: &ClippedRTree<D>,
    right: &ClippedRTree<D>,
    use_clips: bool,
    keep: F,
) -> JoinResult
where
    F: Fn(&Rect<D>, &Rect<D>) -> bool,
{
    let mut result = JoinResult::default();
    if left.tree.is_empty() || right.tree.is_empty() {
        return result;
    }
    let lroot = left.tree.root_id();
    let rroot = right.tree.root_id();
    let lmbb = left.tree.node(lroot).mbb;
    let rmbb = right.tree.node(rroot).mbb;
    let Some(w) = lmbb.intersection(&rmbb) else {
        return result;
    };
    if use_clips && !pair_survives_clips(left, lroot, &lmbb, right, rroot, &rmbb, &w, &mut result) {
        return result;
    }
    stt_rec(left, lroot, right, rroot, use_clips, &keep, &mut result);
    result
}

/// One level of STT decomposition for parallel executors: replicate the
/// root visit of [`stt_filtered`] — window + clip pre-checks and the
/// root's directory access — and return the node-pair *subtasks* the
/// recursion would descend into, instead of descending.
///
/// Running [`stt_filtered_from`] on every returned pair and summing the
/// results together with the returned base counters reproduces
/// [`stt_filtered`] **exactly** (all counters, not just pairs), in any
/// order — which is what lets a partitioned join feed one hot tile's node
/// pairs to a shared dynamic work queue without perturbing its metrics.
///
/// When a root is a leaf the decomposition is the trivial `(root, root)`
/// pair; callers gain no parallelism but stay correct.
pub fn stt_tasks<const D: usize>(
    left: &ClippedRTree<D>,
    right: &ClippedRTree<D>,
    use_clips: bool,
) -> (JoinResult, Vec<(NodeId, NodeId)>) {
    let mut base = JoinResult::default();
    let mut tasks = Vec::new();
    if left.tree.is_empty() || right.tree.is_empty() {
        return (base, tasks);
    }
    let lroot = left.tree.root_id();
    let rroot = right.tree.root_id();
    let lnode = left.tree.node(lroot);
    let rnode = right.tree.node(rroot);
    let Some(w) = lnode.mbb.intersection(&rnode.mbb) else {
        return (base, tasks);
    };
    if use_clips
        && !pair_survives_clips(
            left, lroot, &lnode.mbb, right, rroot, &rnode.mbb, &w, &mut base,
        )
    {
        return (base, tasks);
    }
    match (lnode.is_leaf(), rnode.is_leaf()) {
        (true, true) => tasks.push((lroot, rroot)),
        (false, true) => {
            base.internal_accesses += 1;
            for e1 in &lnode.entries {
                let Some(w) = e1.mbb.intersection(&rnode.mbb) else {
                    continue;
                };
                let c1 = e1.child.node_id();
                if use_clips && !query_intersects_cbb(&e1.mbb, left.clips_of(c1), &w) {
                    base.clip_prunes += 1;
                    continue;
                }
                tasks.push((c1, rroot));
            }
        }
        (true, false) => {
            base.internal_accesses += 1;
            for e2 in &rnode.entries {
                let Some(w) = e2.mbb.intersection(&lnode.mbb) else {
                    continue;
                };
                let c2 = e2.child.node_id();
                if use_clips && !query_intersects_cbb(&e2.mbb, right.clips_of(c2), &w) {
                    base.clip_prunes += 1;
                    continue;
                }
                tasks.push((lroot, c2));
            }
        }
        (false, false) => {
            base.internal_accesses += 2;
            for e1 in &lnode.entries {
                for e2 in &rnode.entries {
                    let Some(w) = e1.mbb.intersection(&e2.mbb) else {
                        continue;
                    };
                    let c1 = e1.child.node_id();
                    let c2 = e2.child.node_id();
                    if use_clips
                        && !pair_survives_clips(
                            left, c1, &e1.mbb, right, c2, &e2.mbb, &w, &mut base,
                        )
                    {
                        continue;
                    }
                    tasks.push((c1, c2));
                }
            }
        }
    }
    (base, tasks)
}

/// Run the STT recursion from one node pair — a subtask produced by
/// [`stt_tasks`]. All pre-checks for the pair itself were already done
/// (and counted) by the decomposition, so this starts recursing directly.
pub fn stt_filtered_from<const D: usize, F>(
    left: &ClippedRTree<D>,
    lid: NodeId,
    right: &ClippedRTree<D>,
    rid: NodeId,
    use_clips: bool,
    keep: F,
) -> JoinResult
where
    F: Fn(&Rect<D>, &Rect<D>) -> bool,
{
    let mut result = JoinResult::default();
    stt_rec(left, lid, right, rid, use_clips, &keep, &mut result);
    result
}

/// The §V clip test for a candidate node pair: the pair's search window
/// `w` (the intersection of their MBBs) must escape the dead space of both
/// CBBs.
#[allow(clippy::too_many_arguments)]
fn pair_survives_clips<const D: usize>(
    left: &ClippedRTree<D>,
    lid: NodeId,
    lmbb: &Rect<D>,
    right: &ClippedRTree<D>,
    rid: NodeId,
    rmbb: &Rect<D>,
    w: &Rect<D>,
    result: &mut JoinResult,
) -> bool {
    if !query_intersects_cbb(lmbb, left.clips_of(lid), w)
        || !query_intersects_cbb(rmbb, right.clips_of(rid), w)
    {
        result.clip_prunes += 1;
        return false;
    }
    true
}

fn stt_rec<const D: usize, F>(
    left: &ClippedRTree<D>,
    lid: NodeId,
    right: &ClippedRTree<D>,
    rid: NodeId,
    use_clips: bool,
    keep: &F,
    result: &mut JoinResult,
) where
    F: Fn(&Rect<D>, &Rect<D>) -> bool,
{
    let lnode = left.tree.node(lid);
    let rnode = right.tree.node(rid);

    match (lnode.is_leaf(), rnode.is_leaf()) {
        (true, true) => {
            result.leaf_accesses_left += 1;
            result.leaf_accesses_right += 1;
            for e1 in &lnode.entries {
                for e2 in &rnode.entries {
                    if e1.mbb.intersects(&e2.mbb) && keep(&e1.mbb, &e2.mbb) {
                        result.pairs += 1;
                    }
                }
            }
        }
        (false, true) => {
            // Descend the left (deeper) side only.
            result.internal_accesses += 1;
            for e1 in &lnode.entries {
                let Some(w) = e1.mbb.intersection(&rnode.mbb) else {
                    continue;
                };
                let c1 = match e1.child {
                    Child::Node(c) => c,
                    Child::Data(_) => unreachable!("non-leaf with data entry"),
                };
                if use_clips {
                    // One-sided window restriction: the right node is a
                    // leaf already; test the left child's CBB against w.
                    if !query_intersects_cbb(&e1.mbb, left.clips_of(c1), &w) {
                        result.clip_prunes += 1;
                        continue;
                    }
                }
                stt_rec(left, c1, right, rid, use_clips, keep, result);
            }
        }
        (true, false) => {
            result.internal_accesses += 1;
            for e2 in &rnode.entries {
                let Some(w) = e2.mbb.intersection(&lnode.mbb) else {
                    continue;
                };
                let c2 = match e2.child {
                    Child::Node(c) => c,
                    Child::Data(_) => unreachable!("non-leaf with data entry"),
                };
                if use_clips && !query_intersects_cbb(&e2.mbb, right.clips_of(c2), &w) {
                    result.clip_prunes += 1;
                    continue;
                }
                stt_rec(left, lid, right, c2, use_clips, keep, result);
            }
        }
        (false, false) => {
            result.internal_accesses += 2;
            for e1 in &lnode.entries {
                for e2 in &rnode.entries {
                    let Some(w) = e1.mbb.intersection(&e2.mbb) else {
                        continue;
                    };
                    let c1 = match e1.child {
                        Child::Node(c) => c,
                        Child::Data(_) => unreachable!(),
                    };
                    let c2 = match e2.child {
                        Child::Node(c) => c,
                        Child::Data(_) => unreachable!(),
                    };
                    if use_clips
                        && !pair_survives_clips(left, c1, &e1.mbb, right, c2, &e2.mbb, &w, result)
                    {
                        continue;
                    }
                    stt_rec(left, c1, right, c2, use_clips, keep, result);
                }
            }
        }
    }
}

/// Brute-force pair count (test oracle).
pub fn brute_force_pairs<const D: usize>(a: &[Rect<D>], b: &[Rect<D>]) -> u64 {
    let mut pairs = 0u64;
    for x in a {
        for y in b {
            if x.intersects(y) {
                pairs += 1;
            }
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbb_core::{ClipConfig, ClipMethod};
    use cbb_geom::{Point, SplitMix64};
    use cbb_rtree::{DataId, RTree, TreeConfig, Variant};

    fn r2(lx: f64, ly: f64, hx: f64, hy: f64) -> Rect<2> {
        Rect::new(Point([lx, ly]), Point([hx, hy]))
    }

    fn boxes(n: usize, seed: u64) -> Vec<Rect<2>> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| {
                let x = rng.gen_range(0.0, 480.0);
                let y = rng.gen_range(0.0, 480.0);
                let w = rng.gen_range(0.5, 20.0);
                let h = rng.gen_range(0.5, 20.0);
                r2(x, y, x + w, y + h)
            })
            .collect()
    }

    fn clipped(data: &[Rect<2>], variant: Variant) -> ClippedRTree<2> {
        let items: Vec<(Rect<2>, DataId)> = data
            .iter()
            .enumerate()
            .map(|(i, b)| (*b, DataId(i as u32)))
            .collect();
        let tree = RTree::bulk_load(
            TreeConfig::tiny(variant).with_world(r2(0.0, 0.0, 500.0, 500.0)),
            &items,
        );
        ClippedRTree::from_tree(tree, ClipConfig::paper_default::<2>(ClipMethod::Stairline))
    }

    #[test]
    fn inlj_counts_match_brute_force() {
        let a = boxes(150, 1);
        let b = boxes(200, 2);
        let inner = clipped(&b, Variant::RStar);
        let expected = brute_force_pairs(&a, &b);
        let plain = inlj(&a, &inner, false);
        let with_clips = inlj(&a, &inner, true);
        assert_eq!(plain.pairs, expected);
        assert_eq!(with_clips.pairs, expected);
        assert!(with_clips.leaf_accesses_right <= plain.leaf_accesses_right);
    }

    #[test]
    fn stt_counts_match_brute_force() {
        for variant in Variant::ALL {
            let a = boxes(150, 3);
            let b = boxes(180, 4);
            let left = clipped(&a, variant);
            let right = clipped(&b, variant);
            let expected = brute_force_pairs(&a, &b);
            let plain = stt(&left, &right, false);
            let with_clips = stt(&left, &right, true);
            assert_eq!(plain.pairs, expected, "{variant:?}");
            assert_eq!(with_clips.pairs, expected, "{variant:?}");
            assert!(
                with_clips.leaf_accesses_left + with_clips.leaf_accesses_right
                    <= plain.leaf_accesses_left + plain.leaf_accesses_right,
                "{variant:?}: clipping increased STT I/O"
            );
        }
    }

    #[test]
    fn stt_handles_different_heights() {
        let a = boxes(30, 5); // short tree
        let b = boxes(900, 6); // taller tree
        let left = clipped(&a, Variant::Quadratic);
        let right = clipped(&b, Variant::Quadratic);
        assert!(left.tree.height() < right.tree.height());
        let expected = brute_force_pairs(&a, &b);
        assert_eq!(stt(&left, &right, true).pairs, expected);
        // Symmetric order.
        assert_eq!(stt(&right, &left, true).pairs, expected);
    }

    #[test]
    fn disjoint_inputs_join_empty() {
        let a = vec![r2(0.0, 0.0, 10.0, 10.0)];
        let b = vec![r2(400.0, 400.0, 410.0, 410.0)];
        let left = clipped(&a, Variant::RRStar);
        let right = clipped(&b, Variant::RRStar);
        let res = stt(&left, &right, true);
        assert_eq!(res.pairs, 0);
        assert_eq!(res.leaf_accesses_left + res.leaf_accesses_right, 0);
        assert_eq!(inlj(&a, &right, true).pairs, 0);
    }

    #[test]
    fn empty_tree_joins() {
        let a = boxes(50, 7);
        let left = clipped(&a, Variant::Hilbert);
        let empty = ClippedRTree::from_tree(
            RTree::new(TreeConfig::tiny(Variant::Hilbert)),
            ClipConfig::paper_default::<2>(ClipMethod::Skyline),
        );
        assert_eq!(stt(&left, &empty, true).pairs, 0);
        assert_eq!(stt(&empty, &left, true).pairs, 0);
        assert_eq!(inlj(&a, &empty, true).pairs, 0);
    }

    #[test]
    fn stt_tasks_sum_reproduces_stt_exactly() {
        // The decomposition contract: base counters + per-task results sum
        // to the monolithic traversal, counter for counter.
        let a = boxes(350, 9);
        let b = boxes(400, 10);
        for variant in Variant::ALL {
            let left = clipped(&a, variant);
            let right = clipped(&b, variant);
            for use_clips in [false, true] {
                let whole = stt(&left, &right, use_clips);
                let (mut sum, tasks) = stt_tasks(&left, &right, use_clips);
                assert!(tasks.len() > 1, "{variant:?}: root never decomposed");
                for (lid, rid) in tasks {
                    sum += stt_filtered_from(&left, lid, &right, rid, use_clips, |_, _| true);
                }
                assert_eq!(sum, whole, "{variant:?} use_clips={use_clips}");
            }
        }
    }

    #[test]
    fn stt_tasks_respects_filters_and_leaf_roots() {
        // Tiny inputs: both roots are leaves, so the only task is the
        // root pair and filtering happens inside the task.
        let a = boxes(4, 11);
        let left = clipped(&a, Variant::RStar);
        assert!(left.tree.node(left.tree.root_id()).is_leaf());
        let (base, tasks) = stt_tasks(&left, &left, true);
        assert_eq!(base, JoinResult::default());
        assert_eq!(tasks, vec![(left.tree.root_id(), left.tree.root_id())]);
        let all = stt_filtered_from(&left, tasks[0].0, &left, tasks[0].1, true, |_, _| true);
        let none = stt_filtered_from(&left, tasks[0].0, &left, tasks[0].1, true, |_, _| false);
        assert_eq!(all.pairs, brute_force_pairs(&a, &a));
        assert_eq!(none.pairs, 0);
        // I/O counters are filter-independent.
        assert_eq!(all.leaf_accesses(), none.leaf_accesses());
    }

    #[test]
    fn stt_tasks_disjoint_and_empty() {
        let a = vec![r2(0.0, 0.0, 10.0, 10.0)];
        let b = vec![r2(400.0, 400.0, 410.0, 410.0)];
        let left = clipped(&a, Variant::RStar);
        let right = clipped(&b, Variant::RStar);
        let (base, tasks) = stt_tasks(&left, &right, true);
        assert_eq!(base, JoinResult::default());
        assert!(tasks.is_empty());
        let empty = ClippedRTree::from_tree(
            RTree::new(TreeConfig::tiny(Variant::RStar)),
            ClipConfig::paper_default::<2>(ClipMethod::Stairline),
        );
        let (base, tasks) = stt_tasks(&left, &empty, true);
        assert_eq!((base, tasks), (JoinResult::default(), vec![]));
    }

    #[test]
    fn self_join_counts_all_pairs_including_self() {
        let a = boxes(100, 8);
        let t = clipped(&a, Variant::RStar);
        let res = stt(&t, &t, true);
        // Self-join includes (i, i) pairs and both (i, j), (j, i).
        assert_eq!(res.pairs, brute_force_pairs(&a, &a));
        assert!(res.pairs >= a.len() as u64);
    }
}
