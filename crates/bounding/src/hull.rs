//! Convex hull via Andrew's monotone chain (the paper cites Graham scan
//! \[36\]; monotone chain is the standard robust equivalent).

use cbb_geom::Point;

/// Cross product of `(b − a) × (c − a)`; positive for a left turn.
pub fn cross(a: &Point<2>, b: &Point<2>, c: &Point<2>) -> f64 {
    (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0])
}

/// Convex hull in counter-clockwise order, collinear points dropped.
/// Degenerate inputs return what they can (point → 1 vertex, segment → 2).
pub fn convex_hull(points: &[Point<2>]) -> Vec<Point<2>> {
    let mut pts: Vec<Point<2>> = points.to_vec();
    pts.sort_by(|a, b| {
        a[0].partial_cmp(&b[0])
            .expect("finite")
            .then(a[1].partial_cmp(&b[1]).expect("finite"))
    });
    pts.dedup();
    let n = pts.len();
    if n <= 2 {
        return pts;
    }
    let mut hull: Vec<Point<2>> = Vec::with_capacity(2 * n);
    // Lower hull.
    for p in &pts {
        while hull.len() >= 2 && cross(&hull[hull.len() - 2], &hull[hull.len() - 1], p) <= 0.0 {
            hull.pop();
        }
        hull.push(*p);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for p in pts.iter().rev() {
        while hull.len() >= lower_len
            && cross(&hull[hull.len() - 2], &hull[hull.len() - 1], p) <= 0.0
        {
            hull.pop();
        }
        hull.push(*p);
    }
    hull.pop(); // last point repeats the first
    hull
}

/// Shoelace area of a polygon (positive for counter-clockwise order).
pub fn polygon_area(poly: &[Point<2>]) -> f64 {
    if poly.len() < 3 {
        return 0.0;
    }
    let mut acc = 0.0;
    for i in 0..poly.len() {
        let a = &poly[i];
        let b = &poly[(i + 1) % poly.len()];
        acc += a[0] * b[1] - b[0] * a[1];
    }
    acc / 2.0
}

/// Whether a convex CCW polygon contains `p` (closed).
pub fn convex_contains(poly: &[Point<2>], p: &Point<2>) -> bool {
    if poly.len() < 3 {
        return false;
    }
    for i in 0..poly.len() {
        let a = &poly[i];
        let b = &poly[(i + 1) % poly.len()];
        if cross(a, b, p) < -1e-12 {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point<2> {
        Point([x, y])
    }

    #[test]
    fn square_hull() {
        let pts = vec![
            p(0.0, 0.0),
            p(1.0, 0.0),
            p(1.0, 1.0),
            p(0.0, 1.0),
            p(0.5, 0.5), // interior
            p(0.5, 0.0), // collinear on an edge
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 4);
        assert!((polygon_area(&hull) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hull_is_ccw_and_contains_all_points() {
        let pts: Vec<Point<2>> = (0..50)
            .map(|i| {
                let x = ((i * 37) % 97) as f64;
                let y = ((i * 53) % 89) as f64;
                p(x, y)
            })
            .collect();
        let hull = convex_hull(&pts);
        assert!(polygon_area(&hull) > 0.0, "CCW orientation");
        for q in &pts {
            assert!(convex_contains(&hull, q), "{q:?} outside hull");
        }
    }

    #[test]
    fn degenerate_inputs() {
        assert!(convex_hull(&[]).is_empty());
        assert_eq!(convex_hull(&[p(1.0, 1.0)]).len(), 1);
        assert_eq!(convex_hull(&[p(0.0, 0.0), p(1.0, 1.0)]).len(), 2);
        // All collinear.
        let line: Vec<Point<2>> = (0..5).map(|i| p(i as f64, i as f64)).collect();
        let hull = convex_hull(&line);
        assert_eq!(hull.len(), 2);
        assert_eq!(polygon_area(&hull), 0.0);
    }

    #[test]
    fn triangle_membership() {
        let tri = vec![p(0.0, 0.0), p(4.0, 0.0), p(0.0, 4.0)];
        assert!(convex_contains(&tri, &p(1.0, 1.0)));
        assert!(convex_contains(&tri, &p(0.0, 0.0))); // vertex
        assert!(convex_contains(&tri, &p(2.0, 2.0))); // on hypotenuse
        assert!(!convex_contains(&tri, &p(3.0, 3.0)));
    }
}
