//! Rotated minimum bounding box via rotating calipers: "iterating the
//! edges of the convex hull and computing the minimum bounding box with
//! the same orientation as each edge" (paper §V-C). The minimum-area
//! enclosing rectangle is guaranteed to share an orientation with some
//! hull edge (Freeman & Shapira 1975).

use cbb_geom::Point;

use crate::hull::convex_hull;

/// An oriented rectangle, stored as its four corners in CCW order.
#[derive(Clone, Debug, PartialEq)]
pub struct RotatedRect {
    /// The four corners, counter-clockwise.
    pub corners: [Point<2>; 4],
    /// Cached area.
    pub area: f64,
}

/// Minimum-area rotated bounding rectangle of a point set. `None` for
/// fewer than one point; degenerate (zero-area) rects are possible for
/// collinear input.
pub fn rotated_mbb(points: &[Point<2>]) -> Option<RotatedRect> {
    let hull = convex_hull(points);
    if hull.is_empty() {
        return None;
    }
    if hull.len() == 1 {
        return Some(RotatedRect {
            corners: [hull[0]; 4],
            area: 0.0,
        });
    }

    let mut best: Option<RotatedRect> = None;
    let n = hull.len();
    for i in 0..n {
        let a = hull[i];
        let b = hull[(i + 1) % n];
        // Unit direction of this edge and its normal.
        let (dx, dy) = (b[0] - a[0], b[1] - a[1]);
        let len = (dx * dx + dy * dy).sqrt();
        if len < 1e-12 {
            continue;
        }
        let u = (dx / len, dy / len);
        let v = (-u.1, u.0);
        // Project all hull points on (u, v).
        let mut min_u = f64::INFINITY;
        let mut max_u = f64::NEG_INFINITY;
        let mut min_v = f64::INFINITY;
        let mut max_v = f64::NEG_INFINITY;
        for p in &hull {
            let pu = p[0] * u.0 + p[1] * u.1;
            let pv = p[0] * v.0 + p[1] * v.1;
            min_u = min_u.min(pu);
            max_u = max_u.max(pu);
            min_v = min_v.min(pv);
            max_v = max_v.max(pv);
        }
        let area = (max_u - min_u) * (max_v - min_v);
        if best.as_ref().is_none_or(|r| area < r.area) {
            let corner = |cu: f64, cv: f64| Point([cu * u.0 + cv * v.0, cu * u.1 + cv * v.1]);
            best = Some(RotatedRect {
                corners: [
                    corner(min_u, min_v),
                    corner(max_u, min_v),
                    corner(max_u, max_v),
                    corner(min_u, max_v),
                ],
                area,
            });
        }
    }
    best
}

impl RotatedRect {
    /// Closed containment test (via the convex polygon test).
    pub fn contains(&self, p: &Point<2>) -> bool {
        crate::hull::convex_contains(&self.corners, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point<2> {
        Point([x, y])
    }

    #[test]
    fn axis_aligned_square_stays_square() {
        let pts = [p(0.0, 0.0), p(2.0, 0.0), p(2.0, 2.0), p(0.0, 2.0)];
        let r = rotated_mbb(&pts).unwrap();
        assert!((r.area - 4.0).abs() < 1e-9);
    }

    #[test]
    fn tilted_segment_cloud_beats_axis_aligned() {
        // Points along a 45° line with small jitter: the axis-aligned box
        // wastes ~half the area; the rotated box hugs the line.
        let pts: Vec<Point<2>> = (0..40)
            .map(|i| {
                let t = i as f64;
                let jitter = if i % 2 == 0 { 0.3 } else { -0.3 };
                p(t + jitter, t - jitter)
            })
            .collect();
        let r = rotated_mbb(&pts).unwrap();
        let aabb_area = {
            let xs: Vec<f64> = pts.iter().map(|q| q[0]).collect();
            let ys: Vec<f64> = pts.iter().map(|q| q[1]).collect();
            let w = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                - xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let h = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                - ys.iter().cloned().fold(f64::INFINITY, f64::min);
            w * h
        };
        assert!(
            r.area < 0.2 * aabb_area,
            "rmbb {} vs aabb {aabb_area}",
            r.area
        );
        for q in &pts {
            assert!(r.contains(q), "{q:?} outside");
        }
    }

    #[test]
    fn contains_all_hull_points() {
        let pts: Vec<Point<2>> = (0..60)
            .map(|i| p(((i * 17) % 23) as f64, ((i * 29) % 31) as f64))
            .collect();
        let r = rotated_mbb(&pts).unwrap();
        for q in &pts {
            assert!(r.contains(q));
        }
    }

    #[test]
    fn degenerate_inputs() {
        assert!(rotated_mbb(&[]).is_none());
        let single = rotated_mbb(&[p(1.0, 2.0)]).unwrap();
        assert_eq!(single.area, 0.0);
        let seg = rotated_mbb(&[p(0.0, 0.0), p(3.0, 4.0)]).unwrap();
        assert!(seg.area.abs() < 1e-9);
    }
}
