//! Minimum m-corner circumscribing polygons (the paper's 4-C / 5-C),
//! "the smallest-area polygons with ≤ m corners that fully bound the
//! children, computed similarly to \[35\]" (Aggarwal, Chang & Chee 1985).
//!
//! We use the standard greedy *edge-removal* heuristic: start from the
//! convex hull (whose edge lines circumscribe the points exactly) and
//! repeatedly delete the edge whose removal — replacing it by the
//! intersection of its two neighbouring edge lines — adds the least area,
//! until `m` edges remain. The polygon always contains the hull, so
//! containment of the input is preserved by construction.

use cbb_geom::Point;

use crate::hull::{convex_hull, cross};

/// Intersection of lines `(a1, a2)` and `(b1, b2)`; `None` when parallel.
fn line_intersection(
    a1: &Point<2>,
    a2: &Point<2>,
    b1: &Point<2>,
    b2: &Point<2>,
) -> Option<Point<2>> {
    let (dax, day) = (a2[0] - a1[0], a2[1] - a1[1]);
    let (dbx, dby) = (b2[0] - b1[0], b2[1] - b1[1]);
    let denom = dax * dby - day * dbx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let t = ((b1[0] - a1[0]) * dby - (b1[1] - a1[1]) * dbx) / denom;
    Some(Point([a1[0] + t * dax, a1[1] + t * day]))
}

/// Area added by removing edge `i` of polygon `poly` (edges are
/// `(v_i, v_{i+1})`): the triangle between the removed edge and the apex
/// where the neighbouring edge lines meet. `None` when the neighbours are
/// (nearly) parallel or diverge (apex on the wrong side).
fn removal_cost(poly: &[Point<2>], i: usize) -> Option<(f64, Point<2>)> {
    let n = poly.len();
    let prev = (i + n - 1) % n;
    let next = (i + 1) % n;
    let next2 = (i + 2) % n;
    // Neighbouring edges: (prev → i) and (next → next2).
    let apex = line_intersection(&poly[prev], &poly[i], &poly[next], &poly[next2])?;
    // The apex must lie outside, beyond the removed edge (left-turn chain
    // preserved): check it is a proper extension of both edges.
    let forward_a = (apex[0] - poly[i][0]) * (poly[i][0] - poly[prev][0])
        + (apex[1] - poly[i][1]) * (poly[i][1] - poly[prev][1]);
    let forward_b = (apex[0] - poly[next][0]) * (poly[next][0] - poly[next2][0])
        + (apex[1] - poly[next][1]) * (poly[next][1] - poly[next2][1]);
    if forward_a < -1e-12 || forward_b < -1e-12 {
        return None;
    }
    // Added area: triangle (v_i, apex, v_{i+1}).
    let area = 0.5 * cross(&poly[i], &apex, &poly[next]).abs();
    Some((area, apex))
}

/// Smallest-area (greedy) circumscribing polygon with at most `m` corners.
/// Returns the CCW polygon; `None` when the input has no area to bound
/// (fewer than 3 non-collinear points) — callers fall back to the MBB.
pub fn k_corner_polygon(points: &[Point<2>], m: usize) -> Option<Vec<Point<2>>> {
    assert!(m >= 3, "a circumscribing polygon needs ≥ 3 corners");
    let mut poly = convex_hull(points);
    if poly.len() < 3 {
        return None;
    }
    while poly.len() > m {
        // Pick the cheapest removable edge.
        let mut best: Option<(f64, usize, Point<2>)> = None;
        for i in 0..poly.len() {
            if let Some((cost, apex)) = removal_cost(&poly, i) {
                if best.as_ref().is_none_or(|(c, _, _)| cost < *c) {
                    best = Some((cost, i, apex));
                }
            }
        }
        let Some((_, i, apex)) = best else {
            // No removable edge (e.g. numerically parallel neighbours
            // everywhere): accept the current polygon.
            return Some(poly);
        };
        // Replace v_i and v_{i+1} with the apex.
        let next = (i + 1) % poly.len();
        if next > i {
            poly[i] = apex;
            poly.remove(next);
        } else {
            // Wrapped: edge (last, 0).
            poly[i] = apex;
            poly.remove(next);
        }
    }
    Some(poly)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hull::{convex_contains, polygon_area};

    fn p(x: f64, y: f64) -> Point<2> {
        Point([x, y])
    }

    /// A regular n-gon on a circle of radius r.
    fn ngon(n: usize, r: f64) -> Vec<Point<2>> {
        (0..n)
            .map(|i| {
                let a = i as f64 / n as f64 * std::f64::consts::TAU;
                p(r * a.cos(), r * a.sin())
            })
            .collect()
    }

    #[test]
    fn already_few_corners_is_identity() {
        let tri = vec![p(0.0, 0.0), p(4.0, 0.0), p(0.0, 4.0)];
        let poly = k_corner_polygon(&tri, 4).unwrap();
        assert_eq!(poly.len(), 3);
        assert!((polygon_area(&poly) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn octagon_to_square() {
        let oct = ngon(8, 10.0);
        let poly = k_corner_polygon(&oct, 4).unwrap();
        assert_eq!(poly.len(), 4);
        // Contains every input point.
        for q in &oct {
            assert!(convex_contains(&poly, q), "{q:?} escaped");
        }
        // Sane area: at least the hull, at most the circumscribing square
        // of the circle (side 20).
        let hull_area = polygon_area(&convex_hull(&oct));
        let a = polygon_area(&poly);
        assert!(a >= hull_area - 1e-9);
        assert!(a <= 400.0 + 1e-9);
    }

    #[test]
    fn area_decreases_with_more_corners() {
        let circle = ngon(32, 5.0);
        let a4 = polygon_area(&k_corner_polygon(&circle, 4).unwrap());
        let a5 = polygon_area(&k_corner_polygon(&circle, 5).unwrap());
        let a6 = polygon_area(&k_corner_polygon(&circle, 6).unwrap());
        let hull = polygon_area(&convex_hull(&circle));
        assert!(a4 >= a5 - 1e-9, "4-C {a4} < 5-C {a5}");
        assert!(a5 >= a6 - 1e-9);
        assert!(a6 >= hull - 1e-9);
    }

    #[test]
    fn containment_preserved_on_random_input() {
        let pts: Vec<Point<2>> = (0..80)
            .map(|i| p(((i * 13) % 41) as f64, ((i * 31) % 37) as f64))
            .collect();
        for m in [4, 5, 6] {
            let poly = k_corner_polygon(&pts, m).unwrap();
            assert!(poly.len() <= m);
            for q in &pts {
                assert!(convex_contains(&poly, q), "m={m}: {q:?} escaped");
            }
        }
    }

    #[test]
    fn degenerate_collinear_returns_none() {
        let line: Vec<Point<2>> = (0..6).map(|i| p(i as f64, i as f64)).collect();
        assert!(k_corner_polygon(&line, 4).is_none());
    }
}
