//! # cbb-bounding — alternative bounding geometries (2-d)
//!
//! The comparison set of Figures 8 and 9: minimum bounding circle (MBC,
//! Welzl), minimum bounding box (MBB), rotated MBB (RMBB, rotating
//! calipers), minimum m-corner polygons (4-C, 5-C, greedy edge-removal
//! heuristic after Aggarwal et al. \[35\]), and the convex hull (CH, Andrew
//! monotone chain). Following the paper (and \[6\], \[20\]), these are 2-d
//! only — no efficient minimum m-corner polytope constructions are known
//! in higher dimensions, which is precisely the paper's argument for CBBs.

pub mod circle;
pub mod hull;
pub mod kcorner;
pub mod rmbb;
pub mod shape;

pub use circle::min_enclosing_circle;
pub use hull::convex_hull;
pub use kcorner::k_corner_polygon;
pub use rmbb::rotated_mbb;
pub use shape::{corner_points, dead_space_of_shape, Shape2};
