//! Unified 2-d bounding-shape interface and the dead-space measurement of
//! Figures 8–9.

use cbb_geom::{Point, Rect, SplitMix64};

use crate::circle::{min_enclosing_circle, Circle};
use crate::hull::{convex_contains, convex_hull, polygon_area};
use crate::kcorner::k_corner_polygon;
use crate::rmbb::{rotated_mbb, RotatedRect};

/// Any of the eight bounding geometries compared in Figure 8/9.
#[derive(Clone, Debug)]
pub enum Shape2 {
    /// Minimum bounding circle (MBC).
    Circle(Circle),
    /// Axis-aligned minimum bounding box (MBB).
    Mbb(Rect<2>),
    /// Rotated minimum bounding box (RMBB).
    Rotated(RotatedRect),
    /// Convex polygon: convex hull (CH) or an m-corner polygon (4-C, 5-C).
    Polygon(Vec<Point<2>>),
}

impl Shape2 {
    /// Closed point containment.
    pub fn contains(&self, p: &Point<2>) -> bool {
        match self {
            Shape2::Circle(c) => c.contains(p),
            Shape2::Mbb(r) => r.contains_point(p),
            Shape2::Rotated(r) => r.contains(p),
            Shape2::Polygon(poly) => convex_contains(poly, p),
        }
    }

    /// Enclosed area.
    pub fn area(&self) -> f64 {
        match self {
            Shape2::Circle(c) => c.area(),
            Shape2::Mbb(r) => r.volume(),
            Shape2::Rotated(r) => r.area,
            Shape2::Polygon(poly) => polygon_area(poly),
        }
    }

    /// Representation cost in points — the Figure 9b metric. The circle
    /// counts as 2 (center + radius packed like a point); boxes as 2
    /// corners; polygons as their corner count.
    pub fn point_count(&self) -> usize {
        match self {
            Shape2::Circle(_) => 2,
            Shape2::Mbb(_) => 2,
            // An oriented box needs 3 corners (the 4th is implied).
            Shape2::Rotated(_) => 3,
            Shape2::Polygon(poly) => poly.len(),
        }
    }

    /// Axis-aligned bounding box of the shape (sampling frame).
    pub fn bbox(&self) -> Rect<2> {
        match self {
            Shape2::Circle(c) => Rect::new(
                Point([c.center[0] - c.radius, c.center[1] - c.radius]),
                Point([c.center[0] + c.radius, c.center[1] + c.radius]),
            ),
            Shape2::Mbb(r) => *r,
            Shape2::Rotated(r) => {
                let mut lo = r.corners[0];
                let mut hi = r.corners[0];
                for c in &r.corners[1..] {
                    lo = lo.min(c);
                    hi = hi.max(c);
                }
                Rect::new(lo, hi)
            }
            Shape2::Polygon(poly) => {
                let mut lo = poly[0];
                let mut hi = poly[0];
                for c in &poly[1..] {
                    lo = lo.min(c);
                    hi = hi.max(c);
                }
                Rect::new(lo, hi)
            }
        }
    }
}

/// The corner points of a set of rectangles — the input every bounding
/// shape is fitted to (objects are approximated by their MBBs upstream,
/// matching the paper's per-node measurement).
pub fn corner_points(rects: &[Rect<2>]) -> Vec<Point<2>> {
    let mut pts = Vec::with_capacity(rects.len() * 4);
    for r in rects {
        pts.push(Point([r.lo[0], r.lo[1]]));
        pts.push(Point([r.hi[0], r.lo[1]]));
        pts.push(Point([r.hi[0], r.hi[1]]));
        pts.push(Point([r.lo[0], r.hi[1]]));
    }
    pts
}

/// Fit each Figure 9 shape to a set of object rectangles. Shapes that
/// degenerate (collinear input) fall back to the MBB. Returns
/// `(label, shape)` pairs in the paper's order.
pub fn fit_all_shapes(rects: &[Rect<2>]) -> Vec<(&'static str, Shape2)> {
    let pts = corner_points(rects);
    let mbb = Rect::mbb_of(rects).expect("non-empty node");
    let polygon_or_mbb = |poly: Option<Vec<Point<2>>>| match poly {
        Some(p) if p.len() >= 3 => Shape2::Polygon(p),
        _ => Shape2::Mbb(mbb),
    };
    vec![
        (
            "MBC",
            min_enclosing_circle(&pts)
                .map(Shape2::Circle)
                .unwrap_or(Shape2::Mbb(mbb)),
        ),
        ("MBB", Shape2::Mbb(mbb)),
        (
            "RMBB",
            rotated_mbb(&pts)
                .map(Shape2::Rotated)
                .unwrap_or(Shape2::Mbb(mbb)),
        ),
        ("4-C", polygon_or_mbb(k_corner_polygon(&pts, 4))),
        ("5-C", polygon_or_mbb(k_corner_polygon(&pts, 5))),
        ("CH", polygon_or_mbb(Some(convex_hull(&pts)))),
    ]
}

/// Dead-space fraction of a shape over `objects`: the share of the shape's
/// area covered by no object — deterministic Monte-Carlo (rejection
/// sampling inside the shape's bounding box).
pub fn dead_space_of_shape(shape: &Shape2, objects: &[Rect<2>], samples: usize, seed: u64) -> f64 {
    let frame = shape.bbox();
    if frame.volume() <= 0.0 {
        return 0.0;
    }
    let mut rng = SplitMix64::new(seed);
    let mut inside = 0usize;
    let mut dead = 0usize;
    let mut drawn = 0usize;
    // Keep drawing until `samples` points landed inside the shape (capped
    // to avoid pathological rejection rates).
    while inside < samples && drawn < samples * 20 {
        drawn += 1;
        let p = Point([
            rng.gen_range(frame.lo[0], frame.hi[0]),
            rng.gen_range(frame.lo[1], frame.hi[1]),
        ]);
        if !shape.contains(&p) {
            continue;
        }
        inside += 1;
        if !objects.iter().any(|o| o.contains_point(&p)) {
            dead += 1;
        }
    }
    if inside == 0 {
        0.0
    } else {
        dead as f64 / inside as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r2(lx: f64, ly: f64, hx: f64, hy: f64) -> Rect<2> {
        Rect::new(Point([lx, ly]), Point([hx, hy]))
    }

    fn two_corner_boxes() -> Vec<Rect<2>> {
        vec![r2(0.0, 0.0, 2.0, 2.0), r2(8.0, 8.0, 10.0, 10.0)]
    }

    #[test]
    fn all_shapes_contain_all_object_corners() {
        let objects = two_corner_boxes();
        for (label, shape) in fit_all_shapes(&objects) {
            for p in corner_points(&objects) {
                assert!(shape.contains(&p), "{label}: corner {p:?} escaped");
            }
            assert!(shape.area() > 0.0, "{label}");
            assert!(shape.point_count() >= 2, "{label}");
        }
    }

    #[test]
    fn area_ordering_follows_the_paper() {
        // CH ⊆ 5-C ⊆ 4-C (and MBB ≥ CH): the convex hull lower-bounds all
        // convex shapes.
        let objects = vec![
            r2(0.0, 4.0, 2.0, 6.0),
            r2(3.0, 0.0, 6.0, 2.0),
            r2(7.0, 3.0, 9.0, 9.0),
            r2(2.0, 7.0, 4.0, 9.0),
        ];
        let shapes = fit_all_shapes(&objects);
        let area = |l: &str| {
            shapes
                .iter()
                .find(|(label, _)| *label == l)
                .map(|(_, s)| s.area())
                .unwrap()
        };
        assert!(area("CH") <= area("5-C") + 1e-9);
        assert!(area("5-C") <= area("4-C") + 1e-9);
        assert!(area("CH") <= area("MBB") + 1e-9);
        assert!(area("RMBB") <= area("MBB") + 1e-9);
    }

    #[test]
    fn dead_space_ordering() {
        // The MBC wastes the most; the hull the least (among convex).
        let objects = two_corner_boxes();
        let shapes = fit_all_shapes(&objects);
        let ds = |l: &str| {
            let s = &shapes.iter().find(|(label, _)| *label == l).unwrap().1;
            dead_space_of_shape(s, &objects, 4_000, 99)
        };
        let (mbc, mbb, ch) = (ds("MBC"), ds("MBB"), ds("CH"));
        assert!(mbc >= mbb - 0.05, "MBC {mbc} vs MBB {mbb}");
        assert!(ch <= mbb + 0.05, "CH {ch} vs MBB {mbb}");
        // Two tiny boxes in a 10×10 frame: MBB must be mostly dead.
        assert!(mbb > 0.8);
    }

    #[test]
    fn dead_space_of_fully_covered_shape_is_zero() {
        let objects = vec![r2(0.0, 0.0, 10.0, 10.0)];
        let shape = Shape2::Mbb(r2(0.0, 0.0, 10.0, 10.0));
        assert_eq!(dead_space_of_shape(&shape, &objects, 1_000, 1), 0.0);
    }

    #[test]
    fn degenerate_input_falls_back_to_mbb() {
        // Collinear degenerate rect (a segment).
        let objects = vec![r2(0.0, 0.0, 10.0, 0.0)];
        let shapes = fit_all_shapes(&objects);
        assert_eq!(shapes.len(), 6);
        for (label, s) in &shapes {
            // No panic and a usable (possibly zero-area) shape.
            let _ = s.area();
            let _ = s.point_count();
            let _ = label;
        }
    }

    #[test]
    fn point_counts_match_figure9_expectations() {
        let objects = two_corner_boxes();
        let shapes = fit_all_shapes(&objects);
        let count = |l: &str| {
            shapes
                .iter()
                .find(|(label, _)| *label == l)
                .map(|(_, s)| s.point_count())
                .unwrap()
        };
        assert_eq!(count("MBB"), 2);
        assert_eq!(count("MBC"), 2);
        assert!(count("4-C") <= 4);
        assert!(count("5-C") <= 5);
        assert!(count("CH") >= count("5-C"));
    }
}
