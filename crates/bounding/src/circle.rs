//! Minimum enclosing circle — Welzl's algorithm (the paper's MBC,
//! computed "as per Welzl \[30\]").

use cbb_geom::Point;
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, SeedableRng};

/// A circle `(center, radius)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Circle {
    /// Center point.
    pub center: Point<2>,
    /// Radius.
    pub radius: f64,
}

impl Circle {
    /// Closed containment with a small tolerance for accumulated error.
    pub fn contains(&self, p: &Point<2>) -> bool {
        self.center.distance_sq(p) <= self.radius * self.radius * (1.0 + 1e-10) + 1e-12
    }

    /// Circle area.
    pub fn area(&self) -> f64 {
        std::f64::consts::PI * self.radius * self.radius
    }
}

fn circle_from_2(a: &Point<2>, b: &Point<2>) -> Circle {
    let center = a.midpoint(b);
    Circle {
        center,
        radius: center.distance(a),
    }
}

fn circle_from_3(a: &Point<2>, b: &Point<2>, c: &Point<2>) -> Option<Circle> {
    // Circumcircle via perpendicular bisector intersection.
    let d = 2.0 * (a[0] * (b[1] - c[1]) + b[0] * (c[1] - a[1]) + c[0] * (a[1] - b[1]));
    if d.abs() < 1e-12 {
        return None; // collinear
    }
    let a2 = a[0] * a[0] + a[1] * a[1];
    let b2 = b[0] * b[0] + b[1] * b[1];
    let c2 = c[0] * c[0] + c[1] * c[1];
    let ux = (a2 * (b[1] - c[1]) + b2 * (c[1] - a[1]) + c2 * (a[1] - b[1])) / d;
    let uy = (a2 * (c[0] - b[0]) + b2 * (a[0] - c[0]) + c2 * (b[0] - a[0])) / d;
    let center = Point([ux, uy]);
    Some(Circle {
        radius: center.distance(a),
        center,
    })
}

/// Welzl's randomised incremental algorithm, iterative move-to-front
/// formulation (expected linear time).
pub fn min_enclosing_circle(points: &[Point<2>]) -> Option<Circle> {
    if points.is_empty() {
        return None;
    }
    let mut pts: Vec<Point<2>> = points.to_vec();
    pts.dedup();
    let mut rng = StdRng::seed_from_u64(0x3E17_AB1E);
    pts.shuffle(&mut rng);

    let mut circle = Circle {
        center: pts[0],
        radius: 0.0,
    };
    for i in 1..pts.len() {
        if circle.contains(&pts[i]) {
            continue;
        }
        // pts[i] on the boundary.
        circle = Circle {
            center: pts[i],
            radius: 0.0,
        };
        for j in 0..i {
            if circle.contains(&pts[j]) {
                continue;
            }
            // pts[i], pts[j] on the boundary.
            circle = circle_from_2(&pts[i], &pts[j]);
            for k in 0..j {
                if circle.contains(&pts[k]) {
                    continue;
                }
                // Three boundary points determine the circle.
                if let Some(c) = circle_from_3(&pts[i], &pts[j], &pts[k]) {
                    circle = c;
                }
            }
        }
    }
    Some(circle)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point<2> {
        Point([x, y])
    }

    #[test]
    fn single_and_pair() {
        let c = min_enclosing_circle(&[p(2.0, 3.0)]).unwrap();
        assert_eq!(c.radius, 0.0);
        assert_eq!(c.center, p(2.0, 3.0));

        let c = min_enclosing_circle(&[p(0.0, 0.0), p(2.0, 0.0)]).unwrap();
        assert!((c.radius - 1.0).abs() < 1e-9);
        assert_eq!(c.center, p(1.0, 0.0));
    }

    #[test]
    fn unit_square() {
        let c =
            min_enclosing_circle(&[p(0.0, 0.0), p(1.0, 0.0), p(1.0, 1.0), p(0.0, 1.0)]).unwrap();
        assert!((c.radius - std::f64::consts::SQRT_2 / 2.0).abs() < 1e-9);
        assert!((c.center[0] - 0.5).abs() < 1e-9);
        assert!((c.center[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn contains_all_and_is_minimal() {
        let pts: Vec<Point<2>> = (0..200)
            .map(|i| {
                let x = ((i * 37) % 101) as f64 / 10.0;
                let y = ((i * 89) % 97) as f64 / 10.0;
                p(x, y)
            })
            .collect();
        let c = min_enclosing_circle(&pts).unwrap();
        for q in &pts {
            assert!(c.contains(q), "{q:?} outside");
        }
        // Minimality: some point must be (nearly) on the boundary.
        let max_d = pts.iter().map(|q| c.center.distance(q)).fold(0.0, f64::max);
        assert!((max_d - c.radius).abs() < 1e-6);
        // And shrinking by 1 % must lose a point.
        let shrunk = Circle {
            center: c.center,
            radius: c.radius * 0.99,
        };
        assert!(pts.iter().any(|q| !shrunk.contains(q)));
    }

    #[test]
    fn collinear_points() {
        let pts: Vec<Point<2>> = (0..5).map(|i| p(i as f64, 2.0 * i as f64)).collect();
        let c = min_enclosing_circle(&pts).unwrap();
        for q in &pts {
            assert!(c.contains(q));
        }
        // Diameter circle of the extremes.
        assert!((c.radius - pts[0].distance(&pts[4]) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_input() {
        assert!(min_enclosing_circle(&[]).is_none());
    }
}
