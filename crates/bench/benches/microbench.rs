//! Criterion micro-benchmarks for the CBB hot paths:
//!
//! * `intersection_test` — plain MBB test vs the Algorithm 2 CBB test
//!   (the paper's claim: the clip test is "even cheaper than the preceding
//!   intersection test with the MBB" per point);
//! * `skyline` / `stairline` — candidate generation vs node fanout;
//! * `clip_build` — Algorithm 1 per node (CSKY vs CSTA);
//! * `hilbert` — curve key encoding;
//! * `union_volume` — exact grid vs Monte-Carlo dead-space measurement;
//! * `range_query` — end-to-end clipped vs unclipped queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cbb_core::{
    clip_node, oriented_skyline, query_intersects_cbb, stairline, ClipConfig, ClipMethod,
};
use cbb_geom::{union_volume_exact, union_volume_mc, CornerMask, Point, Rect, SplitMix64};
use cbb_rtree::{hilbert::hilbert_index, ClippedRTree, DataId, RTree, TreeConfig, Variant};

fn random_boxes(n: usize, seed: u64) -> Vec<Rect<2>> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            let x = rng.gen_range(0.0, 950.0);
            let y = rng.gen_range(0.0, 950.0);
            let w = rng.gen_range(0.5, 25.0);
            let h = rng.gen_range(0.5, 25.0);
            Rect::new(Point([x, y]), Point([x + w, y + h]))
        })
        .collect()
}

fn bench_intersection_test(c: &mut Criterion) {
    let boxes = random_boxes(64, 1);
    let mbb = Rect::mbb_of(&boxes).unwrap();
    let clips = clip_node(
        &mbb,
        &boxes,
        &ClipConfig::paper_default::<2>(ClipMethod::Stairline),
    );
    let queries = random_boxes(256, 2);

    let mut g = c.benchmark_group("intersection_test");
    g.bench_function("mbb_only", |b| {
        b.iter(|| {
            let mut hits = 0;
            for q in &queries {
                if black_box(&mbb).intersects(black_box(q)) {
                    hits += 1;
                }
            }
            hits
        })
    });
    g.bench_function("cbb_algorithm2", |b| {
        b.iter(|| {
            let mut hits = 0;
            for q in &queries {
                if query_intersects_cbb(black_box(&mbb), black_box(&clips), black_box(q)) {
                    hits += 1;
                }
            }
            hits
        })
    });
    g.finish();
}

fn bench_skyline(c: &mut Criterion) {
    let mut g = c.benchmark_group("skyline");
    for fanout in [16usize, 64, 113] {
        let boxes = random_boxes(fanout, 3);
        let corners: Vec<Point<2>> = boxes
            .iter()
            .map(|b| b.corner(CornerMask::new(0b00)))
            .collect();
        g.bench_with_input(BenchmarkId::new("skyline", fanout), &corners, |b, pts| {
            b.iter(|| oriented_skyline(black_box(pts), CornerMask::new(0b00)))
        });
        let sky = oriented_skyline(&corners, CornerMask::new(0b00));
        g.bench_with_input(BenchmarkId::new("stairline", fanout), &sky, |b, sky| {
            b.iter(|| stairline(black_box(sky), CornerMask::new(0b00)))
        });
    }
    g.finish();
}

fn bench_clip_build(c: &mut Criterion) {
    let boxes = random_boxes(113, 4);
    let mbb = Rect::mbb_of(&boxes).unwrap();
    let mut g = c.benchmark_group("clip_build");
    for method in [ClipMethod::Skyline, ClipMethod::Stairline] {
        g.bench_function(method.label(), |b| {
            let cfg = ClipConfig::paper_default::<2>(method);
            b.iter(|| clip_node(black_box(&mbb), black_box(&boxes), &cfg))
        });
    }
    g.finish();
}

fn bench_hilbert(c: &mut Criterion) {
    let mut g = c.benchmark_group("hilbert");
    g.bench_function("encode_2d_order16", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(12345);
            hilbert_index([black_box(i & 0xFFFF), black_box((i >> 7) & 0xFFFF)], 16)
        })
    });
    g.bench_function("encode_3d_order16", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(12345);
            hilbert_index(
                [
                    black_box(i & 0xFFFF),
                    black_box((i >> 5) & 0xFFFF),
                    black_box((i >> 9) & 0xFFFF),
                ],
                16,
            )
        })
    });
    g.finish();
}

fn bench_union_volume(c: &mut Criterion) {
    let frame = Rect::new(Point([0.0, 0.0]), Point([1000.0, 1000.0]));
    let mut g = c.benchmark_group("union_volume");
    for n in [16usize, 64] {
        let boxes = random_boxes(n, 5);
        g.bench_with_input(BenchmarkId::new("exact_grid", n), &boxes, |b, boxes| {
            b.iter(|| union_volume_exact(black_box(&frame), black_box(boxes)))
        });
        g.bench_with_input(BenchmarkId::new("mc_8192", n), &boxes, |b, boxes| {
            b.iter(|| union_volume_mc(black_box(&frame), black_box(boxes), 8192, 7))
        });
    }
    g.finish();
}

fn bench_range_query(c: &mut Criterion) {
    let boxes = random_boxes(20_000, 6);
    let items: Vec<(Rect<2>, DataId)> = boxes
        .iter()
        .enumerate()
        .map(|(i, b)| (*b, DataId(i as u32)))
        .collect();
    let tree = RTree::bulk_load(
        TreeConfig::paper_default(Variant::RStar)
            .with_world(Rect::new(Point([0.0, 0.0]), Point([1000.0, 1000.0]))),
        &items,
    );
    let clipped =
        ClippedRTree::from_tree(tree, ClipConfig::paper_default::<2>(ClipMethod::Stairline));
    let mut rng = SplitMix64::new(8);
    let queries: Vec<Rect<2>> = (0..128)
        .map(|_| {
            let x = rng.gen_range(0.0, 990.0);
            let y = rng.gen_range(0.0, 990.0);
            Rect::new(Point([x, y]), Point([x + 5.0, y + 5.0]))
        })
        .collect();

    let mut g = c.benchmark_group("range_query_20k");
    g.bench_function("unclipped", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for q in &queries {
                total += clipped.tree.range_query(black_box(q)).len();
            }
            total
        })
    });
    g.bench_function("clipped_csta", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for q in &queries {
                total += clipped.range_query(black_box(q)).len();
            }
            total
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_intersection_test,
    bench_skyline,
    bench_clip_build,
    bench_hilbert,
    bench_union_volume,
    bench_range_query
);
criterion_main!(benches);
