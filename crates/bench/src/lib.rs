//! # cbb-bench — shared harness for the per-figure experiment binaries
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §3 for the index). This library holds what they share:
//! CLI parsing, paper-faithful tree construction, query execution, and
//! plain-text table rendering.

use cbb_core::{ClipConfig, ClipMethod};
use cbb_datasets::{Dataset, QueryProfile, Scale};
use cbb_geom::Rect;
use cbb_rtree::{AccessStats, ClippedRTree, RTree, TreeConfig, Variant};

/// Common experiment options.
#[derive(Clone, Copy, Debug)]
pub struct Args {
    /// Dataset scale (default: 1/64 of the paper counts — minutes-scale).
    pub scale: Scale,
    /// Queries per profile.
    pub queries: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            scale: Scale::Fraction(64),
            queries: 400,
            seed: 0xCBB,
        }
    }
}

/// True when the `CBB_BENCH_SMOKE` environment variable requests the
/// reduced CI workload (any value except empty or `0`). Bench bins apply
/// their smoke defaults *before* CLI parsing, so explicit flags still
/// override — the workflow sets one env var instead of duplicating size
/// constants per bin.
pub fn smoke_mode() -> bool {
    std::env::var("CBB_BENCH_SMOKE")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false)
}

/// Parse `--full`, `--scale N`, `--exact N`, `--queries N`, `--seed N`.
pub fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut next_usize = |flag: &str| -> usize {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{flag} needs a numeric argument"))
        };
        match a.as_str() {
            "--full" => args.scale = Scale::Paper,
            "--scale" => args.scale = Scale::Fraction(next_usize("--scale") as u32),
            "--exact" => args.scale = Scale::Exact(next_usize("--exact")),
            "--queries" => args.queries = next_usize("--queries"),
            "--seed" => args.seed = next_usize("--seed") as u64,
            other => panic!("unknown argument: {other}"),
        }
    }
    args
}

/// Construct a tree the way the benchmark of \[33\] does: HR-trees are
/// bulk-loaded via the Hilbert curve; the other variants are built by
/// tuple-wise insertion.
pub fn paper_build<const D: usize>(variant: Variant, data: &Dataset<D>) -> RTree<D> {
    let config = TreeConfig::paper_default(variant).with_world(data.domain);
    match variant {
        Variant::Hilbert => RTree::bulk_load(config, &data.items()),
        _ => {
            let mut tree = RTree::new(config);
            for (rect, id) in data.items() {
                tree.insert(rect, id);
            }
            tree
        }
    }
}

/// Clip a (cloned) base tree with the paper-default parameters.
pub fn clip_tree<const D: usize>(tree: &RTree<D>, method: ClipMethod) -> ClippedRTree<D> {
    ClippedRTree::from_tree(tree.clone(), ClipConfig::paper_default::<D>(method))
}

/// Calibrated query workload for one profile, counted against `tree`.
pub fn workload<const D: usize>(
    data: &Dataset<D>,
    tree: &RTree<D>,
    profile: QueryProfile,
    args: &Args,
) -> Vec<Rect<D>> {
    let mut counter = |q: &Rect<D>| tree.range_query(q).len();
    cbb_datasets::generate_queries(data, profile, args.queries, args.seed, &mut counter)
}

/// Total leaf accesses of `queries` on the base tree.
pub fn base_leaf_accesses<const D: usize>(tree: &RTree<D>, queries: &[Rect<D>]) -> u64 {
    let mut stats = AccessStats::new();
    for q in queries {
        tree.range_query_stats(q, &mut stats);
    }
    stats.leaf_accesses
}

/// Total leaf accesses of `queries` on a clipped tree.
pub fn clipped_leaf_accesses<const D: usize>(tree: &ClippedRTree<D>, queries: &[Rect<D>]) -> u64 {
    let mut stats = AccessStats::new();
    for q in queries {
        tree.range_query_stats(q, &mut stats);
    }
    stats.leaf_accesses
}

/// Render one table row: a label followed by right-aligned cells.
pub fn row(label: &str, cells: &[String]) -> String {
    let mut s = format!("{label:<22}");
    for c in cells {
        s.push_str(&format!("{c:>12}"));
    }
    s
}

/// Render a header row plus a rule.
pub fn header(title: &str, label: &str, cells: &[&str]) {
    println!("\n=== {title} ===");
    let r = row(
        label,
        &cells.iter().map(|c| c.to_string()).collect::<Vec<_>>(),
    );
    println!("{r}");
    println!("{}", "-".repeat(r.len().min(120)));
}

/// Format a percentage cell.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", 100.0 * v)
}

/// The experiment variants in paper order.
pub const VARIANTS: [Variant; 4] = Variant::ALL;

/// The clipping methods in paper order.
pub const METHODS: [ClipMethod; 2] = [ClipMethod::Skyline, ClipMethod::Stairline];

#[cfg(test)]
mod tests {
    use super::*;
    use cbb_datasets::dataset2;

    #[test]
    fn paper_build_all_variants_small() {
        let data = dataset2("par02", Scale::Exact(2_000));
        for v in VARIANTS {
            let tree = paper_build(v, &data);
            assert_eq!(tree.len(), 2_000, "{v:?}");
            tree.validate().unwrap();
            let clipped = clip_tree(&tree, ClipMethod::Stairline);
            clipped.verify_clips().unwrap();
        }
    }

    #[test]
    fn workload_and_accessors() {
        let data = dataset2("par02", Scale::Exact(3_000));
        let tree = paper_build(Variant::RStar, &data);
        let args = Args {
            queries: 50,
            ..Default::default()
        };
        let qs = workload(&data, &tree, QueryProfile::QR0, &args);
        assert_eq!(qs.len(), 50);
        let base = base_leaf_accesses(&tree, &qs);
        let clipped = clip_tree(&tree, ClipMethod::Stairline);
        let with = clipped_leaf_accesses(&clipped, &qs);
        assert!(with <= base);
        assert!(base > 0);
    }

    #[test]
    fn formatting() {
        assert_eq!(pct(0.256), "25.6%");
        let r = row("x", &["1".into(), "2".into()]);
        assert!(r.starts_with('x'));
        assert!(r.contains('2'));
    }
}
