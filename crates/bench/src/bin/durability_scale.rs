//! Durability experiment: what the snapshot + WAL tier costs at write
//! time and what recovery does at restart. For each write-stream
//! length, the same scripted update stream runs through an in-memory
//! service and a durable one (fsync per micro-batch), then the durable
//! root is recovered into a fresh service and its answers are checked
//! against the never-restarted one (ranges as sorted sets, kNN
//! byte-equal — the workspace's recovery-oracle convention).
//!
//! Emits `BENCH_durability.json`. The machine-independent columns are
//! `records_replayed` and `pages_read` (snapshot pages recovery
//! actually touched); walls and throughputs are hardware-dependent
//! context. `CBB_BENCH_SMOKE=1` shrinks the workload to CI scale.
//!
//! ```text
//! cargo run --release -p cbb-bench --bin durability_scale \
//!     [--exact N] [--seed N]
//! ```

use std::time::Instant;

use cbb_bench::{header, row, smoke_mode};
use cbb_core::{ClipConfig, ClipMethod};
use cbb_datasets::skew::clustered_with_layout;
use cbb_engine::UniformGrid;
use cbb_geom::{Point, Rect, SplitMix64};
use cbb_rtree::{TreeConfig, Variant};
use cbb_serve::{DurabilityConfig, QueryService, Request, Response, ServiceConfig, Update};

fn scripted_batches(batches: usize, seed: u64, base: usize) -> Vec<Vec<Update<2>>> {
    let mut rng = SplitMix64::new(seed);
    (0..batches)
        .map(|b| {
            let mut ops = Vec::new();
            for _ in 0..16 {
                let x = rng.gen_range(0.0, 900_000.0);
                let y = rng.gen_range(0.0, 900_000.0);
                let s = rng.gen_range(500.0, 20_000.0);
                ops.push(Update::Insert(Rect::new(
                    Point([x, y]),
                    Point([x + s, y + s]),
                )));
            }
            for d in 0..4 {
                ops.push(Update::Delete(cbb_rtree::DataId(
                    ((b * 13 + d * 5) % base) as u32,
                )));
            }
            ops
        })
        .collect()
}

fn apply_stream(
    service: &QueryService<2, UniformGrid<2>>,
    dataset: cbb_serve::DatasetId,
    batches: &[Vec<Update<2>>],
) -> f64 {
    let started = Instant::now();
    for ops in batches {
        service
            .submit(Request::UpdateBatch {
                dataset,
                updates: ops.clone(),
            })
            .expect("service is open")
            .wait()
            .expect("write served");
    }
    started.elapsed().as_secs_f64() * 1e3
}

/// Range answers in sorted-set form plus kNN answers verbatim.
fn answers(
    service: &QueryService<2, UniformGrid<2>>,
    dataset: cbb_serve::DatasetId,
) -> Vec<Response> {
    let mut rng = SplitMix64::new(404);
    let mut out = Vec::new();
    for _ in 0..20 {
        let x = rng.gen_range(0.0, 900_000.0);
        let y = rng.gen_range(0.0, 900_000.0);
        let s = rng.gen_range(5_000.0, 90_000.0);
        let response = service
            .submit(Request::Range {
                dataset,
                query: Rect::new(Point([x, y]), Point([x + s, y + s])),
                use_clips: true,
            })
            .expect("open")
            .wait()
            .expect("served")
            .response;
        let mut ids = match response {
            Response::Range(ids) => ids,
            other => panic!("expected range, got {other:?}"),
        };
        ids.sort_unstable();
        out.push(Response::Range(ids));
        let p = Point([rng.gen_range(0.0, 900_000.0), rng.gen_range(0.0, 900_000.0)]);
        out.push(
            service
                .submit(Request::Knn {
                    dataset,
                    center: p,
                    k: 5,
                })
                .expect("open")
                .wait()
                .expect("served")
                .response,
        );
    }
    out
}

fn main() {
    let mut n = if smoke_mode() {
        2_000usize
    } else {
        20_000usize
    };
    let mut seed = 0xD0Bu64;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut next_usize = |flag: &str| -> usize {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{flag} needs a numeric argument"))
        };
        match a.as_str() {
            "--exact" => n = next_usize("--exact"),
            "--seed" => seed = next_usize("--seed") as u64,
            other => panic!("unknown argument: {other}"),
        }
    }
    let stream_lengths: &[usize] = if smoke_mode() {
        &[8, 32]
    } else {
        &[50, 200, 800]
    };

    let data = clustered_with_layout::<2>(n, 6, 30_000.0, 0.15, 9, 9);
    let partitioner = UniformGrid::new(data.domain, 4);
    let tree = TreeConfig::tiny(Variant::RStar);
    let clip = ClipConfig::paper_default::<2>(ClipMethod::Stairline);
    println!(
        "workload: clustered {n} boxes, uniform 4x4 tiling, write batches of 20 \
         updates, fsync per batch, recovery oracle per stream length",
    );

    header(
        "durability scan",
        "batches",
        &[
            "records",
            "pages",
            "identical",
            "mem ms",
            "wal ms",
            "recover ms",
        ],
    );
    let mut rows = Vec::new();
    for &batches in stream_lengths {
        let stream = scripted_batches(batches, seed, n);
        let root = std::env::temp_dir().join(format!(
            "cbb_bench_durability_{batches}_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);

        // In-memory reference: the never-restarted service.
        let reference = QueryService::start(
            ServiceConfig::default(),
            partitioner,
            data.boxes.clone(),
            tree,
            clip,
        );
        let ref_ds = reference.default_dataset();
        let mem_wall = apply_stream(&reference, ref_ds, &stream);

        // Durable run: same stream with a WAL fsync per batch.
        let durable = QueryService::start(
            ServiceConfig {
                durability: Some(DurabilityConfig::new(&root)),
                ..ServiceConfig::default()
            },
            partitioner,
            data.boxes.clone(),
            tree,
            clip,
        );
        let dur_ds = durable.default_dataset();
        let wal_wall = apply_stream(&durable, dur_ds, &stream);
        let write_report = durable.shutdown();
        assert_eq!(write_report.wal_appends, batches as u64);

        // Recover and compare against the reference.
        let started = Instant::now();
        let recovered = QueryService::start(
            ServiceConfig {
                durability: Some(DurabilityConfig::new(&root)),
                ..ServiceConfig::default()
            },
            partitioner,
            Vec::new(),
            tree,
            clip,
        );
        let recover_wall = started.elapsed().as_secs_f64() * 1e3;
        let rec_ds = recovered.default_dataset();
        let identical = answers(&recovered, rec_ds) == answers(&reference, ref_ds)
            && recovered.dataset_version(rec_ds) == reference.dataset_version(ref_ds);
        assert!(identical, "recovered answers diverged at {batches} batches");
        let report = recovered.shutdown();
        reference.shutdown();
        assert!(report.recovered_records > 0, "the WAL tail must replay");
        assert!(report.recovered_pages > 0, "the snapshot must be read");

        println!(
            "{}",
            row(
                &batches.to_string(),
                &[
                    report.recovered_records.to_string(),
                    report.recovered_pages.to_string(),
                    u8::from(identical).to_string(),
                    format!("{mem_wall:.1}"),
                    format!("{wal_wall:.1}"),
                    format!("{recover_wall:.1}"),
                ],
            )
        );
        rows.push(format!(
            "{{\"batches\": {batches}, \"records_replayed\": {}, \"pages_read\": {}, \
             \"recovered_answers_identical\": {}, \"mem_wall_ms\": {mem_wall:.2}, \
             \"wal_wall_ms\": {wal_wall:.2}, \"recover_wall_ms\": {recover_wall:.2}, \
             \"fsync_overhead_x\": {:.2}}}",
            report.recovered_records,
            report.recovered_pages,
            u8::from(identical),
            wal_wall / mem_wall.max(1e-9),
        ));
        let _ = std::fs::remove_dir_all(&root);
    }

    let json = format!(
        "{{\n  \"workload\": {{\"objects\": {n}, \"updates_per_batch\": 20, \
         \"partitioner\": \"uniform 4x4\", \"variant\": \"R*-tree\", \"clip\": \"CSTA\", \
         \"fsync\": \"per micro-batch\"}},\n  \"rows\": [\n    {}\n  ]\n}}\n",
        rows.join(",\n    "),
    );
    std::fs::write("BENCH_durability.json", &json).expect("write BENCH_durability.json");
    println!(
        "\nwrote BENCH_durability.json ({} stream lengths)",
        rows.len()
    );
}
