//! Ablation — the Figure 5 scoring approximation vs exact greedy
//! selection.
//!
//! Algorithm 1 scores candidates with a cheap union approximation
//! (assumptions 1–3 of §IV-B) instead of exact inclusion–exclusion. This
//! ablation re-selects clip points per node with an *exact greedy*
//! strategy — each step adds the candidate maximising the true marginal
//! clipped volume (union computed exactly) — and compares the resulting
//! clipped fraction. The paper's claim: the approximation error is small
//! because runner-up candidates usually flank the top one.

use cbb_bench::{header, paper_build, parse_args, pct, row};
use cbb_core::{oriented_skyline, stairline, ClipConfig, ClipMethod, ClipPoint};
use cbb_datasets::{dataset2, dataset3, Dataset};
use cbb_geom::{union_volume_exact, CornerMask, Rect};
use cbb_rtree::{ClippedRTree, Variant};

/// Exact greedy selection: from all valid candidates of every corner, add
/// the clip point with the largest true marginal union gain until `k`
/// points are chosen or gains fall below `τ · vol`.
fn exact_greedy<const D: usize>(
    mbb: &Rect<D>,
    children: &[Rect<D>],
    k: usize,
    tau: f64,
) -> Vec<ClipPoint<D>> {
    let mut candidates: Vec<ClipPoint<D>> = Vec::new();
    for b in CornerMask::all::<D>() {
        let corners: Vec<_> = children.iter().map(|r| r.corner(b)).collect();
        let sky = oriented_skyline(&corners, b);
        for p in stairline(&sky, b) {
            candidates.push(ClipPoint::new(b, p));
        }
    }
    let mut chosen: Vec<ClipPoint<D>> = Vec::new();
    let mut regions: Vec<Rect<D>> = Vec::new();
    let mut covered = 0.0;
    let threshold = tau * mbb.volume();
    while chosen.len() < k && !candidates.is_empty() {
        let mut best: Option<(f64, usize)> = None;
        for (i, c) in candidates.iter().enumerate() {
            let mut with = regions.clone();
            with.push(c.region(mbb));
            let gain = union_volume_exact(mbb, &with) - covered;
            if best.is_none_or(|(g, _)| gain > g) {
                best = Some((gain, i));
            }
        }
        let (gain, i) = best.expect("non-empty candidates");
        if gain <= threshold {
            break;
        }
        let c = candidates.swap_remove(i);
        regions.push(c.region(mbb));
        covered += gain;
        chosen.push(c);
    }
    chosen
}

fn run<const D: usize>(data: &Dataset<D>, _args: &cbb_bench::Args, sample_nodes: usize) {
    let tree = paper_build(Variant::RRStar, data);
    let cfg = ClipConfig::paper_default::<D>(ClipMethod::Stairline);
    let clipped = ClippedRTree::from_tree(tree, cfg);

    let mut approx_sum = 0.0;
    let mut exact_sum = 0.0;
    let mut count = 0usize;
    for (id, node) in clipped.tree.iter_nodes() {
        if node.entries.is_empty() || node.mbb.volume() <= 0.0 {
            continue;
        }
        if count >= sample_nodes {
            break;
        }
        let vol = node.mbb.volume();
        // Paper scoring (what the tree already holds).
        let regions: Vec<Rect<D>> = clipped
            .clips_of(id)
            .iter()
            .map(|c| c.region(&node.mbb))
            .collect();
        approx_sum += union_volume_exact(&node.mbb, &regions) / vol;
        // Exact greedy rival.
        let greedy = exact_greedy(&node.mbb, &node.entry_rects(), cfg.k, cfg.tau);
        let regions: Vec<Rect<D>> = greedy.iter().map(|c| c.region(&node.mbb)).collect();
        exact_sum += union_volume_exact(&node.mbb, &regions) / vol;
        count += 1;
    }
    let n = count.max(1) as f64;
    println!(
        "{}",
        row(
            data.name.as_str(),
            &[
                pct(approx_sum / n),
                pct(exact_sum / n),
                format!(
                    "{:.2}%",
                    100.0 * (exact_sum - approx_sum) / exact_sum.max(1e-12)
                ),
            ]
        )
    );
}

fn main() {
    let args = parse_args();
    header(
        "Scoring ablation — avg clipped fraction per node (CSTA, k = 2^{d+1})",
        "dataset",
        &["Fig.5 approx", "exact greedy", "gap"],
    );
    run(&dataset2("par02", args.scale), &args, 200);
    run(&dataset2("rea02", args.scale), &args, 200);
    run(&dataset3("axo03", args.scale), &args, 100);
    println!("\n(paper §IV-B argues the approximation loses little; the gap column");
    println!(" quantifies the clipped volume an exact-greedy selector would add)");
}
