//! Figure 15 — query latency on disk-resident indexes whose size far
//! exceeds the buffer pool (the paper scales par02/par03 to 2³⁰ objects on
//! a hard disk; we recreate the same "index ≫ memory" regime at a
//! configurable scale — default 2¹⁸ objects against a 128-page pool — per
//! the DESIGN.md substitution note).
//!
//! Measured: average wall-clock query time and page faults for HR-tree and
//! RR*-tree, unclipped vs CSKY vs CSTA, per query profile.
//!
//! Paper headlines: CSTA ≈ 2× the benefit of CSKY; a CSTA-clipped HR-tree
//! matches or beats an unclipped RR*-tree; everything stays interactive.

use std::time::Instant;

use cbb_bench::{clip_tree, header, paper_build, parse_args, row, workload};
use cbb_core::ClipMethod;
use cbb_datasets::{dataset2, dataset3, Dataset, QueryProfile, Scale};
use cbb_rtree::Variant;
use cbb_storage::{DiskRTree, MemPageStore, PageStore};

const POOL_PAGES: usize = 128;

fn run<const D: usize>(data: &Dataset<D>, args: &cbb_bench::Args) {
    header(
        &format!(
            "Figure 15 — {} ({} objects, {}-page pool): avg query µs / page faults",
            data.name,
            data.len(),
            POOL_PAGES
        ),
        "configuration",
        &["QR0 µs", "QR0 pf", "QR1 µs", "QR1 pf", "QR2 µs", "QR2 pf"],
    );
    for variant in [Variant::Hilbert, Variant::RRStar] {
        let tree = paper_build(variant, data);
        let queries_per_profile: Vec<_> = QueryProfile::ALL
            .iter()
            .map(|p| workload(data, &tree, *p, args))
            .collect();
        for (label, method) in [
            ("unclipped", None),
            ("CSKY", Some(ClipMethod::Skyline)),
            ("CSTA", Some(ClipMethod::Stairline)),
        ] {
            let clipped = clip_tree(&tree, method.unwrap_or(ClipMethod::Skyline));
            let use_clips = method.is_some();
            let mut store = MemPageStore::new();
            let mut disk = DiskRTree::persist(&clipped, &mut store, POOL_PAGES);
            let mut cells = Vec::new();
            for queries in &queries_per_profile {
                disk.drop_caches();
                let start = Instant::now();
                let mut faults = 0u64;
                for q in queries {
                    let (_, s) = disk.range_query(&mut store, q, use_clips);
                    faults += s.page_faults;
                }
                let avg_us = start.elapsed().as_secs_f64() * 1e6 / queries.len() as f64;
                cells.push(format!("{avg_us:.0}"));
                cells.push(format!("{}", faults / queries.len() as u64));
            }
            println!("{}", row(&format!("{} {}", variant.label(), label), &cells));
            let _ = store.counters();
        }
    }
}

fn main() {
    let mut args = parse_args();
    // Figure 15 uses an explicit object count rather than a paper
    // fraction; default 2^18 unless the caller passed --exact/--full.
    if matches!(args.scale, Scale::Fraction(_)) {
        args.scale = Scale::Exact(1 << 18);
    }
    run(&dataset2("par02", args.scale), &args);
    run(&dataset3("par03", args.scale), &args);
    println!("\n(paper: CSTA ≈ 2× CSKY's gain; CSTA-HR matches or beats unclipped RR*)");
}
