//! Update experiment: the cost of keeping the tile-tree store fresh
//! under a churning write stream — delta-apply (per-tile incremental
//! maintenance, copy-on-write tile sharing) vs rebuilding the forest
//! per batch. Emits `BENCH_update.json`.
//!
//! ```text
//! cargo run --release -p cbb-bench --bin update_scale \
//!     [--exact N] [--batches N] [--ops N] [--seed N]
//! ```
//!
//! The headline column is **nodes allocated**: R-tree node
//! constructions performed to absorb the whole write stream. It is
//! machine-independent (the 1-core-container caveat of the wall-clock
//! columns does not apply), and the bin *asserts* delta-apply allocates
//! fewer nodes than rebuild-per-batch while serving byte-identical
//! answers. A third row drives the same stream through the `cbb-serve`
//! write path (`UpdateBatch` requests) to show the service counters
//! agree with the engine-level run. `CBB_BENCH_SMOKE=1` shrinks the
//! workload to CI scale (explicit flags still override).

use std::sync::Arc;
use std::time::Instant;

use cbb_bench::{header, row, smoke_mode};
use cbb_core::{ClipConfig, ClipMethod};
use cbb_datasets::skew::clustered_with_layout;
use cbb_datasets::stream::{query_stream, StreamKind, StreamProfile};
use cbb_engine::{AdaptiveGrid, BatchExecutor, CompactionPolicy, TileForest, Update};
use cbb_geom::{Point, Rect, SplitMix64};
use cbb_rtree::{DataId, TreeConfig, Variant};
use cbb_serve::{QueryService, Request, ServiceConfig};

fn verification_queries(n: usize, seed: u64) -> Vec<Rect<2>> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            let x = rng.gen_range(0.0, 950_000.0);
            let y = rng.gen_range(0.0, 950_000.0);
            let s = rng.gen_range(5_000.0, 60_000.0);
            Rect::new(Point([x, y]), Point([x + s, y + s]))
        })
        .collect()
}

fn sorted(mut v: Vec<DataId>) -> Vec<DataId> {
    v.sort();
    v
}

fn main() {
    let (mut n, mut batches, mut ops_per_batch) = if smoke_mode() {
        (4_000usize, 8usize, 150usize)
    } else {
        (20_000usize, 40usize, 400usize)
    };
    let mut seed = 0xCBBu64;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut next_usize = |flag: &str| -> usize {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{flag} needs a numeric argument"))
        };
        match a.as_str() {
            "--exact" => n = next_usize("--exact"),
            "--batches" => batches = next_usize("--batches"),
            "--ops" => ops_per_batch = next_usize("--ops"),
            "--seed" => seed = next_usize("--seed") as u64,
            other => panic!("unknown argument: {other}"),
        }
    }
    let workers = 2usize;

    let data = clustered_with_layout::<2>(n, 8, 20_000.0, 0.1, seed, seed);
    let partitioner = AdaptiveGrid::from_sample(data.domain, [6, 6], &data.boxes);
    let tree = TreeConfig::paper_default(Variant::RStar);
    let clip = ClipConfig::paper_default::<2>(ClipMethod::Stairline);

    // One write script for every mode: a churn stream (60 % inserts /
    // 40 % deletes of distinct base objects), cut into batches.
    let profile = StreamProfile {
        write_fraction: 1.0,
        delete_share: 0.4,
        ..StreamProfile::default()
    };
    let script: Vec<Update<2>> = query_stream(&data, batches * ops_per_batch, &profile, seed)
        .into_iter()
        .map(|q| match q.kind {
            StreamKind::Insert(rect) => Update::Insert(rect),
            StreamKind::Delete(i) => Update::Delete(DataId(i)),
            other => unreachable!("all-write profile produced {other:?}"),
        })
        .collect();
    let queries = verification_queries(60, seed ^ 0x51);
    println!(
        "workload: clu02 ({n} boxes), {batches} batches × {ops_per_batch} updates \
         (60% insert / 40% delete), adaptive 6×6 grid, R*-tree + CSTA",
    );

    // ── Delta-apply: one build, then per-tile incremental maintenance.
    // Compaction is disabled on every mode: the rebuild oracle below
    // mirrors the arena append-only, and the pre/post-catalog node
    // numbers stay directly comparable (slot reuse would not change
    // them, but determinism beats trusting that).
    let started = Instant::now();
    let mut exec = BatchExecutor::build(partitioner.clone(), &data.boxes, tree, clip, workers);
    exec.store_mut().set_compaction(CompactionPolicy::never());
    let initial_build_nodes = exec.forest().nodes_allocated();
    let mut delta_nodes = 0u64;
    let mut delta_tiles = 0usize;
    for ops in script.chunks(ops_per_batch) {
        let outcome = exec.apply_updates(ops, tree, clip);
        delta_nodes += outcome.nodes_allocated;
        delta_tiles += outcome.tiles_touched;
    }
    let delta_wall = started.elapsed().as_secs_f64() * 1e3;
    let delta_answers = exec.run(&queries, workers, true);

    // ── Rebuild-per-batch: the same script absorbed by building a
    // fresh forest after every batch (the `swap_data` discipline).
    let started = Instant::now();
    let mut arena = data.boxes.clone();
    let mut live = vec![true; arena.len()];
    let mut rebuild_nodes = 0u64;
    let mut last_forest = None;
    for ops in script.chunks(ops_per_batch) {
        for op in ops {
            match op {
                Update::Insert(r) => {
                    arena.push(*r);
                    live.push(true);
                }
                Update::Delete(id) => live[id.0 as usize] = false,
            }
        }
        let forest =
            TileForest::build_where(&partitioner, &arena, Some(&live), tree, clip, workers);
        rebuild_nodes += forest.nodes_allocated();
        last_forest = Some(forest);
    }
    let rebuild_wall = started.elapsed().as_secs_f64() * 1e3;
    let rebuilt = BatchExecutor::with_forest_where(
        partitioner.clone(),
        arena.clone(),
        live.clone(),
        Arc::new(last_forest.expect("at least one batch")),
    );
    let rebuilt_answers = rebuilt.run(&queries, workers, true);

    // Counter-exactness: the maintained store answers exactly like the
    // rebuilt one (ids are shared — both use the same arena slots).
    assert_eq!(exec.objects(), &arena[..], "arenas diverged");
    assert_eq!(exec.live(), &live[..], "liveness diverged");
    for (i, (d, r)) in delta_answers
        .results
        .iter()
        .zip(&rebuilt_answers.results)
        .enumerate()
    {
        assert_eq!(
            sorted(d.clone()),
            sorted(r.clone()),
            "delta and rebuild disagree on query {i}"
        );
    }

    // ── The serve write path: the same batches as `UpdateBatch`
    // requests through the service queue (one version bump per batch,
    // zero rebuilds).
    let started = Instant::now();
    let service = QueryService::start(
        ServiceConfig {
            exec_workers: workers,
            compaction: CompactionPolicy::never(),
            ..ServiceConfig::default()
        },
        partitioner.clone(),
        data.boxes.clone(),
        tree,
        clip,
    );
    let dataset = service.default_dataset();
    for ops in script.chunks(ops_per_batch) {
        let summary = service
            .submit(Request::UpdateBatch {
                dataset,
                updates: ops.to_vec(),
            })
            .expect("service is open")
            .wait()
            .expect("update batch served")
            .response
            .into_updated();
        assert_eq!(summary.results.len(), ops.len());
    }
    let serve_wall = started.elapsed().as_secs_f64() * 1e3;
    assert_eq!(service.live_object_count(), exec.live_count());
    assert_eq!(service.data_version().0, batches as u64);
    assert_eq!(
        service.data_version(),
        service.dataset_version(dataset).unwrap(),
        "the single-store shim reads the default catalog dataset"
    );
    // Catalog path ≡ pre-catalog single store: the served answers must
    // be identical to the directly maintained executor's.
    for (i, q) in queries.iter().enumerate() {
        let served = service
            .submit(Request::Range {
                dataset,
                query: *q,
                use_clips: true,
            })
            .expect("service is open")
            .wait()
            .expect("query served")
            .response
            .into_range();
        assert_eq!(
            sorted(served),
            sorted(delta_answers.results[i].clone()),
            "catalog answer diverged from the single-store executor on query {i}"
        );
    }
    let report = service.shutdown();
    assert_eq!(report.forest_builds, 1, "the write path must not rebuild");
    assert_eq!(report.write_batches, batches as u64);
    assert_eq!(report.delta_nodes_allocated, delta_nodes);
    let ds_row = report
        .dataset(dataset)
        .expect("default dataset is in the report");
    assert_eq!(ds_row.write_batches, batches as u64);
    assert_eq!(ds_row.delta_nodes_allocated, delta_nodes);

    // The point of the exercise, enforced: delta maintenance builds
    // measurably less structure than rebuild-per-batch.
    assert!(
        delta_nodes < rebuild_nodes,
        "delta-apply ({delta_nodes} nodes) must beat rebuild-per-batch ({rebuild_nodes})"
    );

    header(
        "update maintenance scan",
        "mode",
        &["batches", "nodes alloc", "tiles", "wall ms"],
    );
    let rows = [
        (
            "delta",
            delta_nodes,
            delta_tiles.to_string(),
            delta_wall,
            initial_build_nodes,
        ),
        (
            "rebuild",
            rebuild_nodes,
            "-".to_string(),
            rebuild_wall,
            initial_build_nodes,
        ),
        (
            "serve_delta",
            report.delta_nodes_allocated,
            "-".to_string(),
            serve_wall,
            initial_build_nodes,
        ),
    ];
    let mut json_rows = Vec::new();
    for (mode, nodes, tiles, wall, initial) in rows {
        println!(
            "{}",
            row(
                mode,
                &[
                    batches.to_string(),
                    nodes.to_string(),
                    tiles.clone(),
                    format!("{wall:.1}"),
                ],
            )
        );
        json_rows.push(format!(
            "{{\"mode\": \"{mode}\", \"batches\": {batches}, \"ops_per_batch\": {ops_per_batch}, \
             \"nodes_allocated\": {nodes}, \"initial_build_nodes\": {initial}, \
             \"wall_ms\": {wall:.2}, \"final_live\": {}}}",
            exec.live_count(),
        ));
    }
    println!(
        "\ndelta-apply absorbed the stream with {:.1}x fewer node allocations than \
         rebuild-per-batch",
        rebuild_nodes as f64 / delta_nodes.max(1) as f64
    );

    let json = format!(
        "{{\n  \"workload\": {{\"dataset\": \"clu02\", \"objects\": {n}, \
         \"batches\": {batches}, \"ops_per_batch\": {ops_per_batch}, \
         \"insert_share\": 0.6, \"delete_share\": 0.4, \"grid\": [6, 6], \
         \"variant\": \"R*-tree\", \"clip\": \"CSTA\"}},\n  \"rows\": [\n    {}\n  ]\n}}\n",
        json_rows.join(",\n    "),
    );
    std::fs::write("BENCH_update.json", &json).expect("write BENCH_update.json");
    println!("wrote BENCH_update.json ({} modes)", json_rows.len());
}
