//! Catalog experiment: what serving **named datasets** buys a
//! join-heavy workload. Three ways to run the same repeated
//! `roads ⋈ pois` join over two co-located layers:
//!
//! * `rebuild_per_call` — the engine baseline: `partitioned_join`
//!   assigns and bulk-loads *both* sides on every call.
//! * `same_dataset` — the pre-catalog serving shape: one dataset is
//!   served (its forest cached per `(DatasetId, DataVersion)`), the
//!   probe side is streamed by the client per request.
//! * `cross_dataset` — both layers served: `Request::CrossJoin` joins
//!   the two stores, borrowing **both** sides' cached forests (the
//!   layers share a tiling, so the STT fast path applies) — nothing is
//!   assigned or bulk-loaded per call.
//!
//! Pair counts are asserted identical across all three modes, and the
//! forest-build counter is asserted flat across every repetition —
//! repeats must hit the cache, never rebuild. Emits
//! `BENCH_catalog.json`. `CBB_BENCH_SMOKE=1` shrinks the workload to CI
//! scale (explicit flags still override).
//!
//! ```text
//! cargo run --release -p cbb-bench --bin catalog_scale \
//!     [--exact N] [--reps N] [--seed N]
//! ```

use std::time::Instant;

use cbb_bench::{header, row, smoke_mode};
use cbb_core::{ClipConfig, ClipMethod};
use cbb_datasets::multi::{layers, LayerSpec};
use cbb_engine::{
    partitioned_join, AdaptiveGrid, AnyPartitioner, AutoPolicy, JoinAlgo, JoinPlan, SplitPolicy,
};
use cbb_rtree::{TreeConfig, Variant};
use cbb_serve::{QueryService, Request, ServiceConfig};

fn main() {
    let (mut n, mut reps) = if smoke_mode() {
        (3_000usize, 6usize)
    } else {
        (15_000usize, 20usize)
    };
    let mut seed = 0xCBBu64;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut next_usize = |flag: &str| -> usize {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{flag} needs a numeric argument"))
        };
        match a.as_str() {
            "--exact" => n = next_usize("--exact"),
            "--reps" => reps = next_usize("--reps"),
            "--seed" => seed = next_usize("--seed") as u64,
            other => panic!("unknown argument: {other}"),
        }
    }
    let workers = 4usize;

    // Two co-located clustered layers (shared blob layout): the
    // cross-layer join concentrates where real cross-layer joins do.
    let specs = [
        LayerSpec::clustered("roads", n),
        LayerSpec::clustered("pois", n),
    ];
    let generated = layers::<2>(&specs, seed, seed ^ 0x5EED);
    let (roads, pois) = (&generated[0].dataset, &generated[1].dataset);
    let tree = TreeConfig::paper_default(Variant::RStar);
    let clip = ClipConfig::paper_default::<2>(ClipMethod::Stairline);
    // One tiling fitted to the indexed layer, shared by both datasets —
    // the shape that lets CrossJoin borrow the probe forest too.
    let tiling: AnyPartitioner<2> =
        AdaptiveGrid::from_sample(pois.domain, [6, 6], &pois.boxes).into();
    println!(
        "workload: 2 co-located clustered layers × {n} boxes, {reps} repeated \
         roads ⋈ pois STT joins, shared adaptive 6×6 tiling, R*-tree + CSTA",
    );

    let plan = JoinPlan {
        partitioner: tiling.clone(),
        tree,
        clip,
        use_clips: true,
        algo: JoinAlgo::Stt,
        workers,
        split: SplitPolicy::Auto,
        auto: AutoPolicy::default(),
    };

    // ── rebuild_per_call: both sides assigned + bulk-loaded per join.
    let started = Instant::now();
    let mut expected_pairs = None;
    for _ in 0..reps {
        let result = partitioned_join(&plan, &roads.boxes, &pois.boxes);
        assert_eq!(
            *expected_pairs.get_or_insert(result.pairs),
            result.pairs,
            "repeat joins must be stable"
        );
    }
    let rebuild_wall = started.elapsed().as_secs_f64() * 1e3;
    let expected_pairs = expected_pairs.expect("at least one rep");
    assert!(expected_pairs > 0, "co-located layers must join pairs");

    // ── The served modes share one service holding both layers.
    let service: QueryService<2, AnyPartitioner<2>> = QueryService::start_catalog(
        ServiceConfig {
            exec_workers: workers,
            ..ServiceConfig::default()
        },
        tree,
        clip,
    );
    let roads_id = service
        .create_dataset("roads", tiling.clone(), roads.boxes.clone())
        .expect("fresh name");
    let pois_id = service
        .create_dataset("pois", tiling.clone(), pois.boxes.clone())
        .expect("fresh name");
    let builds_after_create = service.report().forest_builds;
    assert_eq!(builds_after_create, 2, "one build per created dataset");

    // ── same_dataset: the indexed side is served (cached forest), the
    // probe side streams from the client per request.
    let started = Instant::now();
    for _ in 0..reps {
        let result = service
            .submit(Request::Join {
                dataset: pois_id,
                probes: roads.boxes.clone(),
                algo: JoinAlgo::Stt,
                use_clips: true,
            })
            .expect("service is open")
            .wait()
            .expect("join served")
            .response
            .into_join();
        assert_eq!(result.pairs, expected_pairs, "same-dataset join pairs");
    }
    let same_wall = started.elapsed().as_secs_f64() * 1e3;
    let report = service.report();
    assert_eq!(
        report.forest_builds, builds_after_create,
        "served joins must not rebuild"
    );
    let hits_after_same = report.forest_hits;

    // ── cross_dataset: both sides served, both forests borrowed.
    let started = Instant::now();
    for _ in 0..reps {
        let result = service
            .submit(Request::CrossJoin {
                left: roads_id,
                right: pois_id,
                algo: JoinAlgo::Stt,
                use_clips: true,
            })
            .expect("service is open")
            .wait()
            .expect("cross join served")
            .response
            .into_join();
        assert_eq!(result.pairs, expected_pairs, "cross-dataset join pairs");
    }
    let cross_wall = started.elapsed().as_secs_f64() * 1e3;
    let report = service.shutdown();
    assert_eq!(
        report.forest_builds, builds_after_create,
        "cross-dataset joins must not rebuild either side"
    );
    assert_eq!(report.cross_joins, reps as u64);
    assert_eq!(
        report.forest_hits - hits_after_same,
        2 * reps as u64,
        "every cross join borrows BOTH cached forests"
    );

    header(
        "repeated-join catalog scan",
        "mode",
        &["reps", "pairs", "wall ms", "ms/join"],
    );
    let rows = [
        ("rebuild_per_call", rebuild_wall, 0u64, 0u64),
        (
            "same_dataset",
            same_wall,
            builds_after_create,
            hits_after_same,
        ),
        (
            "cross_dataset",
            cross_wall,
            report.forest_builds,
            report.forest_hits,
        ),
    ];
    let mut json_rows = Vec::new();
    for (mode, wall, builds, hits) in rows {
        println!(
            "{}",
            row(
                mode,
                &[
                    reps.to_string(),
                    expected_pairs.to_string(),
                    format!("{wall:.1}"),
                    format!("{:.2}", wall / reps as f64),
                ],
            )
        );
        json_rows.push(format!(
            "{{\"mode\": \"{mode}\", \"reps\": {reps}, \"pairs\": {expected_pairs}, \
             \"wall_ms\": {wall:.2}, \"ms_per_join\": {:.3}, \
             \"forest_builds\": {builds}, \"forest_hits\": {hits}}}",
            wall / reps as f64,
        ));
    }
    println!(
        "\ncross-dataset cached joins ran {:.1}x faster per call than rebuild-per-call",
        rebuild_wall / cross_wall.max(1e-9)
    );

    let json = format!(
        "{{\n  \"workload\": {{\"layers\": [\"roads\", \"pois\"], \"objects_per_layer\": {n}, \
         \"reps\": {reps}, \"algo\": \"STT\", \"grid\": [6, 6], \
         \"variant\": \"R*-tree\", \"clip\": \"CSTA\"}},\n  \"rows\": [\n    {}\n  ]\n}}\n",
        json_rows.join(",\n    "),
    );
    std::fs::write("BENCH_catalog.json", &json).expect("write BENCH_catalog.json");
    println!("wrote BENCH_catalog.json ({} modes)", json_rows.len());
}
