//! Serving experiment: open-loop latency/throughput of the `cbb-serve`
//! query service under a bursty request stream, across micro-batching
//! configurations. Emits `BENCH_serve.json` with per-config throughput,
//! p50/p99 latency, batch shape, and join-tree-cache counters.
//!
//! ```text
//! cargo run --release -p cbb-bench --bin serve_scale \
//!     [--exact N] [--requests N] [--rate HZ] [--seed N]
//! ```
//!
//! Open loop: requests are submitted at the stream's scheduled arrival
//! times regardless of completions (the "millions of users" model — the
//! world does not slow down because the service is busy), so queue wait
//! shows up in the latency percentiles instead of being hidden by a
//! closed feedback loop. `CBB_BENCH_SMOKE=1` shrinks the default
//! workload to CI-smoke scale (explicit flags still override).

use std::time::{Duration, Instant};

use cbb_bench::{header, row, smoke_mode};
use cbb_core::{ClipConfig, ClipMethod};
use cbb_datasets::skew::clustered_with_layout;
use cbb_datasets::stream::{query_stream, StreamKind, StreamProfile};
use cbb_engine::{AdaptiveGrid, BatchExecutor, JoinAlgo};
use cbb_rtree::{TreeConfig, Variant};
use cbb_serve::{Completion, QueryService, Request, Response, ServiceConfig};
use cbb_telemetry::Histogram;

struct ConfigRow {
    name: &'static str,
    config: ServiceConfig,
}

fn main() {
    let (mut n, mut requests, mut rate) = if smoke_mode() {
        (4_000usize, 800usize, 1_500.0f64)
    } else {
        (30_000usize, 6_000usize, 3_000.0f64)
    };
    let mut seed = 0xCBBu64;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut next_usize = |flag: &str| -> usize {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{flag} needs a numeric argument"))
        };
        match a.as_str() {
            "--exact" => n = next_usize("--exact"),
            "--requests" => requests = next_usize("--requests"),
            "--rate" => {
                rate = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|r| *r > 0.0)
                    .unwrap_or_else(|| panic!("--rate needs a positive numeric argument"));
            }
            "--seed" => seed = next_usize("--seed") as u64,
            other => panic!("unknown argument: {other}"),
        }
    }

    let data = clustered_with_layout::<2>(n, 8, 20_000.0, 0.1, seed, seed);
    let partitioner = AdaptiveGrid::from_sample(data.domain, [6, 6], &data.boxes);
    let tree = TreeConfig::paper_default(Variant::RStar);
    let clip = ClipConfig::paper_default::<2>(ClipMethod::Stairline);
    let profile = StreamProfile {
        mean_rate_hz: rate,
        burstiness: 4.0,
        knn_fraction: 0.2,
        knn_k: 10,
        extent_frac: 0.02,
        ..StreamProfile::default()
    };
    let stream = query_stream(&data, requests, &profile, seed);
    let join_probes: Vec<_> = data
        .boxes
        .iter()
        .step_by((n / 200).max(1))
        .copied()
        .collect();
    println!(
        "workload: clu02 ({n} boxes), {requests} requests at {rate:.0} Hz \
         (burstiness 4, 20% kNN), adaptive 6×6 grid, R*-tree + CSTA",
    );

    // The pre-catalog single-store oracle: a direct `BatchExecutor`
    // over the same data. The catalog-routed service must answer a
    // sample of the stream identically, so the bench numbers stay
    // comparable across the refactor.
    let direct = BatchExecutor::build(partitioner.clone(), &data.boxes, tree, clip, 4);
    let verify = stream.len().min(64);

    let configs = [
        ConfigRow {
            name: "unbatched",
            config: ServiceConfig {
                exec_workers: 4,
                ..ServiceConfig::unbatched()
            },
        },
        ConfigRow {
            name: "batch32_1ms",
            config: ServiceConfig {
                batch_max: 32,
                batch_deadline: Duration::from_millis(1),
                exec_workers: 4,
                ..ServiceConfig::default()
            },
        },
        ConfigRow {
            name: "batch128_3ms",
            config: ServiceConfig {
                batch_max: 128,
                batch_deadline: Duration::from_millis(3),
                exec_workers: 4,
                ..ServiceConfig::default()
            },
        },
    ];

    header(
        "open-loop service scan",
        "config",
        &["done", "rps", "p50 ms", "p99 ms", "mean batch"],
    );
    let mut rows = Vec::new();
    for ConfigRow { name, config } in configs {
        let config = ServiceConfig {
            queue_capacity: requests.max(1),
            ..config
        };
        let service = QueryService::start(
            config.clone(),
            partitioner.clone(),
            data.boxes.clone(),
            tree,
            clip,
        );
        let dataset = service.default_dataset();

        // Replay the stream open-loop, then collect every completion.
        let started = Instant::now();
        let mut handles = Vec::with_capacity(stream.len());
        for q in &stream {
            let scheduled = started + Duration::from_secs_f64(q.at_ms / 1_000.0);
            if let Some(wait) = scheduled.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
            let request = match &q.kind {
                StreamKind::Range(rect) => Request::Range {
                    dataset,
                    query: *rect,
                    use_clips: true,
                },
                StreamKind::Knn(center, k) => Request::Knn {
                    dataset,
                    center: *center,
                    k: *k,
                },
                other => unreachable!("read-only profile produced {other:?}"),
            };
            handles.push(service.submit(request).expect("service is open"));
        }
        let completions: Vec<Completion> = handles
            .into_iter()
            .map(|h| h.wait().expect("request served"))
            .collect();
        let wall = started.elapsed().as_secs_f64();

        // Catalog path ≡ pre-catalog single store: the sampled answers
        // must be identical to the direct executor's.
        for (q, completion) in stream.iter().zip(&completions).take(verify) {
            match (&q.kind, &completion.response) {
                (StreamKind::Range(rect), Response::Range(ids)) => {
                    let want = direct.run(&[*rect], 1, true).results.remove(0);
                    assert_eq!(ids, &want, "catalog range diverged from single store");
                }
                (StreamKind::Knn(center, k), Response::Knn(nn)) => {
                    let want = direct.run_knn(&[(*center, *k)], 1).results.remove(0);
                    assert_eq!(nn, &want, "catalog kNN diverged from single store");
                }
                (kind, response) => unreachable!("{kind:?} answered with {response:?}"),
            }
        }
        assert_eq!(
            service.data_version(),
            service.dataset_version(dataset).unwrap()
        );

        // Latency percentiles through the shared telemetry histogram
        // (log₂ buckets, capped at the true max) — the same estimator
        // the service's own latency metrics report, so bench numbers
        // and scrape numbers read on one scale.
        let latency = Histogram::standalone();
        for c in &completions {
            latency.observe_duration(c.latency());
        }
        let latency = latency.snapshot();

        // Repeat joins on the warm service: the version-keyed cache must
        // serve them all from the single start-time forest build.
        for _ in 0..3 {
            let result = service
                .submit(Request::Join {
                    dataset,
                    probes: join_probes.clone(),
                    algo: JoinAlgo::Stt,
                    use_clips: true,
                })
                .expect("service is open")
                .wait()
                .expect("join served")
                .response
                .into_join();
            assert!(result.pairs > 0, "join probes were drawn from the data");
        }
        let report = service.shutdown();
        assert_eq!(report.completed, report.submitted, "shutdown drains");
        assert_eq!(
            report.forest_builds, 1,
            "repeat joins must not rebuild tile trees"
        );
        assert!(report.forest_hits >= 3);

        let rps = latency.count as f64 / wall;
        let p50 = latency.quantile(0.5) as f64 / 1e6;
        let p99 = latency.quantile(0.99) as f64 / 1e6;
        println!(
            "{}",
            row(
                name,
                &[
                    report.completed.to_string(),
                    format!("{rps:.0}"),
                    format!("{p50:.3}"),
                    format!("{p99:.3}"),
                    format!("{:.2}", report.mean_batch),
                ],
            )
        );
        rows.push(format!(
            "{{\"config\": \"{name}\", \"batch_max\": {}, \"deadline_ms\": {:.3}, \
             \"dispatchers\": {}, \"exec_workers\": {}, \"requests\": {}, \
             \"throughput_rps\": {rps:.1}, \"p50_ms\": {p50:.4}, \"p99_ms\": {p99:.4}, \
             \"mean_batch\": {:.3}, \"max_batch\": {}, \"batches\": {}, \
             \"forest_builds\": {}, \"forest_hits\": {}}}",
            config.batch_max,
            config.batch_deadline.as_secs_f64() * 1e3,
            config.dispatchers,
            config.exec_workers,
            report.completed,
            report.mean_batch,
            report.max_batch,
            report.batches,
            report.forest_builds,
            report.forest_hits,
        ));
    }
    assert!(rows.len() >= 2, "the scan must compare batching configs");

    let json = format!(
        "{{\n  \"workload\": {{\"dataset\": \"clu02\", \"objects\": {n}, \
         \"requests\": {requests}, \"rate_hz\": {rate:.1}, \"burstiness\": 4.0, \
         \"knn_fraction\": 0.2, \"grid\": [6, 6], \"variant\": \"R*-tree\", \
         \"clip\": \"CSTA\"}},\n  \"rows\": [\n    {}\n  ]\n}}\n",
        rows.join(",\n    "),
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("\nwrote BENCH_serve.json ({} configs)", rows.len());
}
