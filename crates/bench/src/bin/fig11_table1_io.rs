//! Figure 11 + Table I — leaf accesses of clipped R-trees relative to
//! their unclipped counterparts, for the three query profiles over all
//! seven datasets and four variants; Table I aggregates the percentage I/O
//! reduction (skyline/stairline).
//!
//! Paper Table I (skyline/stairline % I/O reduction):
//! ```text
//!              QR0      QR1      QR2      Total
//! QR-tree     24/44    16/29     7/13    16/29
//! HR-tree     25/42    18/30     8/14    17/29
//! R*-tree     21/38    15/28     7/14    14/27
//! RR*-tree    15/28    11/21   4.5/9.5   10/19
//! Total       21/38    15/27   6.5/13    14/26
//! ```

use cbb_bench::{
    base_leaf_accesses, clip_tree, clipped_leaf_accesses, header, paper_build, parse_args, pct,
    row, workload, METHODS, VARIANTS,
};
use cbb_datasets::{dataset2, dataset3, Dataset, QueryProfile};

/// `reduction[variant][profile][method]` accumulated across datasets.
#[derive(Default)]
struct Accumulator {
    /// (variant, profile, method) → (sum of reductions, count).
    sums: std::collections::HashMap<(usize, usize, usize), (f64, usize)>,
}

impl Accumulator {
    fn add(&mut self, v: usize, p: usize, m: usize, reduction: f64) {
        let e = self.sums.entry((v, p, m)).or_insert((0.0, 0));
        e.0 += reduction;
        e.1 += 1;
    }

    fn mean(&self, v: Option<usize>, p: Option<usize>, m: usize) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for (&(vv, pp, mm), &(s, c)) in &self.sums {
            if mm == m && v.is_none_or(|x| x == vv) && p.is_none_or(|x| x == pp) {
                sum += s;
                n += c;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }
}

fn run_dataset<const D: usize>(data: &Dataset<D>, args: &cbb_bench::Args, acc: &mut Accumulator) {
    header(
        &format!(
            "Figure 11 — {} (leaf accesses w.r.t. unclipped = 100%)",
            data.name
        ),
        "variant",
        &[
            "QR0 SKY", "QR0 STA", "QR1 SKY", "QR1 STA", "QR2 SKY", "QR2 STA",
        ],
    );
    for (vi, variant) in VARIANTS.iter().enumerate() {
        let tree = paper_build(*variant, data);
        let clipped: Vec<_> = METHODS.iter().map(|m| clip_tree(&tree, *m)).collect();
        let mut cells = Vec::new();
        for (pi, profile) in QueryProfile::ALL.iter().enumerate() {
            let queries = workload(data, &tree, *profile, args);
            let base = base_leaf_accesses(&tree, &queries).max(1);
            for (mi, c) in clipped.iter().enumerate() {
                let with = clipped_leaf_accesses(c, &queries);
                let ratio = with as f64 / base as f64;
                cells.push(pct(ratio));
                acc.add(vi, pi, mi, 1.0 - ratio);
            }
        }
        println!("{}", row(variant.label(), &cells));
    }
}

fn main() {
    let args = parse_args();
    let mut acc = Accumulator::default();

    run_dataset(&dataset2("par02", args.scale), &args, &mut acc);
    run_dataset(&dataset3("par03", args.scale), &args, &mut acc);
    run_dataset(&dataset2("rea02", args.scale), &args, &mut acc);
    run_dataset(&dataset3("rea03", args.scale), &args, &mut acc);
    run_dataset(&dataset3("axo03", args.scale), &args, &mut acc);
    run_dataset(&dataset3("den03", args.scale), &args, &mut acc);
    run_dataset(&dataset3("neu03", args.scale), &args, &mut acc);

    // --- Table I ---
    header(
        "Table I — avg % I/O reduction (skyline/stairline), all datasets",
        "variant",
        &["QR0", "QR1", "QR2", "Total"],
    );
    let fmt_pair = |sky: f64, sta: f64| format!("{:.0}/{:.0}", 100.0 * sky, 100.0 * sta);
    for (vi, variant) in VARIANTS.iter().enumerate() {
        let mut cells = Vec::new();
        for pi in 0..3 {
            cells.push(fmt_pair(
                acc.mean(Some(vi), Some(pi), 0),
                acc.mean(Some(vi), Some(pi), 1),
            ));
        }
        cells.push(fmt_pair(
            acc.mean(Some(vi), None, 0),
            acc.mean(Some(vi), None, 1),
        ));
        println!("{}", row(variant.label(), &cells));
    }
    let mut cells = Vec::new();
    for pi in 0..3 {
        cells.push(fmt_pair(
            acc.mean(None, Some(pi), 0),
            acc.mean(None, Some(pi), 1),
        ));
    }
    cells.push(fmt_pair(acc.mean(None, None, 0), acc.mean(None, None, 1)));
    println!("{}", row("Total", &cells));
    println!("\n(paper Table I total: 14/26)");
}
