//! Observability overhead experiment: the same scripted workload served
//! with telemetry **enabled** vs **disabled**, checked three ways:
//!
//! 1. **Answers are identical** — instrumentation must never change
//!    results.
//! 2. **Machine-independent overhead** — the enabled service's
//!    registry-recorded engine work (`cbb_access_*` counters) is
//!    compared against a direct-engine oracle running the identical
//!    workload: telemetry must induce *zero* extra traversal work, so
//!    the gated ratio is 1.0 (CI bound: < 1.05).
//! 3. **Wall clock** (informational) — enabled / disabled elapsed
//!    ratio, reported but not gated: CI machines are too noisy for a
//!    5% wall bound to be a stable gate, the counter ratio is not.
//!
//! Emits `BENCH_obs.json`. `CBB_BENCH_SMOKE=1` shrinks the workload to
//! CI-smoke scale (explicit flags still override).
//!
//! ```text
//! cargo run --release -p cbb-bench --bin obs_scale \
//!     [--exact N] [--requests N] [--seed N]
//! ```

use std::time::{Duration, Instant};

use cbb_bench::{header, row, smoke_mode};
use cbb_core::{ClipConfig, ClipMethod};
use cbb_datasets::skew::clustered_with_layout;
use cbb_engine::{AdaptiveGrid, DatasetStore};
use cbb_geom::{Point, Rect, SplitMix64};
use cbb_rtree::{AccessStats, TreeConfig, Variant};
use cbb_serve::{QueryService, Request, Response, ServiceConfig, TelemetryConfig, DEFAULT_DATASET};

const EXEC_WORKERS: usize = 4;

/// One scripted request, dataset-agnostic (the id is resolved per
/// service instance).
enum Op {
    Range(Rect<2>, bool),
    Knn(Point<2>, usize),
}

struct RunOutcome {
    answers: Vec<Response>,
    wall_s: f64,
    families: usize,
    total_recorded: u64,
    scrape_text_len: usize,
    slow_entries: usize,
    access: Vec<(&'static str, u64)>,
}

fn main() {
    let (mut n, mut requests) = if smoke_mode() {
        (4_000usize, 800usize)
    } else {
        (30_000usize, 6_000usize)
    };
    let mut seed = 0x0B5u64;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut next_usize = |flag: &str| -> usize {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{flag} needs a numeric argument"))
        };
        match a.as_str() {
            "--exact" => n = next_usize("--exact"),
            "--requests" => requests = next_usize("--requests"),
            "--seed" => seed = next_usize("--seed") as u64,
            other => panic!("unknown argument: {other}"),
        }
    }

    let data = clustered_with_layout::<2>(n, 8, 20_000.0, 0.1, seed, seed);
    let partitioner = AdaptiveGrid::from_sample(data.domain, [6, 6], &data.boxes);
    let tree = TreeConfig::paper_default(Variant::RStar);
    let clip = ClipConfig::paper_default::<2>(ClipMethod::Stairline);

    // Scripted closed-loop workload: 80% ranges (half clipped), 20% kNN.
    let mut rng = SplitMix64::new(seed ^ 0x51);
    let lo = data.domain.lo.0;
    let hi = data.domain.hi.0;
    let workload: Vec<Op> = (0..requests)
        .map(|i| {
            let x = rng.gen_range(lo[0], hi[0]);
            let y = rng.gen_range(lo[1], hi[1]);
            if i % 5 == 4 {
                Op::Knn(Point([x, y]), 1 + i % 10)
            } else {
                let s = rng.gen_range((hi[0] - lo[0]) * 0.002, (hi[0] - lo[0]) * 0.02);
                Op::Range(Rect::new(Point([x, y]), Point([x + s, y + s])), i % 2 == 0)
            }
        })
        .collect();
    println!(
        "workload: clu02 ({n} boxes), {requests} scripted requests \
         (80% range / 20% kNN), adaptive 6×6 grid, R*-tree + CSTA",
    );

    let access_fields: Vec<&'static str> = AccessStats::new()
        .fields()
        .iter()
        .map(|(name, _)| *name)
        .collect();
    let run = |telemetry: TelemetryConfig| -> RunOutcome {
        let service = QueryService::start(
            ServiceConfig {
                batch_max: 32,
                batch_deadline: Duration::from_millis(1),
                exec_workers: EXEC_WORKERS,
                queue_capacity: requests.max(1),
                telemetry,
                ..ServiceConfig::default()
            },
            partitioner.clone(),
            data.boxes.clone(),
            tree,
            clip,
        );
        let dataset = service.default_dataset();
        let started = Instant::now();
        let handles: Vec<_> = workload
            .iter()
            .map(|op| {
                let req = match op {
                    Op::Range(query, use_clips) => Request::Range {
                        dataset,
                        query: *query,
                        use_clips: *use_clips,
                    },
                    Op::Knn(center, k) => Request::Knn {
                        dataset,
                        center: *center,
                        k: *k,
                    },
                };
                service.submit(req).expect("service is open")
            })
            .collect();
        let answers: Vec<Response> = handles
            .into_iter()
            .map(|h| h.wait().expect("request served").response)
            .collect();
        let wall_s = started.elapsed().as_secs_f64();
        let scrape = service.scrape();
        let slow_entries = service.slow_queries().len();
        let labels = [("dataset", DEFAULT_DATASET)];
        let access = access_fields
            .iter()
            .map(|field| {
                let name = format!("cbb_access_{field}_total");
                (*field, scrape.snapshot.counter(&name, &labels).unwrap_or(0))
            })
            .collect();
        service.shutdown();
        RunOutcome {
            answers,
            wall_s,
            families: scrape.snapshot.families.len(),
            total_recorded: scrape.snapshot.total_recorded(),
            scrape_text_len: scrape.text.len(),
            slow_entries,
            access,
        }
    };

    header(
        "telemetry on/off",
        "mode",
        &["answers", "wall s", "families", "slow ring"],
    );
    let enabled = run(TelemetryConfig::default());
    let disabled = run(TelemetryConfig::disabled());
    for (name, o) in [("enabled", &enabled), ("disabled", &disabled)] {
        println!(
            "{}",
            row(
                name,
                &[
                    o.answers.len().to_string(),
                    format!("{:.3}", o.wall_s),
                    o.families.to_string(),
                    o.slow_entries.to_string(),
                ],
            )
        );
    }

    // 1. Instrumentation never changes answers.
    assert_eq!(
        enabled.answers, disabled.answers,
        "telemetry must not change answers"
    );
    // Disabled mode retains nothing and renders nothing.
    assert_eq!(disabled.total_recorded, 0, "disabled registry records");
    assert_eq!(disabled.scrape_text_len, 0, "disabled scrape renders text");
    assert_eq!(disabled.slow_entries, 0, "disabled slow ring retains");
    // Enabled mode exposes the full catalog and retains slow queries.
    assert!(
        enabled.families >= 15,
        "scrape covers {} families, need ≥ 15",
        enabled.families
    );
    assert!(enabled.slow_entries > 0, "slow ring is empty");

    // 2. Machine-independent overhead: the enabled service's recorded
    // engine work vs a direct-engine oracle on the same workload.
    let store = DatasetStore::build(partitioner.clone(), &data.boxes, tree, clip, EXEC_WORKERS);
    let mut clipped = Vec::new();
    let mut baseline = Vec::new();
    let mut probes = Vec::new();
    for op in &workload {
        match op {
            Op::Range(query, true) => clipped.push(*query),
            Op::Range(query, false) => baseline.push(*query),
            Op::Knn(center, k) => probes.push((*center, *k)),
        }
    }
    let mut oracle = AccessStats::new();
    oracle += &store.run(&clipped, EXEC_WORKERS, true).stats;
    oracle += &store.run(&baseline, EXEC_WORKERS, false).stats;
    oracle += &store.run_knn(&probes, EXEC_WORKERS).stats;

    let oracle_work: u64 = oracle.fields().iter().map(|(_, v)| v).sum();
    let recorded_work: u64 = enabled.access.iter().map(|(_, v)| v).sum();
    for (field, want) in oracle.fields() {
        let got = enabled
            .access
            .iter()
            .find(|(name, _)| *name == field)
            .map(|(_, v)| *v);
        assert_eq!(
            got,
            Some(want),
            "cbb_access_{field}_total diverged from the oracle"
        );
    }
    let counter_overhead = if oracle_work == 0 {
        1.0
    } else {
        recorded_work as f64 / oracle_work as f64
    };
    assert!(
        counter_overhead <= 1.05,
        "telemetry induced extra engine work: ratio {counter_overhead:.4}"
    );
    let wall_overhead = enabled.wall_s / disabled.wall_s.max(1e-9);
    println!(
        "\ncounter overhead {counter_overhead:.4} (gated ≤ 1.05), \
         wall overhead {wall_overhead:.3} (informational)",
    );

    let json = format!(
        "{{\n  \"workload\": {{\"dataset\": \"clu02\", \"objects\": {n}, \
         \"requests\": {requests}, \"range_fraction\": 0.8, \
         \"knn_fraction\": 0.2, \"grid\": [6, 6], \"variant\": \"R*-tree\", \
         \"clip\": \"CSTA\"}},\n  \
         \"counter_overhead_ratio\": {counter_overhead:.6},\n  \
         \"wall_overhead_ratio\": {wall_overhead:.4},\n  \
         \"oracle_work_units\": {oracle_work},\n  \
         \"recorded_work_units\": {recorded_work},\n  \
         \"metric_families\": {},\n  \
         \"slow_ring_entries\": {},\n  \
         \"wall_enabled_s\": {:.4},\n  \"wall_disabled_s\": {:.4}\n}}\n",
        enabled.families, enabled.slow_entries, enabled.wall_s, disabled.wall_s,
    );
    std::fs::write("BENCH_obs.json", &json).expect("write BENCH_obs.json");
    println!("wrote BENCH_obs.json ({} families)", enabled.families);
}
