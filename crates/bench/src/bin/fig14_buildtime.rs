//! Figure 14 — index construction time relative to an unclipped RR*-tree
//! (= 100 %), with the CBB computation overhead isolated, for every
//! dataset. HR-tree and R*-tree build times provide context.
//!
//! Paper headlines: HR-tree builds fastest (bulk loading), R*-tree slowest
//! (forced reinsertion); CSKY adds <7 % CPU, CSTA up to 4 % (2-d) / 30 %
//! (3-d).

use std::time::Instant;

use cbb_bench::{header, paper_build, parse_args, row, METHODS};
use cbb_core::ClipConfig;
use cbb_datasets::{dataset2, dataset3, Dataset};
use cbb_rtree::{ClippedRTree, Variant};

fn run<const D: usize>(data: &Dataset<D>, _args: &cbb_bench::Args) {
    // Reference: unclipped RR*-tree build time.
    let t0 = Instant::now();
    let rr = paper_build(Variant::RRStar, data);
    let rr_time = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let _hr = paper_build(Variant::Hilbert, data);
    let hr_time = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let _rs = paper_build(Variant::RStar, data);
    let rs_time = t0.elapsed().as_secs_f64();

    let mut cells = vec![
        format!("{:.0}%", 100.0 * hr_time / rr_time),
        format!("{:.0}%", 100.0 * rs_time / rr_time),
    ];
    for method in METHODS {
        // Clipping overhead on top of the RR* build (construction-time
        // clipping: one Algorithm 1 pass per node).
        let t0 = Instant::now();
        let _clipped = ClippedRTree::from_tree(rr.clone(), ClipConfig::paper_default::<D>(method));
        let clip_time = t0.elapsed().as_secs_f64();
        cells.push(format!("{:.0}%", 100.0 * (rr_time + clip_time) / rr_time));
    }
    cells.push(format!("{rr_time:.2}s"));
    println!("{}", row(data.name.as_str(), &cells));
}

fn main() {
    let args = parse_args();
    header(
        "Figure 14 — build time w.r.t. unclipped RR*-tree (=100%)",
        "dataset",
        &["HR-tree", "R*-tree", "CSKY-RR*", "CSTA-RR*", "RR* abs"],
    );
    run(&dataset2("par02", args.scale), &args);
    run(&dataset3("par03", args.scale), &args);
    run(&dataset2("rea02", args.scale), &args);
    run(&dataset3("rea03", args.scale), &args);
    run(&dataset3("axo03", args.scale), &args);
    run(&dataset3("den03", args.scale), &args);
    run(&dataset3("neu03", args.scale), &args);
    println!("\n(paper: HR fastest, R* slowest; CSKY adds <7% CPU, CSTA up to 30% in 3-d)");
}
