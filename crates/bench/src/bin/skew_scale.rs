//! Skew experiment: uniform vs adaptive vs quadtree partitioning of a
//! clustered spatial join, across all four R-tree variants. Emits
//! `BENCH_skew.json` with per-partitioner load imbalance (max-tile /
//! mean-tile estimated work) and per-run wall-clock.
//!
//! ```text
//! cargo run --release -p cbb-bench --bin skew_scale \
//!     [--exact N] [--grid N] [--budget N] [--workers N] [--seed N]
//! ```
//!
//! `CBB_BENCH_SMOKE=1` shrinks the default workload to CI-smoke scale
//! (explicit flags still override).
//!
//! The run aborts if any configuration disagrees on the pair count, or if
//! the adaptive grid fails to reduce imbalance vs the uniform grid — the
//! acceptance bar this experiment exists to demonstrate.

use std::time::Instant;

use cbb_bench::{header, row, smoke_mode};
use cbb_core::{ClipConfig, ClipMethod};
use cbb_datasets::skew::clustered_with_layout;
use cbb_engine::{
    load_imbalance, partitioned_join, AdaptiveGrid, JoinPlan, Partitioner, QuadtreePartitioner,
    UniformGrid,
};
use cbb_rtree::{TreeConfig, Variant};

fn main() {
    let mut n = if smoke_mode() {
        6_000usize
    } else {
        30_000usize
    };
    let mut grid = 8usize;
    let mut budget = 0usize; // 0 = derive from n and the tile count
    let mut workers = 4usize;
    let mut seed = 0xCBBu64;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut next_usize = |flag: &str| -> usize {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{flag} needs a numeric argument"))
        };
        match a.as_str() {
            "--exact" => n = next_usize("--exact"),
            "--grid" => grid = next_usize("--grid"),
            "--budget" => budget = next_usize("--budget"),
            "--workers" => workers = next_usize("--workers"),
            "--seed" => seed = next_usize("--seed") as u64,
            other => panic!("unknown argument: {other}"),
        }
    }
    if budget == 0 {
        // Aim the region split at the same granularity as the grids.
        budget = (2 * n / (grid * grid)).max(64);
    }

    // Zipf-populated blobs at shared locations on both sides: the dense
    // blob pair is the hot tile a uniform grid serialises on.
    let left = clustered_with_layout::<2>(n, 8, 20_000.0, 0.1, seed, seed);
    let right = clustered_with_layout::<2>(n, 8, 20_000.0, 0.1, seed, seed ^ 0xFACE);
    let domain = left.domain.union(&right.domain);
    println!(
        "workload: clu02 ⋈ clu02 ({n} boxes/side, 8 Zipf clusters), \
         grid {grid}×{grid}, quadtree budget {budget}, {workers} workers",
    );

    // A combined sample drives the adaptive boundaries: both sides load
    // the same tiles, so both belong in the quantile estimate.
    let mut sample = left.boxes.clone();
    sample.extend_from_slice(&right.boxes);
    let uniform = UniformGrid::new(domain, grid);
    let adaptive = AdaptiveGrid::from_sample(domain, [grid; 2], &sample);
    let quadtree = QuadtreePartitioner::build(domain, &sample, budget);

    let imb_uniform = load_imbalance(&uniform, &left.boxes, &right.boxes);
    let imb_adaptive = load_imbalance(&adaptive, &left.boxes, &right.boxes);
    let imb_quadtree = load_imbalance(&quadtree, &left.boxes, &right.boxes);

    header(
        "load imbalance (max-tile / mean-tile estimated work)",
        "partitioner",
        &["tiles", "imbalance"],
    );
    for (name, tiles, imb) in [
        ("uniform", uniform.tile_count(), imb_uniform),
        ("adaptive", adaptive.tile_count(), imb_adaptive),
        ("quadtree", quadtree.tile_count(), imb_quadtree),
    ] {
        println!("{}", row(name, &[tiles.to_string(), format!("{imb:.2}")]));
    }
    assert!(
        imb_adaptive < imb_uniform,
        "adaptive imbalance {imb_adaptive:.2} did not improve on uniform {imb_uniform:.2}"
    );

    let clip = ClipConfig::paper_default::<2>(ClipMethod::Stairline);
    let mut runs = Vec::new();
    let mut expected: Option<u64> = None;
    for variant in Variant::ALL {
        header(
            &format!("partitioned STT join, {variant:?}"),
            "partitioner",
            &["pairs", "wall ms"],
        );
        let tree = TreeConfig::paper_default(variant);
        let mut timed = |name: &str, result: cbb_joins::JoinResult, ms: f64| {
            println!(
                "{}",
                row(name, &[result.pairs.to_string(), format!("{ms:.1}")])
            );
            match expected {
                None => expected = Some(result.pairs),
                Some(e) => assert_eq!(
                    result.pairs, e,
                    "{variant:?}/{name}: partitioning changed the pair count"
                ),
            }
            runs.push(format!(
                "{{\"variant\": \"{variant:?}\", \"partitioner\": \"{name}\", \
                 \"wall_ms\": {ms:.3}, \"pairs\": {}, \"leaf_accesses\": {}, \
                 \"clip_prunes\": {}}}",
                result.pairs,
                result.leaf_accesses(),
                result.clip_prunes,
            ));
        };
        let t = Instant::now();
        let r = partitioned_join(
            &JoinPlan::new(uniform, tree, clip, workers),
            &left.boxes,
            &right.boxes,
        );
        timed("uniform", r, t.elapsed().as_secs_f64() * 1e3);
        let t = Instant::now();
        let r = partitioned_join(
            &JoinPlan::new(adaptive.clone(), tree, clip, workers),
            &left.boxes,
            &right.boxes,
        );
        timed("adaptive", r, t.elapsed().as_secs_f64() * 1e3);
        let t = Instant::now();
        let r = partitioned_join(
            &JoinPlan::new(quadtree.clone(), tree, clip, workers),
            &left.boxes,
            &right.boxes,
        );
        timed("quadtree", r, t.elapsed().as_secs_f64() * 1e3);
    }

    let json = format!(
        "{{\n  \"workload\": {{\"dataset\": \"clu02\", \"objects_per_side\": {n}, \
         \"clusters\": 8, \"grid\": [{grid}, {grid}], \"quadtree_budget\": {budget}, \
         \"workers\": {workers}, \"clip\": \"CSTA\", \"pairs\": {}}},\n  \
         \"imbalance\": {{\"uniform\": {imb_uniform:.4}, \"adaptive\": {imb_adaptive:.4}, \
         \"quadtree\": {imb_quadtree:.4}}},\n  \"runs\": [\n    {}\n  ]\n}}\n",
        expected.unwrap_or(0),
        runs.join(",\n    "),
    );
    std::fs::write("BENCH_skew.json", &json).expect("write BENCH_skew.json");
    println!(
        "\nimbalance uniform {imb_uniform:.2} → adaptive {imb_adaptive:.2} \
         / quadtree {imb_quadtree:.2}; wrote BENCH_skew.json"
    );
}
