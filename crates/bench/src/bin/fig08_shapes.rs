//! Figure 8 — dead space of the eight bounding methods on the running
//! example's two leaf nodes (the 7 objects of Figure 3a).
//!
//! Paper reference values (bottom node / top node):
//!   MBC 79/69, MBB 64/42, RMBB 63/42, 4-C 54/31, 5-C 51/29, CH 48/29,
//!   CBB_SKY 59/42, CBB_STA 34/8 (percent dead space).

use cbb_bench::{header, pct, row};
use cbb_bounding::shape::{dead_space_of_shape, fit_all_shapes};
use cbb_core::{Cbb, ClipConfig, ClipMethod};
use cbb_geom::{Point, Rect};

/// The running example: 7 objects grouped into two leaf nodes as in
/// Figure 3a (o1–o5 bottom node, o6–o7 top node).
fn figure3_nodes() -> [Vec<Rect<2>>; 2] {
    let bottom = vec![
        Rect::new(Point([0.0, 55.0]), Point([18.0, 100.0])), // o1
        Rect::new(Point([8.0, 30.0]), Point([28.0, 38.0])),  // o2
        Rect::new(Point([25.0, 8.0]), Point([60.0, 22.0])),  // o3
        Rect::new(Point([62.0, 0.0]), Point([88.0, 40.0])),  // o4
        Rect::new(Point([80.0, 12.0]), Point([100.0, 35.0])), // o5
    ];
    let top = vec![
        Rect::new(Point([30.0, 120.0]), Point([55.0, 170.0])), // o6
        Rect::new(Point([60.0, 110.0]), Point([95.0, 150.0])), // o7
    ];
    [bottom, top]
}

fn main() {
    let nodes = figure3_nodes();
    header(
        "Figure 8 — dead space per bounding method (running example)",
        "method",
        &["bottom", "top", "paper-B", "paper-T"],
    );
    let paper: &[(&str, (u32, u32))] = &[
        ("MBC", (79, 69)),
        ("MBB", (64, 42)),
        ("RMBB", (63, 42)),
        ("4-C", (54, 31)),
        ("5-C", (51, 29)),
        ("CH", (48, 29)),
        ("CBB_SKY", (59, 42)),
        ("CBB_STA", (34, 8)),
    ];

    let mut measured: Vec<(String, [f64; 2])> = Vec::new();
    for (label, _) in paper.iter().take(6) {
        let mut vals = [0.0; 2];
        for (i, objects) in nodes.iter().enumerate() {
            let shapes = fit_all_shapes(objects);
            let shape = &shapes.iter().find(|(l, _)| l == label).unwrap().1;
            vals[i] = dead_space_of_shape(shape, objects, 20_000, 0xF168);
        }
        measured.push((label.to_string(), vals));
    }
    // CBBs: dead space of the clipped shape = (dead − clipped) volume over
    // the remaining (unclipped) volume.
    for (label, method) in [
        ("CBB_SKY", ClipMethod::Skyline),
        ("CBB_STA", ClipMethod::Stairline),
    ] {
        let mut vals = [0.0; 2];
        for (i, objects) in nodes.iter().enumerate() {
            let cbb = Cbb::build(objects, &ClipConfig::paper_default::<2>(method)).unwrap();
            let vol = cbb.mbb.volume();
            let object_vol = cbb_geom::union_volume_exact(&cbb.mbb, objects);
            let clipped_vol = cbb.clipped_volume();
            let remaining = vol - clipped_vol;
            vals[i] = ((remaining - object_vol) / remaining).clamp(0.0, 1.0);
        }
        measured.push((label.to_string(), vals));
    }

    for ((label, vals), (_, (pb, pt))) in measured.iter().zip(paper) {
        println!(
            "{}",
            row(
                label,
                &[
                    pct(vals[0]),
                    pct(vals[1]),
                    format!("{pb}%"),
                    format!("{pt}%"),
                ]
            )
        );
    }
    println!(
        "\n(absolute numbers depend on the hand-placed example geometry; the\n\
         ordering — CBB_STA < CH < 5-C < 4-C < MBB ≈ RMBB < MBC — is the claim)"
    );
}
