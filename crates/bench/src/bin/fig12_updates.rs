//! Figure 12 — expected number of re-clipped CBBs per insertion, stacked
//! by cause: node splits (always force re-clipping), MBB changes without a
//! split, and CBB-only changes (the eager Algorithm 2 validity test
//! fired). Protocol: batch-construct on a random 90 % of the input, then
//! insert the remaining 10 % through the maintenance layer.
//!
//! Paper headlines: ≤ 0.35 re-clips/insert on average (R*-tree higher due
//! to its reinsertion policy); ≈½ of re-clips stem from MBB changes;
//! ≈60 % of the worst-case +1 re-clips are avoided.

use cbb_bench::{clip_tree, header, parse_args, row, VARIANTS};
use cbb_core::ClipMethod;
use cbb_datasets::{dataset2, dataset3, Dataset};
use cbb_rtree::DataId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn run<const D: usize>(data: &Dataset<D>, args: &cbb_bench::Args) {
    header(
        &format!(
            "Figure 12 — expected re-clips per insertion on {}",
            data.name
        ),
        "variant",
        &["splits", "mbb-chg", "cbb-chg", "total", "tests"],
    );
    for variant in VARIANTS {
        // 90/10 split of the input.
        let mut items = data.items();
        let mut rng = StdRng::seed_from_u64(args.seed ^ 0xF1612);
        items.shuffle(&mut rng);
        let insert_count = (items.len() / 10).max(1);
        let (inserts, build) = items.split_at(insert_count);

        let mut base = cbb_rtree::RTree::new(
            cbb_rtree::TreeConfig::paper_default(variant).with_world(data.domain),
        );
        // Batch construction (tuple-wise, like the benchmark's loader; the
        // HR-tree is bulk-loaded).
        let tree = if variant == cbb_rtree::Variant::Hilbert {
            cbb_rtree::RTree::bulk_load(
                cbb_rtree::TreeConfig::paper_default(variant).with_world(data.domain),
                build,
            )
        } else {
            for (rect, id) in build {
                base.insert(*rect, *id);
            }
            base
        };

        let mut clipped = clip_tree(&tree, ClipMethod::Stairline);
        for (i, (rect, _)) in inserts.iter().enumerate() {
            clipped.insert(*rect, DataId(1_000_000 + i as u32));
        }
        let m = clipped.maintenance;
        let per = |x: u64| format!("{:.3}", x as f64 / m.inserts.max(1) as f64);
        println!(
            "{}",
            row(
                variant.label(),
                &[
                    per(m.reclips_split),
                    per(m.reclips_mbb),
                    per(m.reclips_cbb),
                    per(m.total_reclips()),
                    per(m.validity_tests),
                ]
            )
        );
    }
}

fn main() {
    let args = parse_args();
    run(&dataset2("par02", args.scale), &args);
    run(&dataset3("par03", args.scale), &args);
    run(&dataset2("rea02", args.scale), &args);
    run(&dataset3("rea03", args.scale), &args);
    run(&dataset3("axo03", args.scale), &args);
    run(&dataset3("den03", args.scale), &args);
    run(&dataset3("neu03", args.scale), &args);
    println!("\n(paper: ≤0.35 total re-clips/insert except R*-tree; ~half caused by MBB changes)");
}
