//! §V spatial-join experiment — axo03 ⋈ den03 with both strategies over
//! all four variants, clipped (CSTA) vs unclipped.
//!
//! Paper headlines: INLJ I/O reduction of 40/53/50/39 % (HR/QR/R*/RR*);
//! STT reduction of 17/20/20/16 %; STT needs ~4× fewer total accesses
//! than INLJ.

use cbb_bench::{clip_tree, header, paper_build, parse_args, row, VARIANTS};
use cbb_core::ClipMethod;
use cbb_datasets::dataset3;
use cbb_joins::{inlj, stt};

fn main() {
    let args = parse_args();
    // The registry restores paper density on subsampled inputs — join
    // selectivity is density-driven.
    let axons = dataset3("axo03", args.scale);
    let dendrites = dataset3("den03", args.scale);
    println!(
        "join: axo03 ({}) ⋈ den03 ({}), paper density restored",
        axons.len(),
        dendrites.len(),
    );

    header(
        "INLJ — index axo03, probe with every den03 object",
        "variant",
        &["pairs", "base I/O", "CSTA I/O", "saved"],
    );
    for variant in VARIANTS {
        let tree = paper_build(variant, &axons);
        let clipped = clip_tree(&tree, ClipMethod::Stairline);
        let base = inlj(&dendrites.boxes, &clipped, false);
        let with = inlj(&dendrites.boxes, &clipped, true);
        assert_eq!(base.pairs, with.pairs);
        println!(
            "{}",
            row(
                variant.label(),
                &[
                    base.pairs.to_string(),
                    base.leaf_accesses_right.to_string(),
                    with.leaf_accesses_right.to_string(),
                    format!(
                        "{:.0}%",
                        100.0
                            * (1.0
                                - with.leaf_accesses_right as f64
                                    / base.leaf_accesses_right.max(1) as f64)
                    ),
                ]
            )
        );
    }
    println!("(paper INLJ savings: QR 53%, HR 40%, R* 50%, RR* 39%)");

    header(
        "STT — synchronised traversal of both indexes",
        "variant",
        &["pairs", "base I/O", "CSTA I/O", "saved"],
    );
    for variant in VARIANTS {
        let left = clip_tree(&paper_build(variant, &axons), ClipMethod::Stairline);
        let right = clip_tree(&paper_build(variant, &dendrites), ClipMethod::Stairline);
        let base = stt(&left, &right, false);
        let with = stt(&left, &right, true);
        assert_eq!(base.pairs, with.pairs);
        let b = base.leaf_accesses_left + base.leaf_accesses_right;
        let w = with.leaf_accesses_left + with.leaf_accesses_right;
        println!(
            "{}",
            row(
                variant.label(),
                &[
                    base.pairs.to_string(),
                    b.to_string(),
                    w.to_string(),
                    format!("{:.0}%", 100.0 * (1.0 - w as f64 / b.max(1) as f64)),
                ]
            )
        );
    }
    println!("(paper STT savings: QR 20%, HR 17%, R* 20%, RR* 16%; STT ≪ INLJ in total I/O)");
}
