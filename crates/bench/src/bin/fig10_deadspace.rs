//! Figure 10 — fraction of per-node dead space clipped away as a function
//! of `k` (max clip points per node), for CSKY (top) and CSTA (bottom),
//! over {par02, par03, rea02, axo03} × the four R-tree variants.
//!
//! Paper headlines: ≥60 % of all node volume is dead space everywhere;
//! even k = 1 clips ~22-26 % of it; k = 2^{d+1} clips ~half (2-d) and
//! >60 % (3-d); stairline clips ~50 % more than skyline at equal k.

use cbb_bench::{header, paper_build, parse_args, pct, row, METHODS, VARIANTS};
use cbb_core::ClipConfig;
use cbb_datasets::{dataset2, dataset3, Dataset};
use cbb_rtree::metrics::NodeScope;
use cbb_rtree::{ClippedRTree, RTree};

fn sweep<const D: usize>(data: &Dataset<D>, args: &cbb_bench::Args) {
    let ks: Vec<usize> = if D == 2 {
        vec![1, 2, 4, 6, 8]
    } else {
        vec![1, 4, 8, 12, 16]
    };
    for method in METHODS {
        let k_labels: Vec<String> = ks.iter().map(|k| format!("k={k}")).collect();
        let mut cells: Vec<&str> = vec!["dead"];
        cells.extend(k_labels.iter().map(|s| s.as_str()));
        header(
            &format!(
                "Figure 10 — {} on {} (clipped fraction of node volume; 'dead' = total dead space)",
                method.label(),
                data.name
            ),
            "variant",
            &cells,
        );
        for variant in VARIANTS {
            let tree: RTree<D> = paper_build(variant, data);
            // Dead space is clipping-invariant: measure once per tree.
            let dead = cbb_rtree::metrics::avg_dead_space(&tree, NodeScope::All).unwrap_or(0.0);
            let mut row_cells: Vec<String> = Vec::new();
            for &k in &ks {
                let cfg = ClipConfig::paper_default::<D>(method).with_k(k);
                let clipped = ClippedRTree::from_tree(tree.clone(), cfg);
                let clip = clipped.avg_clipped_fraction(NodeScope::All).unwrap_or(0.0);
                row_cells.push(pct(clip));
            }
            let mut all = vec![pct(dead)];
            all.extend(row_cells);
            println!("{}", row(variant.label(), &all));
        }
    }
    let _ = args;
}

fn main() {
    let args = parse_args();
    let par02 = dataset2("par02", args.scale);
    let rea02 = dataset2("rea02", args.scale);
    let par03 = dataset3("par03", args.scale);
    let axo03 = dataset3("axo03", args.scale);
    sweep(&par02, &args);
    sweep(&par03, &args);
    sweep(&rea02, &args);
    sweep(&axo03, &args);
}
