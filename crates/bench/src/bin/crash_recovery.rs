//! The crash-recovery gauntlet: a child process runs a durable service
//! over a scripted write stream and is **SIGKILLed** — no drop glue, no
//! flush, exactly the failure the WAL exists for — at several seeded
//! offsets into the acknowledgement stream. After each kill the parent
//! recovers the directory in-process and asserts:
//!
//! * every batch the child acknowledged before the kill survived
//!   (durability: commit-before-fulfil means an ack is a promise), and
//! * the recovered state equals a reference replay of exactly the
//!   surviving prefix on a never-crashed service — ranges as sorted
//!   sets, kNN byte-equal, live counts and versions exact.
//!
//! The child is this same binary re-executed with `CBB_CRASH_CHILD=1`;
//! it reports progress by atomically renaming a one-line counter file
//! after each ack. Runs as a CI job under `timeout`; `CBB_BENCH_SMOKE=1`
//! shrinks the dataset, not the kill schedule.
//!
//! ```text
//! cargo run --release -p cbb-bench --bin crash_recovery
//! ```

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use cbb_bench::smoke_mode;
use cbb_core::{ClipConfig, ClipMethod};
use cbb_datasets::skew::clustered_with_layout;
use cbb_engine::UniformGrid;
use cbb_geom::{Point, Rect, SplitMix64};
use cbb_rtree::{DataId, TreeConfig, Variant};
use cbb_serve::{DurabilityConfig, QueryService, Request, Response, ServiceConfig, Update};

/// Ack counts at which the child is killed. Deliberately uneven: early
/// (snapshot barely cold), mid-stream, and deep enough that replay has
/// real work to do.
const KILL_OFFSETS: [usize; 5] = [3, 11, 26, 57, 120];

/// More batches than the deepest kill offset — the child never finishes
/// the stream on its own.
const CHILD_BATCHES: usize = 200;

fn objects() -> (Vec<Rect<2>>, Rect<2>) {
    let n = if smoke_mode() { 800 } else { 6_000 };
    let data = clustered_with_layout::<2>(n, 5, 30_000.0, 0.15, 13, 13);
    (data.boxes, data.domain)
}

fn scripted_batches(base: usize) -> Vec<Vec<Update<2>>> {
    let mut rng = SplitMix64::new(0xC4A5);
    (0..CHILD_BATCHES)
        .map(|b| {
            let mut ops = Vec::new();
            for _ in 0..8 {
                let x = rng.gen_range(0.0, 900_000.0);
                let y = rng.gen_range(0.0, 900_000.0);
                let s = rng.gen_range(500.0, 20_000.0);
                ops.push(Update::Insert(Rect::new(
                    Point([x, y]),
                    Point([x + s, y + s]),
                )));
            }
            ops.push(Update::Delete(DataId(((b * 17) % base) as u32)));
            ops
        })
        .collect()
}

fn start(
    root: &Path,
    objects: Vec<Rect<2>>,
    partitioner: UniformGrid<2>,
) -> QueryService<2, UniformGrid<2>> {
    QueryService::start(
        ServiceConfig {
            durability: Some(DurabilityConfig::new(root)),
            ..ServiceConfig::default()
        },
        partitioner,
        objects,
        TreeConfig::tiny(Variant::RStar),
        ClipConfig::paper_default::<2>(ClipMethod::Stairline),
    )
}

fn start_reference(
    objects: Vec<Rect<2>>,
    partitioner: UniformGrid<2>,
) -> QueryService<2, UniformGrid<2>> {
    QueryService::start(
        ServiceConfig::default(),
        partitioner,
        objects,
        TreeConfig::tiny(Variant::RStar),
        ClipConfig::paper_default::<2>(ClipMethod::Stairline),
    )
}

/// Child mode: apply the scripted stream one acked batch at a time,
/// bumping the progress file after each ack, until killed.
fn run_child(root: &Path, progress: &Path) -> ! {
    let (boxes, domain) = objects();
    let batches = scripted_batches(boxes.len());
    let service = start(root, boxes, UniformGrid::new(domain, 4));
    let dataset = service.default_dataset();
    for (i, ops) in batches.iter().enumerate() {
        service
            .submit(Request::UpdateBatch {
                dataset,
                updates: ops.clone(),
            })
            .expect("child service is open")
            .wait()
            .expect("child write served");
        // Atomic progress bump: the parent must never read a torn count.
        let tmp = progress.with_extension("tmp");
        std::fs::write(&tmp, format!("{}", i + 1)).expect("write progress");
        std::fs::rename(&tmp, progress).expect("publish progress");
    }
    // Only reachable if the parent failed to kill in time.
    std::process::exit(3);
}

fn read_progress(progress: &Path) -> usize {
    std::fs::read_to_string(progress)
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0)
}

/// Range answers as sorted sets + kNN verbatim.
fn answers(
    service: &QueryService<2, UniformGrid<2>>,
    dataset: cbb_serve::DatasetId,
) -> Vec<Response> {
    let mut rng = SplitMix64::new(777);
    let mut out = Vec::new();
    for _ in 0..15 {
        let x = rng.gen_range(0.0, 900_000.0);
        let y = rng.gen_range(0.0, 900_000.0);
        let s = rng.gen_range(5_000.0, 90_000.0);
        let response = service
            .submit(Request::Range {
                dataset,
                query: Rect::new(Point([x, y]), Point([x + s, y + s])),
                use_clips: true,
            })
            .expect("open")
            .wait()
            .expect("served")
            .response;
        let mut ids = match response {
            Response::Range(ids) => ids,
            other => panic!("expected range, got {other:?}"),
        };
        ids.sort_unstable();
        out.push(Response::Range(ids));
        let center = Point([rng.gen_range(0.0, 900_000.0), rng.gen_range(0.0, 900_000.0)]);
        out.push(
            service
                .submit(Request::Knn {
                    dataset,
                    center,
                    k: 4,
                })
                .expect("open")
                .wait()
                .expect("served")
                .response,
        );
    }
    out
}

fn gauntlet_root(offset: usize) -> PathBuf {
    std::env::temp_dir().join(format!(
        "cbb_crash_recovery_{offset}_{}",
        std::process::id()
    ))
}

fn main() {
    if std::env::var("CBB_CRASH_CHILD").is_ok() {
        let root = PathBuf::from(std::env::var("CBB_CRASH_ROOT").expect("CBB_CRASH_ROOT"));
        let progress =
            PathBuf::from(std::env::var("CBB_CRASH_PROGRESS").expect("CBB_CRASH_PROGRESS"));
        run_child(&root, &progress);
    }

    let exe = std::env::current_exe().expect("own path");
    let (boxes, domain) = objects();
    let batches = scripted_batches(boxes.len());
    let partitioner = UniformGrid::new(domain, 4);

    // The version a fresh default dataset starts at — replayed batch
    // count is recovered_version - base_version.
    let base_version = {
        let probe = start_reference(boxes.clone(), partitioner);
        let v = probe
            .dataset_version(probe.default_dataset())
            .expect("default dataset exists")
            .0;
        probe.shutdown();
        v
    };

    println!(
        "gauntlet: {} objects, SIGKILL at ack offsets {KILL_OFFSETS:?}",
        boxes.len()
    );
    for offset in KILL_OFFSETS {
        let root = gauntlet_root(offset);
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("gauntlet dir");
        let progress = root.with_extension("progress");
        let _ = std::fs::remove_file(&progress);

        let mut child = std::process::Command::new(&exe)
            .env("CBB_CRASH_CHILD", "1")
            .env("CBB_CRASH_ROOT", &root)
            .env("CBB_CRASH_PROGRESS", &progress)
            .stdout(std::process::Stdio::null())
            .spawn()
            .expect("spawn child");

        // Wait for the child to ack `offset` batches, then SIGKILL it
        // mid-flight — the next batch may be anywhere in its lifecycle.
        let deadline = Instant::now() + Duration::from_secs(120);
        while read_progress(&progress) < offset {
            if let Some(status) = child.try_wait().expect("child status") {
                panic!("child exited early ({status}) before ack {offset}");
            }
            assert!(
                Instant::now() < deadline,
                "child too slow to reach ack {offset}"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        let acked = read_progress(&progress);
        child.kill().expect("SIGKILL child");
        child.wait().expect("reap child");

        // Recover the kill site.
        let started = Instant::now();
        let recovered = start(&root, Vec::new(), partitioner);
        let recover_ms = started.elapsed().as_secs_f64() * 1e3;
        let dataset = recovered.default_dataset();
        let recovered_version = recovered
            .dataset_version(dataset)
            .expect("default dataset recovered")
            .0;
        let survived = usize::try_from(recovered_version - base_version).unwrap();
        assert!(
            survived >= acked,
            "offset {offset}: only {survived} batches survived but {acked} were acked"
        );
        assert!(
            survived <= batches.len(),
            "offset {offset}: impossible replay count {survived}"
        );

        // Reference: the surviving prefix on a never-crashed service.
        let reference = start_reference(boxes.clone(), partitioner);
        let ref_dataset = reference.default_dataset();
        for ops in &batches[..survived] {
            reference
                .submit(Request::UpdateBatch {
                    dataset: ref_dataset,
                    updates: ops.clone(),
                })
                .expect("open")
                .wait()
                .expect("served");
        }
        assert_eq!(
            recovered.dataset_live_count(dataset),
            reference.dataset_live_count(ref_dataset),
            "offset {offset}: live counts"
        );
        assert_eq!(
            answers(&recovered, dataset),
            answers(&reference, ref_dataset),
            "offset {offset}: answers"
        );
        let report = recovered.shutdown();
        reference.shutdown();
        println!(
            "  kill@{offset:>3}: acked {acked:>3}, survived {survived:>3}, \
             replayed {:>3} WAL records, {} snapshot pages, recovered in {recover_ms:.0} ms — \
             recovered state equals reference prefix",
            report.recovered_records, report.recovered_pages,
        );

        let _ = std::fs::remove_dir_all(&root);
        let _ = std::fs::remove_file(&progress);
    }
    println!("gauntlet passed: {} kill points", KILL_OFFSETS.len());
}
