//! Figure 9 — average dead space (a) and representation cost in points (b)
//! of the eight bounding methods over the leaf nodes of an RR*-tree on the
//! 2-d datasets (par02, rea02).
//!
//! Paper headline: CBB_SKY is competitive with 4-C using 1–2 clip points;
//! CBB_STA outperforms even the convex hull (which averages ~12 points)
//! with ≤ 3.4 clip points.

use cbb_bench::{clip_tree, header, paper_build, parse_args, pct, row, METHODS};
use cbb_bounding::shape::{dead_space_of_shape, fit_all_shapes};
use cbb_datasets::dataset2;
use cbb_geom::Rect;
use cbb_rtree::Variant;

/// Per-dataset measurement: (label → (avg dead %, avg #points)).
fn measure(name: &str, args: &cbb_bench::Args, sample_nodes: usize) -> Vec<(String, f64, f64)> {
    let data = dataset2(name, args.scale);
    let tree = paper_build(Variant::RRStar, &data);

    // Convex shapes, measured over a sample of leaf nodes.
    let leaves: Vec<Vec<Rect<2>>> = tree
        .iter_nodes()
        .filter(|(_, n)| n.is_leaf() && n.entries.len() >= 2 && n.mbb.volume() > 0.0)
        .take(sample_nodes)
        .map(|(_, n)| n.entry_rects())
        .collect();

    let labels = ["MBC", "MBB", "RMBB", "4-C", "5-C", "CH"];
    let mut sums: Vec<(f64, f64)> = vec![(0.0, 0.0); labels.len()];
    for (ni, objects) in leaves.iter().enumerate() {
        let shapes = fit_all_shapes(objects);
        for (li, label) in labels.iter().enumerate() {
            let shape = &shapes.iter().find(|(l, _)| l == label).unwrap().1;
            sums[li].0 += dead_space_of_shape(shape, objects, 4_096, ni as u64);
            sums[li].1 += shape.point_count() as f64;
        }
    }
    let n = leaves.len().max(1) as f64;
    let mut out: Vec<(String, f64, f64)> = labels
        .iter()
        .zip(&sums)
        .map(|(l, (d, p))| (l.to_string(), d / n, p / n))
        .collect();

    // CBBs, measured over the same tree's leaves via the clip tables.
    for method in METHODS {
        let clipped = clip_tree(&tree, method);
        let mut dead_sum = 0.0;
        let mut pts_sum = 0.0;
        let mut count = 0usize;
        for (id, node) in clipped.tree.iter_nodes() {
            if !node.is_leaf() || node.entries.len() < 2 || node.mbb.volume() <= 0.0 {
                continue;
            }
            if count >= sample_nodes {
                break;
            }
            let objects = node.entry_rects();
            let object_vol = cbb_geom::union_volume(&node.mbb, &objects);
            let regions: Vec<Rect<2>> = clipped
                .clips_of(id)
                .iter()
                .map(|c| c.region(&node.mbb))
                .collect();
            let clipped_vol = cbb_geom::union_volume_exact(&node.mbb, &regions);
            let remaining = node.mbb.volume() - clipped_vol;
            if remaining > 0.0 {
                dead_sum += ((remaining - object_vol) / remaining).clamp(0.0, 1.0);
            }
            // Cost: the 2 MBB corners plus the stored clip points (the
            // paper's accounting).
            pts_sum += 2.0 + clipped.clips_of(id).len() as f64;
            count += 1;
        }
        let n = count.max(1) as f64;
        out.push((
            format!(
                "CBB_{}",
                if method == cbb_core::ClipMethod::Skyline {
                    "SKY"
                } else {
                    "STA"
                }
            ),
            dead_sum / n,
            pts_sum / n,
        ));
    }
    out
}

fn main() {
    let args = parse_args();
    let sample_nodes = 400;
    let par = measure("par02", &args, sample_nodes);
    let rea = measure("rea02", &args, sample_nodes);

    header(
        "Figure 9a — avg dead space of bounding shapes (leaf nodes, RR*-tree)",
        "method",
        &["par02", "rea02"],
    );
    for (p, r) in par.iter().zip(&rea) {
        println!("{}", row(&p.0, &[pct(p.1), pct(r.1)]));
    }

    header(
        "Figure 9b — representation cost in #points",
        "method",
        &["par02", "rea02"],
    );
    for (p, r) in par.iter().zip(&rea) {
        println!(
            "{}",
            row(&p.0, &[format!("{:.1}", p.2), format!("{:.1}", r.2)])
        );
    }
    println!("\n(paper: CH needs ~12 points; CBB_STA beats CH's dead space with ~3-5 points)");
}
