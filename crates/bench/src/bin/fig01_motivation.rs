//! Figure 1 — the motivation measurements on rea02 (2-d) and axo03 (3-d):
//! (a) average per-node overlap, (b) average per-node dead space, (c) the
//! fraction of RR*-tree leaf accesses that contribute results, per query
//! profile.
//!
//! Paper reference values: (a) 8–30 % overlap across variants; (b) ≈74 %
//! (rea02) and ≈94 % (axo03) dead space; (c) useful-leaf-access fractions
//! of ≈79 % / 36 % for high-selectivity queries (21 % / 64 % wasted).

use cbb_bench::{header, paper_build, parse_args, pct, row, workload, VARIANTS};
use cbb_datasets::{dataset2, dataset3, QueryProfile};
use cbb_rtree::metrics::{avg_dead_space, avg_overlap, NodeScope};
use cbb_rtree::AccessStats;

fn main() {
    let args = parse_args();
    let rea02 = dataset2("rea02", args.scale);
    let axo03 = dataset3("axo03", args.scale);
    println!("datasets: rea02 n={}  axo03 n={}", rea02.len(), axo03.len());

    // --- Figure 1a/1b ---
    header(
        "Figure 1a — avg overlap within a node (paper: 8-30%)",
        "variant",
        &["rea02", "axo03"],
    );
    let mut trees2 = Vec::new();
    let mut trees3 = Vec::new();
    for v in VARIANTS {
        trees2.push((v, paper_build(v, &rea02)));
        trees3.push((v, paper_build(v, &axo03)));
    }
    for ((v, t2), (_, t3)) in trees2.iter().zip(&trees3) {
        println!(
            "{}",
            row(
                v.label(),
                &[
                    pct(avg_overlap(t2, NodeScope::Internal).unwrap_or(0.0)),
                    pct(avg_overlap(t3, NodeScope::Internal).unwrap_or(0.0)),
                ]
            )
        );
    }

    header(
        "Figure 1b — avg dead space per node (paper: ~74% rea02, ~94% axo03)",
        "variant",
        &["rea02", "axo03"],
    );
    for ((v, t2), (_, t3)) in trees2.iter().zip(&trees3) {
        println!(
            "{}",
            row(
                v.label(),
                &[
                    pct(avg_dead_space(t2, NodeScope::All).unwrap_or(0.0)),
                    pct(avg_dead_space(t3, NodeScope::All).unwrap_or(0.0)),
                ]
            )
        );
    }

    // --- Figure 1c: RR*-tree leaf-access optimality per selectivity ---
    header(
        "Figure 1c — useful leaf accesses, RR*-tree (paper: ~79% / ~36% at high sel.)",
        "profile",
        &["rea02", "axo03"],
    );
    let rr2 = &trees2
        .iter()
        .find(|(v, _)| v.label() == "RR*-tree")
        .unwrap()
        .1;
    let rr3 = &trees3
        .iter()
        .find(|(v, _)| v.label() == "RR*-tree")
        .unwrap()
        .1;
    for profile in QueryProfile::ALL {
        let q2 = workload(&rea02, rr2, profile, &args);
        let q3 = workload(&axo03, rr3, profile, &args);
        let mut s2 = AccessStats::new();
        let mut s3 = AccessStats::new();
        for q in &q2 {
            rr2.range_query_stats(q, &mut s2);
        }
        for q in &q3 {
            rr3.range_query_stats(q, &mut s3);
        }
        println!(
            "{}",
            row(
                profile.name,
                &[
                    pct(s2.leaf_optimality().unwrap_or(0.0)),
                    pct(s3.leaf_optimality().unwrap_or(0.0)),
                ]
            )
        );
    }
}
