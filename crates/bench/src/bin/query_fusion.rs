//! Shared-scan fusion experiment: what batching buys the columnar hot
//! path. The same range-query batch is answered twice per batch size —
//! per-query (`QueryAlgo::Descend`: one `ClippedRTree` descent per
//! (query, tile) pair) and fused (`QueryAlgo::SharedSweep`: the batch's
//! rects sorted into their own `TileColumns`, the whole tile answered
//! by ONE plane sweep) — plus the `Auto` resolution the service ships
//! by default. Answers are asserted byte-equal everywhere; the claim
//! this bin exists to make is **machine-independent**: at batch ≥ 32
//! the fused path does zero tree node accesses and strictly less total
//! counted work (node accesses + overlap tests) than per-query
//! descents. Wall-clock is reported but never gated. Emits
//! `BENCH_fusion.json`. `CBB_BENCH_SMOKE=1` shrinks the workload to CI
//! scale (explicit flags still override).
//!
//! ```text
//! cargo run --release -p cbb-bench --bin query_fusion \
//!     [--exact N] [--reps N] [--seed N]
//! ```

use std::time::Instant;

use cbb_bench::{header, row, smoke_mode};
use cbb_core::{ClipConfig, ClipMethod};
use cbb_datasets::skew::clustered_with_layout;
use cbb_engine::{AdaptiveGrid, AutoPolicy, BatchOutcome, DatasetStore, QueryAlgo, SplitPolicy};
use cbb_geom::{Point, Rect, SplitMix64};
use cbb_rtree::{AccessStats, TreeConfig, Variant};

/// Tree node accesses (leaves + internals) — zero on fused tiles.
fn nodes(s: &AccessStats) -> u64 {
    s.leaf_accesses + s.internal_accesses
}

/// Total counted work: node accesses plus per-entry overlap tests.
/// Both execution paths charge every rectangle comparison they make to
/// `overlap_tests`, so this sum is comparable across them.
fn work(s: &AccessStats) -> u64 {
    nodes(s) + s.overlap_tests
}

fn main() {
    let (mut n, mut reps) = if smoke_mode() {
        (6_000usize, 3usize)
    } else {
        (40_000usize, 10usize)
    };
    let mut seed = 0xCBBu64;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut next_usize = |flag: &str| -> usize {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{flag} needs a numeric argument"))
        };
        match a.as_str() {
            "--exact" => n = next_usize("--exact"),
            "--reps" => reps = next_usize("--reps"),
            "--seed" => seed = next_usize("--seed") as u64,
            other => panic!("unknown argument: {other}"),
        }
    }
    let workers = 4usize;
    let batches: &[usize] = &[1, 4, 8, 32, 128];

    let data = clustered_with_layout::<2>(n, 8, 20_000.0, 0.1, seed, seed);
    // Fit the tiling to the data volume (a few hundred objects per
    // tile) the way a deployed partitioner would be: that tile
    // granularity is where one shared scan per tile beats repeated
    // descents, and where the paper's per-tile trees live anyway.
    let g = ((n as f64 / 180.0).sqrt().ceil() as usize).max(4);
    let partitioner = AdaptiveGrid::from_sample(data.domain, [g, g], &data.boxes);
    let store = DatasetStore::build(
        partitioner,
        &data.boxes,
        TreeConfig::paper_default(Variant::RStar),
        ClipConfig::paper_default::<2>(ClipMethod::Stairline),
        workers,
    );
    // Warm every tile's column cache up front: the experiment measures
    // steady-state serving, where the one-time extraction has long been
    // amortised (and `Auto`'s cachedness input is stable).
    for t in 0..store.forest().tile_count() {
        store.forest().columns(t);
    }
    println!(
        "workload: clu02 ({n} boxes), adaptive {g}×{g} grid, R*-tree + CSTA, \
         batch sizes {batches:?}, {reps} reps each",
    );

    // Small selective rects around a handful of hot anchors — the
    // shape a coalescing micro-batcher actually hands the engine:
    // concurrent lookups concentrated on the same few hot spots.
    let mut rng = SplitMix64::new(seed ^ 0xF05E);
    let (lo, hi) = (data.domain.lo.0, data.domain.hi.0);
    let extent = hi[0] - lo[0];
    let mut make_query = |anchor: &Rect<2>| -> Rect<2> {
        let s = rng.gen_range(extent * 0.0005, extent * 0.005);
        let x = (anchor.lo.0[0] + rng.gen_range(-s, s)).clamp(lo[0], hi[0] - s);
        let y = (anchor.lo.0[1] + rng.gen_range(-s, s)).clamp(lo[1], hi[1] - s);
        Rect::new(Point([x, y]), Point([x + s, y + s]))
    };

    header(
        "shared-scan fusion",
        "batch",
        &["nodes/q", "tests/q", "fused t/q", "descend ms", "fused ms"],
    );
    let policy = AutoPolicy::default();
    let mut json_rows = Vec::new();
    for &batch in batches {
        let queries: Vec<Rect<2>> = (0..batch)
            .map(|i| make_query(&data.boxes[((i % 4) * 9973) % n]))
            .collect();
        let timed = |algo: QueryAlgo| -> (BatchOutcome, f64) {
            let started = Instant::now();
            let mut out = store.run_with(&queries, workers, true, algo, &policy, SplitPolicy::Auto);
            for _ in 1..reps {
                let again =
                    store.run_with(&queries, workers, true, algo, &policy, SplitPolicy::Auto);
                assert_eq!(again, out, "repeat batches must be stable");
                out = again;
            }
            (out, started.elapsed().as_secs_f64() * 1e3 / reps as f64)
        };
        let (descend, descend_ms) = timed(QueryAlgo::Descend);
        let (fused, fused_ms) = timed(QueryAlgo::SharedSweep);
        let (auto, _) = timed(QueryAlgo::Auto);

        // The transparency gate: fusion moves counters, never answers.
        assert_eq!(fused.results, descend.results, "fused answers changed");
        assert_eq!(auto.results, descend.results, "auto answers changed");
        assert_eq!(fused.tiles_descend, 0, "SharedSweep must fuse every tile");
        assert_eq!(nodes(&fused.stats), 0, "fused tiles do zero node accesses");
        // The headline gate: once a batch is wide enough to share scans,
        // one sweep per tile beats per-query descents on counted work.
        if batch >= 32 {
            assert!(descend.tiles_descend > 0);
            assert!(
                work(&fused.stats) < work(&descend.stats),
                "batch {batch}: fused work {} !< descend work {}",
                work(&fused.stats),
                work(&descend.stats)
            );
            assert!(
                auto.tiles_fused > 0,
                "warm columns + wide batch must make Auto fuse"
            );
        }

        let q = batch as f64;
        println!(
            "{}",
            row(
                &batch.to_string(),
                &[
                    format!(
                        "{:.1}/{:.1}",
                        nodes(&descend.stats) as f64 / q,
                        nodes(&fused.stats) as f64 / q
                    ),
                    format!(
                        "{:.1}/{:.1}",
                        descend.stats.overlap_tests as f64 / q,
                        fused.stats.overlap_tests as f64 / q
                    ),
                    format!("{}/{}", fused.tiles_fused, auto.tiles_fused),
                    format!("{descend_ms:.3}"),
                    format!("{fused_ms:.3}"),
                ],
            )
        );
        json_rows.push(format!(
            "{{\"batch\": {batch}, \
             \"descend_node_accesses\": {}, \"descend_overlap_tests\": {}, \
             \"fused_node_accesses\": {}, \"fused_overlap_tests\": {}, \
             \"tiles_fused\": {}, \"auto_tiles_fused\": {}, \
             \"answers_identical\": 1, \
             \"descend_ms\": {descend_ms:.3}, \"fused_ms\": {fused_ms:.3}}}",
            nodes(&descend.stats),
            descend.stats.overlap_tests,
            nodes(&fused.stats),
            fused.stats.overlap_tests,
            fused.tiles_fused,
            auto.tiles_fused,
        ));
    }

    let json = format!(
        "{{\n  \"workload\": {{\"dataset\": \"clu02\", \"objects\": {n}, \
         \"reps\": {reps}, \"grid\": [{g}, {g}], \"variant\": \"R*-tree\", \
         \"clip\": \"CSTA\", \"batches\": {batches:?}}},\n  \"rows\": [\n    {}\n  ]\n}}\n",
        json_rows.join(",\n    "),
    );
    std::fs::write("BENCH_fusion.json", &json).expect("write BENCH_fusion.json");
    println!("wrote BENCH_fusion.json ({} batch sizes)", json_rows.len());
}
