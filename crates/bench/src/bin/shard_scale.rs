//! Shard experiment: scatter-gather over N in-process shards vs the
//! single-store service, on a clustered layer under an adaptive grid.
//!
//! Every row re-runs the **same** seeded workload (ranges, kNN, one
//! streamed probe join, one self cross-join) at a different shard
//! count × [`ShardFitting`], and every answer is asserted byte-equal
//! to the 1-shard baseline before the row is emitted — the bench is
//! its own oracle. The JSON carries only machine-independent counters:
//! per-shard routed-request counts (from the router's registry),
//! per-shard assigned-object loads (from the dataset's
//! [`cbb_serve::ShardMap`]), the shard load imbalance (max/mean) that
//! [`ShardFitting::Fitted`] exists to flatten, and the answer anchors
//! (hits, pairs) the
//! equality assertions pinned. Wall times are printed for local
//! reading but not written to the report. Emits `BENCH_shard.json`.
//! `CBB_BENCH_SMOKE=1` shrinks the workload to CI scale (explicit
//! flags still override).
//!
//! ```text
//! cargo run --release -p cbb-bench --bin shard_scale \
//!     [--exact N] [--ranges N] [--knn N] [--seed N]
//! ```

use std::time::Instant;

use cbb_bench::{header, row, smoke_mode};
use cbb_core::{ClipConfig, ClipMethod};
use cbb_datasets::skew::clustered_with_layout;
use cbb_engine::{assignment_loads, AdaptiveGrid, JoinAlgo};
use cbb_geom::{Point, Rect, SplitMix64};
use cbb_rtree::{TreeConfig, Variant};
use cbb_serve::{Request, Response, ServiceBuilder, ShardFitting, ShardedService};

fn main() {
    let (mut n, mut ranges, mut knns) = if smoke_mode() {
        (2_000usize, 40usize, 20usize)
    } else {
        (20_000usize, 200usize, 100usize)
    };
    let mut seed = 0xCBBu64;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut next_usize = |flag: &str| -> usize {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{flag} needs a numeric argument"))
        };
        match a.as_str() {
            "--exact" => n = next_usize("--exact"),
            "--ranges" => ranges = next_usize("--ranges"),
            "--knn" => knns = next_usize("--knn"),
            "--seed" => seed = next_usize("--seed") as u64,
            other => panic!("unknown argument: {other}"),
        }
    }

    let data = clustered_with_layout::<2>(n, 6, 25_000.0, 0.15, seed, seed ^ 0x5EED);
    let partitioner = AdaptiveGrid::from_sample(data.domain, [6, 6], &data.boxes);
    let tree = TreeConfig::paper_default(Variant::RStar);
    let clip = ClipConfig::paper_default::<2>(ClipMethod::Stairline);
    let queries = range_queries(&data.domain, ranges, seed ^ 0xA11C);
    let centers = knn_centers(&data.domain, knns, seed ^ 0xCAFE);
    let probes = range_queries(&data.domain, ranges / 2, seed ^ 0x1017);
    println!(
        "workload: {n} clustered boxes, adaptive 6x6 tiling, {ranges} ranges + \
         {knns} kNN(k=10) + streamed STT probe join + self cross-join, \
         R*-tree + CSTA",
    );

    let modes: Vec<(usize, ShardFitting)> = vec![
        (1, ShardFitting::Balanced),
        (2, ShardFitting::Balanced),
        (2, ShardFitting::Fitted),
        (4, ShardFitting::Balanced),
        (4, ShardFitting::Fitted),
    ];

    header(
        "sharded scatter-gather scan",
        "mode",
        &["hits", "pairs", "imbalance", "wall ms"],
    );
    let mut baseline: Option<Answers> = None;
    let mut json_rows = Vec::new();
    for (shards, fitting) in modes {
        let service = ServiceBuilder::new()
            .shards(shards)
            .shard_fitting(fitting)
            .build(partitioner.clone(), data.boxes.clone(), tree, clip);
        let started = Instant::now();
        let answers = run_workload(&service, &queries, &centers, &probes);
        let wall = started.elapsed().as_secs_f64() * 1e3;

        // The bench is its own oracle: every mode must answer exactly
        // like the 1-shard baseline.
        let base = baseline.get_or_insert_with(|| answers.clone());
        assert_eq!(
            *base, answers,
            "{shards}-shard {fitting:?} answers diverged"
        );

        // Machine-independent shard shape: how the dataset's objects
        // landed on shards under this fitting, and how the router
        // spread the workload.
        let map = service
            .dataset_shard_map(service.default_dataset())
            .expect("default dataset is routed");
        let tile_loads = assignment_loads(&partitioner, &data.boxes);
        let shard_loads: Vec<u64> = (0..map.shard_count())
            .map(|s| map.range(s).map(|t| tile_loads[t]).sum())
            .collect();
        let max = *shard_loads.iter().max().expect(">=1 shard") as f64;
        let mean = shard_loads.iter().sum::<u64>() as f64 / shard_loads.len() as f64;
        let imbalance = if mean > 0.0 { max / mean } else { 1.0 };

        let scrape = service.scrape();
        let requests = scrape
            .snapshot
            .counter("cbb_router_requests_total", &[])
            .expect("router counts requests");
        let single_shard = scrape
            .snapshot
            .counter("cbb_router_single_shard_total", &[])
            .unwrap_or(0);
        let routed: Vec<u64> = (0..shards)
            .map(|s| {
                scrape
                    .snapshot
                    .counter(
                        "cbb_router_shard_requests_total",
                        &[("shard", &s.to_string())],
                    )
                    .unwrap_or(0)
            })
            .collect();
        service.shutdown();

        let mode = format!("{shards}sh_{fitting:?}");
        println!(
            "{}",
            row(
                &mode,
                &[
                    answers.range_hits.to_string(),
                    answers.cross_pairs.to_string(),
                    format!("{imbalance:.2}"),
                    format!("{wall:.1}"),
                ],
            )
        );
        json_rows.push(format!(
            "{{\"shards\": {shards}, \"fitting\": \"{fitting:?}\", \
             \"requests\": {requests}, \"single_shard\": {single_shard}, \
             \"shard_routed\": {routed:?}, \"shard_loads\": {shard_loads:?}, \
             \"load_imbalance\": {imbalance:.4}, \"range_hits\": {}, \
             \"knn_returned\": {}, \"join_pairs\": {}, \"cross_pairs\": {}}}",
            answers.range_hits, answers.knn_returned, answers.join_pairs, answers.cross_pairs,
        ));
    }

    let json = format!(
        "{{\n  \"workload\": {{\"objects\": {n}, \"ranges\": {ranges}, \"knn\": {knns}, \
         \"k\": 10, \"grid\": [6, 6], \"algo\": \"STT\", \
         \"variant\": \"R*-tree\", \"clip\": \"CSTA\"}},\n  \"rows\": [\n    {}\n  ]\n}}\n",
        json_rows.join(",\n    "),
    );
    std::fs::write("BENCH_shard.json", &json).expect("write BENCH_shard.json");
    println!("\nwrote BENCH_shard.json ({} modes)", json_rows.len());
}

/// The workload's exact answers — what every mode must reproduce.
#[derive(Clone, Debug, PartialEq)]
struct Answers {
    range_hits: u64,
    knn_returned: u64,
    join_pairs: u64,
    cross_pairs: u64,
}

fn run_workload(
    service: &ShardedService<2, AdaptiveGrid<2>>,
    queries: &[Rect<2>],
    centers: &[Point<2>],
    probes: &[Rect<2>],
) -> Answers {
    let dataset = service.default_dataset();
    let mut range_hits = 0u64;
    for &query in queries {
        let hits = wait(
            service,
            Request::Range {
                dataset,
                query,
                use_clips: true,
            },
        )
        .into_range();
        range_hits += hits.len() as u64;
    }
    let mut knn_returned = 0u64;
    for &center in centers {
        let nn = wait(
            service,
            Request::Knn {
                dataset,
                center,
                k: 10,
            },
        )
        .into_knn();
        knn_returned += nn.len() as u64;
    }
    let join_pairs = wait(
        service,
        Request::Join {
            dataset,
            probes: probes.to_vec(),
            algo: JoinAlgo::Stt,
            use_clips: true,
        },
    )
    .into_join()
    .pairs;
    let cross_pairs = wait(
        service,
        Request::CrossJoin {
            left: dataset,
            right: dataset,
            algo: JoinAlgo::Stt,
            use_clips: true,
        },
    )
    .into_join()
    .pairs;
    Answers {
        range_hits,
        knn_returned,
        join_pairs,
        cross_pairs,
    }
}

fn wait(
    service: &ShardedService<2, AdaptiveGrid<2>>,
    request: Request<2, AdaptiveGrid<2>>,
) -> Response {
    service
        .submit(request)
        .expect("service is open")
        .wait()
        .expect("admitted requests are answered")
        .response
}

fn range_queries(domain: &Rect<2>, n: usize, seed: u64) -> Vec<Rect<2>> {
    let mut rng = SplitMix64::new(seed);
    let span = [domain.hi[0] - domain.lo[0], domain.hi[1] - domain.lo[1]];
    (0..n)
        .map(|i| {
            let x = rng.gen_range(domain.lo[0], domain.hi[0]);
            let y = rng.gen_range(domain.lo[1], domain.hi[1]);
            // Every third query is a wide strip that straddles shards.
            let (w, h) = if i % 3 == 0 {
                (1.1 * span[0], 0.04 * span[1])
            } else {
                (0.03 * span[0], 0.03 * span[1])
            };
            Rect::new(Point([x, y]), Point([x + w, y + h]))
        })
        .collect()
}

fn knn_centers(domain: &Rect<2>, n: usize, seed: u64) -> Vec<Point<2>> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            Point([
                rng.gen_range(domain.lo[0], domain.hi[0]),
                rng.gen_range(domain.lo[1], domain.hi[1]),
            ])
        })
        .collect()
}
