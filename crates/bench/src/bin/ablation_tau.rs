//! Ablation — the τ threshold (Algorithm 1, line 10).
//!
//! The paper fixes τ = 2.5 % and notes "we observe minimal effect from
//! varying k and τ; … we lack space to also vary τ". This ablation fills
//! that gap: sweep τ and report stored clip points, storage overhead, and
//! QR0 leaf-access reduction on a clipped RR*-tree.

use cbb_bench::{
    base_leaf_accesses, clipped_leaf_accesses, header, paper_build, parse_args, row, workload,
};
use cbb_core::{ClipConfig, ClipMethod};
use cbb_datasets::{dataset2, dataset3, Dataset, QueryProfile};
use cbb_rtree::{ClippedRTree, Variant};
use cbb_storage::storage_breakdown;

const TAUS: [f64; 5] = [0.0, 0.0125, 0.025, 0.05, 0.10];

fn run<const D: usize>(data: &Dataset<D>, args: &cbb_bench::Args) {
    header(
        &format!(
            "τ ablation — CSTA-RR*-tree on {} (paper default τ = 2.5%)",
            data.name
        ),
        "tau",
        &["clips/node", "clip-storage", "QR0 I/O", "saved"],
    );
    let tree = paper_build(Variant::RRStar, data);
    let queries = workload(data, &tree, QueryProfile::QR0, args);
    let base = base_leaf_accesses(&tree, &queries).max(1);
    for tau in TAUS {
        let cfg = ClipConfig::paper_default::<D>(ClipMethod::Stairline).with_tau(tau);
        let clipped = ClippedRTree::from_tree(tree.clone(), cfg);
        let b = storage_breakdown(&clipped);
        let with = clipped_leaf_accesses(&clipped, &queries);
        println!(
            "{}",
            row(
                &format!("{:.2}%", tau * 100.0),
                &[
                    format!("{:.2}", b.avg_clip_points()),
                    format!("{:.2}%", b.percentages().2),
                    format!("{:.1}%", 100.0 * with as f64 / base as f64),
                    format!("{:.1}%", 100.0 * (1.0 - with as f64 / base as f64)),
                ]
            )
        );
    }
}

fn main() {
    let args = parse_args();
    run(&dataset2("rea02", args.scale), &args);
    run(&dataset3("axo03", args.scale), &args);
    println!("\n(expected: τ→0 stores more points for little extra I/O benefit;");
    println!(" large τ sheds useful clip points — 2.5% sits on the knee)");
}
