//! Engine scaling experiment: sequential vs partitioned-parallel join and
//! batched range queries on a ≥ 50 k-object workload, across worker
//! counts. Emits `BENCH_engine.json` (machine-readable) next to the
//! usual table output.
//!
//! ```text
//! cargo run --release -p cbb-bench --bin partition_scale [--exact N] [--queries N] [--seed N]
//! ```
//!
//! `CBB_BENCH_SMOKE=1` shrinks the default workload to CI-smoke scale
//! (explicit flags still override).

use std::time::Instant;

use cbb_bench::{header, row, smoke_mode};
use cbb_core::{ClipConfig, ClipMethod};
use cbb_datasets::{dataset2, generate_queries, QueryProfile, Scale};
use cbb_engine::{
    parallel_range_queries, partitioned_join, partitioned_join_with, sequential_join, JoinAlgo,
    JoinPlan, TileForest, UniformGrid,
};
use cbb_rtree::{ClippedRTree, RTree, TreeConfig, Variant};

const GRID_PER_DIM: usize = 8;
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    // Defaults sized for the acceptance bar (≥ 50 k objects per side);
    // smoke mode shrinks them, `--exact` / `--queries` / `--seed`
    // override either way.
    let (mut n, mut n_queries) = if smoke_mode() {
        (8_000usize, 500usize)
    } else {
        (60_000usize, 4_000usize)
    };
    let mut seed = 0xCBBu64;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut next_usize = |flag: &str| -> usize {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{flag} needs a numeric argument"))
        };
        match a.as_str() {
            "--exact" => n = next_usize("--exact"),
            "--queries" => n_queries = next_usize("--queries"),
            "--seed" => seed = next_usize("--seed") as u64,
            other => panic!("unknown argument: {other}"),
        }
    }

    let streets = dataset2("rea02", Scale::Exact(n));
    let parcels = dataset2("par02", Scale::Exact(n));
    let domain = streets.domain.union(&parcels.domain);
    println!(
        "workload: rea02 ({}) ⋈ par02 ({}), grid {GRID_PER_DIM}×{GRID_PER_DIM}, R*-tree + CSTA",
        streets.len(),
        parcels.len(),
    );

    let base_plan = JoinPlan::new(
        UniformGrid::new(domain, GRID_PER_DIM),
        TreeConfig::paper_default(Variant::RStar),
        ClipConfig::paper_default::<2>(ClipMethod::Stairline),
        1,
    );

    // ---- partitioned parallel join vs sequential -------------------
    let t = Instant::now();
    let seq = sequential_join(&base_plan, &streets.boxes, &parcels.boxes);
    let seq_join_ms = t.elapsed().as_secs_f64() * 1e3;

    header(
        "partitioned parallel STT join (build + join per run)",
        "configuration",
        &["pairs", "wall ms", "speedup"],
    );
    println!(
        "{}",
        row(
            "sequential",
            &[
                seq.pairs.to_string(),
                format!("{seq_join_ms:.1}"),
                "1.00x".into(),
            ],
        )
    );
    let mut join_rows = Vec::new();
    for workers in WORKER_COUNTS {
        let plan = JoinPlan {
            workers,
            ..base_plan
        };
        let t = Instant::now();
        let par = partitioned_join(&plan, &streets.boxes, &parcels.boxes);
        let ms = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(par.pairs, seq.pairs, "partitioning changed the pair count");
        println!(
            "{}",
            row(
                &format!("partitioned, {workers} thr"),
                &[
                    par.pairs.to_string(),
                    format!("{ms:.1}"),
                    format!("{:.2}x", seq_join_ms / ms),
                ],
            )
        );
        join_rows.push(format!(
            "{{\"workers\": {workers}, \"wall_ms\": {ms:.3}, \"pairs\": {}, \"leaf_accesses\": {}, \"clip_prunes\": {}}}",
            par.pairs,
            par.leaf_accesses(),
            par.clip_prunes,
        ));
    }

    // ---- join algorithm head-to-head (cached right forest) ---------
    // The serving-layer shape: the indexed side's forest is cached,
    // the probe side arrives per call. Work counters are machine-
    // independent — the currency of the sweep-vs-INLJ comparison.
    const ALGO_WORKERS: usize = 4;
    let algo_plan = JoinPlan {
        workers: ALGO_WORKERS,
        ..base_plan
    };
    let forest = TileForest::build(
        &algo_plan.partitioner,
        &parcels.boxes,
        algo_plan.tree,
        algo_plan.clip,
        ALGO_WORKERS,
    );
    header(
        &format!("join algorithms, {ALGO_WORKERS} thr (right forest cached)"),
        "algorithm",
        &[
            "pairs",
            "overlap tests",
            "leaf I/O",
            "tiles s/i/w",
            "wall ms",
        ],
    );
    let mut algo_rows = Vec::new();
    for (name, algo) in [
        ("stt", JoinAlgo::Stt),
        ("inlj", JoinAlgo::Inlj),
        ("sweep", JoinAlgo::Sweep),
        ("auto", JoinAlgo::Auto),
    ] {
        let plan = algo_plan.with_algo(algo);
        let t = Instant::now();
        let res = partitioned_join_with(&plan, &streets.boxes, &parcels.boxes, &forest);
        let ms = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(res.pairs, seq.pairs, "{name} changed the pair count");
        println!(
            "{}",
            row(
                name,
                &[
                    res.pairs.to_string(),
                    res.overlap_tests.to_string(),
                    res.leaf_accesses().to_string(),
                    format!("{}/{}/{}", res.tiles_stt, res.tiles_inlj, res.tiles_sweep),
                    format!("{ms:.1}"),
                ],
            )
        );
        algo_rows.push(format!(
            "{{\"algo\": \"{name}\", \"wall_ms\": {ms:.3}, \"pairs\": {}, \"overlap_tests\": {}, \"leaf_accesses\": {}, \"internal_accesses\": {}, \"clip_prunes\": {}, \"tiles_stt\": {}, \"tiles_inlj\": {}, \"tiles_sweep\": {}}}",
            res.pairs,
            res.overlap_tests,
            res.leaf_accesses(),
            res.internal_accesses,
            res.clip_prunes,
            res.tiles_stt,
            res.tiles_inlj,
            res.tiles_sweep,
        ));
    }

    // ---- batched range queries over one shared tree ----------------
    let items = streets.items();
    let tree = ClippedRTree::from_tree(
        RTree::bulk_load(
            TreeConfig::paper_default(Variant::RStar).with_world(streets.domain),
            &items,
        ),
        ClipConfig::paper_default::<2>(ClipMethod::Stairline),
    );
    let mut counter = |q: &cbb_geom::Rect<2>| tree.tree.range_query(q).len();
    let queries = generate_queries(&streets, QueryProfile::QR1, n_queries, seed, &mut counter);

    let t = Instant::now();
    let base = parallel_range_queries(&tree, &queries, 1, true);
    let seq_batch_ms = t.elapsed().as_secs_f64() * 1e3;

    header(
        &format!("batched clipped range queries ({} queries)", queries.len()),
        "configuration",
        &["results", "leaf I/O", "wall ms", "speedup"],
    );
    println!(
        "{}",
        row(
            "sequential",
            &[
                base.total_results().to_string(),
                base.stats.leaf_accesses.to_string(),
                format!("{seq_batch_ms:.1}"),
                "1.00x".into(),
            ],
        )
    );
    let mut batch_rows = Vec::new();
    for workers in WORKER_COUNTS {
        let t = Instant::now();
        let out = parallel_range_queries(&tree, &queries, workers, true);
        let ms = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(out.results, base.results, "sharding changed the answers");
        println!(
            "{}",
            row(
                &format!("batched, {workers} thr"),
                &[
                    out.total_results().to_string(),
                    out.stats.leaf_accesses.to_string(),
                    format!("{ms:.1}"),
                    format!("{:.2}x", seq_batch_ms / ms),
                ],
            )
        );
        batch_rows.push(format!(
            "{{\"workers\": {workers}, \"wall_ms\": {ms:.3}, \"results\": {}, \"leaf_accesses\": {}}}",
            out.total_results(),
            out.stats.leaf_accesses,
        ));
    }

    // ---- machine-readable report -----------------------------------
    let json = format!(
        "{{\n  \"workload\": {{\"left\": \"rea02\", \"right\": \"par02\", \"objects_per_side\": {n}, \"grid\": [{GRID_PER_DIM}, {GRID_PER_DIM}], \"variant\": \"R*-tree\", \"clip\": \"CSTA\", \"queries\": {}}},\n  \"join\": {{\n    \"sequential\": {{\"wall_ms\": {seq_join_ms:.3}, \"pairs\": {}}},\n    \"parallel\": [\n      {}\n    ]\n  }},\n  \"algos\": [\n    {}\n  ],\n  \"batch\": {{\n    \"sequential\": {{\"wall_ms\": {seq_batch_ms:.3}, \"results\": {}, \"leaf_accesses\": {}}},\n    \"parallel\": [\n      {}\n    ]\n  }}\n}}\n",
        queries.len(),
        seq.pairs,
        join_rows.join(",\n      "),
        algo_rows.join(",\n    "),
        base.total_results(),
        base.stats.leaf_accesses,
        batch_rows.join(",\n      "),
    );
    std::fs::write("BENCH_engine.json", &json).expect("write BENCH_engine.json");
    println!("\nwrote BENCH_engine.json");
}
