//! Figure 13 — storage breakdown of clipped RR*-trees: percentage of bytes
//! in directory nodes, leaf nodes and clip points, plus the average number
//! of stored clip points per node (bar annotations), for CSKY and CSTA on
//! every dataset.
//!
//! Paper headlines: clip points never exceed 2 % (2-d) / 9 % (3-d) of
//! total storage; 2-d datasets store ≤ 3 clip points per node, the 3-d
//! neuroscience sets 6 (CSKY) to 13 (CSTA).

use cbb_bench::{clip_tree, header, paper_build, parse_args, row, METHODS};
use cbb_datasets::{dataset2, dataset3, Dataset};
use cbb_rtree::Variant;
use cbb_storage::storage_breakdown;

fn run<const D: usize>(data: &Dataset<D>, _args: &cbb_bench::Args) {
    let tree = paper_build(Variant::RRStar, data);
    for method in METHODS {
        let clipped = clip_tree(&tree, method);
        let b = storage_breakdown(&clipped);
        let (dir, leaf, clips) = b.percentages();
        println!(
            "{}",
            row(
                &format!("{} {}", data.name, method.label()),
                &[
                    format!("{dir:.1}%"),
                    format!("{leaf:.1}%"),
                    format!("{clips:.2}%"),
                    format!("{:.1}", b.avg_clip_points()),
                    format!("{}", b.total() / 1024),
                ]
            )
        );
    }
}

fn main() {
    let args = parse_args();
    header(
        "Figure 13 — storage breakdown of clipped RR*-trees",
        "dataset/method",
        &["dir", "leaf", "clips", "avg#clip", "total KiB"],
    );
    run(&dataset2("par02", args.scale), &args);
    run(&dataset3("par03", args.scale), &args);
    run(&dataset2("rea02", args.scale), &args);
    run(&dataset3("rea03", args.scale), &args);
    run(&dataset3("axo03", args.scale), &args);
    run(&dataset3("den03", args.scale), &args);
    run(&dataset3("neu03", args.scale), &args);
    println!("\n(paper: clip overhead ≤2% in 2-d, ≤9% in 3-d; storage dominated by leaves)");
}
