//! Torn-write fault injection: damage the durability files the way a
//! kill mid-`write(2)` or a dying disk would, and pin recovery's
//! response — checksum-detect, truncate to the last valid record, and
//! never serve a half-applied batch. Snapshot damage (which has no
//! older copy to fall back to) must refuse recovery loudly.

use cbb_core::{ClipConfig, ClipMethod};
use cbb_datasets::skew::clustered_with_layout;
use cbb_engine::UniformGrid;
use cbb_geom::{Point, Rect, SplitMix64};
use cbb_rtree::{DataId, TreeConfig, Variant};
use cbb_serve::{DurabilityConfig, QueryService, Request, Response, ServiceConfig, Update};
use cbb_storage::FaultyLog;

const BATCHES: usize = 6;

fn tree() -> TreeConfig<2> {
    TreeConfig::tiny(Variant::RStar)
}

fn clip() -> ClipConfig {
    ClipConfig::paper_default::<2>(ClipMethod::Stairline)
}

fn tmp_root(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("cbb_serve_fault_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A durable service with `BATCHES` single-insert batches applied,
/// shut down cleanly. Returns the root and the per-batch acked
/// versions.
fn run_stream(tag: &str) -> (std::path::PathBuf, Vec<u64>) {
    let data = clustered_with_layout::<2>(600, 4, 30_000.0, 0.15, 5, 5);
    let partitioner = UniformGrid::new(data.domain, 3);
    let root = tmp_root(tag);
    let service = QueryService::start(
        ServiceConfig {
            durability: Some(DurabilityConfig::new(&root)),
            ..ServiceConfig::default()
        },
        partitioner,
        data.boxes,
        tree(),
        clip(),
    );
    let dataset = service.default_dataset();
    let mut rng = SplitMix64::new(5);
    let mut versions = Vec::new();
    for _ in 0..BATCHES {
        let x = rng.gen_range(0.0, 100_000.0);
        let y = rng.gen_range(0.0, 100_000.0);
        let response = service
            .submit(Request::UpdateBatch {
                dataset,
                updates: vec![
                    Update::Insert(Rect::new(Point([x, y]), Point([x + 50.0, y + 50.0]))),
                    Update::Delete(DataId((x as u32) % 600)),
                ],
            })
            .unwrap()
            .wait()
            .unwrap();
        match response.response {
            Response::Updated(summary) => versions.push(summary.version.0),
            other => panic!("expected update summary, got {other:?}"),
        }
    }
    service.shutdown();
    (root, versions)
}

fn restart(root: &std::path::Path) -> QueryService<2, UniformGrid<2>> {
    let data = clustered_with_layout::<2>(600, 4, 30_000.0, 0.15, 5, 5);
    QueryService::start(
        ServiceConfig {
            durability: Some(DurabilityConfig::new(root)),
            ..ServiceConfig::default()
        },
        UniformGrid::new(data.domain, 3),
        Vec::new(),
        tree(),
        clip(),
    )
}

/// A truncated tail (the classic torn write: the kill landed inside
/// the last `write(2)`) is detected and dropped; every fully-written
/// batch before it survives.
#[test]
fn truncated_wal_tail_loses_only_the_last_batch() {
    let (root, versions) = run_stream("truncate");
    let wal = root.join("ds_0.wal");
    // Chop 3 bytes off the final record: its length prefix now promises
    // more payload than the file holds.
    FaultyLog::new(&wal).truncate_tail(3).unwrap();

    let service = restart(&root);
    let dataset = service.default_dataset();
    assert_eq!(
        service.dataset_version(dataset).unwrap().0,
        versions[BATCHES - 2],
        "the torn final batch vanished, the previous commit survived"
    );
    let report = service.shutdown();
    assert_eq!(report.recovered_records, (BATCHES - 1) as u64);
    let _ = std::fs::remove_dir_all(&root);
}

/// A flipped bit inside the tail record fails its checksum — recovery
/// must treat it exactly like a torn tail, not apply half-garbage.
#[test]
fn bit_flip_in_wal_tail_is_detected_by_checksum() {
    let (root, versions) = run_stream("bitflip");
    let wal = root.join("ds_0.wal");
    // Damage the payload of the final record (well past its 8-byte
    // frame, counted from the end).
    FaultyLog::new(&wal).flip_bit_from_end(4).unwrap();

    let service = restart(&root);
    let dataset = service.default_dataset();
    assert_eq!(
        service.dataset_version(dataset).unwrap().0,
        versions[BATCHES - 2],
        "the corrupt record and nothing else was discarded"
    );
    let report = service.shutdown();
    assert_eq!(report.recovered_records, (BATCHES - 1) as u64);
    let _ = std::fs::remove_dir_all(&root);
}

/// A flipped bit in the *middle* of the WAL cuts replay at that record:
/// everything before is served, everything after (whose versions would
/// now gap) is discarded with it. The recovered state is still a clean
/// prefix — never a half-applied batch.
#[test]
fn bit_flip_mid_wal_recovers_the_valid_prefix() {
    let (root, versions) = run_stream("midflip");
    let wal = root.join("ds_0.wal");
    let len = std::fs::metadata(&wal).unwrap().len();
    // Land inside one of the middle records' payloads.
    FaultyLog::new(&wal).flip_bit_at(len / 2).unwrap();

    let service = restart(&root);
    let dataset = service.default_dataset();
    let recovered = service.dataset_version(dataset).unwrap().0;
    assert!(
        versions.contains(&recovered) || recovered == versions[0] - 1,
        "recovered version {recovered} must be one of the acked prefix versions {versions:?}"
    );
    assert!(
        recovered < versions[BATCHES - 1],
        "records after the damaged one must not replay"
    );
    service.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// Snapshot damage is not survivable (there is no older snapshot to
/// fall back to) — recovery must refuse to start rather than serve a
/// corrupt store.
#[test]
fn corrupt_snapshot_refuses_recovery() {
    let (root, _) = run_stream("snapcorrupt");
    let snap = root.join("ds_0.snap");
    // Flip a bit inside the arena section, far from the header.
    let len = std::fs::metadata(&snap).unwrap().len();
    FaultyLog::new(&snap).flip_bit_at(len / 2).unwrap();

    let result = std::panic::catch_unwind(|| restart(&root));
    assert!(
        result.is_err(),
        "a checksum-failing snapshot must refuse recovery, not serve garbage"
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// A torn `catalog.wal` tail loses only the lifecycle event it carried:
/// a dataset whose `Create` record was half-written comes back as an
/// orphan snapshot (deleted), not a live dataset.
#[test]
fn torn_catalog_wal_undoes_the_halfwritten_create() {
    let data = clustered_with_layout::<2>(400, 4, 30_000.0, 0.15, 5, 5);
    let partitioner = UniformGrid::new(data.domain, 3);
    let root = tmp_root("admin_torn");
    let service = QueryService::start(
        ServiceConfig {
            durability: Some(DurabilityConfig::new(&root)),
            ..ServiceConfig::default()
        },
        partitioner,
        data.boxes.clone(),
        tree(),
        clip(),
    );
    let extra = service
        .create_dataset("extra", partitioner, data.boxes[..32].to_vec())
        .unwrap();
    service.shutdown();

    // Tear the tail of catalog.wal inside the "extra" Create record.
    FaultyLog::new(&root.join("catalog.wal"))
        .truncate_tail(2)
        .unwrap();
    let snap = root.join(format!("ds_{}.snap", extra.0));
    assert!(
        snap.exists(),
        "the orphan snapshot was written before the record"
    );

    let service = restart(&root);
    assert_eq!(
        service.dataset_id("extra"),
        None,
        "half-created dataset is gone"
    );
    assert!(
        service.dataset_id(cbb_serve::DEFAULT_DATASET).is_some(),
        "the fully-committed dataset still recovers"
    );
    assert!(!snap.exists(), "recovery deletes the orphan snapshot");
    service.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}
