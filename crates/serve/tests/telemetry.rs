//! Telemetry correctness: the registry is a *view* over the same
//! counters the engine already maintains, so its values must be
//! byte-equal to a direct-engine oracle; totals must stay exact under
//! concurrent producers; disabled telemetry must record nothing while
//! answering identically; and the scrape text format is a pinned API.

use std::collections::BTreeMap;
use std::time::Duration;

use cbb_core::{ClipConfig, ClipMethod};
use cbb_datasets::skew::clustered_with_layout;
use cbb_engine::{AdaptiveGrid, AutoPolicy, DatasetStore, JoinAlgo, QueryAlgo, SplitPolicy};
use cbb_geom::{Point, Rect, SplitMix64};
use cbb_rtree::{AccessStats, TreeConfig, Variant};
use cbb_serve::{QueryService, Request, Response, ServiceConfig, TelemetryConfig, DEFAULT_DATASET};

const EXEC_WORKERS: usize = 2;

struct Fixture {
    objects: Vec<Rect<2>>,
    partitioner: AdaptiveGrid<2>,
    tree: TreeConfig<2>,
    clip: ClipConfig,
}

fn fixture() -> Fixture {
    let data = clustered_with_layout::<2>(1_800, 5, 25_000.0, 0.2, 11, 11);
    let partitioner = AdaptiveGrid::from_sample(data.domain, [4, 4], &data.boxes);
    Fixture {
        objects: data.boxes,
        partitioner,
        tree: TreeConfig::tiny(Variant::RStar),
        clip: ClipConfig::paper_default::<2>(ClipMethod::Stairline),
    }
}

fn service(f: &Fixture, telemetry: TelemetryConfig) -> QueryService<2, AdaptiveGrid<2>> {
    QueryService::start(
        ServiceConfig {
            batch_max: 8,
            batch_deadline: Duration::from_millis(2),
            exec_workers: EXEC_WORKERS,
            telemetry,
            ..ServiceConfig::default()
        },
        f.partitioner.clone(),
        f.objects.clone(),
        f.tree,
        f.clip,
    )
}

fn range_queries(n: usize, seed: u64) -> Vec<Rect<2>> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            let x = rng.gen_range(-10_000.0, 800_000.0);
            let y = rng.gen_range(-10_000.0, 800_000.0);
            let s = rng.gen_range(2_000.0, 50_000.0);
            Rect::new(Point([x, y]), Point([x + s, y + s]))
        })
        .collect()
}

fn knn_probes(n: usize, seed: u64) -> Vec<(Point<2>, usize)> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|i| {
            let p = Point([
                rng.gen_range(-10_000.0, 800_000.0),
                rng.gen_range(-10_000.0, 800_000.0),
            ]);
            (p, 1 + i % 5)
        })
        .collect()
}

/// The registry's per-dataset `cbb_access_*` counters are fed from the
/// exact `AccessStats` the engine produces, so running the identical
/// workload against a directly-built [`DatasetStore`] must reproduce
/// every field byte-for-byte.
///
/// Pinned for both fixed execution paths: per-query counters are a
/// pure function of the (query, tile) pair under `Descend` *and* under
/// `SharedSweep` (the sweep charges each query exactly the candidate
/// pairs its own x-interval admits), so the totals are independent of
/// how the service cut the workload into micro-batches. (`Auto` is
/// deliberately absent here: its per-tile decision depends on how many
/// batch queries land on the tile, so its totals vary with micro-batch
/// composition.)
#[test]
fn registry_access_counters_match_direct_engine_oracle() {
    for algo in [QueryAlgo::Descend, QueryAlgo::SharedSweep] {
        registry_access_counters_oracle(algo);
    }
}

fn registry_access_counters_oracle(algo: QueryAlgo) {
    let f = fixture();
    let svc = QueryService::start(
        ServiceConfig {
            batch_max: 8,
            batch_deadline: Duration::from_millis(2),
            exec_workers: EXEC_WORKERS,
            query_algo: algo,
            ..ServiceConfig::default()
        },
        f.partitioner.clone(),
        f.objects.clone(),
        f.tree,
        f.clip,
    );
    let dataset = svc.default_dataset();

    let clipped = range_queries(30, 9);
    let baseline = range_queries(24, 10);
    let probes = knn_probes(20, 11);

    let mut handles = Vec::new();
    for q in &clipped {
        handles.push(
            svc.submit(Request::Range {
                dataset,
                query: *q,
                use_clips: true,
            })
            .unwrap(),
        );
    }
    for q in &baseline {
        handles.push(
            svc.submit(Request::Range {
                dataset,
                query: *q,
                use_clips: false,
            })
            .unwrap(),
        );
    }
    for (center, k) in &probes {
        handles.push(
            svc.submit(Request::Knn {
                dataset,
                center: *center,
                k: *k,
            })
            .unwrap(),
        );
    }
    for h in handles {
        h.wait().unwrap();
    }
    let scrape = svc.scrape();
    svc.shutdown();

    // The oracle: the same store built directly, probed with the same
    // queries, its AccessStats summed per field.
    let store = DatasetStore::build(
        f.partitioner.clone(),
        &f.objects,
        f.tree,
        f.clip,
        EXEC_WORKERS,
    );
    let policy = AutoPolicy::default();
    let mut oracle = AccessStats::new();
    oracle += &store
        .run_with(
            &clipped,
            EXEC_WORKERS,
            true,
            algo,
            &policy,
            SplitPolicy::Auto,
        )
        .stats;
    oracle += &store
        .run_with(
            &baseline,
            EXEC_WORKERS,
            false,
            algo,
            &policy,
            SplitPolicy::Auto,
        )
        .stats;
    oracle += &store.run_knn(&probes, EXEC_WORKERS).stats;

    let labels = [("dataset", DEFAULT_DATASET)];
    for (field, expected) in oracle.fields() {
        let name = format!("cbb_access_{field}_total");
        assert_eq!(
            scrape.snapshot.counter(&name, &labels),
            Some(expected),
            "{name} must equal the direct-engine AccessStats oracle under {algo:?}"
        );
    }

    // Cache counters are views over the ForestCache itself: the one
    // initial build, zero read-path rebuilds.
    assert_eq!(
        scrape.snapshot.counter("cbb_forest_builds_total", &[]),
        Some(1)
    );
    assert_eq!(
        scrape.snapshot.counter("cbb_requests_completed_total", &[]),
        Some((clipped.len() + baseline.len() + probes.len()) as u64)
    );
}

/// N producer threads hammering the queue: every admission-side and
/// completion-side total must come out exact — no lost or double
/// counts, queue depth back to zero.
#[test]
fn concurrent_producers_record_exact_totals() {
    const THREADS: usize = 4;
    const PER_THREAD: usize = 40;

    let f = fixture();
    let svc = service(&f, TelemetryConfig::default());
    let dataset = svc.default_dataset();

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let svc = &svc;
            let queries = range_queries(PER_THREAD, 100 + t as u64);
            scope.spawn(move || {
                for (i, q) in queries.iter().enumerate() {
                    let h = svc
                        .submit(Request::Range {
                            dataset,
                            query: *q,
                            use_clips: i % 2 == 0,
                        })
                        .unwrap();
                    h.wait().unwrap();
                }
            });
        }
    });

    let total = (THREADS * PER_THREAD) as u64;
    let scrape = svc.scrape();
    let snap = &scrape.snapshot;
    assert_eq!(
        snap.counter("cbb_requests_submitted_total", &[]),
        Some(total)
    );
    assert_eq!(
        snap.counter("cbb_requests_completed_total", &[]),
        Some(total)
    );
    assert_eq!(
        snap.counter("cbb_requests_by_kind_total", &[("request_kind", "range")]),
        Some(total),
        "every request was a range"
    );
    assert_eq!(snap.gauge("cbb_queue_depth", &[]), Some(0));
    assert_eq!(
        snap.counter("cbb_batched_requests_total", &[]),
        Some(total),
        "batches carried every request exactly once"
    );
    let latency = snap
        .histogram("cbb_request_latency_ns", &[("request_kind", "range")])
        .expect("latency histogram registered");
    assert_eq!(latency.count, total);
    let batch_size = snap
        .histogram("cbb_batch_size", &[])
        .expect("batch size histogram registered");
    assert_eq!(batch_size.sum, total);
    assert_eq!(
        Some(batch_size.count),
        snap.counter("cbb_batches_total", &[])
    );
    svc.shutdown();
}

/// `TelemetryConfig::disabled()`: zero samples retained anywhere, empty
/// scrapes, inert slow ring — and byte-identical answers.
#[test]
fn disabled_telemetry_records_nothing_and_answers_identically() {
    let f = fixture();
    let on = service(&f, TelemetryConfig::default());
    let off = service(&f, TelemetryConfig::disabled());

    let queries = range_queries(25, 77);
    let probes = knn_probes(10, 78);
    let answers = |svc: &QueryService<2, AdaptiveGrid<2>>| {
        let dataset = svc.default_dataset();
        let mut ranges = Vec::new();
        for q in &queries {
            let h = svc
                .submit(Request::Range {
                    dataset,
                    query: *q,
                    use_clips: true,
                })
                .unwrap();
            ranges.push(h.wait().unwrap().response.into_range());
        }
        let mut knns = Vec::new();
        for (center, k) in &probes {
            let h = svc
                .submit(Request::Knn {
                    dataset,
                    center: *center,
                    k: *k,
                })
                .unwrap();
            knns.push(h.wait().unwrap().response.into_knn());
        }
        (ranges, knns)
    };

    assert_eq!(
        answers(&on),
        answers(&off),
        "telemetry must not change answers"
    );

    let scrape = off.scrape();
    assert_eq!(
        scrape.snapshot.total_recorded(),
        0,
        "disabled registry retains zero samples"
    );
    assert!(scrape.text.is_empty(), "disabled scrape renders no text");
    assert!(scrape.snapshot.families.is_empty());
    assert!(off.slow_queries().is_empty(), "slow ring stays inert");
    assert!(
        !on.slow_queries().is_empty(),
        "enabled ring retains entries"
    );

    // The report still answers questions the stores own (shape, rows),
    // but registry-backed counters read zero.
    let report = off.report();
    assert_eq!(report.submitted, 0);
    assert_eq!(report.datasets.len(), 1);
    assert_eq!(report.datasets[0].live_objects, f.objects.len());
    on.shutdown();
    off.shutdown();
}

/// The scrape text is a pinned format: stable family names and kinds,
/// ≥ 15 families after a mixed workload, per-dataset labels, and
/// internally consistent histogram expansions
/// (`_bucket{le="+Inf"}` == `_count`, `_sum`/`_count` present).
#[test]
fn golden_scrape_format() {
    let f = fixture();
    let svc = service(&f, TelemetryConfig::default());
    let dataset = svc.default_dataset();

    // One request of every data-path kind so every family has traffic.
    let mut handles = Vec::new();
    for (i, q) in range_queries(8, 5).into_iter().enumerate() {
        handles.push(
            svc.submit(Request::Range {
                dataset,
                query: q,
                use_clips: i % 2 == 0,
            })
            .unwrap(),
        );
    }
    handles.push(
        svc.submit(Request::Knn {
            dataset,
            center: Point([100.0, 100.0]),
            k: 3,
        })
        .unwrap(),
    );
    handles.push(
        svc.submit(Request::Join {
            dataset,
            probes: range_queries(5, 6),
            algo: JoinAlgo::Stt,
            use_clips: true,
        })
        .unwrap(),
    );
    handles.push(
        svc.submit(Request::CrossJoin {
            left: dataset,
            right: dataset,
            algo: JoinAlgo::Stt,
            use_clips: true,
        })
        .unwrap(),
    );
    for h in handles {
        h.wait().unwrap();
    }
    let rect = Rect::new(Point([1.0, 1.0]), Point([2.0, 2.0]));
    let inserted = svc
        .submit(Request::Insert { dataset, rect })
        .unwrap()
        .wait()
        .unwrap()
        .response;
    let id = match inserted {
        Response::Inserted(Some(id)) => id,
        other => panic!("insert failed: {other:?}"),
    };
    let deleted = svc
        .submit(Request::Delete { dataset, id })
        .unwrap()
        .wait()
        .unwrap()
        .response;
    assert_eq!(deleted, Response::Deleted(true));

    let scrape = svc.scrape();
    let text = &scrape.text;

    // ── Golden family catalog: names and kinds are API.
    let expected_types = [
        ("cbb_requests_submitted_total", "counter"),
        ("cbb_requests_rejected_total", "counter"),
        ("cbb_requests_shed_total", "counter"),
        ("cbb_requests_completed_total", "counter"),
        ("cbb_requests_by_kind_total", "counter"),
        ("cbb_queue_depth", "gauge"),
        ("cbb_batches_total", "counter"),
        ("cbb_batched_requests_total", "counter"),
        ("cbb_batch_size_max", "gauge"),
        ("cbb_batch_size", "histogram"),
        ("cbb_request_latency_ns", "histogram"),
        ("cbb_request_phase_ns", "histogram"),
        ("cbb_forest_builds_total", "counter"),
        ("cbb_forest_cache_hits_total", "counter"),
        ("cbb_forest_hits_total", "counter"),
        ("cbb_cross_joins_total", "counter"),
        ("cbb_join_algo_total", "counter"),
        ("cbb_query_algo_total", "counter"),
        ("cbb_fused_batches_total", "counter"),
        ("cbb_fused_width", "histogram"),
        ("cbb_probe_repartitions_total", "counter"),
        ("cbb_write_batches_total", "counter"),
        ("cbb_updates_applied_total", "counter"),
        ("cbb_delta_nodes_allocated_total", "counter"),
        ("cbb_join_pairs_total", "counter"),
        ("cbb_access_leaf_accesses_total", "counter"),
        ("cbb_access_contributing_leaf_accesses_total", "counter"),
        ("cbb_access_internal_accesses_total", "counter"),
        ("cbb_access_results_total", "counter"),
        ("cbb_access_clip_tests_total", "counter"),
        ("cbb_access_clip_prunes_total", "counter"),
        ("cbb_access_overlap_tests_total", "counter"),
        ("cbb_dataset_live_objects", "gauge"),
        ("cbb_dataset_arena_slots", "gauge"),
        ("cbb_dataset_version", "gauge"),
        ("cbb_dataset_load_imbalance", "gauge"),
        ("cbb_dataset_tile_occupancy_p50", "gauge"),
        ("cbb_dataset_tile_occupancy_p99", "gauge"),
    ];
    for (name, kind) in expected_types {
        assert!(
            text.contains(&format!("# TYPE {name} {kind}\n")),
            "scrape must expose {name} as a {kind}"
        );
    }
    let distinct_families = text.lines().filter(|l| l.starts_with("# TYPE ")).count();
    assert!(
        distinct_families >= 15,
        "need ≥ 15 families, got {distinct_families}"
    );

    // ── Per-dataset labels on the access counters and dataset gauges.
    assert!(text.contains(&format!(
        "cbb_access_leaf_accesses_total{{dataset=\"{DEFAULT_DATASET}\"}}"
    )));
    assert!(text.contains(&format!(
        "cbb_dataset_live_objects{{dataset=\"{DEFAULT_DATASET}\"}}"
    )));
    assert!(text.contains("request_kind=\"range\""));
    assert!(text.contains("phase=\"execute\""));
    // The STT joins above ran tiles through the STT kernel.
    assert!(text.contains("cbb_join_algo_total{algo=\"stt\"}"));

    // ── Histogram expansion invariants: every series' +Inf bucket
    // equals its _count, and _sum exists alongside.
    let mut inf_buckets: BTreeMap<String, u64> = BTreeMap::new();
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    let mut sums = 0usize;
    for line in text.lines() {
        if line.starts_with('#') {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("sample line");
        if series.contains("le=\"+Inf\"") {
            let key = series_key(series, "_bucket").expect("+Inf line is a bucket");
            inf_buckets.insert(key, value.parse().unwrap());
        } else if let Some(key) = series_key(series, "_count") {
            counts.insert(key, value.parse().unwrap());
        } else if series_key(series, "_sum").is_some() {
            sums += 1;
        }
    }
    assert!(!inf_buckets.is_empty(), "histograms render +Inf buckets");
    assert!(sums >= inf_buckets.len(), "every histogram renders a _sum");
    assert_eq!(
        inf_buckets, counts,
        "per series, the +Inf cumulative bucket must equal _count"
    );

    // ── JSON exposition covers the same families.
    assert!(scrape.json.contains("cbb_requests_submitted_total"));
    assert!(scrape.json.contains("cbb_request_latency_ns"));

    // ── The slow ring has entries with phase breakdowns.
    let slow = svc.slow_queries();
    assert!(!slow.is_empty());
    assert!(
        slow.iter().all(|q| q
            .span
            .breakdown()
            .iter()
            .any(|(name, _)| *name == "execute")),
        "every retained slow query carries an execute phase"
    );

    svc.shutdown();
}

/// Normalize a histogram sample's series name: strip `suffix` from the
/// metric name and drop the `le` label, so `_bucket{le="+Inf"}` and
/// `_count` lines of the same series map to the same key. Returns
/// `None` when the metric name does not carry `suffix`.
fn series_key(series: &str, suffix: &str) -> Option<String> {
    let (name, labels) = match series.split_once('{') {
        Some((name, labels)) => (name, labels.trim_end_matches('}')),
        None => (series, ""),
    };
    let base = name.strip_suffix(suffix)?;
    let kept: Vec<&str> = labels
        .split(',')
        .filter(|kv| !kv.is_empty() && !kv.starts_with("le="))
        .collect();
    Some(format!("{base}{{{}}}", kept.join(",")))
}
