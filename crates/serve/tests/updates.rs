//! The write path, end to end: update batches through the queue →
//! batcher → engine pipeline are atomic (one version bump per
//! micro-batch), delta-applied (no forest rebuild), read-your-writes
//! ordered, and — the oracle — answer-identical to a wholesale
//! `swap_data` with the surviving objects.

use std::time::Duration;

use cbb_core::{ClipConfig, ClipMethod};
use cbb_datasets::skew::clustered_with_layout;
use cbb_engine::{DataVersion, JoinAlgo, UniformGrid, Update, UpdateResult};
use cbb_geom::{Point, Rect, SplitMix64};
use cbb_joins::brute_force_pairs;
use cbb_rtree::{DataId, TreeConfig, Variant};
use cbb_serve::{QueryService, Request, ServiceConfig};

type Service = QueryService<2, UniformGrid<2>>;

fn service(config: ServiceConfig, n: usize) -> (Service, Vec<Rect<2>>) {
    let data = clustered_with_layout::<2>(n, 5, 40_000.0, 0.2, 3, 3);
    let svc = QueryService::start(
        config,
        UniformGrid::new(data.domain, 4),
        data.boxes.clone(),
        TreeConfig::tiny(Variant::RStar),
        ClipConfig::paper_default::<2>(ClipMethod::Stairline),
    );
    (svc, data.boxes)
}

fn queries(n: usize, seed: u64) -> Vec<Rect<2>> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            let x = rng.gen_range(-20_000.0, 950_000.0);
            let y = rng.gen_range(-20_000.0, 950_000.0);
            let s = rng.gen_range(5_000.0, 90_000.0);
            Rect::new(Point([x, y]), Point([x + s, y + s]))
        })
        .collect()
}

fn range(svc: &Service, q: Rect<2>) -> Vec<DataId> {
    let mut ids = svc
        .submit(Request::Range {
            dataset: svc.default_dataset(),
            query: q,
            use_clips: true,
        })
        .unwrap()
        .wait()
        .unwrap()
        .response
        .into_range();
    ids.sort();
    ids
}

/// The acceptance oracle: a batch of mixed updates yields exactly the
/// same query/join answers as `swap_data` with the final dataset —
/// without a single forest rebuild on the update path.
#[test]
fn update_batch_equals_swap_data_with_final_dataset() {
    let (svc, boxes) = service(ServiceConfig::default(), 1_200);
    let base = boxes.len();
    let mut rng = SplitMix64::new(41);

    // Mixed script: delete a spread of initial objects, insert fresh
    // ones (clustered + spanning + out-of-domain), delete one insert.
    let mut updates: Vec<Update<2>> = Vec::new();
    for i in 0..300 {
        updates.push(Update::Delete(DataId((i * 3) as u32)));
    }
    for _ in 0..250 {
        let x = rng.gen_range(0.0, 900_000.0);
        let y = rng.gen_range(0.0, 900_000.0);
        let w = rng.gen_range(0.0, 60_000.0);
        let h = rng.gen_range(0.0, 60_000.0);
        updates.push(Update::Insert(Rect::new(
            Point([x, y]),
            Point([x + w, y + h]),
        )));
    }
    updates.push(Update::Insert(Rect::new(
        Point([-50_000.0, 400_000.0]),
        Point([1_200_000.0, 430_000.0]),
    )));
    updates.push(Update::Delete(DataId(base as u32))); // first insert above
    let summary = svc
        .submit(Request::UpdateBatch {
            dataset: svc.default_dataset(),
            updates: updates.clone(),
        })
        .unwrap()
        .wait()
        .unwrap()
        .response
        .into_updated();
    assert_eq!(summary.version, DataVersion(1), "one batch, one bump");
    assert_eq!(summary.results.len(), updates.len());

    // Mirror the script to know the surviving (rect, id) set.
    let mut arena = boxes.clone();
    let mut live = vec![true; base];
    for u in &updates {
        match u {
            Update::Insert(r) => {
                arena.push(*r);
                live.push(true);
            }
            Update::Delete(id) => live[id.0 as usize] = false,
        }
    }
    let live_rects: Vec<Rect<2>> = arena
        .iter()
        .zip(&live)
        .filter(|(_, l)| **l)
        .map(|(r, _)| *r)
        .collect();
    assert_eq!(svc.live_object_count(), live_rects.len());

    // Reference service: wholesale swap to the final dataset (fresh id
    // space, so compare by rectangle).
    let (reference, _) = service(ServiceConfig::default(), 1_200);
    reference.swap_data(live_rects.clone());

    for (qi, q) in queries(40, 42).into_iter().enumerate() {
        // Ranges: identical result rectangles; against brute force too.
        let got: Vec<Rect<2>> = range(&svc, q)
            .iter()
            .map(|id| arena[id.0 as usize])
            .collect();
        let want: Vec<Rect<2>> = range(&reference, q)
            .iter()
            .map(|id| live_rects[id.0 as usize])
            .collect();
        let brute: Vec<&Rect<2>> = live_rects.iter().filter(|r| r.intersects(&q)).collect();
        assert_eq!(got.len(), brute.len(), "query {qi} vs brute force");
        let key = |r: &Rect<2>| {
            (
                r.lo[0].to_bits(),
                r.lo[1].to_bits(),
                r.hi[0].to_bits(),
                r.hi[1].to_bits(),
            )
        };
        let mut got_keys: Vec<_> = got.iter().map(key).collect();
        let mut want_keys: Vec<_> = want.iter().map(key).collect();
        got_keys.sort_unstable();
        want_keys.sort_unstable();
        assert_eq!(got_keys, want_keys, "query {qi}");

        // kNN: identical distance profiles.
        let knn = |svc: &Service| -> Vec<u64> {
            svc.submit(Request::Knn {
                dataset: svc.default_dataset(),
                center: q.center(),
                k: 9,
            })
            .unwrap()
            .wait()
            .unwrap()
            .response
            .into_knn()
            .into_iter()
            .map(|(_, d)| d.to_bits())
            .collect()
        };
        assert_eq!(knn(&svc), knn(&reference), "kNN {qi}");
    }

    // Joins: exact pair counts, equal to brute force over survivors.
    let probes = queries(120, 43);
    let pairs = |svc: &Service, algo| {
        svc.submit(Request::Join {
            dataset: svc.default_dataset(),
            probes: probes.clone(),
            algo,
            use_clips: true,
        })
        .unwrap()
        .wait()
        .unwrap()
        .response
        .into_join()
        .pairs
    };
    let expected = brute_force_pairs(&probes, &live_rects);
    for algo in [JoinAlgo::Stt, JoinAlgo::Inlj] {
        assert_eq!(pairs(&svc, algo), expected, "delta {algo:?}");
        assert_eq!(pairs(&reference, algo), expected, "rebuilt {algo:?}");
    }

    // The delta service never rebuilt: still the single start-time
    // forest build, with the whole script in one write batch.
    let report = svc.shutdown();
    assert_eq!(report.forest_builds, 1, "updates must not rebuild");
    assert_eq!(report.write_batches, 1);
    assert_eq!(report.updates_applied, updates.len() as u64);
    assert!(report.delta_nodes_allocated > 0);
}

/// A request admitted after a write's completion observes the write —
/// across dispatcher threads and batch boundaries.
#[test]
fn read_your_writes_after_completion() {
    let (svc, _) = service(
        ServiceConfig {
            batch_max: 16,
            batch_deadline: Duration::from_millis(1),
            dispatchers: 2,
            exec_workers: 2,
            ..ServiceConfig::default()
        },
        600,
    );
    let mut rng = SplitMix64::new(7);
    for i in 0..30 {
        let x = rng.gen_range(0.0, 900_000.0);
        let y = rng.gen_range(0.0, 900_000.0);
        let rect = Rect::new(Point([x, y]), Point([x + 500.0, y + 500.0]));
        let id = svc
            .submit(Request::Insert {
                dataset: svc.default_dataset(),
                rect,
            })
            .unwrap()
            .wait()
            .unwrap()
            .response
            .into_inserted()
            .expect("finite rect is applied");
        // Admitted strictly after the insert completed: must see it.
        assert!(
            range(&svc, rect).contains(&id),
            "iteration {i}: fresh insert invisible"
        );
        let deleted = svc
            .submit(Request::Delete {
                dataset: svc.default_dataset(),
                id,
            })
            .unwrap()
            .wait()
            .unwrap()
            .response
            .into_deleted();
        assert!(deleted, "iteration {i}");
        assert!(
            !range(&svc, rect).contains(&id),
            "iteration {i}: delete invisible"
        );
    }
    let report = svc.shutdown();
    assert_eq!(report.completed, report.submitted);
    assert_eq!(report.updates_applied, 60);
    assert_eq!(report.forest_builds, 1);
}

/// Every write sharing a micro-batch rides one version bump; empty
/// update batches bump nothing; degenerate writes answer cleanly.
#[test]
fn write_batches_bump_once_and_degenerates_answer() {
    let (svc, boxes) = service(ServiceConfig::default(), 400);
    assert_eq!(svc.data_version(), DataVersion(0));

    // One multi-op batch: exactly one bump.
    let summary = svc
        .submit(Request::UpdateBatch {
            dataset: svc.default_dataset(),
            updates: vec![
                Update::Insert(Rect::new(Point([1.0, 1.0]), Point([2.0, 2.0]))),
                Update::Delete(DataId(0)),
                Update::Delete(DataId(0)), // now dead
                Update::Delete(DataId(999_999)),
                Update::Insert(Rect::new(Point([0.0, 0.0]), Point([f64::INFINITY, 1.0]))),
            ],
        })
        .unwrap()
        .wait()
        .unwrap()
        .response
        .into_updated();
    assert_eq!(svc.data_version(), DataVersion(1));
    assert_eq!(summary.version, DataVersion(1));
    assert_eq!(
        summary.results,
        vec![
            UpdateResult::Inserted(DataId(400)),
            UpdateResult::Deleted(true),
            UpdateResult::Deleted(false),
            UpdateResult::Deleted(false),
            UpdateResult::Rejected,
        ]
    );

    // Empty batch: answered, no bump.
    let empty = svc
        .submit(Request::UpdateBatch {
            dataset: svc.default_dataset(),
            updates: Vec::new(),
        })
        .unwrap()
        .wait()
        .unwrap()
        .response
        .into_updated();
    assert_eq!(empty.version, DataVersion(1));
    assert!(empty.results.is_empty());
    assert_eq!(svc.data_version(), DataVersion(1));

    // All-no-op write batches (a rejected insert, a dead delete) are
    // answered but change nothing: no bump, no cache churn, no
    // applied-update accounting — a retry storm cannot roll versions.
    let none = svc
        .submit(Request::Insert {
            dataset: svc.default_dataset(),
            rect: Rect::new(Point([0.0, 0.0]), Point([f64::INFINITY, 1.0])),
        })
        .unwrap()
        .wait()
        .unwrap()
        .response
        .into_inserted();
    assert_eq!(none, None);
    let dead = svc
        .submit(Request::Delete {
            dataset: svc.default_dataset(),
            id: DataId(0),
        })
        .unwrap()
        .wait()
        .unwrap()
        .response
        .into_deleted();
    assert!(!dead, "id 0 was deleted above");
    assert_eq!(svc.data_version(), DataVersion(1), "no-ops bump nothing");
    let report = svc.report();
    assert_eq!(report.write_batches, 1);
    assert_eq!(report.updates_applied, 2, "only the applied insert+delete");

    // swap_data composes with the write path: wholesale replacement
    // re-keys ids, then updates keep working.
    svc.swap_data(boxes[..100].to_vec());
    let v = svc.data_version();
    let id = svc
        .submit(Request::Insert {
            dataset: svc.default_dataset(),
            rect: Rect::new(Point([5.0, 5.0]), Point([6.0, 6.0])),
        })
        .unwrap()
        .wait()
        .unwrap()
        .response
        .into_inserted()
        .unwrap();
    assert_eq!(id, DataId(100), "fresh arena after swap");
    assert_eq!(svc.data_version(), v.next());
    assert_eq!(svc.live_object_count(), 101);
    let report = svc.shutdown();
    assert_eq!(report.forest_builds, 2, "start + swap, never for writes");
}

/// Concurrent writers and readers: every request answered, the store
/// ends exactly where the applied updates put it, and large coalesced
/// write batches produce fewer bumps than writes.
#[test]
fn concurrent_writers_and_readers_drain_consistently() {
    let (svc, _) = service(
        ServiceConfig {
            batch_max: 64,
            batch_deadline: Duration::from_millis(5),
            dispatchers: 2,
            exec_workers: 2,
            ..ServiceConfig::default()
        },
        500,
    );
    let svc = std::sync::Arc::new(svc);
    let writers: Vec<_> = (0..3)
        .map(|w| {
            let svc = svc.clone();
            std::thread::spawn(move || {
                let mut rng = SplitMix64::new(100 + w);
                let mut inserted = 0usize;
                for _ in 0..60 {
                    let x = rng.gen_range(0.0, 900_000.0);
                    let y = rng.gen_range(0.0, 900_000.0);
                    let rect = Rect::new(Point([x, y]), Point([x + 1_000.0, y + 1_000.0]));
                    if svc
                        .submit(Request::Insert {
                            dataset: svc.default_dataset(),
                            rect,
                        })
                        .unwrap()
                        .wait()
                        .unwrap()
                        .response
                        .into_inserted()
                        .is_some()
                    {
                        inserted += 1;
                    }
                }
                inserted
            })
        })
        .collect();
    let readers: Vec<_> = (0..2)
        .map(|r| {
            let svc = svc.clone();
            std::thread::spawn(move || {
                for q in queries(60, 200 + r) {
                    let _ = svc
                        .submit(Request::Range {
                            dataset: svc.default_dataset(),
                            query: q,
                            use_clips: true,
                        })
                        .unwrap()
                        .wait()
                        .unwrap();
                }
            })
        })
        .collect();
    let inserted: usize = writers.into_iter().map(|w| w.join().unwrap()).sum();
    for r in readers {
        r.join().unwrap();
    }
    assert_eq!(inserted, 180);
    let svc = std::sync::Arc::into_inner(svc).expect("all threads joined");
    assert_eq!(svc.live_object_count(), 500 + 180);
    assert_eq!(svc.data_version().0, svc.report().write_batches);
    let report = svc.shutdown();
    assert_eq!(report.completed, report.submitted);
    assert_eq!(report.updates_applied, 180);
    assert_eq!(report.forest_builds, 1);
}
