//! Service oracle: every answer produced through the queue→batch
//! pipeline is byte-identical to calling the engine directly with the
//! same request. Batching changes scheduling, never results.

use std::time::Duration;

use cbb_core::{ClipConfig, ClipMethod};
use cbb_datasets::skew::clustered_with_layout;
use cbb_engine::{
    partitioned_join, AdaptiveGrid, AutoPolicy, BatchExecutor, JoinAlgo, JoinPlan, SplitPolicy,
};
use cbb_geom::{Point, Rect, SplitMix64};
use cbb_rtree::{TreeConfig, Variant};
use cbb_serve::{QueryAlgo, QueryService, Request, ServiceBuilder, ServiceConfig};

const EXEC_WORKERS: usize = 3;

struct Fixture {
    objects: Vec<Rect<2>>,
    partitioner: AdaptiveGrid<2>,
    tree: TreeConfig<2>,
    clip: ClipConfig,
}

fn fixture() -> Fixture {
    let data = clustered_with_layout::<2>(2_500, 6, 30_000.0, 0.15, 7, 7);
    let partitioner = AdaptiveGrid::from_sample(data.domain, [4, 4], &data.boxes);
    Fixture {
        objects: data.boxes,
        partitioner,
        tree: TreeConfig::tiny(Variant::RStar),
        clip: ClipConfig::paper_default::<2>(ClipMethod::Stairline),
    }
}

fn queries(n: usize, seed: u64) -> Vec<Rect<2>> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|i| {
            let x = rng.gen_range(-20_000.0, 1_000_000.0);
            let y = rng.gen_range(-20_000.0, 1_000_000.0);
            // Every fourth query is far outside the data: empty answers
            // must round-trip too.
            let off = if i % 4 == 3 { 2_000_000.0 } else { 0.0 };
            let s = rng.gen_range(1_000.0, 60_000.0);
            Rect::new(Point([x + off, y + off]), Point([x + off + s, y + off + s]))
        })
        .collect()
}

/// Mixed workload through a batching service vs the direct engine —
/// identical `Vec<DataId>` / neighbour lists / `JoinResult`s.
#[test]
fn batched_answers_equal_direct_executor_answers() {
    let f = fixture();
    let direct = BatchExecutor::build(
        f.partitioner.clone(),
        &f.objects,
        f.tree,
        f.clip,
        EXEC_WORKERS,
    );
    let service = QueryService::start(
        ServiceConfig {
            batch_max: 16,
            batch_deadline: Duration::from_millis(5),
            exec_workers: EXEC_WORKERS,
            ..ServiceConfig::default()
        },
        f.partitioner.clone(),
        f.objects.clone(),
        f.tree,
        f.clip,
    );
    let dataset = service.default_dataset();

    let range_qs = queries(60, 41);
    let mut rng = SplitMix64::new(42);
    let knn_probes: Vec<(Point<2>, usize)> = (0..40)
        .map(|i| {
            let p = Point([
                rng.gen_range(-50_000.0, 1_050_000.0),
                rng.gen_range(-50_000.0, 1_050_000.0),
            ]);
            (p, [0, 1, 5, 20][i % 4])
        })
        .collect();
    let join_probes = queries(150, 43);

    // Interleave kinds so real batches mix them.
    let mut handles = Vec::new();
    let mut expected = Vec::new();
    for i in 0..60 {
        let use_clips = i % 3 != 0;
        let q = range_qs[i];
        expected.push(cbb_serve::Response::Range(
            direct.run(&[q], 1, use_clips).results.remove(0),
        ));
        handles.push(
            service
                .submit(Request::Range {
                    dataset,
                    query: q,
                    use_clips,
                })
                .unwrap(),
        );
        if i < 40 {
            let (center, k) = knn_probes[i];
            expected.push(cbb_serve::Response::Knn(
                direct.run_knn(&[(center, k)], 1).results.remove(0),
            ));
            handles.push(service.submit(Request::Knn { dataset, center, k }).unwrap());
        }
        if i % 20 == 0 {
            for algo in [JoinAlgo::Stt, JoinAlgo::Inlj] {
                let plan = JoinPlan {
                    partitioner: f.partitioner.clone(),
                    tree: f.tree,
                    clip: f.clip,
                    use_clips: true,
                    algo,
                    workers: EXEC_WORKERS,
                    split: SplitPolicy::Auto,
                    auto: AutoPolicy::default(),
                };
                expected.push(cbb_serve::Response::Join(partitioned_join(
                    &plan,
                    &join_probes,
                    &f.objects,
                )));
                handles.push(
                    service
                        .submit(Request::Join {
                            dataset,
                            probes: join_probes.clone(),
                            algo,
                            use_clips: true,
                        })
                        .unwrap(),
                );
            }
        }
    }

    let mut batched = 0u64;
    for (i, (handle, want)) in handles.into_iter().zip(expected).enumerate() {
        let completion = handle.wait().expect("request served");
        assert_eq!(completion.response, want, "request {i}");
        assert!(completion.batch_size >= 1);
        if completion.batch_size > 1 {
            batched += 1;
        }
    }
    assert!(batched > 0, "the batching config must form real batches");
    let report = service.shutdown();
    assert_eq!(report.completed, report.submitted);
    assert_eq!(report.forest_builds, 1, "one data version, one forest");
}

/// The same workload answered identically under wildly different
/// batching configurations — batching is invisible in the results.
#[test]
fn batching_configuration_does_not_change_answers() {
    let f = fixture();
    let range_qs = queries(40, 77);
    let configs = [
        ServiceConfig::unbatched(),
        ServiceConfig {
            batch_max: 4,
            batch_deadline: Duration::from_millis(1),
            ..ServiceConfig::default()
        },
        ServiceConfig {
            batch_max: 64,
            batch_deadline: Duration::from_millis(20),
            dispatchers: 2,
            ..ServiceConfig::default()
        },
    ];
    let mut all_answers: Vec<Vec<cbb_serve::Response>> = Vec::new();
    for config in configs {
        let service = QueryService::start(
            config,
            f.partitioner.clone(),
            f.objects.clone(),
            f.tree,
            f.clip,
        );
        let dataset = service.default_dataset();
        let handles: Vec<_> = range_qs
            .iter()
            .map(|q| {
                service
                    .submit(Request::Range {
                        dataset,
                        query: *q,
                        use_clips: true,
                    })
                    .unwrap()
            })
            .collect();
        all_answers.push(
            handles
                .into_iter()
                .map(|h| h.wait().unwrap().response)
                .collect(),
        );
        service.shutdown();
    }
    assert_eq!(all_answers[0], all_answers[1]);
    assert_eq!(all_answers[0], all_answers[2]);
}

/// Degenerate requests round-trip: k = 0, empty join probe sets, and a
/// range query that matches nothing.
#[test]
fn degenerate_requests_are_served() {
    let f = fixture();
    let service = QueryService::start(
        ServiceConfig::default(),
        f.partitioner.clone(),
        f.objects.clone(),
        f.tree,
        f.clip,
    );
    let dataset = service.default_dataset();
    let knn = service
        .submit(Request::Knn {
            dataset,
            center: Point([0.0, 0.0]),
            k: 0,
        })
        .unwrap();
    let join = service
        .submit(Request::Join {
            dataset,
            probes: Vec::new(),
            algo: JoinAlgo::Stt,
            use_clips: true,
        })
        .unwrap();
    let miss = service
        .submit(Request::Range {
            dataset,
            query: Rect::new(Point([-9e7, -9e7]), Point([-8e7, -8e7])),
            use_clips: false,
        })
        .unwrap();
    assert!(knn.wait().unwrap().response.into_knn().is_empty());
    assert_eq!(join.wait().unwrap().response.into_join().pairs, 0);
    assert!(miss.wait().unwrap().response.into_range().is_empty());
    service.shutdown();
}

/// The `query_algo` knob moves work counters, never answers: the same
/// range workload through `Descend`, `SharedSweep` and `Auto` services
/// — in both service shapes (coalescing micro-batches and the
/// unbatched per-request path), single-store and sharded — returns
/// byte-identical responses, all in the canonical ascending-id order.
#[test]
fn query_algo_never_changes_answers_in_any_service_shape() {
    let f = fixture();
    let range_qs = queries(48, 97);
    let algos = [QueryAlgo::Descend, QueryAlgo::SharedSweep, QueryAlgo::Auto];

    let mut baseline: Option<Vec<Vec<cbb_rtree::DataId>>> = None;
    for shards in [1, 3] {
        for unbatched in [false, true] {
            for algo in algos {
                let mut builder = ServiceBuilder::new()
                    .shards(shards)
                    .batch_max(16)
                    .batch_deadline(Duration::from_millis(3))
                    .exec_workers(EXEC_WORKERS)
                    .query_algo(algo);
                if unbatched {
                    builder = builder.unbatched();
                }
                let service =
                    builder.build(f.partitioner.clone(), f.objects.clone(), f.tree, f.clip);
                let dataset = service.default_dataset();
                let handles: Vec<_> = range_qs
                    .iter()
                    .enumerate()
                    .map(|(i, q)| {
                        service
                            .submit(Request::Range {
                                dataset,
                                query: *q,
                                use_clips: i % 3 != 0,
                            })
                            .unwrap()
                    })
                    .collect();
                let answers: Vec<Vec<cbb_rtree::DataId>> = handles
                    .into_iter()
                    .map(|h| h.wait().unwrap().response.into_range())
                    .collect();
                service.shutdown();
                for ids in &answers {
                    assert!(ids.is_sorted(), "canonical order is ascending by id");
                }
                match &baseline {
                    None => baseline = Some(answers),
                    Some(expected) => assert_eq!(
                        &answers, expected,
                        "shards={shards} unbatched={unbatched} {algo:?} \
                         must answer byte-equal to the baseline"
                    ),
                }
            }
        }
    }
}
