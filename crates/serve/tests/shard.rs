//! Shard oracle: an N-shard [`ShardedService`] answers **byte-equal**
//! to a single-store [`QueryService`] on the same seeded data, for
//! every request kind, across shard counts, partitioner kinds, and
//! both shard-fitting modes — plus the router edge cases (boundary
//! straddling, empty shards, atomic admin fan-out, cross-join dedup).

use std::time::Duration;

use cbb_core::{ClipConfig, ClipMethod};
use cbb_datasets::skew::clustered_with_layout;
use cbb_engine::{
    AdaptiveGrid, AnyPartitioner, JoinAlgo, Partitioner, QuadtreePartitioner, UniformGrid, Update,
};
use cbb_geom::{Point, Rect, SplitMix64};
use cbb_rtree::{DataId, TreeConfig, Variant};
use cbb_serve::{
    QueryService, Request, RequestError, Response, ServiceBuilder, ServiceConfig, ShardFitting,
    ShardedService, SubmitRequest,
};

fn tree() -> TreeConfig<2> {
    TreeConfig::tiny(Variant::RStar)
}

fn clip() -> ClipConfig {
    ClipConfig::paper_default::<2>(ClipMethod::Stairline)
}

fn config() -> ServiceConfig {
    ServiceConfig {
        batch_max: 8,
        batch_deadline: Duration::from_millis(2),
        ..ServiceConfig::default()
    }
}

fn dataset(n: usize, seed: u64) -> (Rect<2>, Vec<Rect<2>>) {
    let data = clustered_with_layout::<2>(n, 5, 20_000.0, 0.2, seed, seed ^ 0x5EED);
    (data.domain, data.boxes)
}

fn range_queries(domain: &Rect<2>, n: usize, seed: u64) -> Vec<Rect<2>> {
    let mut rng = SplitMix64::new(seed);
    let span = [domain.hi[0] - domain.lo[0], domain.hi[1] - domain.lo[1]];
    (0..n)
        .map(|i| {
            let x = rng.gen_range(domain.lo[0] - 0.1 * span[0], domain.hi[0]);
            let y = rng.gen_range(domain.lo[1] - 0.1 * span[1], domain.hi[1]);
            // Mix tight windows, shard-straddling strips, and misses.
            let (w, h) = match i % 4 {
                0 => (0.02 * span[0], 0.02 * span[1]),
                // Full-width strip: covers tiles in every shard.
                1 => (1.2 * span[0], 0.05 * span[1]),
                2 => (0.3 * span[0], 0.3 * span[1]),
                _ => (0.01 * span[0], 0.01 * span[1]),
            };
            let off = if i % 7 == 6 { 10.0 * span[0] } else { 0.0 };
            Rect::new(Point([x + off, y + off]), Point([x + off + w, y + off + h]))
        })
        .collect()
}

/// Submit one request to both services and assert byte-equal
/// responses.
fn assert_same<P>(
    single: &QueryService<2, P>,
    sharded: &ShardedService<2, P>,
    request: Request<2, P>,
    what: &str,
) -> (Response, Response)
where
    P: Partitioner<2>
        + cbb_engine::PersistPartitioner
        + Clone
        + PartialEq
        + std::fmt::Debug
        + Send
        + Sync
        + 'static,
{
    let a = single
        .submit(request.clone())
        .unwrap()
        .wait()
        .unwrap()
        .response;
    let b = sharded.submit(request).unwrap().wait().unwrap().response;
    assert_eq!(a, b, "{what}");
    (a, b)
}

/// The full mixed workload — every request kind, serially — against a
/// single store and an N-shard service over the same partitioner.
fn oracle_roundtrip<P>(
    partitioner: P,
    domain: Rect<2>,
    objects: Vec<Rect<2>>,
    shards: usize,
    fitting: ShardFitting,
) where
    P: Partitioner<2>
        + cbb_engine::PersistPartitioner
        + Clone
        + PartialEq
        + std::fmt::Debug
        + Send
        + Sync
        + 'static,
{
    let single = QueryService::start(
        config(),
        partitioner.clone(),
        objects.clone(),
        tree(),
        clip(),
    );
    let sharded = ServiceBuilder::from_config(config())
        .shards(shards)
        .shard_fitting(fitting)
        .build(partitioner.clone(), objects.clone(), tree(), clip());
    assert_eq!(sharded.shard_count(), shards);
    let ds = single.default_dataset();
    assert_eq!(ds, sharded.default_dataset(), "mirrored creation order");

    // Ranges (clipped and baseline), kNN, probe joins.
    for (i, q) in range_queries(&domain, 24, 0xA11C).into_iter().enumerate() {
        assert_same(
            &single,
            &sharded,
            Request::Range {
                dataset: ds,
                query: q,
                use_clips: i % 3 != 0,
            },
            &format!("range {i} ({shards} shards)"),
        );
    }
    let mut rng = SplitMix64::new(0xCAFE);
    for i in 0..12 {
        let center = Point([
            rng.gen_range(domain.lo[0], domain.hi[0] * 1.2),
            rng.gen_range(domain.lo[1], domain.hi[1] * 1.2),
        ]);
        let k = [0, 1, 7, 50][i % 4];
        assert_same(
            &single,
            &sharded,
            Request::Knn {
                dataset: ds,
                center,
                k,
            },
            &format!("knn {i} ({shards} shards)"),
        );
    }
    let probes = range_queries(&domain, 40, 0x1017);
    for algo in [JoinAlgo::Stt, JoinAlgo::Inlj] {
        assert_same(
            &single,
            &sharded,
            Request::Join {
                dataset: ds,
                probes: probes.clone(),
                algo,
                use_clips: true,
            },
            &format!("probe join {algo:?} ({shards} shards)"),
        );
    }

    // Self cross-join: boundary pairs must be counted exactly once.
    for algo in [JoinAlgo::Stt, JoinAlgo::Inlj] {
        assert_same(
            &single,
            &sharded,
            Request::CrossJoin {
                left: ds,
                right: ds,
                algo,
                use_clips: true,
            },
            &format!("self cross join {algo:?} ({shards} shards)"),
        );
    }

    // Writes, serially: inserts, deletes, batches — mirrored arenas
    // must assign identical ids and bump identical versions.
    let mut rng = SplitMix64::new(0xD00D);
    let mut live: Vec<DataId> = Vec::new();
    for i in 0..20 {
        let x = rng.gen_range(domain.lo[0], domain.hi[0]);
        let y = rng.gen_range(domain.lo[1], domain.hi[1]);
        let rect = Rect::new(Point([x, y]), Point([x + 500.0, y + 500.0]));
        let (a, _) = assert_same(
            &single,
            &sharded,
            Request::Insert { dataset: ds, rect },
            &format!("insert {i} ({shards} shards)"),
        );
        if let Response::Inserted(Some(id)) = a {
            live.push(id);
        }
        if i % 3 == 2 {
            let victim = live.remove(0);
            assert_same(
                &single,
                &sharded,
                Request::Delete {
                    dataset: ds,
                    id: victim,
                },
                &format!("delete {i} ({shards} shards)"),
            );
        }
    }
    let batch: Vec<Update<2>> = vec![
        Update::Insert(Rect::new(Point([1.0, 1.0]), Point([2.0, 2.0]))),
        Update::Delete(live[0]),
        Update::Delete(DataId(9_999_999)), // no-op delete
        Update::Insert(Rect::new(Point([3.0, 3.0]), Point([4.0, 4.0]))),
    ];
    assert_same(
        &single,
        &sharded,
        Request::UpdateBatch {
            dataset: ds,
            updates: batch,
        },
        &format!("update batch ({shards} shards)"),
    );
    assert_eq!(
        single.dataset_version(ds),
        sharded.dataset_version(ds),
        "versions advance in lock-step"
    );
    assert_eq!(
        single.dataset_live_count(ds),
        sharded.dataset_live_count(ds),
        "mirrored arenas agree on live counts"
    );

    // Post-write queries: the sharded forests were delta-maintained
    // per shard and must still merge byte-equal.
    for (i, q) in range_queries(&domain, 12, 0xBEEF).into_iter().enumerate() {
        assert_same(
            &single,
            &sharded,
            Request::Range {
                dataset: ds,
                query: q,
                use_clips: true,
            },
            &format!("post-write range {i} ({shards} shards)"),
        );
    }
    assert_same(
        &single,
        &sharded,
        Request::Knn {
            dataset: ds,
            center: Point([2.0, 2.0]),
            k: 5,
        },
        &format!("post-write knn ({shards} shards)"),
    );

    let single_report = single.shutdown();
    let sharded_report = sharded.shutdown();
    assert_eq!(single_report.completed, single_report.submitted);
    assert!(sharded_report.completed >= single_report.completed);
}

#[test]
fn uniform_grid_oracle_balanced() {
    let (domain, objects) = dataset(1_500, 11);
    for shards in [2, 3] {
        oracle_roundtrip(
            UniformGrid::new(domain, 4),
            domain,
            objects.clone(),
            shards,
            ShardFitting::Balanced,
        );
    }
}

#[test]
fn adaptive_grid_oracle_fitted() {
    let (domain, objects) = dataset(1_500, 23);
    for shards in [2, 5] {
        oracle_roundtrip(
            AdaptiveGrid::from_sample(domain, [4, 4], &objects),
            domain,
            objects.clone(),
            shards,
            ShardFitting::Fitted,
        );
    }
}

#[test]
fn quadtree_oracle_fitted() {
    let (domain, objects) = dataset(1_200, 37);
    oracle_roundtrip(
        QuadtreePartitioner::build(domain, &objects, 150),
        domain,
        objects,
        3,
        ShardFitting::Fitted,
    );
}

/// More shards than tiles: some shards own zero tiles yet must mirror
/// writes and contribute empty fragments without disturbing merges.
#[test]
fn empty_shards_answer_correctly() {
    let (domain, objects) = dataset(600, 41);
    // 2×2 grid = 4 tiles across 7 shards → ≥ 3 empty shards.
    oracle_roundtrip(
        UniformGrid::new(domain, 2),
        domain,
        objects,
        7,
        ShardFitting::Balanced,
    );
}

/// Cross-dataset joins between two independently partitioned datasets,
/// under both fitting modes.
#[test]
fn cross_join_oracle_two_datasets() {
    let (domain, roads) = dataset(900, 51);
    let (_, parcels) = dataset(700, 52);
    let p_roads = AdaptiveGrid::from_sample(domain, [3, 3], &roads);
    let p_parcels = AdaptiveGrid::from_sample(domain, [4, 2], &parcels);
    for (shards, fitting) in [(2, ShardFitting::Balanced), (3, ShardFitting::Fitted)] {
        let single = QueryService::start_catalog(config(), tree(), clip());
        let sharded = ServiceBuilder::from_config(config())
            .shards(shards)
            .shard_fitting(fitting)
            .build_catalog::<2, AdaptiveGrid<2>>(tree(), clip());
        let r1 = single
            .create_dataset("roads", p_roads.clone(), roads.clone())
            .unwrap();
        let r2 = sharded
            .create_dataset("roads", p_roads.clone(), roads.clone())
            .unwrap();
        assert_eq!(r1, r2);
        let l1 = single
            .create_dataset("parcels", p_parcels.clone(), parcels.clone())
            .unwrap();
        let l2 = sharded
            .create_dataset("parcels", p_parcels.clone(), parcels.clone())
            .unwrap();
        assert_eq!(l1, l2);
        for algo in [JoinAlgo::Stt, JoinAlgo::Inlj] {
            for (left, right) in [(l1, r1), (r1, l1)] {
                assert_same(
                    &single,
                    &sharded,
                    Request::CrossJoin {
                        left,
                        right,
                        algo,
                        use_clips: true,
                    },
                    &format!(
                        "cross join {algo:?} {left:?}⋈{right:?} ({shards} shards, {fitting:?})"
                    ),
                );
            }
        }
        single.shutdown();
        sharded.shutdown();
    }
}

/// Admin ops fan out atomically: ids assigned in lock-step, drops
/// leave no shard behind, swaps re-fit the shard map, and requests
/// against dropped datasets fail identically.
#[test]
fn admin_fanout_is_atomic() {
    let (domain, objects) = dataset(500, 61);
    let grid = UniformGrid::new(domain, 4);
    let sharded = ServiceBuilder::from_config(config())
        .shards(3)
        .build_catalog::<2, AnyPartitioner<2>>(tree(), clip());

    let a = sharded
        .create_dataset("a", grid.into(), objects.clone())
        .unwrap();
    assert_eq!(sharded.dataset_id("a"), Some(a));
    // Name clash fails identically everywhere — and leaves no partial
    // registration behind.
    assert!(matches!(
        sharded.create_dataset("a", grid.into(), Vec::new()),
        Err(RequestError::NameTaken(_))
    ));
    let b = sharded
        .create_dataset(
            "b",
            AdaptiveGrid::from_sample(domain, [2, 2], &objects).into(),
            objects.clone(),
        )
        .unwrap();
    assert_ne!(a, b);
    assert_eq!(
        sharded.datasets(),
        vec![(a, "a".to_string()), (b, "b".to_string())]
    );

    // The shard map covers the dataset's tile space exactly.
    let map = sharded.dataset_shard_map(a).unwrap();
    assert_eq!(map.shard_count(), 3);
    assert_eq!(map.tile_count(), 16);

    // Swap with a re-fit partitioner: the route (and every shard)
    // switches tilings atomically; queries still answer.
    let quad: AnyPartitioner<2> = QuadtreePartitioner::build(domain, &objects, 100).into();
    let v = sharded
        .swap_dataset_with(a, quad.clone(), objects.clone())
        .unwrap();
    assert_eq!(sharded.dataset_version(a), Some(v));
    let map = sharded.dataset_shard_map(a).unwrap();
    assert_eq!(
        map.tile_count(),
        quad.tile_count(),
        "map re-fitted to the new tiling"
    );
    let hits = sharded
        .submit(Request::Range {
            dataset: a,
            query: domain,
            use_clips: true,
        })
        .unwrap()
        .wait()
        .unwrap()
        .response
        .into_range();
    assert_eq!(hits.len(), sharded.dataset_live_count(a).unwrap());

    // Drop: gone from the route table and from every shard.
    assert!(sharded.drop_dataset(a));
    assert!(!sharded.drop_dataset(a), "second drop reports absence");
    assert_eq!(sharded.dataset_id("a"), None);
    let miss = sharded
        .submit(Request::Range {
            dataset: a,
            query: domain,
            use_clips: true,
        })
        .unwrap()
        .wait()
        .unwrap()
        .response;
    assert_eq!(miss, Response::Failed(RequestError::UnknownDataset(a)));
    // Swapping a dropped dataset fails cleanly too (no route, no
    // partitioner to fit — the bare fan-out path).
    assert!(matches!(
        sharded.swap_dataset(a, Vec::new()),
        Err(RequestError::UnknownDataset(_))
    ));

    let report = sharded.shutdown();
    assert_eq!(report.datasets.len(), 1, "only b remains");
}

/// The typed client surface and the enum path are the same request:
/// byte-equal answers through both, on both service shapes.
#[test]
fn typed_client_equals_enum_path() {
    let (domain, objects) = dataset(800, 71);
    let grid = UniformGrid::new(domain, 3);
    let sharded = ServiceBuilder::from_config(config()).shards(2).build(
        grid,
        objects.clone(),
        tree(),
        clip(),
    );
    let client = sharded.dataset("default").expect("default dataset exists");
    assert_eq!(client.id(), sharded.default_dataset());

    let q = Rect::new(domain.lo, Point([domain.hi[0] * 0.4, domain.hi[1] * 0.4]));
    let typed = client.range(q).unwrap().wait().unwrap().response;
    let enum_path = sharded
        .submit(Request::Range {
            dataset: client.id(),
            query: q,
            use_clips: true,
        })
        .unwrap()
        .wait()
        .unwrap()
        .response;
    assert_eq!(typed, enum_path);

    let typed = client
        .knn(Point([0.0, 0.0]), 9)
        .unwrap()
        .wait()
        .unwrap()
        .response;
    let enum_path = sharded
        .submit(Request::Knn {
            dataset: client.id(),
            center: Point([0.0, 0.0]),
            k: 9,
        })
        .unwrap()
        .wait()
        .unwrap()
        .response;
    assert_eq!(typed, enum_path);

    // join-by-name resolves through the same route table.
    let self_join = client.join("default", JoinAlgo::Stt).unwrap().unwrap();
    let pairs = self_join.wait().unwrap().response.into_join().pairs;
    assert!(
        pairs >= objects.len() as u64,
        "self join sees every live object at least once"
    );
    assert!(client.join("nope", JoinAlgo::Stt).is_none());

    // Typed writes flow through the same fan-out.
    let id = client
        .insert(Rect::new(Point([5.0, 5.0]), Point([6.0, 6.0])))
        .unwrap()
        .wait()
        .unwrap()
        .response
        .into_inserted()
        .unwrap();
    assert!(client
        .delete(id)
        .unwrap()
        .wait()
        .unwrap()
        .response
        .into_deleted());
    let summary = client
        .update(vec![Update::Insert(Rect::new(
            Point([7.0, 7.0]),
            Point([8.0, 8.0]),
        ))])
        .unwrap()
        .wait()
        .unwrap()
        .response
        .into_updated();
    assert_eq!(summary.results.len(), 1);

    // The same trait drives the unsharded service.
    let single = QueryService::start(
        config(),
        UniformGrid::new(domain, 3),
        objects,
        tree(),
        clip(),
    );
    let sclient = single.dataset("default").unwrap();
    let a = sclient.range(q).unwrap().wait().unwrap().response;
    assert_eq!(a, typed_or_enum_range_reference(&single, q));
    single.shutdown();
    sharded.shutdown();
}

fn typed_or_enum_range_reference(
    service: &QueryService<2, UniformGrid<2>>,
    q: Rect<2>,
) -> Response {
    service
        .submit(Request::Range {
            dataset: service.default_dataset(),
            query: q,
            use_clips: true,
        })
        .unwrap()
        .wait()
        .unwrap()
        .response
}

/// Router telemetry: scatter/gather phases and per-shard routing
/// counters appear in the router's scrape; shard scrapes stay
/// per-shard.
#[test]
fn router_scrape_exposes_scatter_gather() {
    let (domain, objects) = dataset(400, 81);
    let sharded = ServiceBuilder::from_config(config()).shards(2).build(
        UniformGrid::new(domain, 4),
        objects,
        tree(),
        clip(),
    );
    let ds = sharded.default_dataset();
    for _ in 0..4 {
        sharded
            .submit(Request::Knn {
                dataset: ds,
                center: Point([0.0, 0.0]),
                k: 3,
            })
            .unwrap()
            .wait()
            .unwrap();
    }
    let scrape = sharded.scrape();
    assert!(scrape.text.contains("cbb_router_requests_total"));
    assert!(scrape.text.contains("cbb_router_shard_requests_total"));
    assert!(scrape.text.contains("phase=\"scatter\""));
    assert!(scrape.text.contains("phase=\"gather\""));
    assert_eq!(
        scrape
            .snapshot
            .counter("cbb_router_shard_requests_total", &[("shard", "0")]),
        scrape
            .snapshot
            .counter("cbb_router_shard_requests_total", &[("shard", "1")]),
        "kNN scatters to every shard"
    );
    assert_eq!(sharded.shard_scrapes().len(), 2);
    sharded.shutdown();
}
