//! The recovery oracle: a service recovered from snapshot + WAL
//! answers every request kind identically to a service that never
//! restarted, at every simulated kill point, for both service shapes
//! and multiple partitioner kinds.
//!
//! Crash points are simulated by copying the durability directory
//! right after the k-th write batch is acknowledged: because each
//! batch is fsynced *before* its waiters wake, the copy is exactly
//! what a `SIGKILL` at that moment would leave on disk (the scripted
//! real-kill gauntlet lives in the `crash_recovery` bench binary).
//! Comparison follows the workspace convention: range answers as
//! sorted sets (traversal order differs between grown and rebuilt
//! forests), kNN byte-equal, joins by pair count.

use std::path::Path;

use cbb_core::{ClipConfig, ClipMethod};
use cbb_datasets::skew::clustered_with_layout;
use cbb_engine::{AdaptiveGrid, JoinAlgo, UniformGrid};
use cbb_geom::{Point, Rect, SplitMix64};
use cbb_rtree::{DataId, TreeConfig, Variant};
use cbb_serve::{
    DurabilityConfig, QueryService, Request, Response, ServiceBuilder, ServiceConfig, Update,
};

const KILL_POINTS: [usize; 3] = [1, 4, 9];
const BATCHES: usize = 10;

fn tree() -> TreeConfig<2> {
    TreeConfig::tiny(Variant::RStar)
}

fn clip() -> ClipConfig {
    ClipConfig::paper_default::<2>(ClipMethod::Stairline)
}

fn fixture() -> (Vec<Rect<2>>, Rect<2>) {
    let data = clustered_with_layout::<2>(1_200, 5, 30_000.0, 0.15, 11, 11);
    (data.boxes, data.domain)
}

/// The scripted write stream: `BATCHES` update batches mixing inserts
/// and deletes, deterministic in `seed`.
fn scripted_batches(seed: u64, base_objects: usize) -> Vec<Vec<Update<2>>> {
    let mut rng = SplitMix64::new(seed);
    (0..BATCHES)
        .map(|b| {
            let mut ops = Vec::new();
            for _ in 0..12 {
                let x = rng.gen_range(0.0, 900_000.0);
                let y = rng.gen_range(0.0, 900_000.0);
                let s = rng.gen_range(500.0, 20_000.0);
                ops.push(Update::Insert(Rect::new(
                    Point([x, y]),
                    Point([x + s, y + s]),
                )));
            }
            for d in 0..4 {
                ops.push(Update::Delete(DataId(
                    ((b * 7 + d * 3) % base_objects) as u32,
                )));
            }
            ops
        })
        .collect()
}

fn probes(seed: u64) -> (Vec<Rect<2>>, Vec<(Point<2>, usize)>) {
    let mut rng = SplitMix64::new(seed);
    let ranges = (0..25)
        .map(|_| {
            let x = rng.gen_range(-10_000.0, 900_000.0);
            let y = rng.gen_range(-10_000.0, 900_000.0);
            let s = rng.gen_range(2_000.0, 80_000.0);
            Rect::new(Point([x, y]), Point([x + s, y + s]))
        })
        .collect();
    let knns = (0..15)
        .map(|i| {
            let p = Point([rng.gen_range(0.0, 900_000.0), rng.gen_range(0.0, 900_000.0)]);
            (p, [1, 3, 10][i % 3])
        })
        .collect();
    (ranges, knns)
}

fn tmp_root(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("cbb_serve_durability_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn copy_dir(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        let target = to.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &target);
        } else {
            std::fs::copy(entry.path(), target).unwrap();
        }
    }
}

/// Answers for the full probe set, ranges sorted into set form.
fn answers<S: cbb_serve::SubmitRequest<2, P>, P: std::fmt::Debug>(
    service: &S,
    dataset: cbb_serve::DatasetId,
) -> Vec<Response> {
    let (ranges, knns) = probes(99);
    let mut out = Vec::new();
    for query in ranges {
        let response = service
            .submit_request(Request::Range {
                dataset,
                query,
                use_clips: true,
            })
            .unwrap()
            .wait()
            .unwrap()
            .response;
        let mut ids = match response {
            Response::Range(ids) => ids,
            other => panic!("expected range, got {other:?}"),
        };
        ids.sort_unstable();
        out.push(Response::Range(ids));
    }
    for (center, k) in knns {
        out.push(
            service
                .submit_request(Request::Knn { dataset, center, k })
                .unwrap()
                .wait()
                .unwrap()
                .response,
        );
    }
    // Joins compare by pair count: the I/O counters depend on tree
    // shape, which legitimately differs between grown and rebuilt
    // forests.
    let join_probes: Vec<Rect<2>> = probes(123).0;
    for algo in [JoinAlgo::Stt, JoinAlgo::Inlj] {
        let join = service
            .submit_request(Request::Join {
                dataset,
                probes: join_probes.clone(),
                algo,
                use_clips: true,
            })
            .unwrap()
            .wait()
            .unwrap()
            .response;
        let pairs = match join {
            Response::Join(result) => result.pairs,
            other => panic!("expected join, got {other:?}"),
        };
        out.push(Response::Range(vec![DataId(u32::try_from(pairs).unwrap())]));
    }
    out
}

/// Run the scripted stream on a durable single service, copying the
/// durability root after each kill-point ack; then recover each copy
/// and compare against a never-restarted reference with the same
/// prefix applied.
fn single_service_oracle<P>(tag: &str, partitioner: P)
where
    P: cbb_engine::Partitioner<2>
        + cbb_engine::PersistPartitioner
        + Clone
        + PartialEq
        + std::fmt::Debug
        + Send
        + Sync
        + 'static,
{
    let (objects, _) = fixture();
    let batches = scripted_batches(7, objects.len());
    let root = tmp_root(tag);

    let config = ServiceConfig {
        durability: Some(DurabilityConfig::new(&root)),
        ..ServiceConfig::default()
    };
    let durable = QueryService::start(config, partitioner.clone(), objects.clone(), tree(), clip());
    let dataset = durable.default_dataset();
    for (i, ops) in batches.iter().enumerate() {
        let completion = durable
            .submit(Request::UpdateBatch {
                dataset,
                updates: ops.clone(),
            })
            .unwrap()
            .wait()
            .unwrap();
        assert!(matches!(completion.response, Response::Updated(_)));
        let acked = i + 1;
        if KILL_POINTS.contains(&acked) {
            copy_dir(&root, &root.with_extension(format!("kill{acked}")));
        }
    }
    durable.shutdown();

    for kill in KILL_POINTS {
        // The reference: never restarted, same prefix applied in memory.
        let reference = QueryService::start(
            ServiceConfig::default(),
            partitioner.clone(),
            objects.clone(),
            tree(),
            clip(),
        );
        let ref_dataset = reference.default_dataset();
        for ops in &batches[..kill] {
            reference
                .submit(Request::UpdateBatch {
                    dataset: ref_dataset,
                    updates: ops.clone(),
                })
                .unwrap()
                .wait()
                .unwrap();
        }

        let recovered = QueryService::start(
            ServiceConfig {
                durability: Some(DurabilityConfig::new(
                    root.with_extension(format!("kill{kill}")),
                )),
                ..ServiceConfig::default()
            },
            partitioner.clone(),
            Vec::new(), // recovery wins: these objects must be ignored
            tree(),
            clip(),
        );
        let rec_dataset = recovered.default_dataset();
        assert_eq!(
            recovered.dataset_version(rec_dataset),
            reference.dataset_version(ref_dataset),
            "kill point {kill}: replayed version"
        );
        assert_eq!(
            recovered.dataset_live_count(rec_dataset),
            reference.dataset_live_count(ref_dataset),
            "kill point {kill}: live objects"
        );
        assert_eq!(
            answers(&recovered, rec_dataset),
            answers(&reference, ref_dataset),
            "kill point {kill}: answers"
        );
        let report = recovered.shutdown();
        assert_eq!(report.recovered_datasets, 1);
        assert_eq!(
            report.recovered_records, kill as u64,
            "one WAL record per batch"
        );
        reference.shutdown();
    }
    let _ = std::fs::remove_dir_all(&root);
    for kill in KILL_POINTS {
        let _ = std::fs::remove_dir_all(root.with_extension(format!("kill{kill}")));
    }
}

#[test]
fn recovered_single_service_matches_reference_uniform_grid() {
    let (_, domain) = fixture();
    single_service_oracle("uniform", UniformGrid::new(domain, 4));
}

#[test]
fn recovered_single_service_matches_reference_adaptive_grid() {
    let (objects, domain) = fixture();
    single_service_oracle(
        "adaptive",
        AdaptiveGrid::from_sample(domain, [4, 4], &objects),
    );
}

/// The same oracle through the sharded shape: kill-point copies of the
/// whole root (with its `shard_<i>` subdirectories) recover to the
/// reference answers.
#[test]
fn recovered_sharded_service_matches_reference() {
    let (objects, domain) = fixture();
    let partitioner = UniformGrid::new(domain, 4);
    let batches = scripted_batches(21, objects.len());
    let root = tmp_root("sharded");

    let durable = ServiceBuilder::new().shards(2).durability(&root).build(
        partitioner,
        objects.clone(),
        tree(),
        clip(),
    );
    let dataset = durable.default_dataset();
    for (i, ops) in batches.iter().enumerate() {
        durable
            .submit(Request::UpdateBatch {
                dataset,
                updates: ops.clone(),
            })
            .unwrap()
            .wait()
            .unwrap();
        let acked = i + 1;
        if KILL_POINTS.contains(&acked) {
            copy_dir(&root, &root.with_extension(format!("kill{acked}")));
        }
    }
    durable.shutdown();

    for kill in KILL_POINTS {
        let reference =
            ServiceBuilder::new()
                .shards(2)
                .build(partitioner, objects.clone(), tree(), clip());
        let ref_dataset = reference.default_dataset();
        for ops in &batches[..kill] {
            reference
                .submit(Request::UpdateBatch {
                    dataset: ref_dataset,
                    updates: ops.clone(),
                })
                .unwrap()
                .wait()
                .unwrap();
        }

        let recovered = ServiceBuilder::new()
            .shards(2)
            .durability(root.with_extension(format!("kill{kill}")))
            .build(partitioner, Vec::new(), tree(), clip());
        let rec_dataset = recovered.default_dataset();
        assert_eq!(
            answers(&recovered, rec_dataset),
            answers(&reference, ref_dataset),
            "kill point {kill}: sharded answers"
        );
        let report = recovered.shutdown();
        assert_eq!(report.recovered_datasets, 2, "one recovery per shard");
        assert_eq!(report.recovered_records, 2 * kill as u64);
        reference.shutdown();
    }
    let _ = std::fs::remove_dir_all(&root);
    for kill in KILL_POINTS {
        let _ = std::fs::remove_dir_all(root.with_extension(format!("kill{kill}")));
    }
}

/// Lifecycle survives restart: created datasets come back under their
/// names, dropped datasets stay dead, and dropped ids are never reused
/// even across the restart.
#[test]
fn catalog_lifecycle_survives_restart() {
    let (objects, domain) = fixture();
    let partitioner = UniformGrid::new(domain, 3);
    let root = tmp_root("lifecycle");
    let config = ServiceConfig {
        durability: Some(DurabilityConfig::new(&root)),
        ..ServiceConfig::default()
    };

    let first = QueryService::start(config.clone(), partitioner, objects.clone(), tree(), clip());
    let keep = first
        .create_dataset("keep", partitioner, objects[..100].to_vec())
        .unwrap();
    let doomed = first
        .create_dataset("doomed", partitioner, objects[..50].to_vec())
        .unwrap();
    assert!(first.drop_dataset(doomed));
    first.shutdown();

    let second = QueryService::start(config, partitioner, Vec::new(), tree(), clip());
    assert_eq!(second.dataset_id("keep"), Some(keep));
    assert_eq!(second.dataset_id("doomed"), None);
    assert_eq!(
        second.dataset_live_count(keep),
        Some(100),
        "recovered dataset serves its own objects"
    );
    let fresh = second
        .create_dataset("fresh", partitioner, objects[..10].to_vec())
        .unwrap();
    assert!(
        fresh.0 > doomed.0,
        "a dropped id is retired across restarts, not reassigned"
    );
    second.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// Checkpointing folds the WAL into a fresh snapshot and the recovered
/// state is unaffected; after a checkpoint the WAL starts empty, so
/// recovery replays only the post-checkpoint tail.
#[test]
fn checkpoint_rolls_wal_and_preserves_answers() {
    let (objects, domain) = fixture();
    let partitioner = UniformGrid::new(domain, 3);
    let batches = scripted_batches(33, objects.len());
    let root = tmp_root("checkpoint");
    let config = ServiceConfig {
        // A tiny threshold: every commit triggers a checkpoint.
        durability: Some(DurabilityConfig::new(&root).checkpoint_bytes(64)),
        ..ServiceConfig::default()
    };

    let durable = QueryService::start(config.clone(), partitioner, objects.clone(), tree(), clip());
    let dataset = durable.default_dataset();
    for ops in &batches {
        durable
            .submit(Request::UpdateBatch {
                dataset,
                updates: ops.clone(),
            })
            .unwrap()
            .wait()
            .unwrap();
    }
    let report = durable.shutdown();
    assert!(
        report.checkpoints >= BATCHES as u64,
        "the 64-byte threshold checkpoints every batch (got {})",
        report.checkpoints
    );

    let reference = QueryService::start(
        ServiceConfig::default(),
        partitioner,
        objects.clone(),
        tree(),
        clip(),
    );
    let ref_dataset = reference.default_dataset();
    for ops in &batches {
        reference
            .submit(Request::UpdateBatch {
                dataset: ref_dataset,
                updates: ops.clone(),
            })
            .unwrap()
            .wait()
            .unwrap();
    }

    let recovered = QueryService::start(config, partitioner, Vec::new(), tree(), clip());
    let rec_dataset = recovered.default_dataset();
    assert_eq!(
        answers(&recovered, rec_dataset),
        answers(&reference, ref_dataset)
    );
    let report = recovered.shutdown();
    assert_eq!(
        report.recovered_records, 0,
        "everything was checkpointed into the snapshot; the WAL tail is empty"
    );
    reference.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// Group commit is commit-before-fulfil: the moment a write's waiter
/// wakes, the WAL record carrying that write's version is already on
/// disk (readable and checksum-valid in a fresh scan of the file).
#[test]
fn waiter_wakes_only_after_wal_record_is_durable() {
    let (objects, domain) = fixture();
    let partitioner = UniformGrid::new(domain, 3);
    let root = tmp_root("commit_order");
    let service = QueryService::start(
        ServiceConfig {
            durability: Some(DurabilityConfig::new(&root)),
            ..ServiceConfig::default()
        },
        partitioner,
        objects,
        tree(),
        clip(),
    );
    let dataset = service.default_dataset();
    let wal = root.join(format!("ds_{}.wal", dataset.0));

    for i in 0..8u64 {
        let response = service
            .submit(Request::UpdateBatch {
                dataset,
                updates: vec![Update::Insert(Rect::new(
                    Point([i as f64, i as f64]),
                    Point([i as f64 + 1.0, i as f64 + 1.0]),
                ))],
            })
            .unwrap()
            .wait()
            .unwrap();
        let version = match response.response {
            Response::Updated(summary) => summary.version,
            other => panic!("expected update summary, got {other:?}"),
        };
        // Scan the WAL from scratch, as a crashed-and-restarted reader
        // would: the acked version must already be a valid record.
        let recovery = cbb_storage::recover_wal(&wal).unwrap();
        assert!(!recovery.torn, "no torn tail while the writer is alive");
        let on_disk: Vec<u64> = recovery
            .records
            .iter()
            .map(|payload| u64::from_le_bytes(payload[..8].try_into().unwrap()))
            .collect();
        assert!(
            on_disk.contains(&version.0),
            "write {i}: version {} acked but WAL holds only {on_disk:?}",
            version.0
        );
    }
    service.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// `SwapData` rewrites the snapshot and resets the WAL; the swapped
/// state survives restart.
#[test]
fn swap_survives_restart() {
    let (objects, domain) = fixture();
    let partitioner = UniformGrid::new(domain, 3);
    let root = tmp_root("swap");
    let config = ServiceConfig {
        durability: Some(DurabilityConfig::new(&root)),
        ..ServiceConfig::default()
    };
    let first = QueryService::start(config.clone(), partitioner, objects.clone(), tree(), clip());
    let dataset = first.default_dataset();
    let replacement: Vec<Rect<2>> = objects[..64].to_vec();
    first.swap_dataset(dataset, replacement.clone()).unwrap();
    // Post-swap writes land in the reset WAL.
    first
        .submit(Request::UpdateBatch {
            dataset,
            updates: vec![Update::Insert(Rect::new(
                Point([1.0, 1.0]),
                Point([2.0, 2.0]),
            ))],
        })
        .unwrap()
        .wait()
        .unwrap();
    let want_version = first.dataset_version(dataset);
    let want_live = first.dataset_live_count(dataset);
    first.shutdown();

    let second = QueryService::start(config, partitioner, Vec::new(), tree(), clip());
    assert_eq!(second.dataset_version(dataset), want_version);
    assert_eq!(second.dataset_live_count(dataset), want_live);
    assert_eq!(second.dataset_live_count(dataset), Some(65));
    second.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// The builder's `config()` forwards every default unchanged — the
/// `start`/`start_catalog` shims and `ServiceBuilder` start from the
/// same configuration (`ServiceConfig` has no `PartialEq`; pinned
/// field by field).
#[test]
fn builder_defaults_equal_config_defaults() {
    let built = ServiceBuilder::new().config();
    let default = ServiceConfig::default();
    assert_eq!(built.queue_capacity, default.queue_capacity);
    assert_eq!(built.batch_max, default.batch_max);
    assert_eq!(built.batch_deadline, default.batch_deadline);
    assert_eq!(built.dispatchers, default.dispatchers);
    assert_eq!(built.exec_workers, default.exec_workers);
    assert_eq!(built.compaction, default.compaction);
    assert_eq!(built.telemetry, default.telemetry);
    assert_eq!(built.forest_cache_capacity, default.forest_cache_capacity);
    assert_eq!(built.durability, default.durability);
    assert_eq!(built.durability, None, "durability is opt-in");

    let durable = ServiceBuilder::new()
        .durability("/tmp/cbb-durable")
        .checkpoint_bytes(1 << 20)
        .config();
    assert_eq!(
        durable.durability,
        Some(DurabilityConfig::new("/tmp/cbb-durable").checkpoint_bytes(1 << 20))
    );

    // The unbatched knobs mirror ServiceConfig::unbatched.
    let unbatched = ServiceBuilder::new().unbatched().config();
    let reference = ServiceConfig::unbatched();
    assert_eq!(unbatched.batch_max, reference.batch_max);
    assert_eq!(unbatched.batch_deadline, reference.batch_deadline);
}
