//! Service lifecycle: graceful shutdown drains the queue, the
//! version-keyed tile-tree cache skips rebuilds until the data version
//! bumps, and concurrent producers are all answered.

use std::time::Duration;

use cbb_core::{ClipConfig, ClipMethod};
use cbb_datasets::skew::clustered_with_layout;
use cbb_engine::{DataVersion, JoinAlgo, UniformGrid};
use cbb_geom::{Point, Rect, SplitMix64};
use cbb_rtree::{TreeConfig, Variant};
use cbb_serve::{QueryService, Request, ServiceConfig};

fn service(config: ServiceConfig, n: usize) -> (QueryService<2, UniformGrid<2>>, Vec<Rect<2>>) {
    let data = clustered_with_layout::<2>(n, 5, 40_000.0, 0.2, 3, 3);
    let svc = QueryService::start(
        config,
        UniformGrid::new(data.domain, 4),
        data.boxes.clone(),
        TreeConfig::tiny(Variant::RStar),
        ClipConfig::paper_default::<2>(ClipMethod::Stairline),
    );
    (svc, data.boxes)
}

fn some_query(seed: u64) -> Rect<2> {
    let mut rng = SplitMix64::new(seed);
    let x = rng.gen_range(0.0, 900_000.0);
    let y = rng.gen_range(0.0, 900_000.0);
    Rect::new(Point([x, y]), Point([x + 50_000.0, y + 50_000.0]))
}

/// Shutdown answers everything already admitted: no dropped requests,
/// no canceled handles, submitted == completed.
#[test]
fn shutdown_drains_queue() {
    let (svc, _) = service(
        ServiceConfig {
            batch_max: 8,
            batch_deadline: Duration::from_millis(1),
            ..ServiceConfig::default()
        },
        1_500,
    );
    let handles: Vec<_> = (0..400)
        .map(|i| {
            svc.submit(Request::Range {
                dataset: svc.default_dataset(),
                query: some_query(i),
                use_clips: i % 2 == 0,
            })
            .unwrap()
        })
        .collect();
    // Close admission while most of the backlog is still queued.
    let report = svc.shutdown();
    assert_eq!(report.submitted, 400);
    assert_eq!(report.completed, 400, "drain must answer every request");
    assert_eq!(report.rejected, 0);
    for (i, handle) in handles.into_iter().enumerate() {
        assert!(
            handle.wait().is_ok(),
            "request {i} was admitted and must be answered"
        );
    }
}

/// Dropping the service without an explicit shutdown behaves the same:
/// the Drop impl drains and joins, so waiters never hang.
#[test]
fn drop_is_a_graceful_shutdown() {
    let (svc, _) = service(ServiceConfig::default(), 800);
    let handles: Vec<_> = (0..50)
        .map(|i| {
            svc.submit(Request::Range {
                dataset: svc.default_dataset(),
                query: some_query(1_000 + i),
                use_clips: true,
            })
            .unwrap()
        })
        .collect();
    drop(svc);
    for handle in handles {
        assert!(handle.wait().is_ok());
    }
}

/// The ROADMAP cache item, end to end: repeated joins on one data
/// version build the tile trees exactly once; bumping the version via
/// `swap_data` rebuilds exactly once more; pair counts are stable.
#[test]
fn join_tree_cache_skips_rebuilds_until_version_bump() {
    let (svc, boxes) = service(ServiceConfig::default(), 1_200);
    assert_eq!(svc.data_version(), DataVersion(0));
    let probes: Vec<Rect<2>> = (0..300).map(|i| some_query(2_000 + i)).collect();
    let join = |algo| {
        svc.submit(Request::Join {
            dataset: svc.default_dataset(),
            probes: probes.clone(),
            algo,
            use_clips: true,
        })
        .unwrap()
        .wait()
        .unwrap()
        .response
        .into_join()
    };

    // One forest build at service start; joins only hit the cache.
    let first = join(JoinAlgo::Stt);
    let second = join(JoinAlgo::Stt);
    let third = join(JoinAlgo::Inlj);
    assert_eq!(first, second, "identical requests, identical counters");
    assert_eq!(first.pairs, third.pairs, "STT and INLJ agree on pairs");
    let report = svc.report();
    assert_eq!(
        report.forest_builds, 1,
        "trees must NOT be rebuilt per join"
    );
    assert_eq!(report.forest_hits, 3, "every join hit the cached forest");

    // Same data under a bumped version: exactly one rebuild, same pairs.
    svc.swap_data(boxes.clone());
    assert_eq!(svc.data_version(), DataVersion(1));
    let after_swap = join(JoinAlgo::Stt);
    assert_eq!(after_swap, first, "same data ⇒ same join, rebuilt trees");
    let report = svc.report();
    assert_eq!(
        report.forest_builds, 2,
        "version bump invalidates the cache"
    );
    assert_eq!(report.forest_hits, 4);

    // Different data actually changes answers (the version is not
    // cosmetic): drop half the boxes.
    svc.swap_data(boxes[..boxes.len() / 2].to_vec());
    assert_eq!(svc.data_version(), DataVersion(2));
    let shrunk = join(JoinAlgo::Stt);
    assert!(
        shrunk.pairs < first.pairs,
        "half the data must join fewer pairs ({} vs {})",
        shrunk.pairs,
        first.pairs
    );
    assert_eq!(svc.report().forest_builds, 3);
    svc.shutdown();
}

/// Range queries see swapped data too (the whole executor is re-keyed,
/// not just the join path).
#[test]
fn swap_data_changes_range_answers() {
    let (svc, boxes) = service(ServiceConfig::default(), 900);
    let q = Rect::new(Point([0.0, 0.0]), Point([1_000_000.0, 1_000_000.0]));
    let all = |svc: &QueryService<2, UniformGrid<2>>| {
        svc.submit(Request::Range {
            dataset: svc.default_dataset(),
            query: q,
            use_clips: true,
        })
        .unwrap()
        .wait()
        .unwrap()
        .response
        .into_range()
        .len()
    };
    assert_eq!(all(&svc), 900);
    svc.swap_data(boxes[..100].to_vec());
    assert_eq!(all(&svc), 100);
    svc.shutdown();
}

/// `swap_data_with` re-fits the partitioner alongside the data: the new
/// tiling (different tile count) serves correct answers and counts as a
/// normal version bump.
#[test]
fn swap_data_with_refits_the_partitioner() {
    let (svc, boxes) = service(ServiceConfig::default(), 700);
    let q = Rect::new(Point([0.0, 0.0]), Point([1_000_000.0, 1_000_000.0]));
    let count_all = |svc: &QueryService<2, UniformGrid<2>>| {
        svc.submit(Request::Range {
            dataset: svc.default_dataset(),
            query: q,
            use_clips: true,
        })
        .unwrap()
        .wait()
        .unwrap()
        .response
        .into_range()
        .len()
    };
    assert_eq!(count_all(&svc), 700);
    // Re-fit to a finer grid over the same data: answers unchanged.
    let domain = Rect::new(Point([0.0, 0.0]), Point([1_000_000.0, 1_000_000.0]));
    svc.swap_data_with(UniformGrid::new(domain, 7), boxes.clone());
    assert_eq!(svc.data_version(), DataVersion(1));
    assert_eq!(count_all(&svc), 700);
    let probes: Vec<Rect<2>> = (0..100).map(|i| some_query(9_000 + i)).collect();
    let pairs = |svc: &QueryService<2, UniformGrid<2>>| {
        svc.submit(Request::Join {
            dataset: svc.default_dataset(),
            probes: probes.clone(),
            algo: JoinAlgo::Stt,
            use_clips: true,
        })
        .unwrap()
        .wait()
        .unwrap()
        .response
        .into_join()
        .pairs
    };
    let under_7 = pairs(&svc);
    svc.swap_data_with(UniformGrid::new(domain, 3), boxes);
    let under_3 = pairs(&svc);
    assert_eq!(under_7, under_3, "tiling never changes join answers");
    assert_eq!(svc.report().forest_builds, 3);
    svc.shutdown();
}

/// Many producer threads, several dispatchers: every request answered,
/// and the micro-batcher actually coalesces (mean batch > 1).
#[test]
fn concurrent_producers_all_served_and_batched() {
    let (svc, _) = service(
        ServiceConfig {
            batch_max: 32,
            batch_deadline: Duration::from_millis(10),
            dispatchers: 2,
            exec_workers: 2,
            ..ServiceConfig::default()
        },
        1_000,
    );
    let svc = std::sync::Arc::new(svc);
    let producers: Vec<_> = (0..4)
        .map(|p| {
            let svc = svc.clone();
            std::thread::spawn(move || {
                let mut sizes = Vec::new();
                for i in 0..80 {
                    let handle = svc
                        .submit(Request::Range {
                            dataset: svc.default_dataset(),
                            query: some_query(p * 1_000 + i),
                            use_clips: true,
                        })
                        .unwrap();
                    if i % 8 == 7 {
                        // Wait inline now and then so handles overlap
                        // the producing, like real clients.
                        sizes.push(handle.wait().unwrap().batch_size);
                    }
                }
                sizes
            })
        })
        .collect();
    for p in producers {
        assert!(p.join().unwrap().iter().all(|&s| s >= 1));
    }
    let svc = std::sync::Arc::into_inner(svc).expect("all producers joined");
    let report = svc.shutdown();
    assert_eq!(report.submitted, 320);
    assert_eq!(report.completed, 320);
    assert!(
        report.mean_batch > 1.0,
        "4 concurrent producers against a 10 ms deadline must coalesce \
         (mean batch {:.2})",
        report.mean_batch
    );
    assert!(report.max_batch <= 32);
}
