//! The catalog acceptance suite.
//!
//! * **Cross-join oracle** — `CrossJoin` over two served datasets is
//!   byte-equal (every `JoinResult` counter, not just pairs) to a
//!   direct `partitioned_join` over the same two object sets, for both
//!   algorithms × all three partitioner kinds on the indexed side, with
//!   the indexed side's forest served from the cache — the build
//!   counter proves zero rebuilds on repeat joins.
//! * **Isolation** — concurrent write batches to dataset A bump only
//!   A's `DataVersion`; reads of B observe no version change and no
//!   cache invalidation.
//! * Admin ops (create/drop/swap) ride the queue, fail cleanly, and
//!   per-dataset report rows carry the load-imbalance metric.

use cbb_core::{ClipConfig, ClipMethod};
use cbb_datasets::skew::{clustered_with_layout, zipfian};
use cbb_engine::{
    partitioned_join, AdaptiveGrid, AnyPartitioner, AutoPolicy, DataVersion, DatasetId, JoinAlgo,
    JoinPlan, QuadtreePartitioner, SplitPolicy, UniformGrid,
};
use cbb_geom::{Point, Rect};
use cbb_joins::brute_force_pairs;
use cbb_rtree::{DataId, TreeConfig, Variant};
use cbb_serve::{QueryService, Request, RequestError, Response, ServiceConfig};

const EXEC_WORKERS: usize = 3;

type Service = QueryService<2, AnyPartitioner<2>>;

fn tree() -> TreeConfig<2> {
    TreeConfig::tiny(Variant::RStar)
}

fn clip() -> ClipConfig {
    ClipConfig::paper_default::<2>(ClipMethod::Stairline)
}

fn catalog_service() -> Service {
    QueryService::start_catalog(
        ServiceConfig {
            exec_workers: EXEC_WORKERS,
            ..ServiceConfig::default()
        },
        tree(),
        clip(),
    )
}

fn cross_join(
    svc: &Service,
    left: DatasetId,
    right: DatasetId,
    algo: JoinAlgo,
    use_clips: bool,
) -> Response {
    svc.submit(Request::CrossJoin {
        left,
        right,
        algo,
        use_clips,
    })
    .unwrap()
    .wait()
    .unwrap()
    .response
}

/// The acceptance oracle: cross-dataset joins through the service equal
/// direct engine joins over the same object sets — byte-for-byte — for
/// STT and INLJ across uniform / adaptive / quadtree indexed sides, and
/// repeat joins rebuild nothing.
#[test]
fn cross_join_equals_direct_partitioned_join_for_all_partitioners() {
    let svc = catalog_service();
    let left_data = clustered_with_layout::<2>(1_300, 6, 30_000.0, 0.15, 5, 5);
    let right_data = clustered_with_layout::<2>(1_500, 6, 30_000.0, 0.15, 5, 6);
    let domain = left_data.domain;

    let left_part =
        AnyPartitioner::from(AdaptiveGrid::from_sample(domain, [4, 4], &left_data.boxes));
    let left = svc
        .create_dataset("probes", left_part.clone(), left_data.boxes.clone())
        .unwrap();

    let rights: Vec<(&str, AnyPartitioner<2>)> = vec![
        ("uniform", UniformGrid::new(domain, 4).into()),
        (
            "adaptive",
            AdaptiveGrid::from_sample(domain, [5, 3], &right_data.boxes).into(),
        ),
        (
            "quadtree",
            QuadtreePartitioner::build(domain, &right_data.boxes, 250).into(),
        ),
        // Shares the probe dataset's exact tiling: the STT fast path
        // that borrows BOTH cached forests.
        ("same-tiling", left_part.clone()),
    ];
    let mut created = 1u64; // the probe dataset
    let expected_pairs = brute_force_pairs(&left_data.boxes, &right_data.boxes);
    for (name, partitioner) in rights {
        let right = svc
            .create_dataset(name, partitioner.clone(), right_data.boxes.clone())
            .unwrap();
        created += 1;
        for algo in [JoinAlgo::Stt, JoinAlgo::Inlj] {
            for use_clips in [true, false] {
                let plan = JoinPlan {
                    partitioner: partitioner.clone(),
                    tree: tree(),
                    clip: clip(),
                    use_clips,
                    algo,
                    workers: EXEC_WORKERS,
                    split: SplitPolicy::Auto,
                    auto: AutoPolicy::default(),
                };
                let direct = partitioned_join(&plan, &left_data.boxes, &right_data.boxes);
                assert_eq!(
                    direct.pairs, expected_pairs,
                    "{name} {algo:?} oracle sanity"
                );
                let served = cross_join(&svc, left, right, algo, use_clips).into_join();
                assert_eq!(
                    served, direct,
                    "{name} {algo:?} clips={use_clips}: served cross-join must be byte-equal"
                );
                // Repeat: identical answer, still no rebuild.
                let again = cross_join(&svc, left, right, algo, use_clips).into_join();
                assert_eq!(again, direct, "{name} {algo:?} repeat");
            }
        }
        // The sweep is byte-equal when clips are off (no trees, no
        // clip tables, one canonical column sort on both paths); with
        // clips on only the forest-backed sides have root CBBs to
        // prune with, so work counters may differ — pairs never do.
        // Auto resolves per tile from cache presence, which the direct
        // join lacks — pair sets are pinned, kernel mix is not.
        {
            let plan = JoinPlan {
                partitioner: partitioner.clone(),
                tree: tree(),
                clip: clip(),
                use_clips: false,
                algo: JoinAlgo::Sweep,
                workers: EXEC_WORKERS,
                split: SplitPolicy::Auto,
                auto: AutoPolicy::default(),
            };
            let direct = partitioned_join(&plan, &left_data.boxes, &right_data.boxes);
            assert_eq!(
                cross_join(&svc, left, right, JoinAlgo::Sweep, false).into_join(),
                direct,
                "{name} sweep unclipped byte-equal"
            );
        }
        for algo in [JoinAlgo::Sweep, JoinAlgo::Auto] {
            for use_clips in [true, false] {
                let served = cross_join(&svc, left, right, algo, use_clips).into_join();
                assert_eq!(
                    served.pairs, expected_pairs,
                    "{name} {algo:?} clips={use_clips} pair oracle"
                );
            }
        }
        assert_eq!(
            svc.report().forest_builds,
            created,
            "{name}: joins must be served from cached forests (zero rebuilds)"
        );
    }

    // Self-join: left ⋈ left through one store.
    let self_direct = {
        let plan = JoinPlan {
            partitioner: left_part,
            tree: tree(),
            clip: clip(),
            use_clips: true,
            algo: JoinAlgo::Stt,
            workers: EXEC_WORKERS,
            split: SplitPolicy::Auto,
            auto: AutoPolicy::default(),
        };
        partitioned_join(&plan, &left_data.boxes, &left_data.boxes)
    };
    assert_eq!(
        cross_join(&svc, left, left, JoinAlgo::Stt, true).into_join(),
        self_direct
    );

    let report = svc.shutdown();
    assert_eq!(
        report.forest_builds, created,
        "no rebuild over the whole run"
    );
    assert!(report.cross_joins > 0);
    assert!(report.forest_hits >= report.cross_joins);
    assert!(
        report.probe_repartitions > 0,
        "the mismatched-tiling legs above re-partition"
    );
}

/// The PR 5 follow-up, closed: on a shared tiling the probe side is
/// served forest-native for EVERY algorithm — repeated cross-joins
/// (self-joins included) extract no live rectangles and re-partition
/// nothing. Only a genuine partitioner mismatch moves the counter.
#[test]
fn same_tiling_cross_joins_never_repartition_probes() {
    let svc = catalog_service();
    let data_a = clustered_with_layout::<2>(900, 5, 25_000.0, 0.12, 9, 9);
    let data_b = clustered_with_layout::<2>(1_000, 5, 25_000.0, 0.12, 9, 10);
    let domain = data_a.domain.union(&data_b.domain);
    let shared_part = AnyPartitioner::from(UniformGrid::new(domain, 4));
    let a = svc
        .create_dataset("a", shared_part.clone(), data_a.boxes.clone())
        .unwrap();
    let b = svc
        .create_dataset("b", shared_part.clone(), data_b.boxes.clone())
        .unwrap();
    let cross_pairs = brute_force_pairs(&data_a.boxes, &data_b.boxes);
    let self_pairs = brute_force_pairs(&data_a.boxes, &data_a.boxes);
    for round in 0..3 {
        for algo in [
            JoinAlgo::Stt,
            JoinAlgo::Inlj,
            JoinAlgo::Sweep,
            JoinAlgo::Auto,
        ] {
            assert_eq!(
                cross_join(&svc, a, b, algo, true).into_join().pairs,
                cross_pairs,
                "{algo:?} round {round}"
            );
            assert_eq!(
                cross_join(&svc, a, a, algo, true).into_join().pairs,
                self_pairs,
                "{algo:?} self round {round}"
            );
        }
    }
    let report = svc.report();
    assert_eq!(
        report.probe_repartitions, 0,
        "shared tiling must never re-partition the probe side"
    );
    assert_eq!(
        report.forest_builds, 2,
        "one build per dataset creation, zero per join"
    );
    // A mismatched tiling is exactly what moves the counter.
    let other = AnyPartitioner::from(UniformGrid::new(domain, 5));
    let c = svc
        .create_dataset("c", other, data_b.boxes.clone())
        .unwrap();
    let mismatched = cross_join(&svc, a, c, JoinAlgo::Auto, true).into_join();
    assert_eq!(mismatched.pairs, cross_pairs);
    let report = svc.shutdown();
    assert_eq!(report.probe_repartitions, 1);
}

/// The isolation acceptance test: hammering dataset A with write
/// batches moves only A's version; B's version, cache entries, and
/// answers are untouched, and B's reads proceed concurrently.
#[test]
fn writes_to_one_dataset_leave_others_unversioned_and_cached() {
    let svc = std::sync::Arc::new(catalog_service());
    let a_data = clustered_with_layout::<2>(900, 5, 40_000.0, 0.2, 3, 3);
    let b_data = zipfian::<2>(900, 8, 11);
    let a = svc
        .create_dataset(
            "churny",
            UniformGrid::new(a_data.domain, 4).into(),
            a_data.boxes.clone(),
        )
        .unwrap();
    let b = svc
        .create_dataset(
            "steady",
            AdaptiveGrid::from_sample(b_data.domain, [3, 3], &b_data.boxes).into(),
            b_data.boxes.clone(),
        )
        .unwrap();
    let b_query = Rect::new(Point([0.0, 0.0]), Point([1_000_000.0, 1_000_000.0]));
    let b_baseline = svc
        .submit(Request::Range {
            dataset: b,
            query: b_query,
            use_clips: true,
        })
        .unwrap()
        .wait()
        .unwrap()
        .response
        .into_range();
    assert_eq!(b_baseline.len(), 900);
    let builds_before = svc.report().forest_builds;

    // Writers hammer A; a reader hammers B concurrently, recording the
    // B version it observes before and after every read.
    let writers: Vec<_> = (0..3)
        .map(|w| {
            let svc = svc.clone();
            std::thread::spawn(move || {
                for i in 0..25 {
                    let base = (w * 1_000 + i * 7) as f64;
                    let rect = Rect::new(Point([base, base]), Point([base + 50.0, base + 50.0]));
                    let id = svc
                        .submit(Request::Insert { dataset: a, rect })
                        .unwrap()
                        .wait()
                        .unwrap()
                        .response
                        .into_inserted()
                        .expect("finite rect applies");
                    let _ = id;
                }
            })
        })
        .collect();
    let reader = {
        let svc = svc.clone();
        std::thread::spawn(move || {
            let mut answers = Vec::new();
            for _ in 0..20 {
                assert_eq!(
                    svc.dataset_version(b),
                    Some(DataVersion(0)),
                    "B's version must never move while A churns"
                );
                answers.push(
                    svc.submit(Request::Range {
                        dataset: b,
                        query: b_query,
                        use_clips: true,
                    })
                    .unwrap()
                    .wait()
                    .unwrap()
                    .response
                    .into_range(),
                );
            }
            answers
        })
    };
    for w in writers {
        w.join().unwrap();
    }
    for answer in reader.join().unwrap() {
        assert_eq!(answer, b_baseline, "B's answers are isolation-stable");
    }

    // A moved: one version bump per applied write micro-batch, 75
    // applied inserts. B did not move — and nothing was rebuilt, so
    // B's cached forest was never invalidated by A's write traffic.
    let report = std::sync::Arc::into_inner(svc)
        .expect("all threads joined")
        .shutdown();
    let row_a = report.dataset(a).expect("A is live").clone();
    let row_b = report.dataset(b).expect("B is live").clone();
    assert_eq!(
        row_a.version.0, row_a.write_batches,
        "A bumps once per batch"
    );
    assert!(row_a.version.0 >= 1);
    assert_eq!(row_a.updates_applied, 75);
    assert_eq!(row_a.live_objects, 900 + 75);
    assert_eq!(row_b.version, DataVersion(0), "B never bumped");
    assert_eq!(row_b.write_batches, 0);
    assert_eq!(row_b.updates_applied, 0);
    assert_eq!(
        report.forest_builds, builds_before,
        "A's delta writes install without rebuilds; B's cache key stays hot"
    );
}

/// Admin ops ride the queue: create/drop/swap answer through completion
/// handles, fail cleanly on bad targets, and dropped ids are never
/// reused.
#[test]
fn admin_ops_ride_the_queue_and_fail_cleanly() {
    let svc = catalog_service();
    let data = clustered_with_layout::<2>(400, 4, 40_000.0, 0.2, 9, 9);
    let grid: AnyPartitioner<2> = UniformGrid::new(data.domain, 3).into();

    // Queued create, then a name clash.
    let id = svc
        .submit(Request::CreateDataset {
            name: "layer".into(),
            partitioner: grid.clone(),
            objects: data.boxes.clone(),
        })
        .unwrap()
        .wait()
        .unwrap()
        .response
        .into_created();
    assert_eq!(svc.dataset_id("layer"), Some(id));
    assert_eq!(
        svc.create_dataset("layer", grid.clone(), Vec::new()),
        Err(RequestError::NameTaken("layer".into()))
    );
    assert_eq!(svc.datasets(), vec![(id, "layer".to_string())]);

    // Swap bumps the version and re-keys the id space.
    let v = svc.swap_dataset(id, data.boxes[..100].to_vec()).unwrap();
    assert_eq!(v, DataVersion(1));
    assert_eq!(svc.dataset_live_count(id), Some(100));
    // Swap with a re-fitted partitioner (the drift answer).
    let refit: AnyPartitioner<2> =
        AdaptiveGrid::from_sample(data.domain, [4, 4], &data.boxes).into();
    let v = svc
        .swap_dataset_with(id, refit, data.boxes.clone())
        .unwrap();
    assert_eq!(v, DataVersion(2));
    assert_eq!(svc.dataset_live_count(id), Some(400));

    // Requests against unknown datasets are answered with failures,
    // not dropped.
    let ghost = DatasetId(77);
    let failed = svc
        .submit(Request::Range {
            dataset: ghost,
            query: data.boxes[0],
            use_clips: true,
        })
        .unwrap()
        .wait()
        .unwrap()
        .response;
    assert_eq!(failed.error(), Some(&RequestError::UnknownDataset(ghost)));
    let failed = svc
        .submit(Request::Insert {
            dataset: ghost,
            rect: data.boxes[0],
        })
        .unwrap()
        .wait()
        .unwrap()
        .response;
    assert_eq!(failed.error(), Some(&RequestError::UnknownDataset(ghost)));
    let failed = cross_join(&svc, id, ghost, JoinAlgo::Stt, true);
    assert_eq!(failed.error(), Some(&RequestError::UnknownDataset(ghost)));
    assert_eq!(
        svc.swap_dataset(ghost, Vec::new()),
        Err(RequestError::UnknownDataset(ghost))
    );

    // Drop: true once, false after; queries on the dropped id fail; a
    // recreate under the same name gets a FRESH id.
    assert!(svc.drop_dataset(id));
    assert!(!svc.drop_dataset(id));
    let failed = svc
        .submit(Request::Knn {
            dataset: id,
            center: Point([0.0, 0.0]),
            k: 3,
        })
        .unwrap()
        .wait()
        .unwrap()
        .response;
    assert_eq!(failed.error(), Some(&RequestError::UnknownDataset(id)));
    let reborn = svc
        .create_dataset("layer", grid, data.boxes.clone())
        .unwrap();
    assert_ne!(reborn, id, "dropped ids are never reused");

    let report = svc.shutdown();
    assert_eq!(report.completed, report.submitted, "admin ops drain too");
}

/// Mutations sharing a micro-batch resolve to the queue-order final
/// state: an admin op is a write barrier, so an insert enqueued
/// *before* a swap of its dataset is applied first and swapped away,
/// while one enqueued *after* survives on the fresh arena.
#[test]
fn writes_and_admin_ops_resolve_in_queue_order() {
    // Single dispatcher, wide batch, generous deadline: back-to-back
    // submissions near-certainly share one micro-batch — and when they
    // happen not to, queue-order execution across batches produces the
    // same final state, so the assertions are timing-independent.
    let svc: Service = QueryService::start_catalog(
        ServiceConfig {
            batch_max: 16,
            batch_deadline: std::time::Duration::from_millis(100),
            dispatchers: 1,
            exec_workers: 2,
            ..ServiceConfig::default()
        },
        tree(),
        clip(),
    );
    let data = clustered_with_layout::<2>(50, 3, 40_000.0, 0.2, 13, 13);
    let dataset = svc
        .create_dataset(
            "layer",
            UniformGrid::new(data.domain, 3).into(),
            data.boxes.clone(),
        )
        .unwrap();
    // Far corner of the domain, disjoint from the swap replacement.
    let marker = Rect::new(Point([990_000.0, 990_000.0]), Point([990_100.0, 990_100.0]));

    let before_swap = svc
        .submit(Request::Insert {
            dataset,
            rect: marker,
        })
        .unwrap();
    let swap = svc
        .submit(Request::SwapData {
            dataset,
            objects: data.boxes[..10].to_vec(),
            partitioner: None,
        })
        .unwrap();
    let after_swap = svc
        .submit(Request::Insert {
            dataset,
            rect: marker,
        })
        .unwrap();
    let pre_id = before_swap
        .wait()
        .unwrap()
        .response
        .into_inserted()
        .expect("the pre-swap insert IS applied (then swapped away)");
    assert_eq!(pre_id, DataId(50), "applied onto the pre-swap arena");
    let version = swap.wait().unwrap().response.into_swapped();
    let post_id = after_swap
        .wait()
        .unwrap()
        .response
        .into_inserted()
        .expect("the post-swap insert lands on the fresh arena");
    assert_eq!(post_id, DataId(10), "fresh id space after the swap");

    // Final state is the queue-order state: 10 swapped objects plus
    // only the post-swap marker.
    assert_eq!(svc.dataset_live_count(dataset), Some(11));
    let found = svc
        .submit(Request::Range {
            dataset,
            query: marker,
            use_clips: true,
        })
        .unwrap()
        .wait()
        .unwrap()
        .response
        .into_range();
    assert_eq!(found, vec![post_id], "exactly one marker survives");
    // v1 = pre-swap write flush, v2 = swap, v3 = post-swap write.
    assert_eq!(version, DataVersion(2));
    assert_eq!(svc.dataset_version(dataset), Some(DataVersion(3)));
    svc.shutdown();
}

/// Per-dataset report rows surface the load-imbalance observability
/// metric: a uniform grid over clustered data reads hot, a fitted
/// partitioner reads near-balanced, and per-dataset write counters
/// stay per-dataset.
#[test]
fn report_rows_surface_per_dataset_imbalance_and_counters() {
    let svc = catalog_service();
    let data = clustered_with_layout::<2>(1_200, 3, 15_000.0, 0.05, 21, 21);
    let skewed = svc
        .create_dataset(
            "skewed",
            UniformGrid::new(data.domain, 5).into(),
            data.boxes.clone(),
        )
        .unwrap();
    let fitted = svc
        .create_dataset(
            "fitted",
            AnyPartitioner::from(QuadtreePartitioner::build(data.domain, &data.boxes, 150)),
            data.boxes.clone(),
        )
        .unwrap();
    svc.submit(Request::Insert {
        dataset: fitted,
        rect: data.boxes[0],
    })
    .unwrap()
    .wait()
    .unwrap();

    let report = svc.shutdown();
    let skewed_row = report.dataset(skewed).unwrap();
    let fitted_row = report.dataset(fitted).unwrap();
    assert!(
        skewed_row.load_imbalance > 2.0,
        "clustered data under a uniform grid must read hot (got {})",
        skewed_row.load_imbalance
    );
    assert!(
        fitted_row.load_imbalance < skewed_row.load_imbalance,
        "a fitted partitioner must balance better ({} vs {})",
        fitted_row.load_imbalance,
        skewed_row.load_imbalance
    );
    assert!(fitted_row.load_imbalance >= 1.0);
    assert_eq!(
        (skewed_row.write_batches, fitted_row.write_batches),
        (0, 1),
        "write counters are per dataset"
    );
    assert_eq!(fitted_row.version, DataVersion(1));
    assert_eq!(skewed_row.version, DataVersion(0));
    assert_eq!(fitted_row.live_objects, 1_201);
}
