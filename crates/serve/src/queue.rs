//! A bounded MPMC queue on `Mutex` + `Condvar` — the service's admission
//! point.
//!
//! Any number of producers block (or fail fast with [`TryPushError`])
//! when the queue is full — that is the service's backpressure — and any
//! number of consumers block when it is empty. [`Bounded::close`] stops
//! admission while letting consumers drain what was already accepted:
//! the pop side keeps returning items until the queue is empty and only
//! then reports closure, which is what makes the service's graceful
//! shutdown lose no request.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Push failure: the queue no longer admits items. The rejected item is
/// handed back.
#[derive(Debug, PartialEq, Eq)]
pub struct Closed<T>(pub T);

/// Non-blocking push failure.
#[derive(Debug, PartialEq, Eq)]
pub enum TryPushError<T> {
    /// The queue is at capacity; the item is handed back.
    Full(T),
    /// The queue is closed; the item is handed back.
    Closed(T),
}

/// Outcome of a deadline-bounded pop.
#[derive(Debug, PartialEq, Eq)]
pub enum Popped<T> {
    /// An item was available (possibly after waiting).
    Item(T),
    /// The deadline passed with the queue still empty.
    TimedOut,
    /// The queue is closed and fully drained.
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The bounded MPMC queue. All methods take `&self`; share it behind an
/// `Arc`.
pub struct Bounded<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Bounded<T> {
    /// A queue admitting at most `capacity` items (≥ 1).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "a queue needs capacity for one item");
        Bounded {
            capacity,
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Push, blocking while the queue is full (backpressure). Fails only
    /// once the queue is closed.
    pub fn push(&self, item: T) -> Result<(), Closed<T>> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if state.closed {
                return Err(Closed(item));
            }
            if state.items.len() < self.capacity {
                state.items.push_back(item);
                drop(state);
                self.not_empty.notify_one();
                return Ok(());
            }
            state = self.not_full.wait(state).expect("queue poisoned");
        }
    }

    /// Push without blocking: full and closed are both immediate errors.
    pub fn try_push(&self, item: T) -> Result<(), TryPushError<T>> {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.closed {
            return Err(TryPushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(TryPushError::Full(item));
        }
        state.items.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Pop, blocking while the queue is empty and open. `None` means the
    /// queue is closed **and** drained — the consumer's exit signal.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue poisoned");
        }
    }

    /// Pop, waiting at most until `deadline` when empty. An item already
    /// queued is returned even past the deadline (draining available
    /// backlog costs no extra waiting — the deadline bounds *added*
    /// latency, which is what micro-batch flushing needs).
    pub fn pop_until(&self, deadline: Instant) -> Popped<T> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Popped::Item(item);
            }
            if state.closed {
                return Popped::Closed;
            }
            let now = Instant::now();
            if now >= deadline {
                return Popped::TimedOut;
            }
            let (next, timeout) = self
                .not_empty
                .wait_timeout(state, deadline - now)
                .expect("queue poisoned");
            state = next;
            if timeout.timed_out() && state.items.is_empty() {
                return if state.closed {
                    Popped::Closed
                } else {
                    Popped::TimedOut
                };
            }
        }
    }

    /// Stop admitting items. Idempotent. Consumers drain the backlog and
    /// then see `None` / [`Popped::Closed`]; blocked producers fail.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("queue poisoned");
        state.closed = true;
        drop(state);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn fifo_order() {
        let q = Bounded::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        assert_eq!(q.len(), 5);
        for i in 0..5 {
            assert_eq!(q.pop(), Some(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn try_push_reports_full_then_recovers() {
        let q = Bounded::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(TryPushError::Full(3)));
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn close_rejects_producers_but_drains_consumers() {
        let q = Bounded::new(4);
        q.push("a").unwrap();
        q.push("b").unwrap();
        q.close();
        assert_eq!(q.push("c"), Err(Closed("c")));
        assert_eq!(q.try_push("d"), Err(TryPushError::Closed("d")));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
        // close is idempotent.
        q.close();
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_until_times_out_and_returns_backlog_past_deadline() {
        let q: Bounded<u32> = Bounded::new(4);
        let past = Instant::now() - Duration::from_millis(1);
        assert_eq!(q.pop_until(past), Popped::TimedOut);
        q.push(7).unwrap();
        // Deadline already passed, but the item is available: take it.
        assert_eq!(q.pop_until(past), Popped::Item(7));
        q.close();
        assert_eq!(q.pop_until(past), Popped::Closed);
    }

    #[test]
    fn blocked_producer_wakes_on_pop() {
        let q = Arc::new(Bounded::new(1));
        q.push(0u32).unwrap();
        let q2 = q.clone();
        let producer = std::thread::spawn(move || q2.push(1).is_ok());
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.pop(), Some(0));
        assert!(producer.join().unwrap());
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn blocked_producer_fails_on_close() {
        let q = Arc::new(Bounded::new(1));
        q.push(0u32).unwrap();
        let q2 = q.clone();
        let producer = std::thread::spawn(move || q2.push(1));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(producer.join().unwrap(), Err(Closed(1)));
    }

    #[test]
    fn mpmc_every_item_consumed_exactly_once() {
        const PRODUCERS: usize = 4;
        const CONSUMERS: usize = 3;
        const PER_PRODUCER: usize = 200;
        let q = Arc::new(Bounded::new(8));
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let q = q.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    q.push(p * PER_PRODUCER + i).unwrap();
                }
            }));
        }
        let consumers: Vec<_> = (0..CONSUMERS)
            .map(|_| {
                let q = q.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(item) = q.pop() {
                        got.push(item);
                    }
                    got
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        q.close();
        let mut all: Vec<usize> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let expected: Vec<usize> = (0..PRODUCERS * PER_PRODUCER).collect();
        assert_eq!(all, expected);
    }
}
