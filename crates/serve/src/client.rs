//! The typed client surface: `service.dataset("roads")?.range(rect)`.
//!
//! Building a [`Request`] enum by hand spells out every field at every
//! call site; [`DatasetClient`] binds a dataset once and offers one
//! method per request shape. Both paths funnel through the same
//! internal submit ([`SubmitRequest::submit_request`]), so a typed
//! call and its enum spelling are *the same request* — same queueing,
//! same batching, same [`CompletionHandle`] — and the two styles mix
//! freely. The trait is implemented by [`crate::QueryService`]
//! (unsharded) and [`crate::ShardedService`] (scatter-gather), so
//! client code is deployment-agnostic:
//!
//! ```no_run
//! # use cbb_serve::{ServiceBuilder, SubmitRequest};
//! # use cbb_core::{ClipConfig, ClipMethod};
//! # use cbb_engine::UniformGrid;
//! # use cbb_geom::{Point, Rect};
//! # use cbb_rtree::{TreeConfig, Variant};
//! # let service = ServiceBuilder::new().build_catalog::<2, UniformGrid<2>>(
//! #     TreeConfig::tiny(Variant::RStar),
//! #     ClipConfig::paper_default::<2>(ClipMethod::Stairline),
//! # );
//! # let rect = Rect::new(Point([0.0, 0.0]), Point([1.0, 1.0]));
//! let roads = service.dataset("roads").expect("created earlier");
//! let hits = roads.range(rect).unwrap().wait().unwrap();
//! let near = roads.knn(Point([3.0, 4.0]), 5).unwrap().wait().unwrap();
//! ```

use cbb_engine::{DatasetId, JoinAlgo, Update};
use cbb_geom::{Point, Rect};
use cbb_rtree::DataId;

use crate::handle::CompletionHandle;
use crate::queue::Closed;
use crate::request::{Completion, Request};

/// The one internal submit both API styles route through. Implemented
/// by every service shape ([`crate::QueryService`],
/// [`crate::ShardedService`]); bring it into scope to use
/// [`Self::dataset`] / [`Self::client`] on either.
pub trait SubmitRequest<const D: usize, P> {
    /// Admit one request (the enum path; typed methods call this too).
    fn submit_request(
        &self,
        request: Request<D, P>,
    ) -> Result<CompletionHandle<Completion>, Closed<Request<D, P>>>;

    /// Resolve a dataset name to its id.
    fn resolve_dataset(&self, name: &str) -> Option<DatasetId>;

    /// A typed client bound to the named dataset (`None` for unknown
    /// names).
    fn dataset(&self, name: &str) -> Option<DatasetClient<'_, D, P, Self>>
    where
        Self: Sized,
    {
        self.resolve_dataset(name).map(|id| self.client(id))
    }

    /// A typed client bound to a dataset id (not validated until a
    /// request is answered — an unknown id fails per request with
    /// [`crate::RequestError::UnknownDataset`]).
    fn client(&self, id: DatasetId) -> DatasetClient<'_, D, P, Self>
    where
        Self: Sized,
    {
        DatasetClient {
            service: self,
            dataset: id,
            _partitioner: std::marker::PhantomData,
        }
    }
}

/// A dataset-bound view of a service: one method per request shape,
/// each returning the same [`CompletionHandle`] the enum path does.
/// Cheap to copy; hold one per dataset you talk to.
pub struct DatasetClient<'a, const D: usize, P, S: SubmitRequest<D, P>> {
    service: &'a S,
    dataset: DatasetId,
    _partitioner: std::marker::PhantomData<fn() -> P>,
}

impl<const D: usize, P, S: SubmitRequest<D, P>> Clone for DatasetClient<'_, D, P, S> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<const D: usize, P, S: SubmitRequest<D, P>> Copy for DatasetClient<'_, D, P, S> {}

/// The submit result every client method returns.
pub type ClientResult<const D: usize, P> =
    Result<CompletionHandle<Completion>, Closed<Request<D, P>>>;

impl<const D: usize, P, S: SubmitRequest<D, P>> DatasetClient<'_, D, P, S> {
    /// The bound dataset's id.
    pub fn id(&self) -> DatasetId {
        self.dataset
    }

    /// All objects intersecting `query`, probed with clip points
    /// (paper Algorithm 2). Resolves to [`crate::Response::Range`].
    pub fn range(&self, query: Rect<D>) -> ClientResult<D, P> {
        self.service.submit_request(Request::Range {
            dataset: self.dataset,
            query,
            use_clips: true,
        })
    }

    /// [`Self::range`] without clip-point pruning (the baseline the
    /// paper compares against).
    pub fn range_unclipped(&self, query: Rect<D>) -> ClientResult<D, P> {
        self.service.submit_request(Request::Range {
            dataset: self.dataset,
            query,
            use_clips: false,
        })
    }

    /// The `k` objects nearest to `center` (MINDIST order, ties by
    /// id). Resolves to [`crate::Response::Knn`].
    pub fn knn(&self, center: Point<D>, k: usize) -> ClientResult<D, P> {
        self.service.submit_request(Request::Knn {
            dataset: self.dataset,
            center,
            k,
        })
    }

    /// Join client-streamed `probes` against this dataset with clip
    /// pruning. Resolves to [`crate::Response::Join`].
    pub fn probe_join(&self, probes: Vec<Rect<D>>, algo: JoinAlgo) -> ClientResult<D, P> {
        self.probe_join_with(probes, algo, true)
    }

    /// [`Self::probe_join`] with explicit clip-pruning selection.
    pub fn probe_join_with(
        &self,
        probes: Vec<Rect<D>>,
        algo: JoinAlgo,
        use_clips: bool,
    ) -> ClientResult<D, P> {
        self.service.submit_request(Request::Join {
            dataset: self.dataset,
            probes,
            algo,
            use_clips,
        })
    }

    /// Join this dataset (probe side) against another **served**
    /// dataset by name — `roads.join("parcels", algo)`. `None` when
    /// the name is unknown; resolves to [`crate::Response::Join`].
    pub fn join(&self, other: &str, algo: JoinAlgo) -> Option<ClientResult<D, P>> {
        let right = self.service.resolve_dataset(other)?;
        Some(self.join_id(right, algo, true))
    }

    /// [`Self::join`] by id, with explicit clip-pruning selection.
    pub fn join_id(&self, right: DatasetId, algo: JoinAlgo, use_clips: bool) -> ClientResult<D, P> {
        self.service.submit_request(Request::CrossJoin {
            left: self.dataset,
            right,
            algo,
            use_clips,
        })
    }

    /// Insert one object; resolves to [`crate::Response::Inserted`]
    /// with the assigned id.
    pub fn insert(&self, rect: Rect<D>) -> ClientResult<D, P> {
        self.service.submit_request(Request::Insert {
            dataset: self.dataset,
            rect,
        })
    }

    /// Delete one object by id; resolves to
    /// [`crate::Response::Deleted`].
    pub fn delete(&self, id: DataId) -> ClientResult<D, P> {
        self.service.submit_request(Request::Delete {
            dataset: self.dataset,
            id,
        })
    }

    /// Apply a pre-grouped write batch atomically; resolves to
    /// [`crate::Response::Updated`].
    pub fn update(&self, updates: Vec<Update<D>>) -> ClientResult<D, P> {
        self.service.submit_request(Request::UpdateBatch {
            dataset: self.dataset,
            updates,
        })
    }
}

impl<const D: usize, P> SubmitRequest<D, P> for crate::QueryService<D, P>
where
    P: cbb_engine::Partitioner<D>
        + cbb_engine::PersistPartitioner
        + Clone
        + PartialEq
        + std::fmt::Debug
        + Send
        + Sync
        + 'static,
{
    fn submit_request(
        &self,
        request: Request<D, P>,
    ) -> Result<CompletionHandle<Completion>, Closed<Request<D, P>>> {
        self.submit(request)
    }

    fn resolve_dataset(&self, name: &str) -> Option<DatasetId> {
        self.dataset_id(name)
    }
}

impl<const D: usize, P> SubmitRequest<D, P> for crate::ShardedService<D, P>
where
    P: cbb_engine::Partitioner<D>
        + cbb_engine::PersistPartitioner
        + Clone
        + PartialEq
        + std::fmt::Debug
        + Send
        + Sync
        + 'static,
{
    fn submit_request(
        &self,
        request: Request<D, P>,
    ) -> Result<CompletionHandle<Completion>, Closed<Request<D, P>>> {
        self.submit(request)
    }

    fn resolve_dataset(&self, name: &str) -> Option<DatasetId> {
        self.dataset_id(name)
    }
}
