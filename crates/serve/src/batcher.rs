//! Micro-batch formation and execution: the bridge between the request
//! queue and the engine's batched executor.
//!
//! A dispatcher blocks for the first request, then keeps the batch open
//! until it holds `batch_max` requests or `batch_deadline` has passed
//! since the batch opened — the classic group-commit trade: a bounded
//! dash of added latency buys amortised dispatch over the executor.
//!
//! Writes in the batch run **first**: every `Insert`/`Delete`/
//! `UpdateBatch` is coalesced into one ordered engine apply under the
//! state write lock with a *single* version bump (group commit for
//! index maintenance), and the delta-derived forest is installed into
//! the version cache without any rebuild. The batch's reads then
//! execute under the read lock, observing the batch's own writes.
//! Reads are grouped by kind (clipped ranges, baseline ranges, kNN
//! probes, joins) so each group rides one executor call.

use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use cbb_engine::{
    partitioned_join_with, BatchExecutor, JoinPlan, Partitioner, SplitPolicy, Update, UpdateResult,
};
use cbb_geom::{Point, Rect};

use crate::queue::{Bounded, Popped};
use crate::request::{Completion, Request, Response, UpdateSummary};
use crate::service::{Envelope, SharedState};

/// Pull one micro-batch off the queue: block for the first request,
/// then fill until `batch_max` or `deadline_after` the batch opened.
/// `None` means the queue is closed and drained — the dispatcher's exit
/// signal. A batch is never empty.
pub(crate) fn collect_batch<T>(
    queue: &Bounded<T>,
    batch_max: usize,
    deadline_after: Duration,
) -> Option<Vec<T>> {
    let first = queue.pop()?;
    let mut batch = vec![first];
    if batch_max > 1 {
        let deadline = Instant::now() + deadline_after;
        while batch.len() < batch_max {
            match queue.pop_until(deadline) {
                Popped::Item(item) => batch.push(item),
                Popped::TimedOut | Popped::Closed => break,
            }
        }
    }
    Some(batch)
}

/// Execute one micro-batch against the shared engine state and fulfil
/// every completion handle. Answers are identical to issuing each
/// request alone: per-query results never depend on what else shares
/// the batch (the oracle tests pin this).
pub(crate) fn run_batch<const D: usize, P>(shared: &SharedState<D, P>, batch: Vec<Envelope<D>>)
where
    P: Partitioner<D> + Clone,
{
    let picked_up = Instant::now();
    let size = batch.len();
    let workers = shared.config.exec_workers;
    let mut responses: Vec<Option<Response>> = std::iter::repeat_with(|| None).take(size).collect();

    // ── Writes first: coalesce every write of the micro-batch into one
    // ordered engine apply — one write lock, one version bump, one
    // delta-derived forest installed into the cache (no rebuild).
    let mut ops: Vec<Update<D>> = Vec::new();
    let mut write_slots: Vec<(usize, usize, usize)> = Vec::new(); // (slot, lo, hi) into `ops`
    for (slot, env) in batch.iter().enumerate() {
        let lo = ops.len();
        match &env.request {
            Request::Insert { rect } => ops.push(Update::Insert(*rect)),
            Request::Delete { id } => ops.push(Update::Delete(*id)),
            Request::UpdateBatch { updates } => ops.extend(updates.iter().copied()),
            _ => continue,
        }
        write_slots.push((slot, lo, ops.len()));
    }
    if !write_slots.is_empty() {
        let (version, results) = if ops.is_empty() {
            // Only empty UpdateBatch requests: nothing to apply, no bump.
            let state = shared.state.read().expect("service state poisoned");
            (state.version, Vec::new())
        } else {
            let mut state = shared.state.write().expect("service state poisoned");
            let outcome = state.executor.apply_updates(&ops, shared.tree, shared.clip);
            // A batch whose writes all turned out to be no-ops (dead-id
            // deletes, rejected inserts) changed nothing: no version
            // bump, no cache install, no applied-update accounting —
            // retry storms must not churn versions or evict cached
            // forests.
            let applied = outcome
                .results
                .iter()
                .filter(|r| matches!(r, UpdateResult::Inserted(_) | UpdateResult::Deleted(true)))
                .count() as u64;
            if applied > 0 {
                state.version.bump();
                shared
                    .cache
                    .insert(state.version, state.executor.forest().clone());
            }
            let version = state.version;
            drop(state);
            if applied > 0 {
                shared
                    .stats
                    .record_write_batch(applied, outcome.nodes_allocated);
            }
            (version, outcome.results)
        };
        for (slot, lo, hi) in write_slots {
            responses[slot] = Some(match &batch[slot].request {
                Request::Insert { .. } => Response::Inserted(match results[lo] {
                    UpdateResult::Inserted(id) => Some(id),
                    UpdateResult::Rejected => None,
                    UpdateResult::Deleted(_) => unreachable!("insert answered as delete"),
                }),
                Request::Delete { .. } => Response::Deleted(match results[lo] {
                    UpdateResult::Deleted(ok) => ok,
                    _ => unreachable!("delete answered as insert"),
                }),
                Request::UpdateBatch { .. } => Response::Updated(UpdateSummary {
                    version,
                    results: results[lo..hi].to_vec(),
                }),
                _ => unreachable!("write slot holds a read"),
            });
        }
    }

    // ── Reads under the read lock, acquired after the writes: the
    // batch's reads observe the batch's writes.
    let state = shared.state.read().expect("service state poisoned");
    let executor: &BatchExecutor<D, P> = &state.executor;

    // Group by kind, remembering each request's slot in the batch.
    let mut clipped: Vec<(usize, Rect<D>)> = Vec::new();
    let mut baseline: Vec<(usize, Rect<D>)> = Vec::new();
    let mut knns: Vec<(usize, (Point<D>, usize))> = Vec::new();
    for (slot, env) in batch.iter().enumerate() {
        match &env.request {
            Request::Range { query, use_clips } => {
                if *use_clips {
                    clipped.push((slot, *query));
                } else {
                    baseline.push((slot, *query));
                }
            }
            Request::Knn { center, k } => knns.push((slot, (*center, *k))),
            Request::Join {
                probes,
                algo,
                use_clips,
            } => {
                // Joins run per request against the executor's forest —
                // the version-keyed trees built once per data version —
                // so repeat joins on an unchanged version rebuild
                // nothing and touch no lock beyond the state read lock
                // already held.
                let plan = JoinPlan {
                    partitioner: executor.partitioner().clone(),
                    tree: shared.tree,
                    clip: shared.clip,
                    use_clips: *use_clips,
                    algo: *algo,
                    workers,
                    split: SplitPolicy::Auto,
                };
                let result =
                    partitioned_join_with(&plan, probes, executor.objects(), executor.forest());
                shared.stats.forest_hits.fetch_add(1, Ordering::Relaxed);
                responses[slot] = Some(Response::Join(result));
            }
            // Writes were already applied and answered above.
            Request::Insert { .. } | Request::Delete { .. } | Request::UpdateBatch { .. } => {}
        }
    }
    for (group, use_clips) in [(&clipped, true), (&baseline, false)] {
        if group.is_empty() {
            continue;
        }
        let queries: Vec<Rect<D>> = group.iter().map(|(_, q)| *q).collect();
        let outcome = executor.run(&queries, workers, use_clips);
        for ((slot, _), ids) in group.iter().zip(outcome.results) {
            responses[*slot] = Some(Response::Range(ids));
        }
    }
    if !knns.is_empty() {
        let probes: Vec<(Point<D>, usize)> = knns.iter().map(|(_, p)| *p).collect();
        let outcome = executor.run_knn(&probes, workers);
        for ((slot, _), nn) in knns.iter().zip(outcome.results) {
            responses[*slot] = Some(Response::Knn(nn));
        }
    }
    drop(state);

    let serviced = picked_up.elapsed();
    for (env, response) in batch.into_iter().zip(responses) {
        env.promise.fulfill(Completion {
            response: response.expect("every slot answered"),
            queued: picked_up.duration_since(env.enqueued),
            serviced,
            batch_size: size,
        });
    }
    shared.stats.record_batch(size);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn collect_respects_batch_max() {
        let q = Bounded::new(16);
        for i in 0..10 {
            q.push(i).unwrap();
        }
        let batch = collect_batch(&q, 4, Duration::from_millis(50)).unwrap();
        assert_eq!(batch, vec![0, 1, 2, 3]);
        assert_eq!(q.len(), 6);
    }

    #[test]
    fn collect_flushes_on_deadline() {
        let q: Bounded<u32> = Bounded::new(16);
        q.push(9).unwrap();
        let t = Instant::now();
        let batch = collect_batch(&q, 64, Duration::from_millis(10)).unwrap();
        assert_eq!(batch, vec![9]);
        assert!(t.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn collect_is_immediate_when_unbatched() {
        let q: Bounded<u32> = Bounded::new(16);
        q.push(1).unwrap();
        q.push(2).unwrap();
        // batch_max = 1 never waits on the deadline.
        let t = Instant::now();
        let batch = collect_batch(&q, 1, Duration::from_secs(60)).unwrap();
        assert_eq!(batch, vec![1]);
        assert!(t.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn collect_drains_then_signals_closed() {
        let q: Bounded<u32> = Bounded::new(16);
        q.push(5).unwrap();
        q.close();
        assert_eq!(
            collect_batch(&q, 8, Duration::from_millis(5)),
            Some(vec![5])
        );
        assert_eq!(collect_batch(&q, 8, Duration::from_millis(5)), None);
    }
}
