//! Micro-batch formation and execution: the bridge between the request
//! queue and the catalog's per-dataset stores.
//!
//! A dispatcher blocks for the first request, then keeps the batch open
//! until it holds `batch_max` requests or `batch_deadline` has passed
//! since the batch opened — the classic group-commit trade: a bounded
//! dash of added latency buys amortised dispatch over the executor.
//!
//! Execution order inside one micro-batch:
//!
//! 1. **Mutations in queue order, writes coalesced per dataset**:
//!    every `Insert`/`Delete`/`UpdateBatch` targeting dataset X is
//!    coalesced into one ordered engine apply under X's write lock
//!    with a *single* version bump of X (group commit for index
//!    maintenance), and the delta-derived forest is installed into the
//!    `(DatasetId, DataVersion)` cache without any rebuild. An admin
//!    op (`CreateDataset` / `DropDataset` / `SwapData`) is a
//!    **barrier**: pending write groups flush before it runs, so the
//!    final state is exactly what strict queue-order execution would
//!    produce (an insert enqueued before a swap is swapped away; one
//!    enqueued after it survives). Locks are taken one dataset at a
//!    time and released before the next — a write burst into A never
//!    holds B.
//! 2. **Reads, grouped per dataset** under that dataset's read lock
//!    (kind-grouped: clipped ranges, baseline ranges, kNN probes,
//!    joins ride one executor call each), observing the batch's own
//!    writes. Cross-dataset joins acquire their two read locks in
//!    ascending id order — the global lock-ordering rule that keeps
//!    the dispatcher pool deadlock-free.

use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use cbb_engine::{
    partitioned_join_forests, partitioned_join_with, Dataset, DatasetId, JoinAlgo, JoinPlan,
    Partitioner, SplitPolicy, Update, UpdateResult,
};
use cbb_geom::{Point, Rect};

use crate::queue::{Bounded, Popped};
use crate::request::{Completion, Request, RequestError, Response, UpdateSummary};
use crate::service::{Envelope, SharedState};

/// Pull one micro-batch off the queue: block for the first request,
/// then fill until `batch_max` or `deadline_after` the batch opened.
/// `None` means the queue is closed and drained — the dispatcher's exit
/// signal. A batch is never empty.
pub(crate) fn collect_batch<T>(
    queue: &Bounded<T>,
    batch_max: usize,
    deadline_after: Duration,
) -> Option<Vec<T>> {
    let first = queue.pop()?;
    let mut batch = vec![first];
    if batch_max > 1 {
        let deadline = Instant::now() + deadline_after;
        while batch.len() < batch_max {
            match queue.pop_until(deadline) {
                Popped::Item(item) => batch.push(item),
                Popped::TimedOut | Popped::Closed => break,
            }
        }
    }
    Some(batch)
}

/// Reads of one dataset, grouped by kind so each group rides one
/// executor call; `slot` indexes the micro-batch.
#[derive(Default)]
struct ReadGroup<const D: usize> {
    clipped: Vec<(usize, Rect<D>)>,
    baseline: Vec<(usize, Rect<D>)>,
    knns: Vec<(usize, (Point<D>, usize))>,
    joins: Vec<(usize, Vec<Rect<D>>, JoinAlgo, bool)>,
}

/// Which write request a coalesced slot came from (decides its
/// response shape once the group's results are back).
#[derive(Clone, Copy)]
enum WriteKind {
    Insert,
    Delete,
    UpdateBatch,
}

/// Pending coalesced writes: per dataset, the ordered ops plus each
/// contributing request's `(slot, lo, hi, kind)` range into them.
type WriteGroups<const D: usize> = BTreeMap<DatasetId, (Vec<Update<D>>, Vec<WriteSlot>)>;
type WriteSlot = (usize, usize, usize, WriteKind);

/// Apply (and answer) every pending write group: per dataset, one
/// write lock, one ordered engine apply, one version bump, one
/// delta-derived forest installed into the cache (no rebuild). Locks
/// are taken one dataset at a time and released before the next — a
/// write burst into A never holds B. Called between admin-op barriers
/// and once at the end of the mutation pass.
fn flush_writes<const D: usize, P>(
    shared: &SharedState<D, P>,
    groups: &mut WriteGroups<D>,
    responses: &mut [Option<Response>],
) where
    P: Partitioner<D> + Clone,
{
    for (dataset, (ops, write_slots)) in std::mem::take(groups) {
        let Some(entry) = shared.catalog.get(dataset) else {
            for (slot, ..) in write_slots {
                responses[slot] = Some(Response::Failed(RequestError::UnknownDataset(dataset)));
            }
            continue;
        };
        let (version, results) = if ops.is_empty() {
            // Only empty UpdateBatch requests: nothing to apply, no bump.
            let store = entry.store().read().expect("dataset store poisoned");
            (store.version(), Vec::new())
        } else {
            let mut store = entry.store().write().expect("dataset store poisoned");
            let outcome = store.apply_updates(&ops, shared.tree, shared.clip);
            // A batch whose writes all turned out to be no-ops (dead-id
            // deletes, rejected inserts) changed nothing: the store
            // bumped no version, so install nothing and account nothing
            // — retry storms must not churn versions or evict cached
            // forests.
            let applied = outcome.applied();
            if applied > 0 {
                shared
                    .cache
                    .insert((dataset, store.version()), store.forest().clone());
            }
            let version = store.version();
            drop(store);
            if applied > 0 {
                shared
                    .stats
                    .record_write_batch(applied, outcome.nodes_allocated);
            }
            (version, outcome.results)
        };
        for (slot, lo, hi, kind) in write_slots {
            responses[slot] = Some(match kind {
                WriteKind::Insert => Response::Inserted(match results[lo] {
                    UpdateResult::Inserted(id) => Some(id),
                    UpdateResult::Rejected => None,
                    UpdateResult::Deleted(_) => unreachable!("insert answered as delete"),
                }),
                WriteKind::Delete => Response::Deleted(match results[lo] {
                    UpdateResult::Deleted(ok) => ok,
                    _ => unreachable!("delete answered as insert"),
                }),
                WriteKind::UpdateBatch => Response::Updated(UpdateSummary {
                    version,
                    results: results[lo..hi].to_vec(),
                }),
            });
        }
    }
}

/// Execute one micro-batch against the catalog and fulfil every
/// completion handle. Answers are identical to issuing each request
/// alone: per-query results never depend on what else shares the batch
/// (the oracle tests pin this).
pub(crate) fn run_batch<const D: usize, P>(
    shared: &SharedState<D, P>,
    mut batch: Vec<Envelope<D, P>>,
) where
    P: Partitioner<D> + Clone + PartialEq,
{
    let picked_up = Instant::now();
    let size = batch.len();
    let workers = shared.config.exec_workers;
    let mut responses: Vec<Option<Response>> = std::iter::repeat_with(|| None).take(size).collect();

    // ── 1. Mutations (writes + admin ops), in queue order with
    // per-dataset group commit: consecutive writes are coalesced per
    // dataset, and an admin op is a **barrier** — every pending write
    // group flushes before it runs. An Insert enqueued before a
    // SwapData of its dataset is therefore really applied before the
    // swap (and discarded by it), and a write enqueued after a
    // DropDataset fails — exactly the final state queue-order
    // execution would produce. Payloads are taken out of the envelope
    // (the request is never revisited).
    let mut write_groups: WriteGroups<D> = BTreeMap::new();
    for (slot, env) in batch.iter_mut().enumerate() {
        match &mut env.request {
            Request::CreateDataset {
                name,
                partitioner,
                objects,
            } => {
                flush_writes(shared, &mut write_groups, &mut responses);
                let response = match shared.create_dataset_now(
                    name,
                    partitioner.clone(),
                    std::mem::take(objects),
                ) {
                    Ok(id) => Response::Created(id),
                    Err(err) => Response::Failed(err),
                };
                responses[slot] = Some(response);
            }
            Request::DropDataset { dataset } => {
                flush_writes(shared, &mut write_groups, &mut responses);
                responses[slot] = Some(Response::Dropped(shared.drop_dataset_now(*dataset)));
            }
            Request::SwapData {
                dataset,
                objects,
                partitioner,
            } => {
                flush_writes(shared, &mut write_groups, &mut responses);
                let response =
                    match shared.swap_now(*dataset, std::mem::take(objects), partitioner.take()) {
                        Ok(version) => Response::Swapped(version),
                        Err(err) => Response::Failed(err),
                    };
                responses[slot] = Some(response);
            }
            Request::Insert { dataset, rect } => {
                let (ops, slots) = write_groups.entry(*dataset).or_default();
                slots.push((slot, ops.len(), ops.len() + 1, WriteKind::Insert));
                ops.push(Update::Insert(*rect));
            }
            Request::Delete { dataset, id } => {
                let (ops, slots) = write_groups.entry(*dataset).or_default();
                slots.push((slot, ops.len(), ops.len() + 1, WriteKind::Delete));
                ops.push(Update::Delete(*id));
            }
            Request::UpdateBatch { dataset, updates } => {
                let (ops, slots) = write_groups.entry(*dataset).or_default();
                let lo = ops.len();
                ops.extend(updates.iter().copied());
                slots.push((slot, lo, ops.len(), WriteKind::UpdateBatch));
            }
            _ => {}
        }
    }
    flush_writes(shared, &mut write_groups, &mut responses);

    // ── 3. Reads, grouped per dataset; each group runs under that
    // dataset's read lock, acquired after its writes: the batch's reads
    // observe the batch's writes.
    let mut read_groups: BTreeMap<DatasetId, ReadGroup<D>> = BTreeMap::new();
    let mut cross_joins: Vec<(usize, DatasetId, DatasetId, JoinAlgo, bool)> = Vec::new();
    for (slot, env) in batch.iter_mut().enumerate() {
        match &mut env.request {
            Request::Range {
                dataset,
                query,
                use_clips,
            } => {
                let group = read_groups.entry(*dataset).or_default();
                if *use_clips {
                    group.clipped.push((slot, *query));
                } else {
                    group.baseline.push((slot, *query));
                }
            }
            Request::Knn { dataset, center, k } => {
                read_groups
                    .entry(*dataset)
                    .or_default()
                    .knns
                    .push((slot, (*center, *k)));
            }
            Request::Join {
                dataset,
                probes,
                algo,
                use_clips,
            } => {
                read_groups.entry(*dataset).or_default().joins.push((
                    slot,
                    std::mem::take(probes),
                    *algo,
                    *use_clips,
                ));
            }
            Request::CrossJoin {
                left,
                right,
                algo,
                use_clips,
            } => cross_joins.push((slot, *left, *right, *algo, *use_clips)),
            // Writes and admin ops were already applied and answered.
            _ => {}
        }
    }
    for (dataset, group) in read_groups {
        let Some(entry) = shared.catalog.get(dataset) else {
            let fail = || Some(Response::Failed(RequestError::UnknownDataset(dataset)));
            for (slot, _) in group.clipped.iter().chain(&group.baseline) {
                responses[*slot] = fail();
            }
            for (slot, _) in &group.knns {
                responses[*slot] = fail();
            }
            for (slot, ..) in &group.joins {
                responses[*slot] = fail();
            }
            continue;
        };
        let store = entry.store().read().expect("dataset store poisoned");
        for (group, use_clips) in [(&group.clipped, true), (&group.baseline, false)] {
            if group.is_empty() {
                continue;
            }
            let queries: Vec<Rect<D>> = group.iter().map(|(_, q)| *q).collect();
            let outcome = store.run(&queries, workers, use_clips);
            for ((slot, _), ids) in group.iter().zip(outcome.results) {
                responses[*slot] = Some(Response::Range(ids));
            }
        }
        if !group.knns.is_empty() {
            let probes: Vec<(Point<D>, usize)> = group.knns.iter().map(|(_, p)| *p).collect();
            let outcome = store.run_knn(&probes, workers);
            for ((slot, _), nn) in group.knns.iter().zip(outcome.results) {
                responses[*slot] = Some(Response::Knn(nn));
            }
        }
        for (slot, probes, algo, use_clips) in group.joins {
            // Joins run per request against the store's forest — the
            // version-keyed trees built once per data version — so
            // repeat joins on an unchanged version rebuild nothing and
            // touch no lock beyond the read lock already held.
            let plan = JoinPlan {
                partitioner: store.partitioner().clone(),
                tree: shared.tree,
                clip: shared.clip,
                use_clips,
                algo,
                workers,
                split: SplitPolicy::Auto,
            };
            let result = partitioned_join_with(&plan, &probes, store.objects(), store.forest());
            shared.stats.forest_hits.fetch_add(1, Ordering::Relaxed);
            responses[slot] = Some(Response::Join(result));
        }
    }
    for (slot, left, right, algo, use_clips) in cross_joins {
        responses[slot] = Some(run_cross_join(shared, left, right, algo, use_clips));
    }

    let serviced = picked_up.elapsed();
    for (env, response) in batch.into_iter().zip(responses) {
        env.promise.fulfill(Completion {
            response: response.expect("every slot answered"),
            queued: picked_up.duration_since(env.enqueued),
            serviced,
            batch_size: size,
        });
    }
    shared.stats.record_batch(size);
}

/// Join the live objects of two served datasets: `left ⋈ right`, tiled
/// by the **right** (indexed) side's partitioner. The right forest is
/// always served from its store; when the tilings are equal and the
/// strategy is STT the left forest is borrowed too
/// ([`partitioned_join_forests`] — nothing is assigned or bulk-loaded
/// at all), otherwise the left side's live rectangles are
/// re-partitioned onto the right tiling by [`partitioned_join_with`].
fn run_cross_join<const D: usize, P>(
    shared: &SharedState<D, P>,
    left: DatasetId,
    right: DatasetId,
    algo: JoinAlgo,
    use_clips: bool,
) -> Response
where
    P: Partitioner<D> + Clone + PartialEq,
{
    let resolve = |id: DatasetId| -> Result<std::sync::Arc<Dataset<D, P>>, Response> {
        shared
            .catalog
            .get(id)
            .ok_or(Response::Failed(RequestError::UnknownDataset(id)))
    };
    let lentry = match resolve(left) {
        Ok(e) => e,
        Err(fail) => return fail,
    };
    let rentry = match resolve(right) {
        Ok(e) => e,
        Err(fail) => return fail,
    };
    shared.stats.cross_joins.fetch_add(1, Ordering::Relaxed);

    let plan_for = |partitioner: P| JoinPlan {
        partitioner,
        tree: shared.tree,
        clip: shared.clip,
        use_clips,
        algo,
        workers: shared.config.exec_workers,
        split: SplitPolicy::Auto,
    };

    // Self-join: one read lock, the live set joined against itself.
    if left == right {
        let store = rentry.store().read().expect("dataset store poisoned");
        let plan = plan_for(store.partitioner().clone());
        let probes = store.live_rects();
        shared.stats.forest_hits.fetch_add(1, Ordering::Relaxed);
        return Response::Join(partitioned_join_with(
            &plan,
            &probes,
            store.objects(),
            store.forest(),
        ));
    }

    // Two datasets: read locks in ascending id order (writers hold one
    // lock at a time, every multi-lock reader orders by id — no cycle).
    let (first, second) = if left < right {
        (&lentry, &rentry)
    } else {
        (&rentry, &lentry)
    };
    let first_guard = first.store().read().expect("dataset store poisoned");
    let second_guard = second.store().read().expect("dataset store poisoned");
    let (lstore, rstore) = if left < right {
        (&first_guard, &second_guard)
    } else {
        (&second_guard, &first_guard)
    };

    let plan = plan_for(rstore.partitioner().clone());
    let result = if matches!(algo, JoinAlgo::Stt) && lstore.partitioner() == rstore.partitioner() {
        // Shared tiling: the probe side's cached forest IS the per-tile
        // left side a fresh partitioned join would build — borrow both.
        shared.stats.forest_hits.fetch_add(2, Ordering::Relaxed);
        partitioned_join_forests(&plan, lstore.forest(), rstore.objects(), rstore.forest())
    } else {
        // Different tilings (or INLJ probes): re-partition the probe
        // side's live objects onto the indexed side's tiles.
        shared.stats.forest_hits.fetch_add(1, Ordering::Relaxed);
        let probes = lstore.live_rects();
        partitioned_join_with(&plan, &probes, rstore.objects(), rstore.forest())
    };
    Response::Join(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn collect_respects_batch_max() {
        let q = Bounded::new(16);
        for i in 0..10 {
            q.push(i).unwrap();
        }
        let batch = collect_batch(&q, 4, Duration::from_millis(50)).unwrap();
        assert_eq!(batch, vec![0, 1, 2, 3]);
        assert_eq!(q.len(), 6);
    }

    #[test]
    fn collect_flushes_on_deadline() {
        let q: Bounded<u32> = Bounded::new(16);
        q.push(9).unwrap();
        let t = Instant::now();
        let batch = collect_batch(&q, 64, Duration::from_millis(10)).unwrap();
        assert_eq!(batch, vec![9]);
        assert!(t.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn collect_is_immediate_when_unbatched() {
        let q: Bounded<u32> = Bounded::new(16);
        q.push(1).unwrap();
        q.push(2).unwrap();
        // batch_max = 1 never waits on the deadline.
        let t = Instant::now();
        let batch = collect_batch(&q, 1, Duration::from_secs(60)).unwrap();
        assert_eq!(batch, vec![1]);
        assert!(t.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn collect_drains_then_signals_closed() {
        let q: Bounded<u32> = Bounded::new(16);
        q.push(5).unwrap();
        q.close();
        assert_eq!(
            collect_batch(&q, 8, Duration::from_millis(5)),
            Some(vec![5])
        );
        assert_eq!(collect_batch(&q, 8, Duration::from_millis(5)), None);
    }
}
