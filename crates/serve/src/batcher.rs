//! Micro-batch formation and execution: the bridge between the request
//! queue and the catalog's per-dataset stores.
//!
//! A dispatcher blocks for the first request, then keeps the batch open
//! until it holds `batch_max` requests or `batch_deadline` has passed
//! since the batch opened — the classic group-commit trade: a bounded
//! dash of added latency buys amortised dispatch over the executor.
//!
//! Execution order inside one micro-batch:
//!
//! 1. **Mutations in queue order, writes coalesced per dataset**:
//!    every `Insert`/`Delete`/`UpdateBatch` targeting dataset X is
//!    coalesced into one ordered engine apply under X's write lock
//!    with a *single* version bump of X (group commit for index
//!    maintenance), and the delta-derived forest is installed into the
//!    `(DatasetId, DataVersion)` cache without any rebuild. An admin
//!    op (`CreateDataset` / `DropDataset` / `SwapData`) is a
//!    **barrier**: pending write groups flush before it runs, so the
//!    final state is exactly what strict queue-order execution would
//!    produce (an insert enqueued before a swap is swapped away; one
//!    enqueued after it survives). Locks are taken one dataset at a
//!    time and released before the next — a write burst into A never
//!    holds B.
//! 2. **Reads, grouped per dataset** under that dataset's read lock
//!    (kind-grouped: clipped ranges, baseline ranges, kNN probes,
//!    joins ride one executor call each), observing the batch's own
//!    writes. Cross-dataset joins acquire their two read locks in
//!    ascending id order — the global lock-ordering rule that keeps
//!    the dispatcher pool deadlock-free.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use cbb_engine::{
    partitioned_join_forests, partitioned_join_with, Dataset, DatasetId, JoinAlgo, JoinPlan,
    Partitioner, SplitPolicy, Update, UpdateResult,
};
use cbb_geom::{Point, Rect};
use cbb_joins::JoinResult;
use cbb_telemetry::{Phase, Span};

use crate::queue::{Bounded, Popped};
use crate::request::{Completion, Request, RequestError, Response, UpdateSummary};
use crate::service::{Envelope, SharedState};

/// Pull one micro-batch off the queue: block for the first request,
/// then fill until `batch_max` or `deadline_after` the batch opened.
/// `None` means the queue is closed and drained — the dispatcher's exit
/// signal. A batch is never empty. The returned [`Instant`] is when the
/// batch **opened** (the first request was popped) — the boundary
/// between a request's queue-wait and coalesce phases.
pub(crate) fn collect_batch<T>(
    queue: &Bounded<T>,
    batch_max: usize,
    deadline_after: Duration,
) -> Option<(Vec<T>, Instant)> {
    let first = queue.pop()?;
    let opened = Instant::now();
    let mut batch = vec![first];
    if batch_max > 1 {
        let deadline = opened + deadline_after;
        while batch.len() < batch_max {
            match queue.pop_until(deadline) {
                Popped::Item(item) => batch.push(item),
                Popped::TimedOut | Popped::Closed => break,
            }
        }
    }
    Some((batch, opened))
}

/// Per-slot telemetry gathered while a batch executes: the phase span,
/// the dataset a request resolved to, and the work counters attributed
/// to it (feeds the histograms and the slow-query ring once handles are
/// fulfilled).
struct BatchTrace {
    spans: Vec<Span>,
    datasets: Vec<Option<String>>,
    counters: Vec<Vec<(&'static str, u64)>>,
}

impl BatchTrace {
    /// Attribute `d` in `phase` to every listed slot. Group-level wall
    /// time (one lock acquisition, one executor call) is attributed in
    /// full to each request that rode the group — per-request *work* is
    /// in the counters; the span answers "where did this request's
    /// service time go".
    fn record_group(&mut self, slots: impl IntoIterator<Item = usize>, phase: Phase, d: Duration) {
        for slot in slots {
            self.spans[slot].record_duration(phase, d);
        }
    }
}

/// Reads of one dataset, grouped by kind so each group rides one
/// executor call; `slot` indexes the micro-batch.
#[derive(Default)]
struct ReadGroup<const D: usize> {
    clipped: Vec<(usize, Rect<D>)>,
    baseline: Vec<(usize, Rect<D>)>,
    knns: Vec<(usize, (Point<D>, usize))>,
    joins: Vec<(usize, Vec<Rect<D>>, JoinAlgo, bool)>,
}

/// Which write request a coalesced slot came from (decides its
/// response shape once the group's results are back).
#[derive(Clone, Copy)]
enum WriteKind {
    Insert,
    Delete,
    UpdateBatch,
}

/// Pending coalesced writes: per dataset, the ordered ops plus each
/// contributing request's `(slot, lo, hi, kind)` range into them.
type WriteGroups<const D: usize> = BTreeMap<DatasetId, (Vec<Update<D>>, Vec<WriteSlot>)>;
type WriteSlot = (usize, usize, usize, WriteKind);

/// Apply (and answer) every pending write group: per dataset, one
/// write lock, one ordered engine apply, one version bump, one
/// delta-derived forest installed into the cache (no rebuild). Locks
/// are taken one dataset at a time and released before the next — a
/// write burst into A never holds B. Called between admin-op barriers
/// and once at the end of the mutation pass.
fn flush_writes<const D: usize, P>(
    shared: &SharedState<D, P>,
    groups: &mut WriteGroups<D>,
    responses: &mut [Option<Response>],
    trace: &mut BatchTrace,
) where
    P: Partitioner<D> + cbb_engine::PersistPartitioner + Clone,
{
    for (dataset, (ops, write_slots)) in std::mem::take(groups) {
        let Some(entry) = shared.catalog.get(dataset) else {
            for (slot, ..) in write_slots {
                responses[slot] = Some(Response::Failed(RequestError::UnknownDataset(dataset)));
            }
            continue;
        };
        let slots = || write_slots.iter().map(|s| s.0);
        for slot in slots() {
            trace.datasets[slot] = Some(entry.name().to_string());
        }
        let (version, results) = if ops.is_empty() {
            // Only empty UpdateBatch requests: nothing to apply, no bump.
            let lock_t = Instant::now();
            let store = entry.store().read().expect("dataset store poisoned");
            trace.record_group(slots(), Phase::LockAcquire, lock_t.elapsed());
            (store.version(), Vec::new())
        } else {
            let lock_t = Instant::now();
            let mut store = entry.store().write().expect("dataset store poisoned");
            let lock_d = lock_t.elapsed();
            let exec_t = Instant::now();
            let outcome = store.apply_updates(&ops, shared.tree, shared.clip);
            // A batch whose writes all turned out to be no-ops (dead-id
            // deletes, rejected inserts) changed nothing: the store
            // bumped no version, so install nothing and account nothing
            // — retry storms must not churn versions or evict cached
            // forests.
            let applied = outcome.applied();
            if applied > 0 {
                shared
                    .cache
                    .insert((dataset, store.version()), store.forest().clone());
                // Durable group commit: the whole coalesced micro-batch
                // is one WAL record, appended and fsynced *while the
                // write lock still pins the version it produced* (WAL
                // order = version order) and before any waiter is
                // fulfilled at the end of `run_batch`.
                if let Some(durability) = &shared.durability {
                    durability.commit_batch(dataset, &store, &ops, &shared.stats);
                }
            }
            let exec_d = exec_t.elapsed();
            let version = store.version();
            drop(store);
            trace.record_group(slots(), Phase::LockAcquire, lock_d);
            trace.record_group(slots(), Phase::Execute, exec_d);
            if applied > 0 {
                shared
                    .stats
                    .record_write_batch(applied, outcome.nodes_allocated);
            }
            (version, outcome.results)
        };
        for (slot, lo, hi, _) in &write_slots {
            trace.counters[*slot].push(("updates_submitted", (hi - lo) as u64));
        }
        for (slot, lo, hi, kind) in write_slots {
            responses[slot] = Some(match kind {
                WriteKind::Insert => Response::Inserted(match results[lo] {
                    UpdateResult::Inserted(id) => Some(id),
                    UpdateResult::Rejected => None,
                    UpdateResult::Deleted(_) => unreachable!("insert answered as delete"),
                }),
                WriteKind::Delete => Response::Deleted(match results[lo] {
                    UpdateResult::Deleted(ok) => ok,
                    _ => unreachable!("delete answered as insert"),
                }),
                WriteKind::UpdateBatch => Response::Updated(UpdateSummary {
                    version,
                    results: results[lo..hi].to_vec(),
                }),
            });
        }
    }
}

/// Execute one micro-batch against the catalog and fulfil every
/// completion handle. Answers are identical to issuing each request
/// alone: per-query results never depend on what else shares the batch
/// (the oracle tests pin this).
pub(crate) fn run_batch<const D: usize, P>(
    shared: &SharedState<D, P>,
    mut batch: Vec<Envelope<D, P>>,
    opened: Instant,
) where
    P: Partitioner<D> + cbb_engine::PersistPartitioner + Clone + PartialEq,
{
    let picked_up = Instant::now();
    let size = batch.len();
    let workers = shared.config.exec_workers;
    shared.stats.queue_depth.add(-(size as i64));
    let mut responses: Vec<Option<Response>> = std::iter::repeat_with(|| None).take(size).collect();
    let kinds: Vec<_> = batch.iter().map(|env| env.request.kind()).collect();
    // Seed each span with the two admission phases. Queue-wait runs
    // enqueue → batch open; coalesce runs batch open → pickup (for a
    // request that arrived after the batch opened, the wait is zero and
    // the whole interval is coalesce). The two sum to exactly
    // `Completion::queued`.
    let mut trace = BatchTrace {
        spans: batch
            .iter()
            .map(|env| {
                let mut span = Span::new();
                span.record_duration(
                    Phase::QueueWait,
                    opened.saturating_duration_since(env.enqueued),
                );
                span.record_duration(
                    Phase::Coalesce,
                    picked_up.duration_since(env.enqueued.max(opened)),
                );
                span
            })
            .collect(),
        datasets: vec![None; size],
        counters: vec![Vec::new(); size],
    };

    // ── 1. Mutations (writes + admin ops), in queue order with
    // per-dataset group commit: consecutive writes are coalesced per
    // dataset, and an admin op is a **barrier** — every pending write
    // group flushes before it runs. An Insert enqueued before a
    // SwapData of its dataset is therefore really applied before the
    // swap (and discarded by it), and a write enqueued after a
    // DropDataset fails — exactly the final state queue-order
    // execution would produce. Payloads are taken out of the envelope
    // (the request is never revisited).
    let mut write_groups: WriteGroups<D> = BTreeMap::new();
    for (slot, env) in batch.iter_mut().enumerate() {
        match &mut env.request {
            Request::CreateDataset {
                name,
                partitioner,
                objects,
            } => {
                flush_writes(shared, &mut write_groups, &mut responses, &mut trace);
                trace.datasets[slot] = Some(name.clone());
                let t = Instant::now();
                let response = match shared.create_dataset_now(
                    name,
                    partitioner.clone(),
                    std::mem::take(objects),
                ) {
                    Ok(id) => Response::Created(id),
                    Err(err) => Response::Failed(err),
                };
                // Creating a dataset IS a forest build: the whole
                // execution is bulk-load, so the sub-phase mirrors it.
                let d = t.elapsed();
                trace.spans[slot].record_duration(Phase::Execute, d);
                trace.spans[slot].record_duration(Phase::ForestBuild, d);
                responses[slot] = Some(response);
            }
            Request::DropDataset { dataset } => {
                flush_writes(shared, &mut write_groups, &mut responses, &mut trace);
                trace.datasets[slot] = shared
                    .catalog
                    .get(*dataset)
                    .map(|entry| entry.name().to_string());
                let t = Instant::now();
                responses[slot] = Some(Response::Dropped(shared.drop_dataset_now(*dataset)));
                trace.spans[slot].record_duration(Phase::Execute, t.elapsed());
            }
            Request::SwapData {
                dataset,
                objects,
                partitioner,
            } => {
                flush_writes(shared, &mut write_groups, &mut responses, &mut trace);
                trace.datasets[slot] = shared
                    .catalog
                    .get(*dataset)
                    .map(|entry| entry.name().to_string());
                let t = Instant::now();
                let response =
                    match shared.swap_now(*dataset, std::mem::take(objects), partitioner.take()) {
                        Ok(version) => Response::Swapped(version),
                        Err(err) => Response::Failed(err),
                    };
                let d = t.elapsed();
                trace.spans[slot].record_duration(Phase::Execute, d);
                trace.spans[slot].record_duration(Phase::ForestBuild, d);
                responses[slot] = Some(response);
            }
            Request::Insert { dataset, rect } => {
                let (ops, slots) = write_groups.entry(*dataset).or_default();
                slots.push((slot, ops.len(), ops.len() + 1, WriteKind::Insert));
                ops.push(Update::Insert(*rect));
            }
            Request::Delete { dataset, id } => {
                let (ops, slots) = write_groups.entry(*dataset).or_default();
                slots.push((slot, ops.len(), ops.len() + 1, WriteKind::Delete));
                ops.push(Update::Delete(*id));
            }
            Request::UpdateBatch { dataset, updates } => {
                let (ops, slots) = write_groups.entry(*dataset).or_default();
                let lo = ops.len();
                ops.extend(updates.iter().copied());
                slots.push((slot, lo, ops.len(), WriteKind::UpdateBatch));
            }
            _ => {}
        }
    }
    flush_writes(shared, &mut write_groups, &mut responses, &mut trace);

    // ── 3. Reads, grouped per dataset; each group runs under that
    // dataset's read lock, acquired after its writes: the batch's reads
    // observe the batch's writes.
    let mut read_groups: BTreeMap<DatasetId, ReadGroup<D>> = BTreeMap::new();
    let mut cross_joins: Vec<(usize, DatasetId, DatasetId, JoinAlgo, bool)> = Vec::new();
    for (slot, env) in batch.iter_mut().enumerate() {
        match &mut env.request {
            Request::Range {
                dataset,
                query,
                use_clips,
            } => {
                let group = read_groups.entry(*dataset).or_default();
                if *use_clips {
                    group.clipped.push((slot, *query));
                } else {
                    group.baseline.push((slot, *query));
                }
            }
            Request::Knn { dataset, center, k } => {
                read_groups
                    .entry(*dataset)
                    .or_default()
                    .knns
                    .push((slot, (*center, *k)));
            }
            Request::Join {
                dataset,
                probes,
                algo,
                use_clips,
            } => {
                read_groups.entry(*dataset).or_default().joins.push((
                    slot,
                    std::mem::take(probes),
                    *algo,
                    *use_clips,
                ));
            }
            Request::CrossJoin {
                left,
                right,
                algo,
                use_clips,
            } => cross_joins.push((slot, *left, *right, *algo, *use_clips)),
            // Writes and admin ops were already applied and answered.
            _ => {}
        }
    }
    for (dataset, group) in read_groups {
        let Some(entry) = shared.catalog.get(dataset) else {
            let fail = || Some(Response::Failed(RequestError::UnknownDataset(dataset)));
            for (slot, _) in group.clipped.iter().chain(&group.baseline) {
                responses[*slot] = fail();
            }
            for (slot, _) in &group.knns {
                responses[*slot] = fail();
            }
            for (slot, ..) in &group.joins {
                responses[*slot] = fail();
            }
            continue;
        };
        let name = entry.name().to_string();
        let access = shared.stats.access_counters(&name);
        let member_slots: Vec<usize> = group
            .clipped
            .iter()
            .chain(&group.baseline)
            .map(|(slot, _)| *slot)
            .chain(group.knns.iter().map(|(slot, _)| *slot))
            .chain(group.joins.iter().map(|(slot, ..)| *slot))
            .collect();
        for slot in &member_slots {
            trace.datasets[*slot] = Some(name.clone());
        }
        let lock_t = Instant::now();
        let store = entry.store().read().expect("dataset store poisoned");
        trace.record_group(member_slots, Phase::LockAcquire, lock_t.elapsed());
        for (group, use_clips) in [(&group.clipped, true), (&group.baseline, false)] {
            if group.is_empty() {
                continue;
            }
            let queries: Vec<Rect<D>> = group.iter().map(|(_, q)| *q).collect();
            let t = Instant::now();
            // The whole coalesced read group goes down as ONE fused
            // call: the engine groups it per tile and answers hot tiles
            // with a single shared sweep (per the configured
            // [`cbb_engine::QueryAlgo`]) instead of per-query descents.
            let outcome = store.run_with(
                &queries,
                workers,
                use_clips,
                shared.config.query_algo,
                &shared.config.auto_policy,
                cbb_engine::SplitPolicy::Auto,
            );
            let d = t.elapsed();
            shared.stats.record_query_algos(&outcome);
            for (counter, (_, n)) in access.iter().zip(outcome.stats.fields()) {
                counter.add(n);
            }
            for (((slot, _), ids), stats) in
                group.iter().zip(outcome.results).zip(&outcome.per_query)
            {
                responses[*slot] = Some(Response::Range(ids));
                trace.spans[*slot].record_duration(Phase::Execute, d);
                trace.spans[*slot].record_duration(Phase::Probe, d);
                trace.counters[*slot].extend(stats.fields());
            }
        }
        if !group.knns.is_empty() {
            let probes: Vec<(Point<D>, usize)> = group.knns.iter().map(|(_, p)| *p).collect();
            let t = Instant::now();
            let outcome = store.run_knn(&probes, workers);
            let d = t.elapsed();
            for (counter, (_, n)) in access.iter().zip(outcome.stats.fields()) {
                counter.add(n);
            }
            for (((slot, _), nn), stats) in group
                .knns
                .iter()
                .zip(outcome.results)
                .zip(&outcome.per_query)
            {
                responses[*slot] = Some(Response::Knn(nn));
                trace.spans[*slot].record_duration(Phase::Execute, d);
                trace.spans[*slot].record_duration(Phase::Probe, d);
                trace.counters[*slot].extend(stats.fields());
            }
        }
        for (slot, probes, algo, use_clips) in group.joins {
            // Joins run per request against the store's forest — the
            // version-keyed trees built once per data version — so
            // repeat joins on an unchanged version rebuild nothing and
            // touch no lock beyond the read lock already held.
            let plan = JoinPlan {
                partitioner: store.partitioner().clone(),
                tree: shared.tree,
                clip: shared.clip,
                use_clips,
                algo,
                workers,
                split: SplitPolicy::Auto,
                auto: shared.config.auto_policy,
            };
            let t = Instant::now();
            let result = partitioned_join_with(&plan, &probes, store.objects(), store.forest());
            let d = t.elapsed();
            shared.stats.forest_hits.inc();
            shared.stats.join_pairs.add(result.pairs);
            shared.stats.record_join_algos(&result);
            trace.spans[slot].record_duration(Phase::Execute, d);
            trace.spans[slot].record_duration(Phase::Probe, d);
            trace.counters[slot].extend(join_counters(&result));
            responses[slot] = Some(Response::Join(result));
        }
    }
    for (slot, left, right, algo, use_clips) in cross_joins {
        let t = Instant::now();
        let response = run_cross_join(shared, left, right, algo, use_clips);
        let d = t.elapsed();
        // The cross join resolves, locks and probes inside one call;
        // its span carries the whole thing as Execute + Probe.
        trace.spans[slot].record_duration(Phase::Execute, d);
        trace.spans[slot].record_duration(Phase::Probe, d);
        if let Response::Join(result) = &response {
            shared.stats.join_pairs.add(result.pairs);
            shared.stats.record_join_algos(result);
            trace.counters[slot].extend(join_counters(result));
        }
        responses[slot] = Some(response);
    }

    let serviced = picked_up.elapsed();
    let exec_end = Instant::now();
    // Everything about a request is recorded BEFORE its handle is
    // fulfilled: the moment a waiter wakes, every total already counts
    // it (the concurrency test pins this exactness). Respond is the
    // delay from end-of-execution to this slot's fulfilment — requests
    // late in the loop absorb the fulfilment cost of earlier ones.
    shared.stats.record_batch(size);
    for (slot, (env, response)) in batch.into_iter().zip(responses).enumerate() {
        let queued = picked_up.duration_since(env.enqueued);
        trace.spans[slot].record_duration(Phase::Respond, exec_end.elapsed());
        let dataset = trace.datasets[slot].take();
        let counters = std::mem::take(&mut trace.counters[slot]);
        shared.stats.record_completion(
            kinds[slot],
            u64::try_from((queued + serviced).as_nanos()).unwrap_or(u64::MAX),
            &trace.spans[slot],
            dataset,
            counters,
        );
        env.promise.fulfill(Completion {
            response: response.expect("every slot answered"),
            queued,
            serviced,
            batch_size: size,
        });
    }
}

/// The work counters a join request contributes to its slow-ring entry.
fn join_counters(result: &JoinResult) -> [(&'static str, u64); 6] {
    [
        ("pairs", result.pairs),
        ("leaf_accesses_left", result.leaf_accesses_left),
        ("leaf_accesses_right", result.leaf_accesses_right),
        ("internal_accesses", result.internal_accesses),
        ("clip_prunes", result.clip_prunes),
        ("overlap_tests", result.overlap_tests),
    ]
}

/// Join the live objects of two served datasets: `left ⋈ right`, tiled
/// by the **right** (indexed) side's partitioner. The right forest is
/// always served from its store; when the tilings are equal the left
/// forest is borrowed too, for **every** strategy
/// ([`partitioned_join_forests`] — STT borrows both trees, INLJ reads
/// its probes from the probe forest's cached columns, the sweep borrows
/// both sides' columns; nothing is assigned or bulk-loaded at all).
/// Only a partitioner mismatch re-partitions the probe side's live
/// rectangles onto the right tiling ([`partitioned_join_with`]) — the
/// `cbb_probe_repartitions_total` counter tracks exactly those.
fn run_cross_join<const D: usize, P>(
    shared: &SharedState<D, P>,
    left: DatasetId,
    right: DatasetId,
    algo: JoinAlgo,
    use_clips: bool,
) -> Response
where
    P: Partitioner<D> + cbb_engine::PersistPartitioner + Clone + PartialEq,
{
    let resolve = |id: DatasetId| -> Result<std::sync::Arc<Dataset<D, P>>, Response> {
        shared
            .catalog
            .get(id)
            .ok_or(Response::Failed(RequestError::UnknownDataset(id)))
    };
    let lentry = match resolve(left) {
        Ok(e) => e,
        Err(fail) => return fail,
    };
    let rentry = match resolve(right) {
        Ok(e) => e,
        Err(fail) => return fail,
    };
    shared.stats.cross_joins.inc();

    let plan_for = |partitioner: P| JoinPlan {
        partitioner,
        tree: shared.tree,
        clip: shared.clip,
        use_clips,
        algo,
        workers: shared.config.exec_workers,
        split: SplitPolicy::Auto,
        auto: shared.config.auto_policy,
    };

    // Self-join: one read lock, the cached forest joined against
    // itself — no live-rect extraction, no probe re-partitioning.
    if left == right {
        let store = rentry.store().read().expect("dataset store poisoned");
        let plan = plan_for(store.partitioner().clone());
        shared.stats.forest_hits.inc();
        return Response::Join(partitioned_join_forests(
            &plan,
            store.forest(),
            store.objects(),
            store.forest(),
        ));
    }

    // Two datasets: read locks in ascending id order (writers hold one
    // lock at a time, every multi-lock reader orders by id — no cycle).
    let (first, second) = if left < right {
        (&lentry, &rentry)
    } else {
        (&rentry, &lentry)
    };
    let first_guard = first.store().read().expect("dataset store poisoned");
    let second_guard = second.store().read().expect("dataset store poisoned");
    let (lstore, rstore) = if left < right {
        (&first_guard, &second_guard)
    } else {
        (&second_guard, &first_guard)
    };

    let plan = plan_for(rstore.partitioner().clone());
    let result = if lstore.partitioner() == rstore.partitioner() {
        // Shared tiling: the probe side's cached forest IS the per-tile
        // left side a fresh partitioned join would build — borrow both,
        // whatever the strategy.
        shared.stats.forest_hits.add(2);
        partitioned_join_forests(&plan, lstore.forest(), rstore.objects(), rstore.forest())
    } else {
        // Different tilings: re-partition the probe side's live objects
        // onto the indexed side's tiles.
        shared.stats.forest_hits.inc();
        shared.stats.probe_repartitions.inc();
        let probes = lstore.live_rects();
        partitioned_join_with(&plan, &probes, rstore.objects(), rstore.forest())
    };
    Response::Join(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn collect_respects_batch_max() {
        let q = Bounded::new(16);
        for i in 0..10 {
            q.push(i).unwrap();
        }
        let (batch, _) = collect_batch(&q, 4, Duration::from_millis(50)).unwrap();
        assert_eq!(batch, vec![0, 1, 2, 3]);
        assert_eq!(q.len(), 6);
    }

    #[test]
    fn collect_flushes_on_deadline() {
        let q: Bounded<u32> = Bounded::new(16);
        q.push(9).unwrap();
        let t = Instant::now();
        let (batch, opened) = collect_batch(&q, 64, Duration::from_millis(10)).unwrap();
        assert_eq!(batch, vec![9]);
        assert!(t.elapsed() >= Duration::from_millis(10));
        // The open stamp is the *first pop*, not the deadline flush.
        assert!(opened.duration_since(t) < Duration::from_millis(10));
    }

    #[test]
    fn collect_is_immediate_when_unbatched() {
        let q: Bounded<u32> = Bounded::new(16);
        q.push(1).unwrap();
        q.push(2).unwrap();
        // batch_max = 1 never waits on the deadline.
        let t = Instant::now();
        let (batch, _) = collect_batch(&q, 1, Duration::from_secs(60)).unwrap();
        assert_eq!(batch, vec![1]);
        assert!(t.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn collect_drains_then_signals_closed() {
        let q: Bounded<u32> = Bounded::new(16);
        q.push(5).unwrap();
        q.close();
        assert_eq!(
            collect_batch(&q, 8, Duration::from_millis(5)).map(|(batch, _)| batch),
            Some(vec![5])
        );
        assert!(collect_batch(&q, 8, Duration::from_millis(5)).is_none());
    }
}
