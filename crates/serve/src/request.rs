//! The service's wire types: requests, responses, and per-request
//! timing.

use std::time::Duration;

use cbb_engine::JoinAlgo;
use cbb_geom::{Point, Rect};
use cbb_joins::JoinResult;
use cbb_rtree::{DataId, Neighbor};

/// One query against the service's dataset.
#[derive(Clone, Debug)]
pub enum Request<const D: usize> {
    /// All objects intersecting `query`. `use_clips` selects clipped
    /// (paper Algorithm 2) or baseline probing of the same trees.
    Range { query: Rect<D>, use_clips: bool },
    /// The `k` objects nearest to `center` (MINDIST order, ties by id).
    Knn { center: Point<D>, k: usize },
    /// Join `probes ⋈ dataset`: every intersecting (probe, object)
    /// pair, counted via the partitioned join with the dataset side's
    /// per-tile trees served from the version-keyed cache.
    Join {
        probes: Vec<Rect<D>>,
        algo: JoinAlgo,
        use_clips: bool,
    },
}

/// The answer to one [`Request`].
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Ids of matching objects, in the executor's deterministic order.
    Range(Vec<DataId>),
    /// Neighbours sorted by `(squared distance, id)`.
    Knn(Vec<Neighbor>),
    /// Join counters (pair count and I/O metrics).
    Join(JoinResult),
}

impl Response {
    /// The range ids, panicking on other variants (test/demo helper).
    pub fn into_range(self) -> Vec<DataId> {
        match self {
            Response::Range(ids) => ids,
            other => panic!("expected a range response, got {other:?}"),
        }
    }

    /// The neighbour list, panicking on other variants.
    pub fn into_knn(self) -> Vec<Neighbor> {
        match self {
            Response::Knn(nn) => nn,
            other => panic!("expected a kNN response, got {other:?}"),
        }
    }

    /// The join counters, panicking on other variants.
    pub fn into_join(self) -> JoinResult {
        match self {
            Response::Join(r) => r,
            other => panic!("expected a join response, got {other:?}"),
        }
    }
}

/// A fulfilled request: the response plus its per-request timing.
#[derive(Clone, Debug)]
pub struct Completion {
    /// The answer.
    pub response: Response,
    /// Time spent queued before a dispatcher picked the request up.
    pub queued: Duration,
    /// Wall-clock of the batch execution that served the request.
    pub serviced: Duration,
    /// How many requests shared that batch (≥ 1).
    pub batch_size: usize,
}

impl Completion {
    /// Queue wait + execution: the latency the client observed from
    /// admission to completion.
    pub fn latency(&self) -> Duration {
        self.queued + self.serviced
    }
}
