//! The service's wire types: requests (reads, writes, *and* catalog
//! administration), responses, and per-request timing.

use std::time::Duration;

use cbb_engine::{DataVersion, DatasetId, JoinAlgo, Update, UpdateResult};
use cbb_geom::{Point, Rect};
use cbb_joins::JoinResult;
use cbb_rtree::{DataId, Neighbor};

/// One request against the service's **catalog** — a query or mutation
/// of one named dataset, a join across two, or an admin operation.
///
/// Every data request names its target [`DatasetId`]; the batcher
/// coalesces *per dataset*, so writes draining into dataset A never
/// serialize reads of dataset B. Writes sharing a micro-batch against
/// the same dataset are coalesced into **one** atomic engine apply with
/// a **single** [`DataVersion`] bump of that dataset (none at all when
/// every write turns out to be a no-op), then the batch's reads run
/// against the updated stores. A request admitted after a write's
/// completion handle resolves is guaranteed to observe that write
/// (read-your-writes). Admin operations ride the same queue — a
/// graceful shutdown drains them like any other request.
///
/// The `P` parameter is the service's partitioner type (it only
/// appears in [`Request::CreateDataset`]; use
/// [`cbb_engine::AnyPartitioner`] to mix partitioner kinds in one
/// catalog).
#[derive(Clone, Debug)]
pub enum Request<const D: usize, P> {
    /// All objects of `dataset` intersecting `query`. `use_clips`
    /// selects clipped (paper Algorithm 2) or baseline probing of the
    /// same trees.
    Range {
        /// Target dataset.
        dataset: DatasetId,
        /// The query window.
        query: Rect<D>,
        /// Clipped or baseline probing.
        use_clips: bool,
    },
    /// The `k` objects of `dataset` nearest to `center` (MINDIST order,
    /// ties by id).
    Knn {
        /// Target dataset.
        dataset: DatasetId,
        /// Probe point.
        center: Point<D>,
        /// Neighbours wanted.
        k: usize,
    },
    /// Join `probes ⋈ dataset`: every intersecting (probe, object)
    /// pair, counted via the partitioned join with the dataset side's
    /// per-tile trees served from the `(DatasetId, DataVersion)`-keyed
    /// cache.
    Join {
        /// The indexed (right) dataset.
        dataset: DatasetId,
        /// Client-streamed probe rectangles.
        probes: Vec<Rect<D>>,
        /// Per-tile join strategy.
        algo: JoinAlgo,
        /// Clip-point pruning inside each tile join.
        use_clips: bool,
    },
    /// Join two **served datasets**: every intersecting pair between
    /// the live objects of `left` and `right`. The right side's cached
    /// forest is always reused; when both datasets share a tiling and
    /// the strategy is STT, the left side's cached forest is borrowed
    /// too ([`cbb_engine::partitioned_join_forests`]) — otherwise the
    /// left side's live objects are re-partitioned onto the right
    /// side's tiling. `left == right` is the self-join.
    CrossJoin {
        /// The probe-side dataset.
        left: DatasetId,
        /// The indexed-side dataset (its partitioner tiles the join).
        right: DatasetId,
        /// Per-tile join strategy.
        algo: JoinAlgo,
        /// Clip-point pruning inside each tile join.
        use_clips: bool,
    },
    /// Insert one object into `dataset`; the store assigns and returns
    /// its [`DataId`] (the smallest compaction-reclaimed slot when one
    /// is free, else a fresh arena slot).
    Insert {
        /// Target dataset.
        dataset: DatasetId,
        /// The object to insert.
        rect: Rect<D>,
    },
    /// Delete one object of `dataset` by id (answers `false` for
    /// dead/unknown ids). Note that after a compaction sweep reclaims
    /// a dead slot, its id can be reassigned to a later insert —
    /// *retrying* an already-applied delete may then hit the new
    /// occupant (see [`cbb_engine::CompactionPolicy`] for the caveat
    /// and the opt-out).
    Delete {
        /// Target dataset.
        dataset: DatasetId,
        /// The object to delete.
        id: DataId,
    },
    /// A pre-grouped write batch against `dataset`, applied atomically
    /// in order under the same single version bump as the rest of its
    /// micro-batch's writes to that dataset.
    UpdateBatch {
        /// Target dataset.
        dataset: DatasetId,
        /// The updates, applied in order.
        updates: Vec<Update<D>>,
    },
    /// Register a new named dataset: partition `objects` under
    /// `partitioner`, bulk-load its tile forest (one cache-counted
    /// build), and answer the assigned [`DatasetId`]. Fails with
    /// [`RequestError::NameTaken`] when the name exists.
    CreateDataset {
        /// Catalog-unique dataset name.
        name: String,
        /// The dataset's own partitioner (fitted to its data).
        partitioner: P,
        /// Initial objects.
        objects: Vec<Rect<D>>,
    },
    /// Remove a dataset and evict its cached forests. Answers whether
    /// the dataset existed; its id is never reused.
    DropDataset {
        /// The dataset to drop.
        dataset: DatasetId,
    },
    /// Replace `dataset`'s objects wholesale: fresh id space, a forest
    /// rebuild through the cache, one version bump. With a
    /// `partitioner`, the tiling is re-fitted at the same time (the
    /// churn-drift answer).
    SwapData {
        /// Target dataset.
        dataset: DatasetId,
        /// The replacement objects.
        objects: Vec<Rect<D>>,
        /// Optional replacement partitioner (re-fit path).
        partitioner: Option<P>,
    },
}

/// The kind of a [`Request`], one variant per request shape — the
/// stable `request_kind` telemetry label (per-kind completion counters
/// and latency histograms key on it).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// [`Request::Range`].
    Range,
    /// [`Request::Knn`].
    Knn,
    /// [`Request::Join`].
    Join,
    /// [`Request::CrossJoin`].
    CrossJoin,
    /// [`Request::Insert`].
    Insert,
    /// [`Request::Delete`].
    Delete,
    /// [`Request::UpdateBatch`].
    UpdateBatch,
    /// [`Request::CreateDataset`].
    CreateDataset,
    /// [`Request::DropDataset`].
    DropDataset,
    /// [`Request::SwapData`].
    SwapData,
}

impl RequestKind {
    /// Every kind, in [`Request`] declaration order.
    pub const ALL: [RequestKind; 10] = [
        RequestKind::Range,
        RequestKind::Knn,
        RequestKind::Join,
        RequestKind::CrossJoin,
        RequestKind::Insert,
        RequestKind::Delete,
        RequestKind::UpdateBatch,
        RequestKind::CreateDataset,
        RequestKind::DropDataset,
        RequestKind::SwapData,
    ];

    /// Stable snake_case name (the `request_kind` label value).
    pub fn name(self) -> &'static str {
        match self {
            RequestKind::Range => "range",
            RequestKind::Knn => "knn",
            RequestKind::Join => "join",
            RequestKind::CrossJoin => "cross_join",
            RequestKind::Insert => "insert",
            RequestKind::Delete => "delete",
            RequestKind::UpdateBatch => "update_batch",
            RequestKind::CreateDataset => "create_dataset",
            RequestKind::DropDataset => "drop_dataset",
            RequestKind::SwapData => "swap_data",
        }
    }

    /// Index into [`Self::ALL`] (pre-resolved handle arrays key on it).
    pub(crate) fn index(self) -> usize {
        self as usize
    }
}

impl<const D: usize, P> Request<D, P> {
    /// This request's [`RequestKind`].
    pub fn kind(&self) -> RequestKind {
        match self {
            Request::Range { .. } => RequestKind::Range,
            Request::Knn { .. } => RequestKind::Knn,
            Request::Join { .. } => RequestKind::Join,
            Request::CrossJoin { .. } => RequestKind::CrossJoin,
            Request::Insert { .. } => RequestKind::Insert,
            Request::Delete { .. } => RequestKind::Delete,
            Request::UpdateBatch { .. } => RequestKind::UpdateBatch,
            Request::CreateDataset { .. } => RequestKind::CreateDataset,
            Request::DropDataset { .. } => RequestKind::DropDataset,
            Request::SwapData { .. } => RequestKind::SwapData,
        }
    }

    /// Whether this request mutates a dataset or the catalog.
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            Request::Insert { .. }
                | Request::Delete { .. }
                | Request::UpdateBatch { .. }
                | Request::CreateDataset { .. }
                | Request::DropDataset { .. }
                | Request::SwapData { .. }
        )
    }

    /// The dataset a data request targets (`None` for admin requests
    /// and cross-dataset joins, which have their own routing).
    pub fn dataset(&self) -> Option<DatasetId> {
        match self {
            Request::Range { dataset, .. }
            | Request::Knn { dataset, .. }
            | Request::Join { dataset, .. }
            | Request::Insert { dataset, .. }
            | Request::Delete { dataset, .. }
            | Request::UpdateBatch { dataset, .. }
            | Request::SwapData { dataset, .. }
            | Request::DropDataset { dataset } => Some(*dataset),
            Request::CrossJoin { .. } | Request::CreateDataset { .. } => None,
        }
    }
}

/// Why a request could not be served. Carried inside
/// [`Response::Failed`] — a refused request is still *answered* (its
/// completion handle resolves), it just resolves to this.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RequestError {
    /// The named dataset does not exist (never created, or dropped —
    /// possibly by an admin request earlier in the same micro-batch).
    UnknownDataset(DatasetId),
    /// `CreateDataset` named an existing dataset.
    NameTaken(String),
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::UnknownDataset(id) => write!(f, "unknown dataset {id:?}"),
            RequestError::NameTaken(name) => write!(f, "dataset name {name:?} is taken"),
        }
    }
}

impl std::error::Error for RequestError {}

/// The answer to an [`Request::UpdateBatch`]: per-update results plus
/// the version the batch's bump produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UpdateSummary {
    /// The data version of the target dataset installed by the
    /// micro-batch that carried this request (shared by every write to
    /// that dataset in the batch).
    pub version: DataVersion,
    /// One result per submitted update, in order.
    pub results: Vec<UpdateResult>,
}

/// The answer to one [`Request`].
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Ids of matching objects, **sorted ascending by id** — the
    /// canonical order, independent of the tile visit order, the shard
    /// layout, and the [`cbb_engine::QueryAlgo`] execution path.
    Range(Vec<DataId>),
    /// Neighbours sorted by `(squared distance, id)`.
    Knn(Vec<Neighbor>),
    /// Join counters (pair count and I/O metrics) — for both
    /// [`Request::Join`] and [`Request::CrossJoin`].
    Join(JoinResult),
    /// The id assigned to an applied [`Request::Insert`], or `None`
    /// when the rectangle was rejected (non-finite).
    Inserted(Option<DataId>),
    /// Whether the [`Request::Delete`]'s object was live and removed.
    Deleted(bool),
    /// Per-update results of an [`Request::UpdateBatch`].
    Updated(UpdateSummary),
    /// The id assigned by a [`Request::CreateDataset`].
    Created(DatasetId),
    /// Whether a [`Request::DropDataset`]'s target existed.
    Dropped(bool),
    /// The version a [`Request::SwapData`] installed.
    Swapped(DataVersion),
    /// The request could not be served (unknown dataset, name taken).
    Failed(RequestError),
}

impl Response {
    /// The range ids, panicking on other variants (test/demo helper).
    pub fn into_range(self) -> Vec<DataId> {
        match self {
            Response::Range(ids) => ids,
            other => panic!("expected a range response, got {other:?}"),
        }
    }

    /// The neighbour list, panicking on other variants.
    pub fn into_knn(self) -> Vec<Neighbor> {
        match self {
            Response::Knn(nn) => nn,
            other => panic!("expected a kNN response, got {other:?}"),
        }
    }

    /// The join counters, panicking on other variants.
    pub fn into_join(self) -> JoinResult {
        match self {
            Response::Join(r) => r,
            other => panic!("expected a join response, got {other:?}"),
        }
    }

    /// The assigned insert id, panicking on other variants.
    pub fn into_inserted(self) -> Option<DataId> {
        match self {
            Response::Inserted(id) => id,
            other => panic!("expected an insert response, got {other:?}"),
        }
    }

    /// The delete flag, panicking on other variants.
    pub fn into_deleted(self) -> bool {
        match self {
            Response::Deleted(ok) => ok,
            other => panic!("expected a delete response, got {other:?}"),
        }
    }

    /// The update summary, panicking on other variants.
    pub fn into_updated(self) -> UpdateSummary {
        match self {
            Response::Updated(summary) => summary,
            other => panic!("expected an update response, got {other:?}"),
        }
    }

    /// The created dataset id, panicking on other variants (including
    /// a [`Response::Failed`] name clash).
    pub fn into_created(self) -> DatasetId {
        match self {
            Response::Created(id) => id,
            other => panic!("expected a create response, got {other:?}"),
        }
    }

    /// The drop flag, panicking on other variants.
    pub fn into_dropped(self) -> bool {
        match self {
            Response::Dropped(ok) => ok,
            other => panic!("expected a drop response, got {other:?}"),
        }
    }

    /// The swapped-in version, panicking on other variants.
    pub fn into_swapped(self) -> DataVersion {
        match self {
            Response::Swapped(v) => v,
            other => panic!("expected a swap response, got {other:?}"),
        }
    }

    /// The failure, if this is one.
    pub fn error(&self) -> Option<&RequestError> {
        match self {
            Response::Failed(err) => Some(err),
            _ => None,
        }
    }
}

/// A fulfilled request: the response plus its per-request timing.
#[derive(Clone, Debug)]
pub struct Completion {
    /// The answer.
    pub response: Response,
    /// Time spent queued before a dispatcher picked the request up.
    pub queued: Duration,
    /// Wall-clock of the batch execution that served the request.
    pub serviced: Duration,
    /// How many requests shared that batch (≥ 1).
    pub batch_size: usize,
}

impl Completion {
    /// Queue wait + execution: the latency the client observed from
    /// admission to completion.
    pub fn latency(&self) -> Duration {
        self.queued + self.serviced
    }
}
