//! The service's wire types: requests (reads *and* writes), responses,
//! and per-request timing.

use std::time::Duration;

use cbb_engine::{DataVersion, JoinAlgo, Update, UpdateResult};
use cbb_geom::{Point, Rect};
use cbb_joins::JoinResult;
use cbb_rtree::{DataId, Neighbor};

/// One request against the service's dataset — a query or a mutation.
///
/// Writes flow through the same queue and micro-batcher as reads: all
/// writes sharing a micro-batch are coalesced into **one** atomic
/// engine apply with a **single** [`DataVersion`] bump (none at all
/// when every write turns out to be a no-op), then the batch's reads
/// run against the updated store. A request admitted after a write's
/// completion handle resolves is guaranteed to observe that write
/// (read-your-writes).
#[derive(Clone, Debug)]
pub enum Request<const D: usize> {
    /// All objects intersecting `query`. `use_clips` selects clipped
    /// (paper Algorithm 2) or baseline probing of the same trees.
    Range { query: Rect<D>, use_clips: bool },
    /// The `k` objects nearest to `center` (MINDIST order, ties by id).
    Knn { center: Point<D>, k: usize },
    /// Join `probes ⋈ dataset`: every intersecting (probe, object)
    /// pair, counted via the partitioned join with the dataset side's
    /// per-tile trees served from the version-keyed cache.
    Join {
        probes: Vec<Rect<D>>,
        algo: JoinAlgo,
        use_clips: bool,
    },
    /// Insert one object; the store assigns and returns its [`DataId`].
    Insert { rect: Rect<D> },
    /// Delete one object by id (answers `false` for dead/unknown ids).
    Delete { id: DataId },
    /// A pre-grouped write batch, applied atomically in order under the
    /// same single version bump as the rest of its micro-batch.
    UpdateBatch { updates: Vec<Update<D>> },
}

impl<const D: usize> Request<D> {
    /// Whether this request mutates the dataset.
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            Request::Insert { .. } | Request::Delete { .. } | Request::UpdateBatch { .. }
        )
    }
}

/// The answer to an [`Request::UpdateBatch`]: per-update results plus
/// the version the batch's bump produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UpdateSummary {
    /// The data version installed by the micro-batch that carried this
    /// request (shared by every write in the batch).
    pub version: DataVersion,
    /// One result per submitted update, in order.
    pub results: Vec<UpdateResult>,
}

/// The answer to one [`Request`].
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Ids of matching objects, in the executor's deterministic order.
    Range(Vec<DataId>),
    /// Neighbours sorted by `(squared distance, id)`.
    Knn(Vec<Neighbor>),
    /// Join counters (pair count and I/O metrics).
    Join(JoinResult),
    /// The id assigned to an applied [`Request::Insert`], or `None`
    /// when the rectangle was rejected (non-finite).
    Inserted(Option<DataId>),
    /// Whether the [`Request::Delete`]'s object was live and removed.
    Deleted(bool),
    /// Per-update results of an [`Request::UpdateBatch`].
    Updated(UpdateSummary),
}

impl Response {
    /// The range ids, panicking on other variants (test/demo helper).
    pub fn into_range(self) -> Vec<DataId> {
        match self {
            Response::Range(ids) => ids,
            other => panic!("expected a range response, got {other:?}"),
        }
    }

    /// The neighbour list, panicking on other variants.
    pub fn into_knn(self) -> Vec<Neighbor> {
        match self {
            Response::Knn(nn) => nn,
            other => panic!("expected a kNN response, got {other:?}"),
        }
    }

    /// The join counters, panicking on other variants.
    pub fn into_join(self) -> JoinResult {
        match self {
            Response::Join(r) => r,
            other => panic!("expected a join response, got {other:?}"),
        }
    }

    /// The assigned insert id, panicking on other variants.
    pub fn into_inserted(self) -> Option<DataId> {
        match self {
            Response::Inserted(id) => id,
            other => panic!("expected an insert response, got {other:?}"),
        }
    }

    /// The delete flag, panicking on other variants.
    pub fn into_deleted(self) -> bool {
        match self {
            Response::Deleted(ok) => ok,
            other => panic!("expected a delete response, got {other:?}"),
        }
    }

    /// The update summary, panicking on other variants.
    pub fn into_updated(self) -> UpdateSummary {
        match self {
            Response::Updated(summary) => summary,
            other => panic!("expected an update response, got {other:?}"),
        }
    }
}

/// A fulfilled request: the response plus its per-request timing.
#[derive(Clone, Debug)]
pub struct Completion {
    /// The answer.
    pub response: Response,
    /// Time spent queued before a dispatcher picked the request up.
    pub queued: Duration,
    /// Wall-clock of the batch execution that served the request.
    pub serviced: Duration,
    /// How many requests shared that batch (≥ 1).
    pub batch_size: usize,
}

impl Completion {
    /// Queue wait + execution: the latency the client observed from
    /// admission to completion.
    pub fn latency(&self) -> Duration {
        self.queued + self.serviced
    }
}
