//! One fluent entry point for every way of starting a service.
//!
//! `QueryService::start` / `start_catalog` grew positionally over five
//! PRs; [`ServiceBuilder`] replaces both with named knobs — including
//! the two that previously had no surface at all (shard count and
//! [`cbb_engine::ForestCache`] capacity) — and always returns a
//! [`ShardedService`]. One shard (the default) *is* the unsharded
//! deployment: the router degrades to a pass-through over a single
//! [`crate::QueryService`], so there is no separate single-store type
//! to migrate between.
//!
//! ```no_run
//! use cbb_serve::{ServiceBuilder, ShardFitting};
//! # use cbb_core::{ClipConfig, ClipMethod};
//! # use cbb_engine::UniformGrid;
//! # use cbb_geom::{Point, Rect};
//! # use cbb_rtree::{TreeConfig, Variant};
//! # let (partitioner, objects) = (
//! #     UniformGrid::new(Rect::new(Point([0.0, 0.0]), Point([1.0, 1.0])), 2),
//! #     vec![],
//! # );
//! let service = ServiceBuilder::new()
//!     .shards(4)
//!     .shard_fitting(ShardFitting::Fitted)
//!     .batch_max(32)
//!     .forest_cache_capacity(8)
//!     .build(
//!         partitioner,
//!         objects,
//!         TreeConfig::tiny(Variant::RStar),
//!         ClipConfig::paper_default::<2>(ClipMethod::Stairline),
//!     );
//! ```

use std::path::Path;
use std::time::Duration;

use cbb_core::ClipConfig;
use cbb_engine::{AutoPolicy, CompactionPolicy, Partitioner, QueryAlgo};
use cbb_geom::Rect;
use cbb_rtree::TreeConfig;
use cbb_telemetry::TelemetryConfig;

use crate::durability::DurabilityConfig;
use crate::router::{ShardFitting, ShardedService};
use crate::service::ServiceConfig;

/// Fluent configuration for a (sharded) query service. Start from
/// [`ServiceBuilder::new`] (all defaults) or
/// [`ServiceBuilder::from_config`] (an existing [`ServiceConfig`]),
/// then finish with [`Self::build`] or [`Self::build_catalog`].
#[derive(Clone, Debug, Default)]
pub struct ServiceBuilder {
    config: ServiceConfig,
    shards: usize,
    fitting: ShardFitting,
}

impl ServiceBuilder {
    /// Defaults: one shard, [`ServiceConfig::default`] for everything
    /// else.
    pub fn new() -> Self {
        ServiceBuilder {
            config: ServiceConfig::default(),
            shards: 1,
            fitting: ShardFitting::default(),
        }
    }

    /// Start from an existing [`ServiceConfig`] (one shard).
    pub fn from_config(config: ServiceConfig) -> Self {
        ServiceBuilder {
            config,
            shards: 1,
            fitting: ShardFitting::default(),
        }
    }

    /// Number of shards (≥ 1; default 1). Every shard is a full
    /// [`crate::QueryService`] — the queue/batching knobs below apply
    /// *per shard*.
    pub fn shards(mut self, shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        self.shards = shards;
        self
    }

    /// How dataset tiles are cut into shard ranges (default
    /// [`ShardFitting::Balanced`]).
    pub fn shard_fitting(mut self, fitting: ShardFitting) -> Self {
        self.fitting = fitting;
        self
    }

    /// Per-shard admission bound (see
    /// [`ServiceConfig::queue_capacity`]).
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.config.queue_capacity = capacity;
        self
    }

    /// Micro-batch size cap (see [`ServiceConfig::batch_max`]).
    pub fn batch_max(mut self, batch_max: usize) -> Self {
        self.config.batch_max = batch_max;
        self
    }

    /// Micro-batch flush deadline (see
    /// [`ServiceConfig::batch_deadline`]).
    pub fn batch_deadline(mut self, deadline: Duration) -> Self {
        self.config.batch_deadline = deadline;
        self
    }

    /// Per-request execution: every batch holds exactly one request
    /// (see [`ServiceConfig::unbatched`]).
    pub fn unbatched(mut self) -> Self {
        self.config.batch_max = 1;
        self.config.batch_deadline = Duration::ZERO;
        self
    }

    /// Dispatcher threads per shard (see
    /// [`ServiceConfig::dispatchers`]); the router sizes its gather
    /// pool to match.
    pub fn dispatchers(mut self, dispatchers: usize) -> Self {
        self.config.dispatchers = dispatchers;
        self
    }

    /// Worker threads inside one batch execution (see
    /// [`ServiceConfig::exec_workers`]).
    pub fn exec_workers(mut self, workers: usize) -> Self {
        self.config.exec_workers = workers;
        self
    }

    /// Arena compaction policy for every store (see
    /// [`ServiceConfig::compaction`]).
    pub fn compaction(mut self, policy: CompactionPolicy) -> Self {
        self.config.compaction = policy;
        self
    }

    /// Telemetry collection (see [`ServiceConfig::telemetry`]).
    pub fn telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.config.telemetry = telemetry;
        self
    }

    /// Range micro-batch execution path (see
    /// [`ServiceConfig::query_algo`]; default
    /// [`cbb_engine::QueryAlgo::Auto`]). Answers are byte-equal across
    /// all variants — the knob moves work counters and wall-clock only.
    pub fn query_algo(mut self, algo: QueryAlgo) -> Self {
        self.config.query_algo = algo;
        self
    }

    /// Thresholds behind `Auto` join-kernel selection and `Auto` range
    /// fusion (see [`ServiceConfig::auto_policy`]; the default
    /// reproduces the previously hard-coded constants byte-for-byte).
    pub fn auto_policy(mut self, policy: AutoPolicy) -> Self {
        self.config.auto_policy = policy;
        self
    }

    /// [`cbb_engine::ForestCache`] LRU capacity per shard (see
    /// [`ServiceConfig::forest_cache_capacity`]).
    pub fn forest_cache_capacity(mut self, capacity: usize) -> Self {
        self.config.forest_cache_capacity = capacity;
        self
    }

    /// Persist every dataset under `root` as snapshot + write-ahead
    /// log, and recover the catalog from there on start (see
    /// [`ServiceConfig::durability`] and the [`crate::durability`]
    /// module docs). Off by default.
    pub fn durability(mut self, root: impl AsRef<Path>) -> Self {
        self.config.durability = Some(DurabilityConfig::new(root.as_ref()));
        self
    }

    /// WAL size past which a dataset's log is checkpointed into a
    /// fresh snapshot (see [`DurabilityConfig::checkpoint_bytes`]).
    /// Call [`Self::durability`] first.
    pub fn checkpoint_bytes(mut self, bytes: u64) -> Self {
        let durable = self
            .config
            .durability
            .as_mut()
            .expect("call durability(root) before checkpoint_bytes");
        durable.checkpoint_bytes = bytes;
        self
    }

    /// The assembled per-shard [`ServiceConfig`].
    pub fn config(&self) -> ServiceConfig {
        self.config.clone()
    }

    /// Start with an **empty catalog** (the `start_catalog`
    /// replacement).
    pub fn build_catalog<const D: usize, P>(
        self,
        tree: TreeConfig<D>,
        clip: ClipConfig,
    ) -> ShardedService<D, P>
    where
        P: Partitioner<D>
            + cbb_engine::PersistPartitioner
            + Clone
            + PartialEq
            + std::fmt::Debug
            + Send
            + Sync
            + 'static,
    {
        ShardedService::start_catalog(self.config, self.shards, self.fitting, tree, clip)
    }

    /// Start with one dataset named [`crate::DEFAULT_DATASET`] built
    /// from `objects` (the `start` replacement).
    pub fn build<const D: usize, P>(
        self,
        partitioner: P,
        objects: Vec<Rect<D>>,
        tree: TreeConfig<D>,
        clip: ClipConfig,
    ) -> ShardedService<D, P>
    where
        P: Partitioner<D>
            + cbb_engine::PersistPartitioner
            + Clone
            + PartialEq
            + std::fmt::Debug
            + Send
            + Sync
            + 'static,
    {
        ShardedService::start(
            self.config,
            self.shards,
            self.fitting,
            partitioner,
            objects,
            tree,
            clip,
        )
    }
}
