//! Per-request completion handles: a one-shot slot the executor fulfils
//! and the submitter waits on (`Mutex` + `Condvar`, no runtime).

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// The request was dropped unfulfilled (its executor died or the
/// service was torn down mid-request). Graceful shutdown never produces
/// this — the queue drains first.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Canceled;

struct Slot<T> {
    state: Mutex<SlotState<T>>,
    ready: Condvar,
}

enum SlotState<T> {
    Pending,
    Ready(T),
    Taken,
    Canceled,
}

/// Fulfilment side of a one-shot pair. Dropping it without calling
/// [`Promise::fulfill`] cancels the matching [`CompletionHandle`] — so a
/// panicking executor fails requests instead of hanging their waiters.
pub struct Promise<T>(Option<Arc<Slot<T>>>);

/// Waiting side of a one-shot pair.
pub struct CompletionHandle<T>(Arc<Slot<T>>);

/// A connected promise/handle pair.
pub fn completion_pair<T>() -> (Promise<T>, CompletionHandle<T>) {
    let slot = Arc::new(Slot {
        state: Mutex::new(SlotState::Pending),
        ready: Condvar::new(),
    });
    (Promise(Some(slot.clone())), CompletionHandle(slot))
}

impl<T> Promise<T> {
    /// Deliver the value and wake the waiter. Consumes the promise —
    /// a one-shot can only fire once.
    pub fn fulfill(mut self, value: T) {
        let slot = self.0.take().expect("promise already consumed");
        let mut state = slot.state.lock().expect("completion slot poisoned");
        if matches!(*state, SlotState::Pending) {
            *state = SlotState::Ready(value);
        }
        drop(state);
        slot.ready.notify_all();
    }
}

impl<T> Drop for Promise<T> {
    fn drop(&mut self) {
        if let Some(slot) = self.0.take() {
            let mut state = slot.state.lock().expect("completion slot poisoned");
            if matches!(*state, SlotState::Pending) {
                *state = SlotState::Canceled;
            }
            drop(state);
            slot.ready.notify_all();
        }
    }
}

impl<T> CompletionHandle<T> {
    /// Block until the response arrives (or the request is canceled).
    pub fn wait(self) -> Result<T, Canceled> {
        let mut state = self.0.state.lock().expect("completion slot poisoned");
        loop {
            match std::mem::replace(&mut *state, SlotState::Taken) {
                SlotState::Ready(value) => return Ok(value),
                SlotState::Canceled => return Err(Canceled),
                SlotState::Taken => unreachable!("one-shot value taken twice"),
                SlotState::Pending => {
                    *state = SlotState::Pending;
                    state = self.0.ready.wait(state).expect("completion slot poisoned");
                }
            }
        }
    }

    /// Non-blocking check; `None` while the request is still in flight.
    pub fn try_wait(&self) -> Option<Result<T, Canceled>> {
        let mut state = self.0.state.lock().expect("completion slot poisoned");
        match std::mem::replace(&mut *state, SlotState::Taken) {
            SlotState::Ready(value) => Some(Ok(value)),
            SlotState::Canceled => Some(Err(Canceled)),
            SlotState::Taken => unreachable!("one-shot value taken twice"),
            SlotState::Pending => {
                *state = SlotState::Pending;
                None
            }
        }
    }

    /// [`Self::wait`] bounded by a timeout; `Err(self)` hands the handle
    /// back so the caller can keep waiting.
    pub fn wait_timeout(self, timeout: Duration) -> Result<Result<T, Canceled>, Self> {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.0.state.lock().expect("completion slot poisoned");
        loop {
            match std::mem::replace(&mut *state, SlotState::Taken) {
                SlotState::Ready(value) => return Ok(Ok(value)),
                SlotState::Canceled => return Ok(Err(Canceled)),
                SlotState::Taken => unreachable!("one-shot value taken twice"),
                SlotState::Pending => {
                    *state = SlotState::Pending;
                    let now = std::time::Instant::now();
                    if now >= deadline {
                        drop(state);
                        return Err(self);
                    }
                    let (next, _) = self
                        .0
                        .ready
                        .wait_timeout(state, deadline - now)
                        .expect("completion slot poisoned");
                    state = next;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fulfill_then_wait() {
        let (tx, rx) = completion_pair();
        tx.fulfill(42u32);
        assert_eq!(rx.wait(), Ok(42));
    }

    #[test]
    fn wait_blocks_until_fulfilled() {
        let (tx, rx) = completion_pair();
        let waiter = std::thread::spawn(move || rx.wait());
        std::thread::sleep(Duration::from_millis(20));
        tx.fulfill("done");
        assert_eq!(waiter.join().unwrap(), Ok("done"));
    }

    #[test]
    fn dropped_promise_cancels() {
        let (tx, rx) = completion_pair::<u8>();
        drop(tx);
        assert_eq!(rx.wait(), Err(Canceled));
    }

    #[test]
    fn try_wait_sees_pending_then_ready() {
        let (tx, rx) = completion_pair();
        assert!(rx.try_wait().is_none());
        tx.fulfill(7u8);
        assert_eq!(rx.try_wait(), Some(Ok(7)));
    }

    #[test]
    fn wait_timeout_returns_handle_then_succeeds() {
        let (tx, rx) = completion_pair();
        let rx = match rx.wait_timeout(Duration::from_millis(5)) {
            Err(handle) => handle,
            Ok(_) => panic!("nothing was fulfilled yet"),
        };
        tx.fulfill(1u8);
        match rx.wait_timeout(Duration::from_secs(5)) {
            Ok(got) => assert_eq!(got, Ok(1)),
            Err(_) => panic!("value was fulfilled, wait must succeed"),
        }
    }
}
