//! # cbb-serve — async query service over the partitioned engine
//!
//! The paper's clipping and the engine's partitioned execution cut the
//! cost of one *batch*; this crate turns the batch API into a
//! **long-running service**: requests (range / kNN / join) are admitted
//! onto a bounded MPMC queue, dispatcher threads coalesce them into
//! micro-batches (flush on size or deadline), batches execute on the
//! engine's [`cbb_engine::BatchExecutor`] over any
//! [`cbb_engine::Partitioner`], and each caller waits on a per-request
//! [`CompletionHandle`]. Aji et al. (*Effective Spatial Data
//! Partitioning for Scalable Query Processing*) make the case that
//! partitioned execution pays off only under a scheduler that keeps
//! tiles busy across requests — this is that scheduler, in miniature.
//!
//! ```text
//!  clients                       service                     engine
//!  ───────┐
//!  submit ├─▶ bounded MPMC ─▶ dispatcher: micro-batch ─▶ BatchExecutor
//!  submit │      queue          (batch_max | deadline)     + TileForest
//!  submit ├─◀ completion ◀──── fulfil handles ◀─────────  (version-keyed
//!  ───────┘    handles                                      ForestCache)
//! ```
//!
//! Four properties the tests pin down:
//!
//! * **Transparency** — a batched answer is byte-identical to calling
//!   the executor directly with the same request; batching changes
//!   *when* work runs, never *what* it computes.
//! * **Graceful shutdown** — [`QueryService::shutdown`] closes
//!   admission, then answers everything already accepted before the
//!   dispatchers exit; no request is dropped, no waiter hangs.
//! * **Version-keyed reuse** — per-tile trees are built once per
//!   [`cbb_engine::DataVersion`] and served from the
//!   [`cbb_engine::ForestCache`] across requests; repeated joins on
//!   unchanged data rebuild nothing.
//! * **Mutability without rebuilds** — `Insert`/`Delete`/`UpdateBatch`
//!   requests are coalesced per micro-batch into one atomic
//!   delta-apply (a single version bump, copy-on-write tile sharing);
//!   answers afterwards equal a wholesale `swap_data` with the same
//!   surviving objects, and a request admitted after a write completes
//!   observes that write.
//!
//! Everything is `std`: scoped threads, `Mutex`/`Condvar` queues and
//! one-shots — no async runtime, in keeping with the workspace's
//! zero-dependency rule.

pub mod batcher;
pub mod handle;
pub mod queue;
pub mod request;
pub mod service;
pub mod stats;

pub use cbb_engine::{Update, UpdateResult};
pub use handle::{Canceled, CompletionHandle};
pub use queue::{Closed, TryPushError};
pub use request::{Completion, Request, Response, UpdateSummary};
pub use service::{QueryService, ServiceConfig};
pub use stats::ServiceReport;

#[cfg(test)]
mod tests {
    use super::*;
    use cbb_core::{ClipConfig, ClipMethod};
    use cbb_engine::UniformGrid;
    use cbb_geom::{Point, Rect};
    use cbb_rtree::{TreeConfig, Variant};

    #[test]
    fn end_to_end_smoke() {
        let r = |x: f64, y: f64| Rect::new(Point([x, y]), Point([x + 2.0, y + 2.0]));
        let objects = vec![r(0.0, 0.0), r(5.0, 5.0), r(9.0, 9.0)];
        let service = QueryService::start(
            ServiceConfig::default(),
            UniformGrid::new(Rect::new(Point([0.0, 0.0]), Point([12.0, 12.0])), 2),
            objects,
            TreeConfig::tiny(Variant::RStar),
            ClipConfig::paper_default::<2>(ClipMethod::Stairline),
        );
        let range = service
            .submit(Request::Range {
                query: r(4.0, 4.0),
                use_clips: true,
            })
            .unwrap();
        let knn = service
            .submit(Request::Knn {
                center: Point([9.5, 9.5]),
                k: 2,
            })
            .unwrap();
        let ids = range.wait().unwrap().response.into_range();
        assert_eq!(ids.len(), 1);
        let nn = knn.wait().unwrap().response.into_knn();
        assert_eq!(nn.len(), 2);
        assert_eq!(nn[0].1, 0.0, "the query point is inside the nearest box");
        let report = service.shutdown();
        assert_eq!(report.submitted, 2);
        assert_eq!(report.completed, 2);
        assert_eq!(report.forest_builds, 1);
    }
}
