//! # cbb-serve — async query service over a catalog of datasets
//!
//! The paper's clipping and the engine's partitioned execution cut the
//! cost of one *batch*; this crate turns the batch API into a
//! **long-running service over a catalog of named datasets**: requests
//! (range / kNN / join / cross-dataset join / writes / admin) are
//! admitted onto a bounded MPMC queue, dispatcher threads coalesce them
//! into micro-batches, batches execute against per-dataset
//! [`cbb_engine::DatasetStore`]s (each behind its own lock, each with
//! its own [`cbb_engine::Partitioner`] and
//! [`cbb_engine::DataVersion`]), and each caller waits on a per-request
//! [`CompletionHandle`]. Aji et al. (*Effective Spatial Data
//! Partitioning for Scalable Query Processing*) make the case that a
//! partitioned spatial system is a catalog of layers served side by
//! side; Tsitsigkos & Mamoulis (*Parallel In-Memory Evaluation of
//! Spatial Joins*) define the join across two independently indexed
//! inputs — [`Request::CrossJoin`] is that join over two *served*
//! datasets, both sides' tile forests reused from the
//! `(DatasetId, DataVersion)`-keyed cache.
//!
//! ```text
//!  clients                     service                        catalog
//!  ───────┐
//!  submit ├─▶ bounded MPMC ─▶ dispatcher: micro-batch ─▶ "roads" store (v3)
//!  submit │      queue         coalesced PER DATASET   ─▶ "pois"  store (v17)
//!  submit ├─◀ completion ◀─── fulfil handles ◀────────── ForestCache keyed
//!  ───────┘    handles                                   (DatasetId, version)
//! ```
//!
//! Properties the tests pin down:
//!
//! * **Transparency** — a batched answer is byte-identical to calling
//!   the executor directly with the same request; batching changes
//!   *when* work runs, never *what* it computes.
//! * **Isolation** — writes to dataset A bump only A's version and
//!   invalidate only A's cache keys; concurrent reads of dataset B
//!   never block on them and observe no change.
//! * **Graceful shutdown** — [`QueryService::shutdown`] closes
//!   admission, then answers everything already accepted (admin ops
//!   included) before the dispatchers exit; no request is dropped, no
//!   waiter hangs.
//! * **Version-keyed reuse** — per-tile trees are built once per
//!   `(dataset, version)` and served from the
//!   [`cbb_engine::ForestCache`] across requests; repeated (cross-)
//!   joins on unchanged data rebuild nothing.
//! * **Mutability without rebuilds** — writes are coalesced per
//!   dataset per micro-batch into one atomic delta-apply (a single
//!   version bump, copy-on-write tile sharing, threshold-driven arena
//!   compaction with stable live ids); answers afterwards equal a
//!   wholesale swap with the same surviving objects, and a request
//!   admitted after a write completes observes that write.
//! * **Durability (opt-in)** — with [`ServiceConfig::durability`] set,
//!   every dataset persists as snapshot + write-ahead log under the
//!   configured root; each write batch is fsynced before its waiters
//!   are fulfilled, and a restarted service recovers the full catalog
//!   and answers byte-equal to one that never stopped (see the
//!   [`durability`] module docs, including what is *not* guaranteed).
//!
//! Everything is `std`: scoped threads, `Mutex`/`Condvar` queues and
//! one-shots — no async runtime, in keeping with the workspace's
//! zero-dependency rule.

pub mod batcher;
pub mod builder;
pub mod client;
pub mod durability;
pub mod handle;
pub mod queue;
pub mod request;
pub mod router;
pub mod service;
pub mod shard;
pub mod stats;

pub use builder::ServiceBuilder;
pub use cbb_engine::{
    AnyPartitioner, AutoPolicy, CompactionPolicy, DatasetId, QueryAlgo, ShardMap, ShardTiling,
    Update, UpdateResult,
};
pub use cbb_telemetry::{HistogramSnapshot, SlowQuery, Span, TelemetryConfig, TelemetrySnapshot};
pub use client::{ClientResult, DatasetClient, SubmitRequest};
pub use durability::{DurabilityConfig, DEFAULT_CHECKPOINT_BYTES};
pub use handle::{Canceled, CompletionHandle};
pub use queue::{Closed, TryPushError};
pub use request::{Completion, Request, RequestError, RequestKind, Response, UpdateSummary};
pub use router::{ShardFitting, ShardedService};
pub use service::{QueryService, Scrape, ServiceConfig, DEFAULT_DATASET};
pub use shard::{InProcessShard, Shard};
pub use stats::{DatasetReport, ServiceReport};

#[cfg(test)]
mod tests {
    use super::*;
    use cbb_core::{ClipConfig, ClipMethod};
    use cbb_engine::UniformGrid;
    use cbb_geom::{Point, Rect};
    use cbb_rtree::{TreeConfig, Variant};

    #[test]
    fn end_to_end_smoke() {
        let r = |x: f64, y: f64| Rect::new(Point([x, y]), Point([x + 2.0, y + 2.0]));
        let objects = vec![r(0.0, 0.0), r(5.0, 5.0), r(9.0, 9.0)];
        let service = QueryService::start(
            ServiceConfig::default(),
            UniformGrid::new(Rect::new(Point([0.0, 0.0]), Point([12.0, 12.0])), 2),
            objects,
            TreeConfig::tiny(Variant::RStar),
            ClipConfig::paper_default::<2>(ClipMethod::Stairline),
        );
        let dataset = service.default_dataset();
        assert_eq!(service.dataset_id(DEFAULT_DATASET), Some(dataset));
        let range = service
            .submit(Request::Range {
                dataset,
                query: r(4.0, 4.0),
                use_clips: true,
            })
            .unwrap();
        let knn = service
            .submit(Request::Knn {
                dataset,
                center: Point([9.5, 9.5]),
                k: 2,
            })
            .unwrap();
        let ids = range.wait().unwrap().response.into_range();
        assert_eq!(ids.len(), 1);
        let nn = knn.wait().unwrap().response.into_knn();
        assert_eq!(nn.len(), 2);
        assert_eq!(nn[0].1, 0.0, "the query point is inside the nearest box");
        let report = service.shutdown();
        assert_eq!(report.submitted, 2);
        assert_eq!(report.completed, 2);
        assert_eq!(report.forest_builds, 1);
        assert_eq!(report.datasets.len(), 1);
        assert_eq!(report.datasets[0].name, DEFAULT_DATASET);
        assert_eq!(report.datasets[0].live_objects, 3);
    }
}
