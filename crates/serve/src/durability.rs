//! The durability tier: per-dataset snapshot + write-ahead log under
//! the catalog.
//!
//! With [`DurabilityConfig`] set, a service persists every dataset as
//! two files under its root directory:
//!
//! * `ds_<id>.snap` — a full-store snapshot in the `cbb-storage` page
//!   format ([`cbb_engine::write_snapshot`]), rewritten atomically
//!   (temp file + rename) on creation, on `SwapData`, and on
//!   checkpoint.
//! * `ds_<id>.wal` — a checksummed, length-prefixed log
//!   ([`cbb_storage::WalWriter`]) of coalesced update micro-batches:
//!   **one applied batch = one version bump = one WAL record**,
//!   appended and fsynced *before* any waiter of that batch is woken
//!   (group commit — the batch that amortises index maintenance also
//!   amortises the fsync).
//!
//! A third file, `catalog.wal`, logs dataset lifecycle (`Create` /
//! `Drop`) so recovery knows which ids are live and under what names.
//! Creation persists the dataset's snapshot *before* its `Create`
//! record — a crash in between leaves an orphan snapshot that recovery
//! deletes, never a live dataset without bytes.
//!
//! ## Recovery
//!
//! On start, a durable service replays `catalog.wal`'s valid prefix,
//! then for each live dataset: loads the snapshot, rebuilds the tile
//! forest, and replays the WAL tail. Replay is **idempotent by
//! version** ([`cbb_engine::replay_update_batch`]): records at or
//! below the snapshot's version are skipped, a gap is corruption. A
//! torn tail (partial append at the kill point) is detected by
//! checksum and truncated — committed batches survive, the half-written
//! one vanishes, exactly as if the crash had hit before its fsync.
//!
//! ## Checkpoints
//!
//! When a dataset's WAL grows past
//! [`DurabilityConfig::checkpoint_bytes`], the commit path rolls it
//! into a fresh snapshot and resets the log. The order (snapshot
//! rename, then WAL reset) is crash-safe: a crash in between leaves
//! old records the version check skips.
//!
//! ## What is NOT guaranteed
//!
//! * Durability I/O errors at commit time **panic** the dispatcher: a
//!   service that cannot persist a write must not acknowledge it.
//! * Across the shards of a [`crate::ShardedService`], `SwapData` is
//!   not crash-atomic: each shard checkpoints its own snapshot, so a
//!   kill while a swap is mid-flight across shards can leave replicas
//!   on either side of the swap with no WAL records to roll the
//!   laggards forward. `reconcile_shard_dirs` detects this and
//!   refuses to start; restore from a fresh `SwapData` after recovery
//!   of a pre-swap state, or snapshot externally before swapping.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

use cbb_core::ClipConfig;
use cbb_engine::{
    decode_update_batch, encode_update_batch, read_snapshot, replay_update_batch, restore_store,
    write_snapshot, ByteReader, Catalog, DatasetId, DatasetStore, ForestCache, Partitioner,
    PersistError, PersistPartitioner, Update,
};
use cbb_rtree::TreeConfig;
use cbb_storage::{recover_wal, FilePageStore, PageStore, WalWriter};

use crate::stats::ServiceStats;

/// Default WAL size that triggers a checkpoint (4 MiB).
pub const DEFAULT_CHECKPOINT_BYTES: u64 = 4 << 20;

/// Where and how a service persists its catalog. See the
/// [module docs](self) for the file layout and recovery semantics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// Directory holding `catalog.wal` and the per-dataset
    /// snapshot/WAL pairs. Created if missing. A
    /// [`crate::ShardedService`] nests one `shard_<i>` subdirectory
    /// per shard under it.
    pub root: PathBuf,
    /// Roll a dataset's WAL into a fresh snapshot once it exceeds this
    /// many bytes (default [`DEFAULT_CHECKPOINT_BYTES`]).
    pub checkpoint_bytes: u64,
}

impl DurabilityConfig {
    /// Durability rooted at `root` with the default checkpoint
    /// threshold.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            root: root.into(),
            checkpoint_bytes: DEFAULT_CHECKPOINT_BYTES,
        }
    }

    /// Override the checkpoint threshold.
    pub fn checkpoint_bytes(mut self, bytes: u64) -> Self {
        self.checkpoint_bytes = bytes;
        self
    }
}

/// One `catalog.wal` record: a dataset lifecycle event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum AdminRecord {
    Create { id: DatasetId, name: String },
    Drop { id: DatasetId },
}

const ADMIN_CREATE: u8 = 1;
const ADMIN_DROP: u8 = 2;

impl AdminRecord {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            AdminRecord::Create { id, name } => {
                out.push(ADMIN_CREATE);
                out.extend_from_slice(&id.0.to_le_bytes());
                out.extend_from_slice(&(name.len() as u32).to_le_bytes());
                out.extend_from_slice(name.as_bytes());
            }
            AdminRecord::Drop { id } => {
                out.push(ADMIN_DROP);
                out.extend_from_slice(&id.0.to_le_bytes());
            }
        }
        out
    }

    fn decode(payload: &[u8]) -> Result<Self, PersistError> {
        let mut r = ByteReader::new(payload);
        let record = match r.u8()? {
            ADMIN_CREATE => {
                let id = DatasetId(r.u32()?);
                let len = r.u32()? as usize;
                let name = String::from_utf8(r.take(len)?.to_vec())
                    .map_err(|_| PersistError::Corrupt("admin record name not UTF-8".into()))?;
                AdminRecord::Create { id, name }
            }
            ADMIN_DROP => AdminRecord::Drop {
                id: DatasetId(r.u32()?),
            },
            tag => {
                return Err(PersistError::Corrupt(format!(
                    "unknown admin record tag {tag}"
                )))
            }
        };
        r.finish()?;
        Ok(record)
    }
}

fn catalog_wal_path(root: &Path) -> PathBuf {
    root.join("catalog.wal")
}

fn snap_path(root: &Path, id: DatasetId) -> PathBuf {
    root.join(format!("ds_{}.snap", id.0))
}

fn wal_path(root: &Path, id: DatasetId) -> PathBuf {
    root.join(format!("ds_{}.wal", id.0))
}

/// Replay a `catalog.wal` record list into the live `id -> name` map
/// and the id-space watermark (one past the highest id ever created).
fn fold_admin(records: &[Vec<u8>]) -> Result<(BTreeMap<DatasetId, String>, u32), PersistError> {
    let mut live = BTreeMap::new();
    let mut watermark = 0u32;
    for payload in records {
        match AdminRecord::decode(payload)? {
            AdminRecord::Create { id, name } => {
                watermark = watermark.max(id.0 + 1);
                live.insert(id, name);
            }
            AdminRecord::Drop { id } => {
                live.remove(&id);
            }
        }
    }
    Ok((live, watermark))
}

/// Write `ds` as a fresh snapshot at `path`, atomically: the pages go
/// to a temp file that is fsynced and renamed over the target, so a
/// crash mid-write leaves the previous snapshot intact.
fn write_snapshot_atomic<const D: usize, P>(path: &Path, ds: &DatasetStore<D, P>) -> io::Result<u32>
where
    P: Partitioner<D> + PersistPartitioner,
{
    let tmp = path.with_extension("snap.tmp");
    let mut pages = FilePageStore::create(&tmp)?;
    let written = write_snapshot(&mut pages, ds);
    pages.sync()?;
    drop(pages);
    fs::rename(&tmp, path)?;
    // Make the rename itself durable (best-effort: some filesystems
    // have nothing to sync for a directory).
    if let Some(dir) = path.parent() {
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(written)
}

/// The running write side of the durability tier: the open WAL
/// writers. All I/O errors panic — a service that cannot persist must
/// not acknowledge (see the [module docs](self)).
pub(crate) struct Durability {
    root: PathBuf,
    checkpoint_bytes: u64,
    catalog_wal: Mutex<WalWriter>,
    wals: Mutex<BTreeMap<DatasetId, WalWriter>>,
}

/// What [`Durability::recover`] found on disk, for the caller to prime
/// caches and counters with.
pub(crate) struct Recovery {
    /// `(id, name)` of every recovered dataset, ascending by id.
    pub(crate) datasets: Vec<(DatasetId, String)>,
    /// WAL records replayed (applied, not version-skipped) across all
    /// datasets.
    pub(crate) records_replayed: u64,
    /// Snapshot pages read across all datasets.
    pub(crate) pages_read: u64,
}

impl Durability {
    /// Recover everything under `config.root` into `catalog`/`cache`
    /// and open the WAL writers for what comes next. Torn WAL tails
    /// are truncated; orphan dataset files (from a crash between
    /// snapshot write and `Create` record, or between `Drop` record
    /// and file removal) are deleted.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn recover<const D: usize, P>(
        config: &DurabilityConfig,
        catalog: &Catalog<D, P>,
        cache: &ForestCache<D>,
        tree: TreeConfig<D>,
        clip: ClipConfig,
        workers: usize,
    ) -> Result<(Self, Recovery), PersistError>
    where
        P: Partitioner<D> + PersistPartitioner,
    {
        let root = &config.root;
        fs::create_dir_all(root)?;
        let admin = recover_wal(&catalog_wal_path(root))?;
        let (live, watermark) = fold_admin(&admin.records)?;

        let mut recovery = Recovery {
            datasets: Vec::new(),
            records_replayed: 0,
            pages_read: 0,
        };
        let mut wals = BTreeMap::new();
        for (&id, name) in &live {
            let mut pages = FilePageStore::open(&snap_path(root, id)).map_err(|err| {
                PersistError::Corrupt(format!(
                    "dataset {} is live in catalog.wal but its snapshot is unreadable: {err}",
                    id.0
                ))
            })?;
            let contents = read_snapshot::<D, P, _>(&mut pages)?;
            recovery.pages_read += pages.counters().reads;
            let mut store = restore_store(contents, tree, clip, workers);
            let tail = recover_wal(&wal_path(root, id))?;
            for payload in &tail.records {
                let (version, ops) = decode_update_batch::<D>(payload)?;
                if replay_update_batch(&mut store, version, &ops, tree, clip)? {
                    recovery.records_replayed += 1;
                }
            }
            cache.insert((id, store.version()), store.forest().clone());
            catalog
                .restore_dataset(id, name, store)
                .map_err(|err| PersistError::Corrupt(format!("catalog restore failed: {err}")))?;
            wals.insert(id, WalWriter::append_to(&wal_path(root, id))?);
            recovery.datasets.push((id, name.clone()));
        }
        // Ids of datasets dropped before the crash stay retired.
        catalog.reserve_ids(watermark);

        // Orphan cleanup: dataset files whose id is not live.
        if let Ok(entries) = fs::read_dir(root) {
            for entry in entries.flatten() {
                let file = entry.file_name();
                let Some(name) = file.to_str() else { continue };
                let Some(id) = orphan_candidate(name) else {
                    continue;
                };
                if !live.contains_key(&DatasetId(id)) {
                    let _ = fs::remove_file(entry.path());
                }
            }
        }

        let durability = Durability {
            root: root.clone(),
            checkpoint_bytes: config.checkpoint_bytes,
            catalog_wal: Mutex::new(WalWriter::append_to(&catalog_wal_path(root))?),
            wals: Mutex::new(wals),
        };
        Ok((durability, recovery))
    }

    /// Persist one applied micro-batch: append its WAL record and
    /// fsync, **before** the caller releases the store lock or wakes
    /// any waiter. Rolls the WAL into a checkpoint snapshot past the
    /// size threshold.
    pub(crate) fn commit_batch<const D: usize, P>(
        &self,
        id: DatasetId,
        store: &DatasetStore<D, P>,
        ops: &[Update<D>],
        stats: &ServiceStats,
    ) where
        P: Partitioner<D> + PersistPartitioner,
    {
        let payload = encode_update_batch(store.version(), ops);
        let mut wals = self.wals.lock().expect("durability wal map poisoned");
        let writer = wals
            .entry(id)
            .or_insert_with(|| open_wal(&self.root, id, "commit"));
        writer
            .append(&payload)
            .expect("durability: WAL append failed");
        let fsync_t = Instant::now();
        writer.sync().expect("durability: WAL fsync failed");
        stats.record_wal_append(payload.len() as u64 + 8, elapsed_ns(fsync_t));
        if writer.bytes() >= self.checkpoint_bytes {
            write_snapshot_atomic(&snap_path(&self.root, id), store)
                .expect("durability: checkpoint snapshot failed");
            *writer =
                WalWriter::create(&wal_path(&self.root, id)).expect("durability: WAL reset failed");
            stats.checkpoints.inc();
        }
    }

    /// Persist a freshly created dataset: snapshot first, `Create`
    /// record second — a crash in between leaves an orphan snapshot,
    /// never a live dataset without bytes.
    pub(crate) fn record_create<const D: usize, P>(
        &self,
        id: DatasetId,
        name: &str,
        store: &DatasetStore<D, P>,
    ) where
        P: Partitioner<D> + PersistPartitioner,
    {
        write_snapshot_atomic(&snap_path(&self.root, id), store)
            .expect("durability: create snapshot failed");
        let wal =
            WalWriter::create(&wal_path(&self.root, id)).expect("durability: WAL create failed");
        self.wals
            .lock()
            .expect("durability wal map poisoned")
            .insert(id, wal);
        let record = AdminRecord::Create {
            id,
            name: name.to_string(),
        }
        .encode();
        let mut catalog_wal = self
            .catalog_wal
            .lock()
            .expect("durability catalog.wal poisoned");
        catalog_wal
            .append(&record)
            .expect("durability: catalog.wal append failed");
        catalog_wal
            .sync()
            .expect("durability: catalog.wal fsync failed");
    }

    /// Persist a drop: `Drop` record first (making the id dead), file
    /// removal second (recovery deletes leftovers as orphans).
    pub(crate) fn record_drop(&self, id: DatasetId) {
        let record = AdminRecord::Drop { id }.encode();
        {
            let mut catalog_wal = self
                .catalog_wal
                .lock()
                .expect("durability catalog.wal poisoned");
            catalog_wal
                .append(&record)
                .expect("durability: catalog.wal append failed");
            catalog_wal
                .sync()
                .expect("durability: catalog.wal fsync failed");
        }
        self.wals
            .lock()
            .expect("durability wal map poisoned")
            .remove(&id);
        let _ = fs::remove_file(snap_path(&self.root, id));
        let _ = fs::remove_file(wal_path(&self.root, id));
    }

    /// Persist a `SwapData`: fresh snapshot, then WAL reset. A crash
    /// in between leaves pre-swap records the version check skips.
    /// Called with the dataset's write lock held, so the snapshot is a
    /// stable image of the swapped-in state.
    pub(crate) fn record_swap<const D: usize, P>(&self, id: DatasetId, store: &DatasetStore<D, P>)
    where
        P: Partitioner<D> + PersistPartitioner,
    {
        write_snapshot_atomic(&snap_path(&self.root, id), store)
            .expect("durability: swap snapshot failed");
        let wal =
            WalWriter::create(&wal_path(&self.root, id)).expect("durability: WAL reset failed");
        self.wals
            .lock()
            .expect("durability wal map poisoned")
            .insert(id, wal);
    }
}

fn open_wal(root: &Path, id: DatasetId, context: &str) -> WalWriter {
    WalWriter::append_to(&wal_path(root, id))
        .unwrap_or_else(|err| panic!("durability: WAL open for {context} failed: {err}"))
}

fn elapsed_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// `ds_<id>.snap` / `ds_<id>.wal` / their temp files → the id.
fn orphan_candidate(file: &str) -> Option<u32> {
    let rest = file.strip_prefix("ds_")?;
    let digits = rest
        .strip_suffix(".snap")
        .or_else(|| rest.strip_suffix(".wal"))
        .or_else(|| rest.strip_suffix(".snap.tmp"))?;
    digits.parse().ok()
}

// ── Cross-shard reconciliation ─────────────────────────────────────

/// Version of the first 24 snapshot header bytes: magic, format, and
/// the store version at offset 16 — enough to compare shard progress
/// without decoding the snapshot (format v1 pins these offsets).
fn peek_snapshot_version(path: &Path) -> Result<u64, PersistError> {
    use std::io::Read;
    let mut head = [0u8; 24];
    let mut file = fs::File::open(path).map_err(|err| {
        PersistError::Corrupt(format!("snapshot {} unreadable: {err}", path.display()))
    })?;
    file.read_exact(&mut head)?;
    if head[..8] != cbb_engine::persist::SNAP_MAGIC {
        return Err(PersistError::Corrupt(format!(
            "snapshot {} has a damaged magic",
            path.display()
        )));
    }
    Ok(u64::from_le_bytes(head[16..24].try_into().unwrap()))
}

/// Version of one data-WAL record without decoding its ops (the
/// version is the payload's first 8 bytes).
fn peek_record_version(payload: &[u8]) -> Result<u64, PersistError> {
    let bytes: [u8; 8] = payload
        .get(..8)
        .and_then(|b| b.try_into().ok())
        .ok_or_else(|| PersistError::Corrupt("WAL record shorter than its version".into()))?;
    Ok(u64::from_le_bytes(bytes))
}

/// Reconcile the per-shard durability directories of a sharded service
/// before its shards recover, file-level (no `D`/`P` knowledge):
///
/// * A dataset whose `Create` persisted on only *some* shards was
///   never acknowledged — the trailing create is **undone** by
///   appending a `Drop` record on the shards that have it (their
///   recovery then deletes the files as orphans). A trailing `Drop`
///   is **completed** the same way on the shards that missed it.
/// * Data WALs that diverged in length (each shard fsyncs its own
///   log, so a kill can land between two shards' commits of the same
///   batch) are **rolled forward**: missing tail records are copied
///   byte-for-byte from the most advanced shard — replicated batches
///   encode identically on every shard.
/// * Divergence that crosses a checkpoint or `SwapData` boundary
///   cannot be rolled forward from WAL records and is an error — see
///   the [module docs](self) fine print.
pub(crate) fn reconcile_shard_dirs(root: &Path, shards: usize) -> Result<(), PersistError> {
    if shards <= 1 {
        return Ok(());
    }
    let dirs: Vec<PathBuf> = (0..shards)
        .map(|s| root.join(format!("shard_{s}")))
        .collect();
    let mut admin: Vec<BTreeMap<DatasetId, String>> = Vec::with_capacity(shards);
    for dir in &dirs {
        fs::create_dir_all(dir)?;
        let recovered = recover_wal(&catalog_wal_path(dir))?;
        admin.push(fold_admin(&recovered.records)?.0);
    }

    // Lifecycle reconcile: live everywhere, or not at all.
    let consensus: BTreeMap<DatasetId, String> = admin[0]
        .iter()
        .filter(|(id, _)| admin.iter().all(|m| m.contains_key(id)))
        .map(|(id, name)| (*id, name.clone()))
        .collect();
    for (dir, shard_admin) in dirs.iter().zip(&admin) {
        let stragglers: Vec<DatasetId> = shard_admin
            .keys()
            .filter(|id| !consensus.contains_key(id))
            .copied()
            .collect();
        if stragglers.is_empty() {
            continue;
        }
        let mut wal = WalWriter::append_to(&catalog_wal_path(dir))?;
        for id in stragglers {
            wal.append(&AdminRecord::Drop { id }.encode())?;
        }
        wal.sync()?;
    }

    // Data roll-forward per consensus dataset.
    for &id in consensus.keys() {
        let mut snap_versions = Vec::with_capacity(shards);
        let mut tails = Vec::with_capacity(shards);
        for dir in &dirs {
            snap_versions.push(peek_snapshot_version(&snap_path(dir, id))?);
            tails.push(recover_wal(&wal_path(dir, id))?);
        }
        let end_of = |s: usize| -> Result<u64, PersistError> {
            match tails[s].records.last() {
                Some(payload) => peek_record_version(payload),
                None => Ok(snap_versions[s]),
            }
        };
        let mut ends = Vec::with_capacity(shards);
        for s in 0..shards {
            ends.push(end_of(s)?);
        }
        let max_end = *ends.iter().max().expect("at least one shard");
        let donor = ends.iter().position(|&e| e == max_end).expect("max exists");
        for s in 0..shards {
            if ends[s] == max_end {
                continue;
            }
            // The donor's WAL must still hold every record the laggard
            // is missing; a checkpoint or swap on the donor discarded
            // them (snapshot base past the laggard's end).
            if snap_versions[donor] > ends[s] {
                return Err(PersistError::Corrupt(format!(
                    "dataset {} diverged across a checkpoint/swap boundary: shard {} ends at \
                     version {} but shard {}'s WAL starts past it — SwapData is not crash-atomic \
                     across shards (see cbb_serve::durability)",
                    id.0, s, ends[s], donor
                )));
            }
            let mut wal = WalWriter::append_to(&wal_path(&dirs[s], id))?;
            for payload in &tails[donor].records {
                if peek_record_version(payload)? > ends[s] {
                    wal.append(payload)?;
                }
            }
            wal.sync()?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cbb-durability-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn admin_records_round_trip() {
        for record in [
            AdminRecord::Create {
                id: DatasetId(7),
                name: "roads".into(),
            },
            AdminRecord::Drop { id: DatasetId(0) },
        ] {
            assert_eq!(AdminRecord::decode(&record.encode()).unwrap(), record);
        }
        assert!(AdminRecord::decode(&[9]).is_err(), "unknown tag refused");
        assert!(
            AdminRecord::decode(&AdminRecord::Drop { id: DatasetId(1) }.encode()[..3]).is_err(),
            "truncated record refused"
        );
    }

    #[test]
    fn fold_admin_tracks_live_set_and_watermark() {
        let records: Vec<Vec<u8>> = [
            AdminRecord::Create {
                id: DatasetId(0),
                name: "a".into(),
            },
            AdminRecord::Create {
                id: DatasetId(1),
                name: "b".into(),
            },
            AdminRecord::Drop { id: DatasetId(1) },
        ]
        .iter()
        .map(AdminRecord::encode)
        .collect();
        let (live, watermark) = fold_admin(&records).unwrap();
        assert_eq!(live.len(), 1);
        assert_eq!(live.get(&DatasetId(0)), Some(&"a".to_string()));
        assert_eq!(watermark, 2, "dropped ids stay retired");
    }

    #[test]
    fn orphan_candidates_parse() {
        assert_eq!(orphan_candidate("ds_3.snap"), Some(3));
        assert_eq!(orphan_candidate("ds_12.wal"), Some(12));
        assert_eq!(orphan_candidate("ds_0.snap.tmp"), Some(0));
        assert_eq!(orphan_candidate("catalog.wal"), None);
        assert_eq!(orphan_candidate("ds_x.snap"), None);
    }

    #[test]
    fn reconcile_completes_trailing_drop_and_undoes_trailing_create() {
        let root = tmp_dir("reconcile-admin");
        // Shard 0 saw create(0), create(1); shard 1 saw create(0) only
        // (killed before the second create persisted). Also give both
        // shards dataset 0 bytes so the data pass has files to read.
        for (s, records) in [
            (
                0usize,
                vec![
                    AdminRecord::Create {
                        id: DatasetId(0),
                        name: "a".into(),
                    },
                    AdminRecord::Create {
                        id: DatasetId(1),
                        name: "b".into(),
                    },
                ],
            ),
            (
                1usize,
                vec![AdminRecord::Create {
                    id: DatasetId(0),
                    name: "a".into(),
                }],
            ),
        ] {
            let dir = root.join(format!("shard_{s}"));
            fs::create_dir_all(&dir).unwrap();
            let mut wal = WalWriter::create(&catalog_wal_path(&dir)).unwrap();
            for r in &records {
                wal.append(&r.encode()).unwrap();
            }
            wal.sync().unwrap();
            // Minimal fake snapshot header: magic + format + D + version.
            let mut head = Vec::new();
            head.extend_from_slice(&cbb_engine::persist::SNAP_MAGIC);
            head.extend_from_slice(&1u32.to_le_bytes());
            head.extend_from_slice(&2u32.to_le_bytes());
            head.extend_from_slice(&0u64.to_le_bytes());
            fs::write(snap_path(&dir, DatasetId(0)), head).unwrap();
            WalWriter::create(&wal_path(&dir, DatasetId(0))).unwrap();
        }
        reconcile_shard_dirs(&root, 2).unwrap();
        // Shard 0's un-acked create of dataset 1 is undone.
        let recovered = recover_wal(&catalog_wal_path(&root.join("shard_0"))).unwrap();
        let (live, _) = fold_admin(&recovered.records).unwrap();
        assert_eq!(live.keys().copied().collect::<Vec<_>>(), vec![DatasetId(0)]);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn reconcile_rolls_lagging_shard_forward() {
        let root = tmp_dir("reconcile-data");
        let mk_payload = |version: u64| {
            let mut p = version.to_le_bytes().to_vec();
            p.extend_from_slice(&0u32.to_le_bytes()); // zero ops
            p
        };
        for (s, last) in [(0usize, 3u64), (1usize, 1u64)] {
            let dir = root.join(format!("shard_{s}"));
            fs::create_dir_all(&dir).unwrap();
            let mut cat = WalWriter::create(&catalog_wal_path(&dir)).unwrap();
            cat.append(
                &AdminRecord::Create {
                    id: DatasetId(0),
                    name: "a".into(),
                }
                .encode(),
            )
            .unwrap();
            cat.sync().unwrap();
            let mut head = Vec::new();
            head.extend_from_slice(&cbb_engine::persist::SNAP_MAGIC);
            head.extend_from_slice(&1u32.to_le_bytes());
            head.extend_from_slice(&2u32.to_le_bytes());
            head.extend_from_slice(&0u64.to_le_bytes());
            fs::write(snap_path(&dir, DatasetId(0)), head).unwrap();
            let mut wal = WalWriter::create(&wal_path(&dir, DatasetId(0))).unwrap();
            for v in 1..=last {
                wal.append(&mk_payload(v)).unwrap();
            }
            wal.sync().unwrap();
        }
        reconcile_shard_dirs(&root, 2).unwrap();
        let lagger = recover_wal(&wal_path(&root.join("shard_1"), DatasetId(0))).unwrap();
        let versions: Vec<u64> = lagger
            .records
            .iter()
            .map(|p| peek_record_version(p).unwrap())
            .collect();
        assert_eq!(versions, vec![1, 2, 3], "missing records copied from donor");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn reconcile_refuses_swap_divergence() {
        let root = tmp_dir("reconcile-swap");
        // Shard 0 swapped (snapshot at version 5, empty WAL); shard 1
        // still pre-swap (snapshot at 0, WAL through 4).
        for (s, snap_version, wal_to) in [(0usize, 5u64, 0u64), (1usize, 0u64, 4u64)] {
            let dir = root.join(format!("shard_{s}"));
            fs::create_dir_all(&dir).unwrap();
            let mut cat = WalWriter::create(&catalog_wal_path(&dir)).unwrap();
            cat.append(
                &AdminRecord::Create {
                    id: DatasetId(0),
                    name: "a".into(),
                }
                .encode(),
            )
            .unwrap();
            cat.sync().unwrap();
            let mut head = Vec::new();
            head.extend_from_slice(&cbb_engine::persist::SNAP_MAGIC);
            head.extend_from_slice(&1u32.to_le_bytes());
            head.extend_from_slice(&2u32.to_le_bytes());
            head.extend_from_slice(&snap_version.to_le_bytes());
            fs::write(snap_path(&dir, DatasetId(0)), head).unwrap();
            let mut wal = WalWriter::create(&wal_path(&dir, DatasetId(0))).unwrap();
            for v in (snap_version + 1)..=wal_to {
                let mut p = v.to_le_bytes().to_vec();
                p.extend_from_slice(&0u32.to_le_bytes());
                wal.append(&p).unwrap();
            }
            wal.sync().unwrap();
        }
        let err = reconcile_shard_dirs(&root, 2).unwrap_err();
        assert!(
            err.to_string().contains("not crash-atomic"),
            "swap divergence names the caveat: {err}"
        );
        let _ = fs::remove_dir_all(&root);
    }
}
