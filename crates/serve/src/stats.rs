//! Service counters as **views over the telemetry registry**, plus the
//! report types snapshots are read through.
//!
//! Every counter the service maintains lives in the shared
//! [`Registry`]; [`ServiceStats`] holds the pre-resolved handles the
//! dispatchers record through (one relaxed `fetch_add` per record, no
//! allocation), and [`ServiceReport`] is assembled by *reading the same
//! cells back* — there is no second, hand-maintained set of counters to
//! drift out of sync. With telemetry disabled every handle is a no-op:
//! the service runs (and answers) identically, and reports read zero.

use cbb_engine::{DataVersion, DatasetId};
use cbb_telemetry::{
    Counter, Gauge, Histogram, HistogramSnapshot, Phase, Registry, SlowQueryRing, TelemetryConfig,
};

use crate::request::RequestKind;

/// Metric names the service registers — the scrape surface is an API;
/// the golden scrape test pins this list.
pub(crate) mod names {
    /// Requests admitted to the queue.
    pub const SUBMITTED: &str = "cbb_requests_submitted_total";
    /// Requests refused (backpressure or closed service).
    pub const REJECTED: &str = "cbb_requests_rejected_total";
    /// `try_submit` refusals due to a full queue specifically.
    pub const SHED: &str = "cbb_requests_shed_total";
    /// Requests answered (handles fulfilled).
    pub const COMPLETED: &str = "cbb_requests_completed_total";
    /// Requests answered, by request kind.
    pub const COMPLETED_BY_KIND: &str = "cbb_requests_by_kind_total";
    /// Requests admitted but not yet picked up by a dispatcher.
    pub const QUEUE_DEPTH: &str = "cbb_queue_depth";
    /// Micro-batches executed.
    pub const BATCHES: &str = "cbb_batches_total";
    /// Requests carried by those batches.
    pub const BATCHED_REQUESTS: &str = "cbb_batched_requests_total";
    /// Largest batch executed.
    pub const MAX_BATCH: &str = "cbb_batch_size_max";
    /// Batch size distribution.
    pub const BATCH_SIZE: &str = "cbb_batch_size";
    /// End-to-end request latency (admission → answer), by kind.
    pub const LATENCY_NS: &str = "cbb_request_latency_ns";
    /// Per-phase service time, by phase.
    pub const PHASE_NS: &str = "cbb_request_phase_ns";
    /// Forest builds performed by the version-keyed cache.
    pub const FOREST_BUILDS: &str = "cbb_forest_builds_total";
    /// Forest cache hits (requests served without a build).
    pub const FOREST_CACHE_HITS: &str = "cbb_forest_cache_hits_total";
    /// Join sides served straight from a cached forest.
    pub const FOREST_HITS: &str = "cbb_forest_hits_total";
    /// Cross-dataset join requests served.
    pub const CROSS_JOINS: &str = "cbb_cross_joins_total";
    /// Tiles executed per join kernel (`algo` label: stt/inlj/sweep).
    pub const JOIN_ALGO: &str = "cbb_join_algo_total";
    /// Populated tiles executed per range-batch path (`algo` label:
    /// descend/sweep) — how often [`cbb_engine::QueryAlgo::Auto`] (or
    /// an explicit config) fuses a tile's batch slice into one shared
    /// sweep vs classic per-query descents.
    pub const QUERY_ALGO: &str = "cbb_query_algo_total";
    /// Range micro-batches that fused ≥ 1 tile into a shared sweep.
    pub const FUSED_BATCHES: &str = "cbb_fused_batches_total";
    /// Queries riding each fused tile sweep (the fused-width
    /// distribution).
    pub const FUSED_WIDTH: &str = "cbb_fused_width";
    /// Cross-join probe sides re-partitioned instead of served from a
    /// cached forest (the fallback the forest-native path avoids).
    pub const PROBE_REPARTITIONS: &str = "cbb_probe_repartitions_total";
    /// (dataset, micro-batch) pairs that applied ≥ 1 write.
    pub const WRITE_BATCHES: &str = "cbb_write_batches_total";
    /// Individual updates applied.
    pub const UPDATES_APPLIED: &str = "cbb_updates_applied_total";
    /// R-tree nodes constructed by delta maintenance.
    pub const DELTA_NODES: &str = "cbb_delta_nodes_allocated_total";
    /// Intersecting pairs produced by join requests.
    pub const JOIN_PAIRS: &str = "cbb_join_pairs_total";
    /// WAL records appended (one per applied write micro-batch).
    pub const WAL_APPENDS: &str = "cbb_wal_appends_total";
    /// Bytes appended to data WALs (frame headers included).
    pub const WAL_BYTES: &str = "cbb_wal_bytes_total";
    /// Per-commit fsync latency.
    pub const WAL_FSYNC_NS: &str = "cbb_wal_fsync_ns";
    /// WALs rolled into fresh snapshots past the size threshold.
    pub const CHECKPOINTS: &str = "cbb_checkpoints_total";
    /// Datasets recovered from durable state at startup.
    pub const RECOVERED_DATASETS: &str = "cbb_recovered_datasets_total";
    /// WAL records replayed (applied, not version-skipped) at startup.
    pub const RECOVERED_RECORDS: &str = "cbb_recovered_wal_records_total";
    /// Snapshot pages read by startup recovery.
    pub const RECOVERED_PAGES: &str = "cbb_recovered_pages_total";
    /// Per-dataset traversal counter prefix: the six `AccessStats`
    /// fields become `cbb_access_<field>_total{dataset=...}`.
    pub const ACCESS_PREFIX: &str = "cbb_access_";
    /// Live (queryable) objects per dataset.
    pub const DS_LIVE: &str = "cbb_dataset_live_objects";
    /// Arena slots per dataset.
    pub const DS_SLOTS: &str = "cbb_dataset_arena_slots";
    /// Current data version per dataset.
    pub const DS_VERSION: &str = "cbb_dataset_version";
    /// Max-tile / mean-tile live objects per dataset.
    pub const DS_IMBALANCE: &str = "cbb_dataset_load_imbalance";
    /// Median tile occupancy per dataset.
    pub const DS_OCC_P50: &str = "cbb_dataset_tile_occupancy_p50";
    /// 99th-percentile tile occupancy per dataset.
    pub const DS_OCC_P99: &str = "cbb_dataset_tile_occupancy_p99";
}

/// Pre-resolved telemetry handles of a running service. Dispatchers
/// record through these; [`ServiceReport`] reads the same registry
/// cells back.
pub struct ServiceStats {
    registry: Registry,
    slow: SlowQueryRing,
    pub(crate) submitted: Counter,
    pub(crate) rejected: Counter,
    pub(crate) shed: Counter,
    pub(crate) completed: Counter,
    pub(crate) by_kind: Vec<Counter>,
    pub(crate) queue_depth: Gauge,
    pub(crate) batches: Counter,
    pub(crate) batched_requests: Counter,
    pub(crate) max_batch: Gauge,
    pub(crate) batch_size: Histogram,
    pub(crate) latency: Vec<Histogram>,
    pub(crate) phase: Vec<Histogram>,
    /// View-synced from [`cbb_engine::ForestCache::builds`] at
    /// snapshot/scrape time (the cache owns the truth).
    pub(crate) forest_builds: Counter,
    /// View-synced from [`cbb_engine::ForestCache::hits`].
    pub(crate) forest_cache_hits: Counter,
    pub(crate) forest_hits: Counter,
    pub(crate) cross_joins: Counter,
    /// Tiles executed per kernel, indexed stt/inlj/sweep — how often
    /// [`cbb_engine::JoinAlgo::Auto`] (or an explicit plan) lands on
    /// each algorithm.
    pub(crate) join_algo: [Counter; 3],
    /// Populated tiles executed per range-batch path, indexed
    /// descend/sweep — how often [`cbb_engine::QueryAlgo::Auto`] (or an
    /// explicit config) lands on each execution path.
    pub(crate) query_algo: [Counter; 2],
    pub(crate) fused_batches: Counter,
    pub(crate) fused_width: Histogram,
    pub(crate) probe_repartitions: Counter,
    pub(crate) write_batches: Counter,
    pub(crate) updates_applied: Counter,
    pub(crate) delta_nodes_allocated: Counter,
    pub(crate) join_pairs: Counter,
    pub(crate) wal_appends: Counter,
    pub(crate) wal_bytes: Counter,
    pub(crate) wal_fsync_ns: Histogram,
    pub(crate) checkpoints: Counter,
    pub(crate) recovered_datasets: Counter,
    pub(crate) recovered_records: Counter,
    pub(crate) recovered_pages: Counter,
}

impl ServiceStats {
    /// Build the registry this configuration calls for and resolve
    /// every service-level handle (one registration pass; the hot path
    /// never registers).
    pub(crate) fn new(config: &TelemetryConfig) -> Self {
        let registry = config.build_registry();
        let slow = config.build_slow_ring();
        ServiceStats {
            submitted: registry.counter(names::SUBMITTED, "Requests admitted to the queue.", &[]),
            rejected: registry.counter(
                names::REJECTED,
                "Requests refused by backpressure or closure.",
                &[],
            ),
            shed: registry.counter(
                names::SHED,
                "try_submit refusals due to a full queue (load shed).",
                &[],
            ),
            completed: registry.counter(
                names::COMPLETED,
                "Requests answered (completion handles fulfilled).",
                &[],
            ),
            by_kind: RequestKind::ALL
                .iter()
                .map(|k| {
                    registry.counter(
                        names::COMPLETED_BY_KIND,
                        "Requests answered, by request kind.",
                        &[("request_kind", k.name())],
                    )
                })
                .collect(),
            queue_depth: registry.gauge(
                names::QUEUE_DEPTH,
                "Requests admitted but not yet picked up by a dispatcher.",
                &[],
            ),
            batches: registry.counter(names::BATCHES, "Micro-batches executed.", &[]),
            batched_requests: registry.counter(
                names::BATCHED_REQUESTS,
                "Requests carried by executed micro-batches.",
                &[],
            ),
            max_batch: registry.gauge(names::MAX_BATCH, "Largest batch executed.", &[]),
            batch_size: registry.histogram(
                names::BATCH_SIZE,
                "Requests per executed micro-batch.",
                &[],
            ),
            latency: RequestKind::ALL
                .iter()
                .map(|k| {
                    registry.histogram(
                        names::LATENCY_NS,
                        "End-to-end request latency in nanoseconds (admission to answer).",
                        &[("request_kind", k.name())],
                    )
                })
                .collect(),
            phase: Phase::ALL
                .iter()
                .map(|p| {
                    registry.histogram(
                        names::PHASE_NS,
                        "Per-request service time by phase, in nanoseconds.",
                        &[("phase", p.name())],
                    )
                })
                .collect(),
            forest_builds: registry.counter(
                names::FOREST_BUILDS,
                "Tile-forest builds performed by the version-keyed cache.",
                &[],
            ),
            forest_cache_hits: registry.counter(
                names::FOREST_CACHE_HITS,
                "Forest-cache lookups served without a build.",
                &[],
            ),
            forest_hits: registry.counter(
                names::FOREST_HITS,
                "Join sides served straight from a cached forest.",
                &[],
            ),
            cross_joins: registry.counter(
                names::CROSS_JOINS,
                "Cross-dataset join requests served.",
                &[],
            ),
            join_algo: ["stt", "inlj", "sweep"].map(|algo| {
                registry.counter(
                    names::JOIN_ALGO,
                    "Tiles executed per join kernel.",
                    &[("algo", algo)],
                )
            }),
            query_algo: ["descend", "sweep"].map(|algo| {
                registry.counter(
                    names::QUERY_ALGO,
                    "Populated tiles executed per range-batch path.",
                    &[("algo", algo)],
                )
            }),
            fused_batches: registry.counter(
                names::FUSED_BATCHES,
                "Range micro-batches that fused at least one tile into a shared sweep.",
                &[],
            ),
            fused_width: registry.histogram(
                names::FUSED_WIDTH,
                "Queries riding each fused tile sweep.",
                &[],
            ),
            probe_repartitions: registry.counter(
                names::PROBE_REPARTITIONS,
                "Cross-join probe sides re-partitioned instead of served from a cached forest.",
                &[],
            ),
            write_batches: registry.counter(
                names::WRITE_BATCHES,
                "(dataset, micro-batch) pairs that applied at least one write.",
                &[],
            ),
            updates_applied: registry.counter(
                names::UPDATES_APPLIED,
                "Individual updates applied across all write batches.",
                &[],
            ),
            delta_nodes_allocated: registry.counter(
                names::DELTA_NODES,
                "R-tree nodes constructed by delta maintenance.",
                &[],
            ),
            join_pairs: registry.counter(
                names::JOIN_PAIRS,
                "Intersecting pairs produced by join requests.",
                &[],
            ),
            wal_appends: registry.counter(
                names::WAL_APPENDS,
                "WAL records appended (one per applied write micro-batch).",
                &[],
            ),
            wal_bytes: registry.counter(
                names::WAL_BYTES,
                "Bytes appended to data WALs, frame headers included.",
                &[],
            ),
            wal_fsync_ns: registry.histogram(
                names::WAL_FSYNC_NS,
                "Per-commit WAL fsync latency in nanoseconds.",
                &[],
            ),
            checkpoints: registry.counter(
                names::CHECKPOINTS,
                "WALs rolled into fresh snapshots past the size threshold.",
                &[],
            ),
            recovered_datasets: registry.counter(
                names::RECOVERED_DATASETS,
                "Datasets recovered from durable state at startup.",
                &[],
            ),
            recovered_records: registry.counter(
                names::RECOVERED_RECORDS,
                "WAL records replayed (applied, not version-skipped) at startup.",
                &[],
            ),
            recovered_pages: registry.counter(
                names::RECOVERED_PAGES,
                "Snapshot pages read by startup recovery.",
                &[],
            ),
            registry,
            slow,
        }
    }

    /// The shared registry (scrape surface).
    pub(crate) fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The slow-query ring.
    pub(crate) fn slow(&self) -> &SlowQueryRing {
        &self.slow
    }

    /// Record the per-tile kernel mix of one executed join.
    pub(crate) fn record_join_algos(&self, result: &cbb_joins::JoinResult) {
        self.join_algo[0].add(result.tiles_stt);
        self.join_algo[1].add(result.tiles_inlj);
        self.join_algo[2].add(result.tiles_sweep);
    }

    /// Record the per-tile execution-path mix of one fused range batch.
    pub(crate) fn record_query_algos(&self, outcome: &cbb_engine::BatchOutcome) {
        self.query_algo[0].add(outcome.tiles_descend);
        self.query_algo[1].add(outcome.tiles_fused);
        if outcome.tiles_fused > 0 {
            self.fused_batches.inc();
        }
        for &width in &outcome.fused_widths {
            self.fused_width.observe(width);
        }
    }

    /// Per-dataset traversal-counter handles (the seven `AccessStats`
    /// fields), resolved once per (dataset, batch group) — the per-query
    /// record path then touches only these.
    pub(crate) fn access_counters(&self, dataset: &str) -> [Counter; 7] {
        let field = |name: &str, help: &str| {
            self.registry.counter(
                &format!("{}{}_total", names::ACCESS_PREFIX, name),
                help,
                &[("dataset", dataset)],
            )
        };
        [
            field("leaf_accesses", "Leaf nodes read (the paper's I/O metric)."),
            field(
                "contributing_leaf_accesses",
                "Leaf reads that contained at least one result.",
            ),
            field("internal_accesses", "Internal (directory) nodes visited."),
            field("results", "Result objects produced."),
            field("clip_tests", "Clip-point dominance comparisons performed."),
            field("clip_prunes", "Subtree visits avoided by clip points."),
            field(
                "overlap_tests",
                "Rectangle-rectangle intersection tests performed.",
            ),
        ]
    }

    pub(crate) fn record_batch(&self, size: usize) {
        self.batches.inc();
        self.batched_requests.add(size as u64);
        self.max_batch.set_max(size as i64);
        self.batch_size.observe(size as u64);
    }

    pub(crate) fn record_write_batch(&self, updates: u64, nodes_allocated: u64) {
        self.write_batches.inc();
        self.updates_applied.add(updates);
        self.delta_nodes_allocated.add(nodes_allocated);
    }

    /// Record one durable commit: a WAL record of `bytes` framed
    /// bytes, fsynced in `fsync_ns`.
    pub(crate) fn record_wal_append(&self, bytes: u64, fsync_ns: u64) {
        self.wal_appends.inc();
        self.wal_bytes.add(bytes);
        self.wal_fsync_ns.observe(fsync_ns);
    }

    /// Record what startup recovery restored.
    pub(crate) fn record_recovery(&self, datasets: u64, records: u64, pages: u64) {
        self.recovered_datasets.add(datasets);
        self.recovered_records.add(records);
        self.recovered_pages.add(pages);
    }

    /// Record one answered request: completion counters, latency
    /// histogram, per-phase histograms, slow ring.
    pub(crate) fn record_completion(
        &self,
        kind: RequestKind,
        latency_ns: u64,
        span: &cbb_telemetry::Span,
        dataset: Option<String>,
        counters: Vec<(&'static str, u64)>,
    ) {
        self.completed.inc();
        self.by_kind[kind.index()].inc();
        self.latency[kind.index()].observe(latency_ns);
        for phase in Phase::ALL {
            let ns = span.get(phase);
            if ns > 0 {
                self.phase[phase as usize].observe(ns);
            }
        }
        if self.registry.is_enabled() {
            self.slow.offer(cbb_telemetry::SlowQuery {
                kind: kind.name(),
                dataset,
                total_ns: latency_ns,
                span: *span,
                counters,
            });
        }
    }

    pub(crate) fn snapshot(&self, datasets: Vec<DatasetReport>) -> ServiceReport {
        let batches = self.batches.get();
        let batched = self.batched_requests.get();
        ServiceReport {
            submitted: self.submitted.get(),
            rejected: self.rejected.get(),
            shed: self.shed.get(),
            queue_depth: self.queue_depth.get(),
            completed: self.completed.get(),
            batches,
            mean_batch: if batches == 0 {
                0.0
            } else {
                batched as f64 / batches as f64
            },
            max_batch: self.max_batch.get() as u64,
            forest_builds: self.forest_builds.get(),
            forest_hits: self.forest_hits.get(),
            cross_joins: self.cross_joins.get(),
            probe_repartitions: self.probe_repartitions.get(),
            write_batches: self.write_batches.get(),
            updates_applied: self.updates_applied.get(),
            delta_nodes_allocated: self.delta_nodes_allocated.get(),
            wal_appends: self.wal_appends.get(),
            checkpoints: self.checkpoints.get(),
            recovered_datasets: self.recovered_datasets.get(),
            recovered_records: self.recovered_records.get(),
            recovered_pages: self.recovered_pages.get(),
            datasets,
        }
    }
}

/// One dataset's row in a [`ServiceReport`]: identity, version, store
/// shape, maintenance counters, and the tile-occupancy observability
/// metrics.
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetReport {
    /// The catalog id.
    pub id: DatasetId,
    /// The name the dataset was created under.
    pub name: String,
    /// Current data version (one bump per applied write batch or swap).
    pub version: DataVersion,
    /// Live (queryable) objects.
    pub live_objects: usize,
    /// Total arena slots (live + tombstoned + reclaimed).
    pub arena_slots: usize,
    /// Reclaimed slots currently available for id reuse.
    pub free_slots: usize,
    /// Compaction sweeps performed.
    pub compactions: u64,
    /// Micro-batches that applied at least one write to this dataset.
    pub write_batches: u64,
    /// Individual updates applied to this dataset.
    pub updates_applied: u64,
    /// R-tree nodes constructed by this dataset's delta maintenance.
    pub delta_nodes_allocated: u64,
    /// Max-tile / mean-tile live objects over the dataset's non-empty
    /// tiles (`1.0` = perfectly balanced). Watches a data-fitted
    /// partitioner drift as churn moves the distribution: when this
    /// climbs, re-fit via `SwapData` with a fresh partitioner.
    pub load_imbalance: f64,
    /// The full per-tile occupancy **distribution** (indexed objects of
    /// every non-empty tile, log₂-bucketed). The max/mean ratio above
    /// hides the tail; `occupancy.quantile(0.99)` vs
    /// `occupancy.quantile(0.5)` is the re-fit trigger signal.
    pub occupancy: HistogramSnapshot,
}

impl DatasetReport {
    /// Median tile occupancy (`0` for an empty forest).
    pub fn occupancy_p50(&self) -> u64 {
        self.occupancy.quantile(0.5)
    }

    /// 99th-percentile tile occupancy — the drift tail.
    pub fn occupancy_p99(&self) -> u64 {
        self.occupancy.quantile(0.99)
    }
}

/// A point-in-time view of a service's counters.
#[derive(Clone, Debug, PartialEq)]
pub struct ServiceReport {
    /// Requests admitted to the queue.
    pub submitted: u64,
    /// Requests refused by `try_submit` backpressure or closure.
    pub rejected: u64,
    /// The subset of [`Self::rejected`] refused specifically because
    /// the queue was full (`try_submit` load shedding) — closure
    /// refusals are not sheds.
    pub shed: u64,
    /// Requests admitted but not yet picked up by a dispatcher at
    /// snapshot time.
    pub queue_depth: i64,
    /// Requests answered (handles fulfilled).
    pub completed: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Mean requests per batch (0 when no batch ran).
    pub mean_batch: f64,
    /// Largest batch executed.
    pub max_batch: u64,
    /// Tile-forest builds performed by the `(dataset, version)`-keyed
    /// cache. Only wholesale (re)builds count — versions produced by
    /// delta-applied write batches install without one.
    pub forest_builds: u64,
    /// Join sides served from a cached forest without any rebuild
    /// (cross-dataset joins count each borrowed side).
    pub forest_hits: u64,
    /// Cross-dataset join requests served.
    pub cross_joins: u64,
    /// Cross-join probe sides re-partitioned instead of served from a
    /// cached forest. Zero on a steady-state service whose cross-joined
    /// datasets share a tiling — every probe side is forest-native; the
    /// counter moving means a partitioner mismatch forced the fallback.
    pub probe_repartitions: u64,
    /// (dataset, micro-batch) pairs that applied at least one write
    /// (= version bumps from the write path; each coalesces every
    /// write sharing the batch against that dataset, and all-no-op
    /// batches bump nothing).
    pub write_batches: u64,
    /// Individual updates *applied* across all write batches (no-op
    /// deletes of dead ids and rejected inserts are not counted).
    pub updates_applied: u64,
    /// R-tree nodes constructed by delta maintenance — compare against
    /// the node count of one wholesale rebuild to see what batching
    /// plus delta-apply saved.
    pub delta_nodes_allocated: u64,
    /// WAL records appended (one per applied write micro-batch; zero
    /// on a service without durability).
    pub wal_appends: u64,
    /// WALs rolled into fresh snapshots past the size threshold.
    pub checkpoints: u64,
    /// Datasets recovered from durable state at startup.
    pub recovered_datasets: u64,
    /// WAL records replayed (applied, not version-skipped) at startup.
    pub recovered_records: u64,
    /// Snapshot pages read by startup recovery — with
    /// [`crate::ServiceConfig::durability`] unset this stays zero.
    pub recovered_pages: u64,
    /// Per-dataset rows, ascending by id (dropped datasets disappear
    /// from here; their aggregate contributions above remain).
    pub datasets: Vec<DatasetReport>,
}

impl ServiceReport {
    /// The row of one dataset, if it is (still) in the catalog.
    pub fn dataset(&self, id: DatasetId) -> Option<&DatasetReport> {
        self.datasets.iter().find(|d| d.id == id)
    }
}
