//! Steady-state service counters (atomics — dispatchers update them
//! concurrently), per-dataset report rows, and the snapshot type
//! reports are read through.

use std::sync::atomic::{AtomicU64, Ordering};

use cbb_engine::{DataVersion, DatasetId};

/// Live counters of a running service (catalog-wide aggregates; the
/// per-dataset breakdown lives in each store and is snapshotted into
/// [`DatasetReport`] rows).
#[derive(Default)]
pub struct ServiceStats {
    pub(crate) submitted: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) batches: AtomicU64,
    pub(crate) batched_requests: AtomicU64,
    pub(crate) max_batch: AtomicU64,
    /// Join sides served straight from a version-keyed forest (every
    /// `Join` counts one; a `CrossJoin` counts one per side it borrowed
    /// a cached forest for — lock-free, unlike the `ForestCache` hit
    /// counter).
    pub(crate) forest_hits: AtomicU64,
    /// Cross-dataset join requests served.
    pub(crate) cross_joins: AtomicU64,
    /// (dataset, micro-batch) pairs that applied at least one write
    /// (each bumped that dataset's version exactly once).
    pub(crate) write_batches: AtomicU64,
    /// Individual updates applied across all write batches.
    pub(crate) updates_applied: AtomicU64,
    /// R-tree nodes constructed by delta maintenance (the rebuild-free
    /// structural cost of the write path).
    pub(crate) delta_nodes_allocated: AtomicU64,
}

impl ServiceStats {
    pub(crate) fn record_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests
            .fetch_add(size as u64, Ordering::Relaxed);
        self.completed.fetch_add(size as u64, Ordering::Relaxed);
        self.max_batch.fetch_max(size as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_write_batch(&self, updates: u64, nodes_allocated: u64) {
        self.write_batches.fetch_add(1, Ordering::Relaxed);
        self.updates_applied.fetch_add(updates, Ordering::Relaxed);
        self.delta_nodes_allocated
            .fetch_add(nodes_allocated, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(
        &self,
        forest_builds: u64,
        datasets: Vec<DatasetReport>,
    ) -> ServiceReport {
        let batches = self.batches.load(Ordering::Relaxed);
        let batched = self.batched_requests.load(Ordering::Relaxed);
        ServiceReport {
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            batches,
            mean_batch: if batches == 0 {
                0.0
            } else {
                batched as f64 / batches as f64
            },
            max_batch: self.max_batch.load(Ordering::Relaxed),
            forest_builds,
            forest_hits: self.forest_hits.load(Ordering::Relaxed),
            cross_joins: self.cross_joins.load(Ordering::Relaxed),
            write_batches: self.write_batches.load(Ordering::Relaxed),
            updates_applied: self.updates_applied.load(Ordering::Relaxed),
            delta_nodes_allocated: self.delta_nodes_allocated.load(Ordering::Relaxed),
            datasets,
        }
    }
}

/// One dataset's row in a [`ServiceReport`]: identity, version, store
/// shape, maintenance counters, and the tile load-imbalance
/// observability metric.
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetReport {
    /// The catalog id.
    pub id: DatasetId,
    /// The name the dataset was created under.
    pub name: String,
    /// Current data version (one bump per applied write batch or swap).
    pub version: DataVersion,
    /// Live (queryable) objects.
    pub live_objects: usize,
    /// Total arena slots (live + tombstoned + reclaimed).
    pub arena_slots: usize,
    /// Reclaimed slots currently available for id reuse.
    pub free_slots: usize,
    /// Compaction sweeps performed.
    pub compactions: u64,
    /// Micro-batches that applied at least one write to this dataset.
    pub write_batches: u64,
    /// Individual updates applied to this dataset.
    pub updates_applied: u64,
    /// R-tree nodes constructed by this dataset's delta maintenance.
    pub delta_nodes_allocated: u64,
    /// Max-tile / mean-tile live objects over the dataset's non-empty
    /// tiles (`1.0` = perfectly balanced). Watches a data-fitted
    /// partitioner drift as churn moves the distribution: when this
    /// climbs, re-fit via `SwapData` with a fresh partitioner.
    pub load_imbalance: f64,
}

/// A point-in-time view of a service's counters.
#[derive(Clone, Debug, PartialEq)]
pub struct ServiceReport {
    /// Requests admitted to the queue.
    pub submitted: u64,
    /// Requests refused by `try_submit` backpressure or closure.
    pub rejected: u64,
    /// Requests answered (handles fulfilled).
    pub completed: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Mean requests per batch (0 when no batch ran).
    pub mean_batch: f64,
    /// Largest batch executed.
    pub max_batch: u64,
    /// Tile-forest builds performed by the `(dataset, version)`-keyed
    /// cache. Only wholesale (re)builds count — versions produced by
    /// delta-applied write batches install without one.
    pub forest_builds: u64,
    /// Join sides served from a cached forest without any rebuild
    /// (cross-dataset joins count each borrowed side).
    pub forest_hits: u64,
    /// Cross-dataset join requests served.
    pub cross_joins: u64,
    /// (dataset, micro-batch) pairs that applied at least one write
    /// (= version bumps from the write path; each coalesces every
    /// write sharing the batch against that dataset, and all-no-op
    /// batches bump nothing).
    pub write_batches: u64,
    /// Individual updates *applied* across all write batches (no-op
    /// deletes of dead ids and rejected inserts are not counted).
    pub updates_applied: u64,
    /// R-tree nodes constructed by delta maintenance — compare against
    /// the node count of one wholesale rebuild to see what batching
    /// plus delta-apply saved.
    pub delta_nodes_allocated: u64,
    /// Per-dataset rows, ascending by id (dropped datasets disappear
    /// from here; their aggregate contributions above remain).
    pub datasets: Vec<DatasetReport>,
}

impl ServiceReport {
    /// The row of one dataset, if it is (still) in the catalog.
    pub fn dataset(&self, id: DatasetId) -> Option<&DatasetReport> {
        self.datasets.iter().find(|d| d.id == id)
    }
}
