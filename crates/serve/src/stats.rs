//! Steady-state service counters (atomics — dispatchers update them
//! concurrently) and the snapshot type reports are read through.

use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters of a running service.
#[derive(Default)]
pub struct ServiceStats {
    pub(crate) submitted: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) batches: AtomicU64,
    pub(crate) batched_requests: AtomicU64,
    pub(crate) max_batch: AtomicU64,
    /// Join requests served straight from the executor's version-keyed
    /// forest (every join, unless it raced a `swap_data` rebuild —
    /// lock-free, unlike the `ForestCache` hit counter).
    pub(crate) forest_hits: AtomicU64,
    /// Micro-batches that carried at least one applied write (each such
    /// batch bumps the data version exactly once).
    pub(crate) write_batches: AtomicU64,
    /// Individual updates applied across all write batches.
    pub(crate) updates_applied: AtomicU64,
    /// R-tree nodes constructed by delta maintenance (the rebuild-free
    /// structural cost of the write path).
    pub(crate) delta_nodes_allocated: AtomicU64,
}

impl ServiceStats {
    pub(crate) fn record_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests
            .fetch_add(size as u64, Ordering::Relaxed);
        self.completed.fetch_add(size as u64, Ordering::Relaxed);
        self.max_batch.fetch_max(size as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_write_batch(&self, updates: u64, nodes_allocated: u64) {
        self.write_batches.fetch_add(1, Ordering::Relaxed);
        self.updates_applied.fetch_add(updates, Ordering::Relaxed);
        self.delta_nodes_allocated
            .fetch_add(nodes_allocated, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self, forest_builds: u64) -> ServiceReport {
        let batches = self.batches.load(Ordering::Relaxed);
        let batched = self.batched_requests.load(Ordering::Relaxed);
        ServiceReport {
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            batches,
            mean_batch: if batches == 0 {
                0.0
            } else {
                batched as f64 / batches as f64
            },
            max_batch: self.max_batch.load(Ordering::Relaxed),
            forest_builds,
            forest_hits: self.forest_hits.load(Ordering::Relaxed),
            write_batches: self.write_batches.load(Ordering::Relaxed),
            updates_applied: self.updates_applied.load(Ordering::Relaxed),
            delta_nodes_allocated: self.delta_nodes_allocated.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time view of a service's counters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServiceReport {
    /// Requests admitted to the queue.
    pub submitted: u64,
    /// Requests refused by `try_submit` backpressure or closure.
    pub rejected: u64,
    /// Requests answered (handles fulfilled).
    pub completed: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Mean requests per batch (0 when no batch ran).
    pub mean_batch: f64,
    /// Largest batch executed.
    pub max_batch: u64,
    /// Tile-forest builds performed by the version-keyed cache. Only
    /// wholesale (re)builds count — versions produced by delta-applied
    /// write batches install without one.
    pub forest_builds: u64,
    /// Join requests served from the cached forest without any rebuild.
    pub forest_hits: u64,
    /// Micro-batches that applied at least one write (= version bumps
    /// from the write path; each coalesces every write sharing the
    /// batch, and all-no-op batches bump nothing).
    pub write_batches: u64,
    /// Individual updates *applied* across all write batches (no-op
    /// deletes of dead ids and rejected inserts are not counted).
    pub updates_applied: u64,
    /// R-tree nodes constructed by delta maintenance — compare against
    /// the node count of one wholesale rebuild to see what batching
    /// plus delta-apply saved.
    pub delta_nodes_allocated: u64,
}
