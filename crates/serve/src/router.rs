//! The scatter-gather router: one service surface over N [`Shard`]s.
//!
//! A [`ShardedService`] owns N shards, each a full [`QueryService`]
//! whose stores are built under a [`ShardTiling`] view of every
//! dataset's partitioner: the **object arena is fully mirrored** on
//! every shard (identical rectangles, identical live masks, identical
//! [`cbb_rtree::DataId`] assignment), while each shard's tile forest
//! indexes only the contiguous global tile range its
//! [`ShardMap`] assigned to it. Because the engine's reference-point
//! rule attributes every result and join pair to exactly one owning
//! tile, and the shard ranges partition the tile space, each answer
//! fragment is produced by exactly one shard — merging is exact, not
//! approximate:
//!
//! * **Range** — scattered to the shards whose ranges intersect the
//!   query's covering tiles; the disjoint fragments merge by sorting
//!   ascending by id (the canonical batched-range order a single
//!   store emits).
//! * **kNN** — scattered to every shard; per-shard exact top-k lists
//!   fold through [`cbb_engine::merge_knn`] (id-dedup +
//!   `(distance, id)` insertion — the root-MBB-bounded per-shard
//!   searches make each list exact for its tiles).
//! * **Join / CrossJoin** — scattered to every shard; the
//!   [`cbb_joins::JoinResult`] counters are per-tile sums, and the
//!   reference-point method already deduplicates boundary tiles, so
//!   the merge is the counter **sum** across shards.
//! * **Writes & admin** — replicated to every shard (the mirrored
//!   arenas must advance in lock-step); responses are identical
//!   replicas and the first is returned.
//!
//! The oracle tests pin every one of these merges **byte-equal** to a
//! single-store service on the same data.
//!
//! ### Consistency fine print
//!
//! Replica lock-step relies on every shard applying writes in the same
//! order. The router pushes each request to all its target shards
//! under one fan-out lock (identical per-shard queue order), so writes
//! admitted *serially* — each handle awaited before the next submit,
//! which is what [`ShardedService::create_dataset`] and friends do —
//! keep the replicas identical. Pipelined writes stay individually
//! ordered, but shards may coalesce them into different micro-batch
//! boundaries: per-shard [`cbb_engine::DataVersion`]s can then skew
//! (and, with arena compaction enabled, reclaimed-slot reuse can
//! diverge). Deployments that pipeline writes through a sharded
//! service should disable compaction
//! ([`cbb_engine::CompactionPolicy::never`]) and treat versions as
//! per-shard. Likewise a `SwapData` that re-fits the shard map is not
//! linearizable with *concurrent* reads of that dataset: admit reads
//! after the swap's handle resolves.
//!
//! There is deliberately no `try_submit` here: shedding a fan-out
//! after some shards already accepted their copy would fork the
//! replicas, so admission control stays at the per-shard queues
//! (backpressure blocks the fan-out instead).

use std::collections::HashMap;
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;

use cbb_core::ClipConfig;
use cbb_engine::{
    assignment_loads, merge_knn, DataVersion, DatasetId, Partitioner, ShardMap, ShardTiling,
};
use cbb_geom::Rect;
use cbb_joins::JoinResult;
use cbb_rtree::TreeConfig;
use cbb_telemetry::{Counter, Histogram, Phase, Registry, TelemetrySnapshot};

use crate::handle::{completion_pair, CompletionHandle, Promise};
use crate::queue::{Bounded, Closed};
use crate::request::{Completion, Request, Response};
use crate::service::{QueryService, Scrape, ServiceConfig, DEFAULT_DATASET};
use crate::shard::{InProcessShard, Shard};
use crate::stats::{names, ServiceReport};

/// How a [`ShardedService`] cuts a dataset's tiles into shard ranges.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ShardFitting {
    /// Near-equal contiguous tile ranges ([`ShardMap::balanced`]).
    /// Datasets sharing a partitioner get identical ranges, so the
    /// equal-tiling cross-join fast path (borrowing both cached
    /// forests) keeps working shard-locally.
    #[default]
    Balanced,
    /// Ranges weighted by the dataset's per-tile assignment counts
    /// ([`ShardMap::fitted`]) — the shard-boundary fitting move from
    /// *Effective Spatial Data Partitioning for Scalable Query
    /// Processing*: a data-fitted partitioner's hot region is spread
    /// across shards instead of landing on one. Trade-off: two
    /// datasets over the same partitioner may get different ranges,
    /// demoting their cross-joins from the forest-borrowing STT fast
    /// path to the re-partitioning path (answers identical, left
    /// forest not reused).
    Fitted,
}

/// Routing state of one dataset: its global partitioner and the shard
/// map its tiles were cut by.
struct DatasetRoute<P> {
    name: String,
    partitioner: P,
    map: ShardMap,
}

/// How the gather worker folds per-shard responses into one.
enum MergeKind {
    /// Merge disjoint range fragments into one id-sorted list.
    Concat,
    /// [`merge_knn`] with this `k`.
    Knn(usize),
    /// Sum the [`JoinResult`] counters.
    JoinSum,
    /// Replicated write/admin: every shard answered identically, take
    /// the first.
    First,
}

/// Route-table edit the gather worker applies once the fanned-out
/// admin op succeeded on every shard (before the merged handle
/// resolves, so a caller that awaited the admin op routes through the
/// new state).
enum RouteAction<P> {
    Install {
        name: String,
        partitioner: P,
        map: ShardMap,
    },
    Drop {
        dataset: DatasetId,
    },
    Swap {
        dataset: DatasetId,
        partitioner: P,
        map: ShardMap,
    },
}

/// One pending gather: the per-shard handles, the merged promise, and
/// what to do with the parts.
struct GatherJob<P> {
    parts: Vec<CompletionHandle<Completion>>,
    promise: Promise<Completion>,
    merge: MergeKind,
    action: Option<RouteAction<P>>,
}

/// Pre-resolved handles of the router's own registry (separate from
/// the per-shard registries, which [`ShardedService::shard_scrapes`]
/// exposes individually).
struct RouterStats {
    registry: Registry,
    requests: Counter,
    single_shard: Counter,
    fanout: Histogram,
    shard_requests: Vec<Counter>,
    scatter_ns: Histogram,
    gather_ns: Histogram,
}

impl RouterStats {
    fn new(config: &cbb_telemetry::TelemetryConfig, shards: usize) -> Self {
        let registry = config.build_registry();
        RouterStats {
            requests: registry.counter(
                "cbb_router_requests_total",
                "Requests admitted by the sharded router.",
                &[],
            ),
            single_shard: registry.counter(
                "cbb_router_single_shard_total",
                "Requests routed to exactly one shard (gather skipped).",
                &[],
            ),
            fanout: registry.histogram(
                "cbb_router_fanout_width",
                "Shards each routed request was scattered to.",
                &[],
            ),
            shard_requests: (0..shards)
                .map(|s| {
                    registry.counter(
                        "cbb_router_shard_requests_total",
                        "Requests routed to each shard.",
                        &[("shard", &s.to_string())],
                    )
                })
                .collect(),
            scatter_ns: registry.histogram(
                names::PHASE_NS,
                "Per-request service time by phase, in nanoseconds.",
                &[("phase", Phase::Scatter.name())],
            ),
            gather_ns: registry.histogram(
                names::PHASE_NS,
                "Per-request service time by phase, in nanoseconds.",
                &[("phase", Phase::Gather.name())],
            ),
            registry,
        }
    }
}

/// A sharded query service: the same request/response surface as
/// [`QueryService`], served by N shards behind a scatter-gather
/// router. See the [module docs](self) for the merge semantics and
/// consistency contract.
pub struct ShardedService<const D: usize, P> {
    shards: Vec<Box<dyn Shard<D, ShardTiling<P>>>>,
    routes: Arc<RwLock<HashMap<DatasetId, DatasetRoute<P>>>>,
    gather_queue: Arc<Bounded<GatherJob<P>>>,
    gather_workers: Vec<JoinHandle<()>>,
    stats: Arc<RouterStats>,
    /// Serializes fan-outs so every shard sees the same queue order —
    /// the invariant replica lock-step rests on.
    fanout: Mutex<()>,
    fitting: ShardFitting,
    default_dataset: Option<DatasetId>,
}

impl<const D: usize, P> ShardedService<D, P>
where
    P: Partitioner<D>
        + cbb_engine::PersistPartitioner
        + Clone
        + PartialEq
        + std::fmt::Debug
        + Send
        + Sync
        + 'static,
{
    /// Start `shards` in-process shards (each a full [`QueryService`]
    /// with `config`'s queue/batching/telemetry knobs) with an empty
    /// catalog. Most callers want [`crate::ServiceBuilder`] instead.
    ///
    /// With [`ServiceConfig::durability`] set, each shard persists
    /// under its own `shard_<i>` subdirectory of the configured root.
    /// On start the subdirectories are **reconciled** before the
    /// shards recover (each shard fsyncs independently, so a kill can
    /// land between two shards' commits of the same replicated batch
    /// — see the [`crate::durability`] module docs), and the route
    /// table is rebuilt from the recovered per-shard tilings.
    pub fn start_catalog(
        config: ServiceConfig,
        shards: usize,
        fitting: ShardFitting,
        tree: TreeConfig<D>,
        clip: ClipConfig,
    ) -> Self {
        assert!(shards >= 1, "need at least one shard");
        if let Some(durable) = &config.durability {
            crate::durability::reconcile_shard_dirs(&durable.root, shards).unwrap_or_else(|err| {
                panic!(
                    "shard reconciliation failed under {}: {err}",
                    durable.root.display()
                )
            });
        }
        let services: Vec<QueryService<D, ShardTiling<P>>> = (0..shards)
            .map(|i| {
                let mut shard_config = config.clone();
                if let Some(durable) = &mut shard_config.durability {
                    durable.root = durable.root.join(format!("shard_{i}"));
                }
                QueryService::start_catalog(shard_config, tree, clip)
            })
            .collect();
        // Rebuild the route table from recovered state: shard 0's
        // tiling carries the global partitioner, and the per-shard
        // tile ranges are the shard map's cut points.
        let mut initial_routes = HashMap::new();
        if config.durability.is_some() {
            let per_shard: Vec<Vec<(DatasetId, String, ShardTiling<P>)>> =
                services.iter().map(|s| s.dataset_partitioners()).collect();
            for (row, (id, name, tiling)) in per_shard[0].iter().enumerate() {
                let mut bounds = vec![tiling.tiles().start, tiling.tiles().end];
                for shard_rows in &per_shard[1..] {
                    let (other_id, _, other) = &shard_rows[row];
                    debug_assert_eq!(other_id, id, "reconciled shards list identical datasets");
                    bounds.push(other.tiles().end);
                }
                initial_routes.insert(
                    *id,
                    DatasetRoute {
                        name: name.clone(),
                        partitioner: tiling.inner().clone(),
                        map: ShardMap::from_bounds(bounds),
                    },
                );
            }
        }
        let shards: Vec<Box<dyn Shard<D, ShardTiling<P>>>> = services
            .into_iter()
            .map(|service| {
                Box::new(InProcessShard::new(service)) as Box<dyn Shard<D, ShardTiling<P>>>
            })
            .collect();
        let stats = Arc::new(RouterStats::new(&config.telemetry, shards.len()));
        let routes = Arc::new(RwLock::new(initial_routes));
        let gather_queue = Arc::new(Bounded::new(config.queue_capacity));
        let gather_workers = (0..config.dispatchers.max(1))
            .map(|i| {
                let queue = Arc::clone(&gather_queue);
                let routes = Arc::clone(&routes);
                let stats = Arc::clone(&stats);
                std::thread::Builder::new()
                    .name(format!("cbb-gather-{i}"))
                    .spawn(move || gather_loop::<D, P>(&queue, &routes, &stats))
                    .expect("spawn gather worker")
            })
            .collect();
        ShardedService {
            shards,
            routes,
            gather_queue,
            gather_workers,
            stats,
            fanout: Mutex::new(()),
            fitting,
            default_dataset: None,
        }
    }

    /// [`Self::start_catalog`] plus one dataset named
    /// [`DEFAULT_DATASET`] built from `objects` — the sharded
    /// equivalent of [`QueryService::start`].
    pub fn start(
        config: ServiceConfig,
        shards: usize,
        fitting: ShardFitting,
        partitioner: P,
        objects: Vec<Rect<D>>,
        tree: TreeConfig<D>,
        clip: ClipConfig,
    ) -> Self {
        let mut service = Self::start_catalog(config, shards, fitting, tree, clip);
        // With durability enabled, a previous run's default dataset may
        // have been recovered; its objects and partitioner win over the
        // ones passed here (mirrors [`QueryService::start`]).
        let id = match service.dataset_id(DEFAULT_DATASET) {
            Some(recovered) => recovered,
            None => service
                .create_dataset(DEFAULT_DATASET, partitioner, objects)
                .expect("fresh catalog cannot have a name clash"),
        };
        service.default_dataset = Some(id);
        service
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Cut a shard map for `partitioner` over `objects` according to
    /// this service's [`ShardFitting`].
    fn fit_map(&self, partitioner: &P, objects: &[Rect<D>]) -> ShardMap {
        match self.fitting {
            ShardFitting::Balanced => {
                ShardMap::balanced(partitioner.tile_count(), self.shards.len())
            }
            ShardFitting::Fitted => {
                ShardMap::fitted(&assignment_loads(partitioner, objects), self.shards.len())
            }
        }
    }

    /// Decide targets, merge kind, route action, and (for admin ops
    /// that carry a partitioner) the wrap every per-shard copy uses.
    #[allow(clippy::type_complexity)]
    fn plan(
        &self,
        request: &Request<D, P>,
    ) -> (
        Vec<usize>,
        MergeKind,
        Option<RouteAction<P>>,
        Option<(P, ShardMap)>,
    ) {
        let all = || (0..self.shards.len()).collect::<Vec<_>>();
        match request {
            Request::Range { dataset, query, .. } => {
                let routes = self.routes.read().expect("route table poisoned");
                let targets = match routes.get(dataset) {
                    Some(route) => {
                        let tiles = route.partitioner.covering_tiles(query);
                        let shards = route.map.covering_shards(&tiles);
                        if shards.is_empty() {
                            // Zero covering tiles: any one shard
                            // answers the (empty) query exactly.
                            vec![0]
                        } else {
                            shards
                        }
                    }
                    // Unknown dataset: every shard refuses identically.
                    None => all(),
                };
                (targets, MergeKind::Concat, None, None)
            }
            Request::Knn { k, .. } => (all(), MergeKind::Knn(*k), None, None),
            Request::Join { .. } | Request::CrossJoin { .. } => {
                (all(), MergeKind::JoinSum, None, None)
            }
            Request::Insert { .. } | Request::Delete { .. } | Request::UpdateBatch { .. } => {
                (all(), MergeKind::First, None, None)
            }
            Request::CreateDataset {
                name,
                partitioner,
                objects,
            } => {
                let map = self.fit_map(partitioner, objects);
                let action = RouteAction::Install {
                    name: name.clone(),
                    partitioner: partitioner.clone(),
                    map: map.clone(),
                };
                (
                    all(),
                    MergeKind::First,
                    Some(action),
                    Some((partitioner.clone(), map)),
                )
            }
            Request::DropDataset { dataset } => (
                all(),
                MergeKind::First,
                Some(RouteAction::Drop { dataset: *dataset }),
                None,
            ),
            Request::SwapData {
                dataset,
                objects,
                partitioner,
            } => {
                let global = match partitioner {
                    Some(p) => Some(p.clone()),
                    None => {
                        let routes = self.routes.read().expect("route table poisoned");
                        routes.get(dataset).map(|r| r.partitioner.clone())
                    }
                };
                match global {
                    Some(p) => {
                        let map = self.fit_map(&p, objects);
                        let action = RouteAction::Swap {
                            dataset: *dataset,
                            partitioner: p.clone(),
                            map: map.clone(),
                        };
                        (all(), MergeKind::First, Some(action), Some((p, map)))
                    }
                    // Unknown dataset and no partitioner to fit:
                    // forward bare, every shard refuses identically.
                    None => (all(), MergeKind::First, None, None),
                }
            }
        }
    }

    /// Build shard `s`'s copy of `request`, wrapping any carried
    /// partitioner into that shard's [`ShardTiling`] view.
    fn shard_request(
        &self,
        request: &Request<D, P>,
        wrap: Option<&(P, ShardMap)>,
        s: usize,
    ) -> Request<D, ShardTiling<P>> {
        match request {
            Request::Range {
                dataset,
                query,
                use_clips,
            } => Request::Range {
                dataset: *dataset,
                query: *query,
                use_clips: *use_clips,
            },
            Request::Knn { dataset, center, k } => Request::Knn {
                dataset: *dataset,
                center: *center,
                k: *k,
            },
            Request::Join {
                dataset,
                probes,
                algo,
                use_clips,
            } => Request::Join {
                dataset: *dataset,
                probes: probes.clone(),
                algo: *algo,
                use_clips: *use_clips,
            },
            Request::CrossJoin {
                left,
                right,
                algo,
                use_clips,
            } => Request::CrossJoin {
                left: *left,
                right: *right,
                algo: *algo,
                use_clips: *use_clips,
            },
            Request::Insert { dataset, rect } => Request::Insert {
                dataset: *dataset,
                rect: *rect,
            },
            Request::Delete { dataset, id } => Request::Delete {
                dataset: *dataset,
                id: *id,
            },
            Request::UpdateBatch { dataset, updates } => Request::UpdateBatch {
                dataset: *dataset,
                updates: updates.clone(),
            },
            Request::DropDataset { dataset } => Request::DropDataset { dataset: *dataset },
            Request::CreateDataset { name, objects, .. } => {
                let (p, map) = wrap.expect("create always plans a wrap");
                Request::CreateDataset {
                    name: name.clone(),
                    partitioner: ShardTiling::new(p.clone(), map.range(s)),
                    objects: objects.clone(),
                }
            }
            Request::SwapData {
                dataset, objects, ..
            } => Request::SwapData {
                dataset: *dataset,
                objects: objects.clone(),
                partitioner: wrap.map(|(p, map)| ShardTiling::new(p.clone(), map.range(s))),
            },
        }
    }

    /// Submit a request: route it to the shards that can contribute,
    /// scatter per-shard copies (one fan-out lock keeps every shard's
    /// queue order identical), and return a handle onto the merged
    /// answer. Blocks while any target shard's queue is full
    /// (backpressure).
    pub fn submit(
        &self,
        request: Request<D, P>,
    ) -> Result<CompletionHandle<Completion>, Closed<Request<D, P>>> {
        let (targets, merge, action, wrap) = self.plan(&request);
        self.stats.requests.inc();
        self.stats.fanout.observe(targets.len() as u64);
        let scatter_started = Instant::now();

        // Single-target requests with no route edit skip the gather
        // hop entirely: the shard's own handle *is* the merged handle.
        if targets.len() == 1 && action.is_none() {
            let s = targets[0];
            let copy = self.shard_request(&request, wrap.as_ref(), s);
            let pushed = {
                let _guard = self.fanout.lock().expect("fanout lock poisoned");
                self.shards[s].submit(copy)
            };
            return match pushed {
                Ok(handle) => {
                    self.stats.shard_requests[s].inc();
                    self.stats.single_shard.inc();
                    self.stats.scatter_ns.observe(elapsed_ns(scatter_started));
                    Ok(handle)
                }
                Err(Closed(_)) => Err(Closed(request)),
            };
        }

        let (promise, handle) = completion_pair();
        let mut parts = Vec::with_capacity(targets.len());
        {
            let _guard = self.fanout.lock().expect("fanout lock poisoned");
            for &s in &targets {
                let copy = self.shard_request(&request, wrap.as_ref(), s);
                match self.shards[s].submit(copy) {
                    Ok(part) => {
                        self.stats.shard_requests[s].inc();
                        parts.push(part);
                    }
                    // Shards only close at shutdown, which owns the
                    // service — seeing this mid-fan-out means the
                    // caller raced teardown; the copies already pushed
                    // will be drained and their answers discarded.
                    Err(Closed(_)) => return Err(Closed(request)),
                }
            }
        }
        self.stats.scatter_ns.observe(elapsed_ns(scatter_started));
        let job = GatherJob {
            parts,
            promise,
            merge,
            action,
        };
        match self.gather_queue.push(job) {
            Ok(()) => Ok(handle),
            Err(Closed(_)) => Err(Closed(request)),
        }
    }

    // ── Catalog surface (mirrors `QueryService`'s) ─────────────────

    /// Create a named dataset on every shard and wait for its id. The
    /// dataset's tiles are cut into shard ranges per this service's
    /// [`ShardFitting`].
    pub fn create_dataset(
        &self,
        name: &str,
        partitioner: P,
        objects: Vec<Rect<D>>,
    ) -> Result<DatasetId, crate::RequestError> {
        let response = self
            .submit(Request::CreateDataset {
                name: name.to_string(),
                partitioner,
                objects,
            })
            .expect("service is open")
            .wait()
            .expect("admitted requests are always answered")
            .response;
        match response {
            Response::Created(id) => Ok(id),
            Response::Failed(err) => Err(err),
            other => unreachable!("create answered with {other:?}"),
        }
    }

    /// Drop a dataset from every shard; `true` if it existed.
    pub fn drop_dataset(&self, id: DatasetId) -> bool {
        self.submit(Request::DropDataset { dataset: id })
            .expect("service is open")
            .wait()
            .expect("admitted requests are always answered")
            .response
            .into_dropped()
    }

    /// Replace one dataset's objects wholesale on every shard; the
    /// shard map is re-fitted to the new objects at the same time.
    pub fn swap_dataset(
        &self,
        id: DatasetId,
        objects: Vec<Rect<D>>,
    ) -> Result<DataVersion, crate::RequestError> {
        self.swap_request(id, objects, None)
    }

    /// [`Self::swap_dataset`] with a replacement partitioner (the
    /// re-fit path for drifted data).
    pub fn swap_dataset_with(
        &self,
        id: DatasetId,
        partitioner: P,
        objects: Vec<Rect<D>>,
    ) -> Result<DataVersion, crate::RequestError> {
        self.swap_request(id, objects, Some(partitioner))
    }

    fn swap_request(
        &self,
        id: DatasetId,
        objects: Vec<Rect<D>>,
        partitioner: Option<P>,
    ) -> Result<DataVersion, crate::RequestError> {
        let response = self
            .submit(Request::SwapData {
                dataset: id,
                objects,
                partitioner,
            })
            .expect("service is open")
            .wait()
            .expect("admitted requests are always answered")
            .response;
        match response {
            Response::Swapped(version) => Ok(version),
            Response::Failed(err) => Err(err),
            other => unreachable!("swap answered with {other:?}"),
        }
    }

    /// Resolve a dataset name to its id (route-table lookup).
    pub fn dataset_id(&self, name: &str) -> Option<DatasetId> {
        let routes = self.routes.read().expect("route table poisoned");
        routes
            .iter()
            .find(|(_, route)| route.name == name)
            .map(|(id, _)| *id)
    }

    /// `(id, name)` of every live dataset, ascending by id.
    pub fn datasets(&self) -> Vec<(DatasetId, String)> {
        let routes = self.routes.read().expect("route table poisoned");
        let mut out: Vec<(DatasetId, String)> = routes
            .iter()
            .map(|(id, route)| (*id, route.name.clone()))
            .collect();
        out.sort_by_key(|(id, _)| *id);
        out
    }

    /// The shard map one dataset's tiles are currently cut by.
    pub fn dataset_shard_map(&self, id: DatasetId) -> Option<ShardMap> {
        let routes = self.routes.read().expect("route table poisoned");
        routes.get(&id).map(|route| route.map.clone())
    }

    /// The data version one dataset serves, as reported by shard 0
    /// (replicas agree under the lock-step contract in the
    /// [module docs](self)).
    pub fn dataset_version(&self, id: DatasetId) -> Option<DataVersion> {
        self.shards[0].report().dataset(id).map(|d| d.version)
    }

    /// Number of live objects in one dataset (exact on every shard —
    /// arenas are mirrored; only the *indexes* are sharded).
    pub fn dataset_live_count(&self, id: DatasetId) -> Option<usize> {
        self.shards[0].report().dataset(id).map(|d| d.live_objects)
    }

    /// The dataset [`Self::start`] registered. Panics on a service
    /// started via [`Self::start_catalog`].
    pub fn default_dataset(&self) -> DatasetId {
        self.default_dataset
            .expect("service was started with an empty catalog; name a dataset explicitly")
    }

    // ── Observability ──────────────────────────────────────────────

    /// Aggregate counter snapshot: counters summed across shards,
    /// dataset rows from shard 0. Identity, version, and live/arena
    /// columns are exact (mirrored); the tile-level columns
    /// (occupancy, imbalance) describe shard 0's tile slice — use
    /// [`Self::shard_reports`] for the per-shard view.
    pub fn report(&self) -> ServiceReport {
        merge_reports(self.shards.iter().map(|s| s.report()).collect())
    }

    /// Every shard's own report, in shard order.
    pub fn shard_reports(&self) -> Vec<ServiceReport> {
        self.shards.iter().map(|s| s.report()).collect()
    }

    /// The router's own telemetry: per-shard routed-request counters,
    /// fan-out width, single-shard fast-path count, and the
    /// scatter/gather phase histograms. Per-shard pipeline metrics
    /// live in [`Self::shard_scrapes`].
    pub fn scrape(&self) -> Scrape {
        let snapshot: TelemetrySnapshot = self.stats.registry.snapshot();
        Scrape {
            text: snapshot.render_text(),
            json: snapshot.to_json(),
            snapshot,
        }
    }

    /// Every shard's own telemetry exposition, in shard order.
    pub fn shard_scrapes(&self) -> Vec<Scrape> {
        self.shards.iter().map(|s| s.scrape()).collect()
    }

    /// Graceful shutdown: close **all** shards first (no shard keeps
    /// admitting while siblings drain), drain each, stop the gather
    /// workers once every pending merge resolved, and return the
    /// aggregate report.
    pub fn shutdown(mut self) -> ServiceReport {
        for shard in &self.shards {
            shard.close();
        }
        let reports: Vec<ServiceReport> = self
            .shards
            .drain(..)
            .map(|shard| shard.shutdown())
            .collect();
        // Shards are drained: every part handle a queued gather job
        // waits on is resolved, so the workers finish the backlog and
        // exit on the closed queue.
        self.gather_queue.close();
        for worker in self.gather_workers.drain(..) {
            worker.join().expect("gather worker panicked");
        }
        merge_reports(reports)
    }
}

impl<const D: usize, P> Drop for ShardedService<D, P> {
    fn drop(&mut self) {
        // Dropping without `shutdown()` still drains and joins — same
        // guarantee as `QueryService`'s Drop.
        for shard in &self.shards {
            shard.close();
        }
        for shard in self.shards.drain(..) {
            let _ = shard.shutdown();
        }
        self.gather_queue.close();
        for worker in self.gather_workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn elapsed_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Sum per-shard reports into the aggregate view (dataset rows from
/// shard 0 — see [`ShardedService::report`]).
fn merge_reports(reports: Vec<ServiceReport>) -> ServiceReport {
    let mut merged = ServiceReport {
        submitted: 0,
        rejected: 0,
        shed: 0,
        queue_depth: 0,
        completed: 0,
        batches: 0,
        mean_batch: 0.0,
        max_batch: 0,
        forest_builds: 0,
        forest_hits: 0,
        cross_joins: 0,
        probe_repartitions: 0,
        write_batches: 0,
        updates_applied: 0,
        delta_nodes_allocated: 0,
        wal_appends: 0,
        checkpoints: 0,
        recovered_datasets: 0,
        recovered_records: 0,
        recovered_pages: 0,
        datasets: Vec::new(),
    };
    let mut batched_total = 0.0;
    for (i, report) in reports.into_iter().enumerate() {
        merged.submitted += report.submitted;
        merged.rejected += report.rejected;
        merged.shed += report.shed;
        merged.queue_depth += report.queue_depth;
        merged.completed += report.completed;
        batched_total += report.mean_batch * report.batches as f64;
        merged.batches += report.batches;
        merged.max_batch = merged.max_batch.max(report.max_batch);
        merged.forest_builds += report.forest_builds;
        merged.forest_hits += report.forest_hits;
        merged.cross_joins += report.cross_joins;
        merged.probe_repartitions += report.probe_repartitions;
        merged.write_batches += report.write_batches;
        merged.updates_applied += report.updates_applied;
        merged.delta_nodes_allocated += report.delta_nodes_allocated;
        merged.wal_appends += report.wal_appends;
        merged.checkpoints += report.checkpoints;
        merged.recovered_datasets += report.recovered_datasets;
        merged.recovered_records += report.recovered_records;
        merged.recovered_pages += report.recovered_pages;
        if i == 0 {
            merged.datasets = report.datasets;
        }
    }
    if merged.batches > 0 {
        merged.mean_batch = batched_total / merged.batches as f64;
    }
    merged
}

/// The gather worker: wait the per-shard parts in shard order, merge,
/// apply any route edit, fulfil the merged promise.
fn gather_loop<const D: usize, P>(
    queue: &Bounded<GatherJob<P>>,
    routes: &RwLock<HashMap<DatasetId, DatasetRoute<P>>>,
    stats: &RouterStats,
) where
    P: Partitioner<D> + Clone + PartialEq + std::fmt::Debug + Send + Sync + 'static,
{
    while let Some(job) = queue.pop() {
        let started = Instant::now();
        let mut completions = Vec::with_capacity(job.parts.len());
        let mut canceled = false;
        for part in job.parts {
            match part.wait() {
                Ok(completion) => completions.push(completion),
                Err(crate::handle::Canceled) => canceled = true,
            }
        }
        if canceled {
            // A dead shard cancels the merged request too (dropping
            // the promise cancels the caller's handle).
            drop(job.promise);
            continue;
        }
        let merged = merge_completions(&job.merge, completions);
        if let Some(action) = job.action {
            apply_route_action(routes, action, &merged.response);
        }
        stats.gather_ns.observe(elapsed_ns(started));
        job.promise.fulfill(merged);
    }
}

/// Fold per-shard completions into the merged one. Timing fields take
/// the slowest shard (the request was only done when its last fragment
/// was); `batch_size` likewise reports the largest carrying batch.
fn merge_completions(merge: &MergeKind, completions: Vec<Completion>) -> Completion {
    debug_assert!(!completions.is_empty(), "a fan-out targets >= 1 shard");
    let queued = completions
        .iter()
        .map(|c| c.queued)
        .max()
        .unwrap_or_default();
    let serviced = completions
        .iter()
        .map(|c| c.serviced)
        .max()
        .unwrap_or_default();
    let batch_size = completions.iter().map(|c| c.batch_size).max().unwrap_or(1);
    let response = merge_responses(merge, completions.into_iter().map(|c| c.response).collect());
    Completion {
        response,
        queued,
        serviced,
        batch_size,
    }
}

fn merge_responses(merge: &MergeKind, mut parts: Vec<Response>) -> Response {
    // A refused request is refused identically everywhere (same
    // catalog state on every shard): surface the first refusal.
    if let Some(i) = parts.iter().position(|r| matches!(r, Response::Failed(_))) {
        return parts.swap_remove(i);
    }
    match merge {
        MergeKind::First => {
            debug_assert!(
                !matches!(parts[0], Response::Created(_) | Response::Dropped(_))
                    || parts.iter().all(|r| *r == parts[0]),
                "replicated admin op answered divergently: {parts:?}"
            );
            parts.swap_remove(0)
        }
        MergeKind::Concat => {
            let mut ids: Vec<_> = parts.into_iter().flat_map(Response::into_range).collect();
            // Each fragment is sorted ascending by id (the canonical
            // batched-range order) but fragments interleave in id
            // space; re-sorting restores exactly what a single store
            // emits. Fragments are disjoint (one owning shard per
            // result), so no dedup is needed.
            ids.sort_unstable();
            Response::Range(ids)
        }
        MergeKind::Knn(k) => {
            Response::Knn(merge_knn(parts.into_iter().map(Response::into_knn), *k))
        }
        MergeKind::JoinSum => Response::Join(
            parts
                .into_iter()
                .map(Response::into_join)
                .sum::<JoinResult>(),
        ),
    }
}

fn apply_route_action<P>(
    routes: &RwLock<HashMap<DatasetId, DatasetRoute<P>>>,
    action: RouteAction<P>,
    response: &Response,
) {
    let mut routes = routes.write().expect("route table poisoned");
    match (action, response) {
        (
            RouteAction::Install {
                name,
                partitioner,
                map,
            },
            Response::Created(id),
        ) => {
            routes.insert(
                *id,
                DatasetRoute {
                    name,
                    partitioner,
                    map,
                },
            );
        }
        (RouteAction::Drop { dataset }, Response::Dropped(true)) => {
            routes.remove(&dataset);
        }
        (
            RouteAction::Swap {
                dataset,
                partitioner,
                map,
            },
            Response::Swapped(_),
        ) => {
            if let Some(route) = routes.get_mut(&dataset) {
                route.partitioner = partitioner;
                route.map = map;
            }
        }
        // Failed admin ops (and no-op drops) edit nothing.
        _ => {}
    }
}
