//! The shard boundary: one self-contained slice of a sharded
//! deployment.
//!
//! A [`Shard`] is a full query service — its own catalog, admission
//! queue, dispatcher pool, forest cache, and telemetry registry — that
//! happens to index only the tiles a
//! [`cbb_engine::ShardMap`] assigned to it (its stores are built under
//! a [`cbb_engine::ShardTiling`] view of each dataset's partitioner).
//! The router ([`crate::ShardedService`]) talks to shards **only**
//! through this trait, so the in-process implementation here can later
//! be swapped for a network transport (a connection pool speaking the
//! same request/response types) without touching the scatter-gather
//! logic.
//!
//! The contract a `Shard` implementation must keep:
//!
//! * `submit` admits one request and returns a handle that resolves
//!   exactly once (or is canceled if the shard dies) — the router's
//!   gather step waits on these.
//! * Requests admitted in one submission order are *applied* in that
//!   order relative to each other (the queue is FIFO); the router
//!   relies on this to keep write replicas in lock-step.
//! * `close` stops admission without discarding accepted work;
//!   `shutdown` drains and reports. The router closes **all** shards
//!   before draining any, so no shard keeps answering while its
//!   siblings are torn down.

use cbb_telemetry::SlowQuery;

use crate::handle::CompletionHandle;
use crate::queue::Closed;
use crate::request::{Completion, Request};
use crate::service::{QueryService, Scrape};
use crate::stats::ServiceReport;

/// One shard of a sharded service: the transport-agnostic boundary the
/// router scatters over. `Q` is the shard's partitioner type — for a
/// router over global partitioner `P` this is
/// [`cbb_engine::ShardTiling<P>`], the shard's range-filtered view of
/// the global tiling.
pub trait Shard<const D: usize, Q>: Send + Sync {
    /// Admit one request; the handle resolves when the shard has
    /// answered it. Fails only once the shard no longer admits work.
    fn submit(
        &self,
        request: Request<D, Q>,
    ) -> Result<CompletionHandle<Completion>, Closed<Request<D, Q>>>;

    /// This shard's counter snapshot (its own registry; the router
    /// sums these across shards).
    fn report(&self) -> ServiceReport;

    /// This shard's telemetry exposition.
    fn scrape(&self) -> Scrape;

    /// This shard's slowest answered requests.
    fn slow_queries(&self) -> Vec<SlowQuery>;

    /// Stop admission; accepted requests still complete.
    fn close(&self);

    /// Drain everything accepted, stop the shard, and return its final
    /// report.
    fn shutdown(self: Box<Self>) -> ServiceReport;
}

/// The in-process [`Shard`]: a [`QueryService`] owned by the router in
/// the same process. N in-process shards = N catalogs, N dispatcher
/// pools, N forest caches — the deployment the oracle tests pin
/// byte-equal to a single-store service.
pub struct InProcessShard<const D: usize, Q> {
    service: QueryService<D, Q>,
}

impl<const D: usize, Q> InProcessShard<D, Q>
where
    Q: cbb_engine::Partitioner<D>
        + cbb_engine::PersistPartitioner
        + Clone
        + PartialEq
        + std::fmt::Debug
        + Send
        + Sync
        + 'static,
{
    /// Wrap a running service as a shard.
    pub fn new(service: QueryService<D, Q>) -> Self {
        InProcessShard { service }
    }

    /// The wrapped service (direct access for tests/tools).
    pub fn service(&self) -> &QueryService<D, Q> {
        &self.service
    }
}

impl<const D: usize, Q> Shard<D, Q> for InProcessShard<D, Q>
where
    Q: cbb_engine::Partitioner<D>
        + cbb_engine::PersistPartitioner
        + Clone
        + PartialEq
        + std::fmt::Debug
        + Send
        + Sync
        + 'static,
{
    fn submit(
        &self,
        request: Request<D, Q>,
    ) -> Result<CompletionHandle<Completion>, Closed<Request<D, Q>>> {
        self.service.submit(request)
    }

    fn report(&self) -> ServiceReport {
        self.service.report()
    }

    fn scrape(&self) -> Scrape {
        self.service.scrape()
    }

    fn slow_queries(&self) -> Vec<SlowQuery> {
        self.service.slow_queries()
    }

    fn close(&self) {
        self.service.close();
    }

    fn shutdown(self: Box<Self>) -> ServiceReport {
        self.service.shutdown()
    }
}
