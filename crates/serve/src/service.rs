//! The long-running query service: admission queue, dispatcher pool,
//! a catalog of independently versioned datasets, graceful shutdown.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cbb_core::ClipConfig;
use cbb_engine::{
    AutoPolicy, Catalog, CompactionPolicy, DataVersion, DatasetId, DatasetStore, ForestCache,
    Partitioner, QueryAlgo, TileForest,
};
use cbb_geom::Rect;
use cbb_rtree::TreeConfig;
use cbb_telemetry::{Histogram, SlowQuery, TelemetryConfig, TelemetrySnapshot};

use crate::batcher::{collect_batch, run_batch};
use crate::durability::{Durability, DurabilityConfig};
use crate::handle::{completion_pair, CompletionHandle, Promise};
use crate::queue::{Bounded, Closed, TryPushError};
use crate::request::{Completion, Request, RequestError};
use crate::stats::{names, DatasetReport, ServiceReport, ServiceStats};

use cbb_engine::PersistPartitioner;

/// Service tuning knobs.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Admission bound: `submit` blocks (and `try_submit` fails) once
    /// this many requests wait unserved.
    pub queue_capacity: usize,
    /// Flush a micro-batch at this many requests.
    pub batch_max: usize,
    /// Flush a micro-batch this long after it opened, full or not —
    /// the latency bound batching is allowed to add.
    pub batch_deadline: Duration,
    /// Dispatcher (consumer) threads forming and executing batches.
    pub dispatchers: usize,
    /// Worker threads the executor uses *inside* one batch.
    pub exec_workers: usize,
    /// Slot-reclamation policy applied to every dataset store the
    /// service creates (see [`CompactionPolicy`]). Set
    /// [`CompactionPolicy::never`] to keep the pre-catalog append-only
    /// arena behaviour.
    pub compaction: CompactionPolicy,
    /// Telemetry collection (enabled by default). With
    /// [`TelemetryConfig::disabled`] every instrumentation point is a
    /// no-op: answers are identical, [`QueryService::scrape`] is empty,
    /// and [`ServiceReport`] counters read zero.
    pub telemetry: TelemetryConfig,
    /// [`ForestCache`] LRU capacity: how many `(dataset, version)`
    /// forests stay resident (must be ≥ 1). Raise it when many
    /// datasets are served concurrently or in-flight batches span more
    /// versions than the default
    /// [`cbb_engine::DEFAULT_FOREST_CACHE_CAPACITY`] keeps.
    pub forest_cache_capacity: usize,
    /// Snapshot + write-ahead-log persistence (default `None`: the
    /// service is in-memory only). With a root configured, every
    /// applied write micro-batch is fsynced before its waiters wake,
    /// and a restarted service recovers the whole catalog — see
    /// [`crate::durability`].
    pub durability: Option<DurabilityConfig>,
    /// How coalesced range micro-batches execute against each covered
    /// tile: per-query tree descents, one fused shared sweep, or a
    /// per-tile choice (the default, [`QueryAlgo::Auto`]). Answers are
    /// byte-equal across all three — this knob only moves work counters
    /// and wall-clock.
    pub query_algo: QueryAlgo,
    /// Thresholds behind every `Auto` resolution — join algorithm
    /// selection per tile ([`cbb_engine::JoinAlgo::Auto`]) and range
    /// fusion ([`QueryAlgo::Auto`]). The default reproduces the
    /// previously hard-coded constants byte-for-byte.
    pub auto_policy: AutoPolicy,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_capacity: 1024,
            batch_max: 64,
            batch_deadline: Duration::from_millis(2),
            dispatchers: 1,
            exec_workers: 4,
            compaction: CompactionPolicy::default(),
            telemetry: TelemetryConfig::default(),
            forest_cache_capacity: cbb_engine::DEFAULT_FOREST_CACHE_CAPACITY,
            durability: None,
            query_algo: QueryAlgo::Auto,
            auto_policy: AutoPolicy::default(),
        }
    }
}

impl ServiceConfig {
    /// Per-request execution: every batch holds exactly one request.
    /// The no-batching baseline `serve_scale` measures against.
    pub fn unbatched() -> Self {
        ServiceConfig {
            batch_max: 1,
            batch_deadline: Duration::ZERO,
            ..Self::default()
        }
    }
}

/// The name [`QueryService::start`] registers its initial dataset
/// under — the single-dataset convenience surface targets it.
pub const DEFAULT_DATASET: &str = "default";

/// One queued request: payload, completion promise, admission stamp.
pub(crate) struct Envelope<const D: usize, P> {
    pub(crate) request: Request<D, P>,
    pub(crate) promise: Promise<Completion>,
    pub(crate) enqueued: Instant,
}

/// Everything dispatchers share.
pub(crate) struct SharedState<const D: usize, P> {
    pub(crate) config: ServiceConfig,
    pub(crate) queue: Bounded<Envelope<D, P>>,
    /// The catalog: per-dataset stores behind per-dataset locks, so
    /// writes to one dataset never serialize reads of another.
    pub(crate) catalog: Catalog<D, P>,
    /// Tile forests keyed by `(DatasetId, DataVersion)`, shared across
    /// all datasets.
    pub(crate) cache: ForestCache<D>,
    pub(crate) stats: ServiceStats,
    pub(crate) tree: TreeConfig<D>,
    pub(crate) clip: ClipConfig,
    /// The open WAL writers when the service is durable (`None`:
    /// in-memory only).
    pub(crate) durability: Option<Durability>,
}

impl<const D: usize, P> SharedState<D, P>
where
    P: Partitioner<D> + PersistPartitioner,
{
    /// Build a dataset store (forest through the cache, so the build is
    /// counted) and register it — the synchronous creation path shared
    /// by `start` and the queued `CreateDataset` admin op.
    pub(crate) fn create_dataset_now(
        &self,
        name: &str,
        partitioner: P,
        objects: Vec<Rect<D>>,
    ) -> Result<DatasetId, RequestError> {
        // Cheap pre-check: do not pay a forest build for a name clash.
        // `Catalog::create` re-checks atomically; a racing same-name
        // create still fails cleanly there (its build is wasted, not
        // leaked).
        if self.catalog.resolve(name).is_some() {
            return Err(RequestError::NameTaken(name.to_string()));
        }
        let forest = TileForest::build(
            &partitioner,
            &objects,
            self.tree,
            self.clip,
            self.config.exec_workers,
        );
        let store = DatasetStore::with_forest(partitioner, objects, Arc::new(forest.clone()))
            .with_compaction(self.config.compaction);
        let version = store.version();
        match self.catalog.create(name, store) {
            Ok(id) => {
                // File the prebuilt forest under its key; the closure
                // hands the already-built trees over, so the cache
                // counts exactly one build per dataset creation.
                let _ = self.cache.get_or_build((id, version), move || forest);
                if let Some(durability) = &self.durability {
                    let entry = self.catalog.get(id).expect("dataset was just created");
                    let store = entry.store().read().expect("dataset store poisoned");
                    durability.record_create(id, name, &store);
                }
                Ok(id)
            }
            Err(cbb_engine::CatalogError::NameTaken(name)) => Err(RequestError::NameTaken(name)),
            Err(cbb_engine::CatalogError::UnknownDataset(id)) => {
                Err(RequestError::UnknownDataset(id))
            }
            // Only recovery's `restore_dataset` can collide on an id.
            Err(cbb_engine::CatalogError::IdTaken(id)) => {
                unreachable!("create assigned an occupied id {id:?}")
            }
        }
    }

    /// Drop a dataset and evict its cached forests.
    pub(crate) fn drop_dataset_now(&self, id: DatasetId) -> bool {
        let existed = self.catalog.drop_dataset(id).is_some();
        if existed {
            self.cache.evict_dataset(id);
            if let Some(durability) = &self.durability {
                durability.record_drop(id);
            }
        }
        existed
    }

    /// Replace one dataset's objects (and optionally its partitioner),
    /// rebuilding the forest through the cache under the bumped
    /// version.
    ///
    /// The (expensive) forest build runs with **no lock held** — a swap
    /// of a big dataset must not stall other datasets' writes on the
    /// shared cache mutex, nor block this dataset's readers longer than
    /// the install itself. The store's write lock is taken only to bump
    /// and install; if a concurrent re-fit changed the tiling in that
    /// window (an admin/admin race on one dataset), the forest is
    /// rebuilt under the lock against the tiling that won.
    pub(crate) fn swap_now(
        &self,
        id: DatasetId,
        objects: Vec<Rect<D>>,
        partitioner: Option<P>,
    ) -> Result<DataVersion, RequestError>
    where
        P: Clone + PartialEq,
    {
        let Some(entry) = self.catalog.get(id) else {
            return Err(RequestError::UnknownDataset(id));
        };
        let fit = match &partitioner {
            Some(p) => p.clone(),
            None => entry
                .store()
                .read()
                .expect("dataset store poisoned")
                .partitioner()
                .clone(),
        };
        let built = TileForest::build(
            &fit,
            &objects,
            self.tree,
            self.clip,
            self.config.exec_workers,
        );
        let mut store = entry.store().write().expect("dataset store poisoned");
        let built = if partitioner.is_some() || *store.partitioner() == fit {
            built
        } else {
            TileForest::build(
                store.partitioner(),
                &objects,
                self.tree,
                self.clip,
                self.config.exec_workers,
            )
        };
        let next = store.version().next();
        let forest = self.cache.get_or_build((id, next), move || built);
        match partitioner {
            Some(p) => store.swap_with(p, objects, forest),
            None => store.swap(objects, forest),
        }
        debug_assert_eq!(store.version(), next);
        // Persist the swapped-in state while the write lock still
        // pins it: fresh snapshot, reset WAL.
        if let Some(durability) = &self.durability {
            durability.record_swap(id, &store);
        }
        Ok(next)
    }

    /// Per-dataset report rows (brief read lock per store). The
    /// occupancy distribution is rebuilt fresh per call through the
    /// shared histogram type — it is a *current-state* distribution,
    /// not an accumulating series.
    pub(crate) fn dataset_reports(&self) -> Vec<DatasetReport> {
        self.catalog
            .ids()
            .into_iter()
            .filter_map(|id| {
                let entry = self.catalog.get(id)?;
                let store = entry.store().read().expect("dataset store poisoned");
                let occupancy = Histogram::standalone();
                for load in store.tile_loads() {
                    occupancy.observe(load);
                }
                Some(DatasetReport {
                    id,
                    name: entry.name().to_string(),
                    version: store.version(),
                    live_objects: store.live_count(),
                    arena_slots: store.arena_len(),
                    free_slots: store.free_slots(),
                    compactions: store.compactions(),
                    write_batches: store.write_batches(),
                    updates_applied: store.updates_applied(),
                    delta_nodes_allocated: store.delta_nodes_allocated(),
                    load_imbalance: store.load_imbalance(),
                    occupancy: occupancy.snapshot(),
                })
            })
            .collect()
    }

    /// Refresh every **view-synced** metric from its source of truth:
    /// the forest cache's build/hit counters and the per-dataset state
    /// gauges. Called on scrape/report — these series update at read
    /// time, not continuously. Gauges of a dropped dataset keep their
    /// last value (series are never unregistered; the `dataset` label
    /// identifies stale rows).
    pub(crate) fn sync_views(&self) -> Vec<DatasetReport> {
        self.stats.forest_builds.store(self.cache.builds());
        self.stats.forest_cache_hits.store(self.cache.hits());
        let reports = self.dataset_reports();
        let registry = self.stats.registry();
        if registry.is_enabled() {
            for report in &reports {
                let labels = &[("dataset", report.name.as_str())][..];
                registry
                    .gauge(names::DS_LIVE, "Live (queryable) objects.", labels)
                    .set(report.live_objects as i64);
                registry
                    .gauge(
                        names::DS_SLOTS,
                        "Arena slots (live + tombstoned + reclaimed).",
                        labels,
                    )
                    .set(report.arena_slots as i64);
                registry
                    .gauge(
                        names::DS_VERSION,
                        "Current data version (bumps per applied write batch or swap).",
                        labels,
                    )
                    .set(report.version.0 as i64);
                registry
                    .float_gauge(
                        names::DS_IMBALANCE,
                        "Max-tile / mean-tile live objects (1.0 = perfectly balanced).",
                        labels,
                    )
                    .set(report.load_imbalance);
                registry
                    .gauge(
                        names::DS_OCC_P50,
                        "Median tile occupancy (objects in the median non-empty tile).",
                        labels,
                    )
                    .set(report.occupancy_p50() as i64);
                registry
                    .gauge(
                        names::DS_OCC_P99,
                        "99th-percentile tile occupancy — the partition-drift tail.",
                        labels,
                    )
                    .set(report.occupancy_p99() as i64);
            }
        }
        reports
    }
}

/// Everything [`QueryService::scrape`] returns: the rendered text and
/// JSON expositions plus the structured snapshot they were rendered
/// from.
#[derive(Clone, Debug)]
pub struct Scrape {
    /// Prometheus-style text exposition (`# HELP`/`# TYPE` + samples).
    pub text: String,
    /// The same snapshot as a JSON document.
    pub json: String,
    /// The structured snapshot (programmatic access).
    pub snapshot: TelemetrySnapshot,
}

/// A multi-threaded query service over a **catalog of named spatial
/// datasets**.
///
/// ```text
///  submit()/try_submit()          dispatchers               catalog
///  ───────────────────▶ bounded ─▶ micro-batch ─▶ ds A ─ RwLock<DatasetStore>
///        handles ◀──────  MPMC  ◀─  (size or   ─▶ ds B ─ RwLock<DatasetStore>
///   (wait per request)   queue      deadline)        forests in one
///                                                 (DatasetId, DataVersion)
///                                                    keyed ForestCache
/// ```
///
/// Every data request names its target dataset; the batcher groups a
/// micro-batch **per dataset**, so a write burst into dataset A holds
/// only A's lock while reads of dataset B proceed under B's. Stores are
/// mutable (`Insert`/`Delete`/`UpdateBatch` coalesce into one
/// delta-apply and one version bump per dataset per micro-batch, no
/// rebuild), datasets are created/dropped/swapped through queued admin
/// requests with the same graceful-drain guarantee as everything else,
/// and [`Request::CrossJoin`] joins two served datasets against each
/// other re-using both sides' cached tile forests.
/// [`QueryService::shutdown`] closes admission, drains the queue —
/// every accepted request is answered — and joins the dispatcher
/// threads.
///
/// [`QueryService::start`] preserves the pre-catalog single-dataset
/// surface: it registers one dataset named
/// [`DEFAULT_DATASET`] and the shim methods
/// ([`QueryService::swap_data`], [`QueryService::data_version`],
/// [`QueryService::live_object_count`]) target it.
pub struct QueryService<const D: usize, P> {
    shared: Arc<SharedState<D, P>>,
    dispatchers: Vec<JoinHandle<()>>,
    /// The id of the `start`-time dataset (`None` for a service started
    /// with an empty catalog).
    default_dataset: Option<DatasetId>,
}

impl<const D: usize, P> QueryService<D, P>
where
    P: Partitioner<D>
        + PersistPartitioner
        + Clone
        + PartialEq
        + std::fmt::Debug
        + Send
        + Sync
        + 'static,
{
    /// Start with an **empty catalog**: no dataset exists until
    /// [`Self::create_dataset`] (or a queued
    /// [`Request::CreateDataset`]) registers one. `tree`/`clip`
    /// configure every per-tile index the service will ever build.
    ///
    /// With [`ServiceConfig::durability`] set, any catalog persisted
    /// by a previous incarnation under the same root is **recovered
    /// before the first request is admitted**: snapshots loaded, WAL
    /// tails replayed (torn tails truncated), dataset ids preserved.
    /// Recovery failure panics — serving fresh over an undecipherable
    /// durable state would silently shed acknowledged writes.
    ///
    /// **Deprecated shim** — prefer
    /// [`ServiceBuilder::build_catalog`](crate::ServiceBuilder), which
    /// exposes the same knobs fluently plus the shard count, and
    /// returns the sharded service a one-shard deployment degrades to.
    pub fn start_catalog(config: ServiceConfig, tree: TreeConfig<D>, clip: ClipConfig) -> Self {
        assert!(config.dispatchers >= 1, "need at least one dispatcher");
        assert!(config.batch_max >= 1, "a batch holds at least one request");
        let catalog = Catalog::new();
        let cache = ForestCache::with_capacity(config.forest_cache_capacity);
        let stats = ServiceStats::new(&config.telemetry);
        let durability = config.durability.as_ref().map(|cfg| {
            let (durability, recovery) =
                Durability::recover(cfg, &catalog, &cache, tree, clip, config.exec_workers)
                    .unwrap_or_else(|err| {
                        panic!(
                            "durability recovery failed under {}: {err}",
                            cfg.root.display()
                        )
                    });
            stats.record_recovery(
                recovery.datasets.len() as u64,
                recovery.records_replayed,
                recovery.pages_read,
            );
            durability
        });
        let queue = Bounded::new(config.queue_capacity);
        let shared = Arc::new(SharedState {
            config,
            queue,
            catalog,
            cache,
            stats,
            tree,
            clip,
            durability,
        });
        let dispatchers = (0..shared.config.dispatchers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("cbb-serve-{i}"))
                    .spawn(move || {
                        while let Some((batch, opened)) = collect_batch(
                            &shared.queue,
                            shared.config.batch_max,
                            shared.config.batch_deadline,
                        ) {
                            run_batch(&shared, batch, opened);
                        }
                    })
                    .expect("spawn dispatcher")
            })
            .collect();
        QueryService {
            shared,
            dispatchers,
            default_dataset: None,
        }
    }

    /// Start the service with one dataset (named [`DEFAULT_DATASET`])
    /// built from `objects` — the pre-catalog single-store surface.
    /// Further datasets can be created alongside it at any time.
    ///
    /// With durability configured and a previous incarnation's state
    /// on disk, the **recovered** default dataset wins: `objects` and
    /// `partitioner` are ignored in favour of the durable state (the
    /// acknowledged writes it holds must not be shed by a restart).
    ///
    /// **Deprecated shim** — prefer
    /// [`ServiceBuilder::build`](crate::ServiceBuilder).
    pub fn start(
        config: ServiceConfig,
        partitioner: P,
        objects: Vec<Rect<D>>,
        tree: TreeConfig<D>,
        clip: ClipConfig,
    ) -> Self {
        let mut service = Self::start_catalog(config, tree, clip);
        let id = match service.shared.catalog.resolve(DEFAULT_DATASET) {
            Some(recovered) => recovered,
            None => service
                .shared
                .create_dataset_now(DEFAULT_DATASET, partitioner, objects)
                .expect("fresh catalog cannot have a name clash"),
        };
        service.default_dataset = Some(id);
        service
    }

    /// Submit a request, blocking while the queue is full
    /// (backpressure). The handle resolves once a dispatcher has
    /// executed the batch carrying the request.
    pub fn submit(
        &self,
        request: Request<D, P>,
    ) -> Result<CompletionHandle<Completion>, Closed<Request<D, P>>> {
        let (promise, handle) = completion_pair();
        let envelope = Envelope {
            request,
            promise,
            enqueued: Instant::now(),
        };
        // Count BEFORE the push: a dispatcher can pop and complete the
        // envelope before this thread runs another instruction, and a
        // concurrent report() must never see completed > submitted (nor
        // a negative queue depth).
        self.shared.stats.submitted.inc();
        self.shared.stats.queue_depth.inc();
        match self.shared.queue.push(envelope) {
            Ok(()) => Ok(handle),
            Err(Closed(envelope)) => {
                self.shared.stats.submitted.sub(1);
                self.shared.stats.queue_depth.dec();
                self.shared.stats.rejected.inc();
                Err(Closed(envelope.request))
            }
        }
    }

    /// Submit without blocking: a full queue is an immediate
    /// [`TryPushError::Full`] — the caller sheds the load instead of
    /// queueing behind it.
    pub fn try_submit(
        &self,
        request: Request<D, P>,
    ) -> Result<CompletionHandle<Completion>, TryPushError<Request<D, P>>> {
        let (promise, handle) = completion_pair();
        let envelope = Envelope {
            request,
            promise,
            enqueued: Instant::now(),
        };
        // Same ordering as `submit`: never let completed race ahead.
        self.shared.stats.submitted.inc();
        self.shared.stats.queue_depth.inc();
        match self.shared.queue.try_push(envelope) {
            Ok(()) => Ok(handle),
            Err(err) => {
                self.shared.stats.submitted.sub(1);
                self.shared.stats.queue_depth.dec();
                self.shared.stats.rejected.inc();
                Err(match err {
                    TryPushError::Full(envelope) => {
                        // A full-queue refusal is a load *shed* — the
                        // signal the drop/shed counter makes visible.
                        self.shared.stats.shed.inc();
                        TryPushError::Full(envelope.request)
                    }
                    TryPushError::Closed(envelope) => TryPushError::Closed(envelope.request),
                })
            }
        }
    }

    // ── Catalog surface ────────────────────────────────────────────

    /// Create a named dataset through the queue and wait for its id.
    /// The admin op rides the same micro-batches as data requests —
    /// ordering relative to other queued work is the queue order.
    pub fn create_dataset(
        &self,
        name: &str,
        partitioner: P,
        objects: Vec<Rect<D>>,
    ) -> Result<DatasetId, RequestError> {
        let response = self
            .submit(Request::CreateDataset {
                name: name.to_string(),
                partitioner,
                objects,
            })
            .expect("service is open")
            .wait()
            .expect("admitted requests are always answered")
            .response;
        match response {
            crate::Response::Created(id) => Ok(id),
            crate::Response::Failed(err) => Err(err),
            other => unreachable!("create answered with {other:?}"),
        }
    }

    /// Drop a dataset through the queue; `true` if it existed. Its id
    /// is never reused, and its cached forests are evicted.
    pub fn drop_dataset(&self, id: DatasetId) -> bool {
        self.submit(Request::DropDataset { dataset: id })
            .expect("service is open")
            .wait()
            .expect("admitted requests are always answered")
            .response
            .into_dropped()
    }

    /// Replace one dataset's objects wholesale (fresh id space, forest
    /// rebuild through the cache, one version bump), waiting for the
    /// installed version.
    pub fn swap_dataset(
        &self,
        id: DatasetId,
        objects: Vec<Rect<D>>,
    ) -> Result<DataVersion, RequestError> {
        self.swap_request(id, objects, None)
    }

    /// [`Self::swap_dataset`] with a replacement partitioner — the
    /// re-fit path for data whose distribution moved (watch
    /// [`crate::DatasetReport::load_imbalance`] to know when).
    pub fn swap_dataset_with(
        &self,
        id: DatasetId,
        partitioner: P,
        objects: Vec<Rect<D>>,
    ) -> Result<DataVersion, RequestError> {
        self.swap_request(id, objects, Some(partitioner))
    }

    fn swap_request(
        &self,
        id: DatasetId,
        objects: Vec<Rect<D>>,
        partitioner: Option<P>,
    ) -> Result<DataVersion, RequestError> {
        let response = self
            .submit(Request::SwapData {
                dataset: id,
                objects,
                partitioner,
            })
            .expect("service is open")
            .wait()
            .expect("admitted requests are always answered")
            .response;
        match response {
            crate::Response::Swapped(version) => Ok(version),
            crate::Response::Failed(err) => Err(err),
            other => unreachable!("swap answered with {other:?}"),
        }
    }

    /// Resolve a dataset name to its id (immediate catalog lookup; does
    /// not ride the queue).
    pub fn dataset_id(&self, name: &str) -> Option<DatasetId> {
        self.shared.catalog.resolve(name)
    }

    /// `(id, name)` of every live dataset, ascending by id.
    pub fn datasets(&self) -> Vec<(DatasetId, String)> {
        self.shared
            .catalog
            .ids()
            .into_iter()
            .filter_map(|id| {
                let entry = self.shared.catalog.get(id)?;
                Some((id, entry.name().to_string()))
            })
            .collect()
    }

    /// `(id, name, partitioner)` of every live dataset, ascending by
    /// id (brief read lock per store). The sharded router uses this to
    /// rebuild its route table from recovered shards.
    pub fn dataset_partitioners(&self) -> Vec<(DatasetId, String, P)> {
        self.shared
            .catalog
            .ids()
            .into_iter()
            .filter_map(|id| {
                let entry = self.shared.catalog.get(id)?;
                let partitioner = entry
                    .store()
                    .read()
                    .expect("dataset store poisoned")
                    .partitioner()
                    .clone();
                Some((id, entry.name().to_string(), partitioner))
            })
            .collect()
    }

    /// The data version one dataset currently serves (`None` for
    /// unknown ids). Advances by one per applied write micro-batch and
    /// per swap of that dataset — other datasets' writes never move it.
    pub fn dataset_version(&self, id: DatasetId) -> Option<DataVersion> {
        let entry = self.shared.catalog.get(id)?;
        let version = entry
            .store()
            .read()
            .expect("dataset store poisoned")
            .version();
        Some(version)
    }

    /// Number of live (queryable) objects in one dataset.
    pub fn dataset_live_count(&self, id: DatasetId) -> Option<usize> {
        let entry = self.shared.catalog.get(id)?;
        let count = entry
            .store()
            .read()
            .expect("dataset store poisoned")
            .live_count();
        Some(count)
    }

    // ── Single-dataset shims (the pre-catalog API surface) ─────────

    /// The dataset [`Self::start`] registered. Panics on a service
    /// started via [`Self::start_catalog`] (it has no default).
    pub fn default_dataset(&self) -> DatasetId {
        self.default_dataset
            .expect("service was started with an empty catalog; name a dataset explicitly")
    }

    /// Replace the default dataset (see [`Self::swap_dataset`]).
    ///
    /// The existing partitioner is **kept as-is**. That is correct for
    /// any tiling, but a data-fitted partitioner (an
    /// [`cbb_engine::AdaptiveGrid`] sampled from the *old* data, say)
    /// keeps its old boundaries — if the new data's distribution or
    /// domain differs, load balance degrades silently even though
    /// answers stay exact. Re-fit with [`Self::swap_data_with`] in that
    /// case.
    pub fn swap_data(&self, objects: Vec<Rect<D>>) {
        self.swap_dataset(self.default_dataset(), objects)
            .expect("default dataset exists");
    }

    /// [`Self::swap_data`] with a replacement partitioner.
    pub fn swap_data_with(&self, partitioner: P, objects: Vec<Rect<D>>) {
        self.swap_dataset_with(self.default_dataset(), partitioner, objects)
            .expect("default dataset exists");
    }

    /// The default dataset's data version (see
    /// [`Self::dataset_version`]).
    pub fn data_version(&self) -> DataVersion {
        self.dataset_version(self.default_dataset())
            .expect("default dataset exists")
    }

    /// Number of live (queryable) objects in the default dataset.
    pub fn live_object_count(&self) -> usize {
        self.dataset_live_count(self.default_dataset())
            .expect("default dataset exists")
    }

    // ── Lifecycle ──────────────────────────────────────────────────

    /// Requests currently queued (admitted, not yet picked up).
    pub fn queued_len(&self) -> usize {
        self.shared.queue.len()
    }

    /// A snapshot of the service counters, including one
    /// [`crate::DatasetReport`] row per live dataset. This is a **view
    /// over the telemetry registry** — the same cells
    /// [`Self::scrape`] exposes. With telemetry disabled the
    /// service-level counters read zero (dataset rows still reflect
    /// store state, which is tracked by the stores themselves).
    pub fn report(&self) -> ServiceReport {
        let datasets = self.shared.sync_views();
        self.shared.stats.snapshot(datasets)
    }

    /// Scrape the telemetry registry: view-synced metrics are
    /// refreshed, then the whole registry is rendered as both a
    /// Prometheus-style text exposition and a JSON document (plus the
    /// structured snapshot). Empty when telemetry is disabled.
    pub fn scrape(&self) -> Scrape {
        self.shared.sync_views();
        let snapshot = self.shared.stats.registry().snapshot();
        Scrape {
            text: snapshot.render_text(),
            json: snapshot.to_json(),
            snapshot,
        }
    }

    /// The slowest requests answered so far (top-K by end-to-end
    /// latency, slowest first), each with its per-phase breakdown and
    /// the work counters attributed to it. Empty when telemetry is
    /// disabled.
    pub fn slow_queries(&self) -> Vec<SlowQuery> {
        self.shared.stats.slow().entries()
    }

    /// Close admission without joining the dispatchers: every
    /// in-flight request still completes, later `submit`s fail with
    /// [`Closed`]. Used by the sharded router to stop all shards
    /// *before* draining any of them; [`Self::shutdown`] remains the
    /// close-drain-join one-call form.
    pub fn close(&self) {
        self.shared.queue.close();
    }

    /// Graceful shutdown: stop admission, let the dispatchers drain the
    /// queue — every accepted request (admin ops included) is answered
    /// — and join them. The final counter snapshot is returned.
    pub fn shutdown(mut self) -> ServiceReport {
        self.shared.queue.close();
        for handle in self.dispatchers.drain(..) {
            handle.join().expect("dispatcher panicked");
        }
        self.report()
    }
}

impl<const D: usize, P> Drop for QueryService<D, P> {
    fn drop(&mut self) {
        // Dropping without `shutdown()` still drains and joins — no
        // detached threads, no abandoned (hanging) handles.
        self.shared.queue.close();
        for handle in self.dispatchers.drain(..) {
            let _ = handle.join();
        }
    }
}
