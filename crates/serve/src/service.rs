//! The long-running query service: admission queue, dispatcher pool,
//! versioned engine state, graceful shutdown.

use std::sync::atomic::Ordering;
use std::sync::{Arc, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cbb_core::ClipConfig;
use cbb_engine::{BatchExecutor, DataVersion, ForestCache, Partitioner, TileForest};
use cbb_geom::Rect;
use cbb_rtree::TreeConfig;

use crate::batcher::{collect_batch, run_batch};
use crate::handle::{completion_pair, CompletionHandle, Promise};
use crate::queue::{Bounded, Closed, TryPushError};
use crate::request::{Completion, Request};
use crate::stats::{ServiceReport, ServiceStats};

/// Service tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Admission bound: `submit` blocks (and `try_submit` fails) once
    /// this many requests wait unserved.
    pub queue_capacity: usize,
    /// Flush a micro-batch at this many requests.
    pub batch_max: usize,
    /// Flush a micro-batch this long after it opened, full or not —
    /// the latency bound batching is allowed to add.
    pub batch_deadline: Duration,
    /// Dispatcher (consumer) threads forming and executing batches.
    pub dispatchers: usize,
    /// Worker threads the executor uses *inside* one batch.
    pub exec_workers: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_capacity: 1024,
            batch_max: 64,
            batch_deadline: Duration::from_millis(2),
            dispatchers: 1,
            exec_workers: 4,
        }
    }
}

impl ServiceConfig {
    /// Per-request execution: every batch holds exactly one request.
    /// The no-batching baseline `serve_scale` measures against.
    pub fn unbatched() -> Self {
        ServiceConfig {
            batch_max: 1,
            batch_deadline: Duration::ZERO,
            ..Self::default()
        }
    }
}

/// One queued request: payload, completion promise, admission stamp.
pub(crate) struct Envelope<const D: usize> {
    pub(crate) request: Request<D>,
    pub(crate) promise: Promise<Completion>,
    pub(crate) enqueued: Instant,
}

/// Versioned engine state: the executor (with its `Arc`-shared tile
/// forest) for the current data version.
pub(crate) struct EngineState<const D: usize, P> {
    pub(crate) version: DataVersion,
    pub(crate) executor: BatchExecutor<D, P>,
}

/// Everything dispatchers share.
pub(crate) struct SharedState<const D: usize, P> {
    pub(crate) config: ServiceConfig,
    pub(crate) queue: Bounded<Envelope<D>>,
    pub(crate) state: RwLock<EngineState<D, P>>,
    pub(crate) cache: ForestCache<D>,
    pub(crate) stats: ServiceStats,
    pub(crate) tree: TreeConfig<D>,
    pub(crate) clip: ClipConfig,
}

/// A multi-threaded query service over one spatial dataset.
///
/// ```text
///  submit()/try_submit()          dispatchers              engine
///  ───────────────────▶ bounded ─▶ micro-batch ─▶ BatchExecutor / join
///        handles ◀──────  MPMC  ◀─  (size or  ◀──  over the cached
///   (wait per request)   queue      deadline)       TileForest
/// ```
///
/// Construction partitions the dataset and bulk-loads the per-tile
/// clipped trees once (through the [`ForestCache`], keyed by
/// [`DataVersion`]); every range/kNN/join request is then served from
/// those trees. The store is **mutable**: `Insert`/`Delete`/
/// `UpdateBatch` requests ride the same queue, are coalesced per
/// micro-batch into one atomic delta-apply with a single version bump
/// (untouched tiles shared copy-on-write with the previous version —
/// no rebuild), and requests admitted after a write completes observe
/// it. [`QueryService::swap_data`] remains the wholesale path: it
/// replaces the dataset, re-keys the id space, and rebuilds through
/// the cache. [`QueryService::shutdown`] closes admission, drains the
/// queue — every accepted request is answered — and joins the
/// dispatcher threads.
pub struct QueryService<const D: usize, P> {
    shared: Arc<SharedState<D, P>>,
    dispatchers: Vec<JoinHandle<()>>,
}

impl<const D: usize, P> QueryService<D, P>
where
    P: Partitioner<D> + Clone + Send + Sync + 'static,
{
    /// Build the engine state for `objects` and start the dispatcher
    /// pool. `tree`/`clip` configure every per-tile index, exactly as
    /// they would a direct [`BatchExecutor::build`].
    pub fn start(
        config: ServiceConfig,
        partitioner: P,
        objects: Vec<Rect<D>>,
        tree: TreeConfig<D>,
        clip: ClipConfig,
    ) -> Self {
        assert!(config.dispatchers >= 1, "need at least one dispatcher");
        assert!(config.batch_max >= 1, "a batch holds at least one request");
        let cache = ForestCache::new();
        let version = DataVersion::initial();
        let forest = cache.get_or_build(version, || {
            TileForest::build(&partitioner, &objects, tree, clip, config.exec_workers)
        });
        let executor = BatchExecutor::with_forest(partitioner, objects, forest);
        let shared = Arc::new(SharedState {
            config,
            queue: Bounded::new(config.queue_capacity),
            state: RwLock::new(EngineState { version, executor }),
            cache,
            stats: ServiceStats::default(),
            tree,
            clip,
        });
        let dispatchers = (0..config.dispatchers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("cbb-serve-{i}"))
                    .spawn(move || {
                        while let Some(batch) = collect_batch(
                            &shared.queue,
                            shared.config.batch_max,
                            shared.config.batch_deadline,
                        ) {
                            run_batch(&shared, batch);
                        }
                    })
                    .expect("spawn dispatcher")
            })
            .collect();
        QueryService {
            shared,
            dispatchers,
        }
    }

    /// Submit a request, blocking while the queue is full
    /// (backpressure). The handle resolves once a dispatcher has
    /// executed the batch carrying the request.
    pub fn submit(
        &self,
        request: Request<D>,
    ) -> Result<CompletionHandle<Completion>, Closed<Request<D>>> {
        let (promise, handle) = completion_pair();
        let envelope = Envelope {
            request,
            promise,
            enqueued: Instant::now(),
        };
        // Count BEFORE the push: a dispatcher can pop and complete the
        // envelope before this thread runs another instruction, and a
        // concurrent report() must never see completed > submitted.
        self.shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
        match self.shared.queue.push(envelope) {
            Ok(()) => Ok(handle),
            Err(Closed(envelope)) => {
                self.shared.stats.submitted.fetch_sub(1, Ordering::Relaxed);
                self.shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
                Err(Closed(envelope.request))
            }
        }
    }

    /// Submit without blocking: a full queue is an immediate
    /// [`TryPushError::Full`] — the caller sheds the load instead of
    /// queueing behind it.
    pub fn try_submit(
        &self,
        request: Request<D>,
    ) -> Result<CompletionHandle<Completion>, TryPushError<Request<D>>> {
        let (promise, handle) = completion_pair();
        let envelope = Envelope {
            request,
            promise,
            enqueued: Instant::now(),
        };
        // Same ordering as `submit`: never let completed race ahead.
        self.shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
        match self.shared.queue.try_push(envelope) {
            Ok(()) => Ok(handle),
            Err(err) => {
                self.shared.stats.submitted.fetch_sub(1, Ordering::Relaxed);
                self.shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
                Err(match err {
                    TryPushError::Full(envelope) => TryPushError::Full(envelope.request),
                    TryPushError::Closed(envelope) => TryPushError::Closed(envelope.request),
                })
            }
        }
    }

    /// Replace the dataset: bumps the [`DataVersion`], rebuilds the tile
    /// forest through the cache (in-flight batches finish on the old
    /// trees first — the state lock serialises the switch), and installs
    /// a fresh executor. Requests submitted after this call see the new
    /// data.
    ///
    /// The existing partitioner is **kept as-is**. That is correct for
    /// any tiling, but a data-fitted partitioner (an
    /// [`cbb_engine::AdaptiveGrid`] sampled from the *old* data, say)
    /// keeps its old boundaries — if the new data's distribution or
    /// domain differs, load balance degrades silently even though
    /// answers stay exact. Re-fit with [`Self::swap_data_with`] in that
    /// case.
    pub fn swap_data(&self, objects: Vec<Rect<D>>) {
        let mut state = self.shared.state.write().expect("service state poisoned");
        let partitioner = state.executor.partitioner().clone();
        self.install(&mut state, partitioner, objects);
    }

    /// [`Self::swap_data`] with a replacement partitioner — the re-fit
    /// path for data whose distribution moved (sample a fresh
    /// [`cbb_engine::AdaptiveGrid`]/`QuadtreePartitioner` from the new
    /// objects and pass it here).
    pub fn swap_data_with(&self, partitioner: P, objects: Vec<Rect<D>>) {
        let mut state = self.shared.state.write().expect("service state poisoned");
        self.install(&mut state, partitioner, objects);
    }

    /// Bump the version and install a fresh forest + executor under the
    /// held write lock.
    fn install(&self, state: &mut EngineState<D, P>, partitioner: P, objects: Vec<Rect<D>>) {
        state.version.bump();
        let forest = self.shared.cache.get_or_build(state.version, || {
            TileForest::build(
                &partitioner,
                &objects,
                self.shared.tree,
                self.shared.clip,
                self.shared.config.exec_workers,
            )
        });
        state.executor = BatchExecutor::with_forest(partitioner, objects, forest);
    }

    /// The data version requests are currently served from. Advances by
    /// one per `swap_data`/`swap_data_with` call and per micro-batch
    /// that applied writes (all writes sharing a batch ride one bump).
    pub fn data_version(&self) -> DataVersion {
        self.shared
            .state
            .read()
            .expect("service state poisoned")
            .version
    }

    /// Number of live (queryable) objects in the store.
    pub fn live_object_count(&self) -> usize {
        self.shared
            .state
            .read()
            .expect("service state poisoned")
            .executor
            .live_count()
    }

    /// Requests currently queued (admitted, not yet picked up).
    pub fn queued_len(&self) -> usize {
        self.shared.queue.len()
    }

    /// A snapshot of the service counters.
    pub fn report(&self) -> ServiceReport {
        self.shared.stats.snapshot(self.shared.cache.builds())
    }

    /// Graceful shutdown: stop admission, let the dispatchers drain the
    /// queue — every accepted request is answered — and join them. The
    /// final counter snapshot is returned.
    pub fn shutdown(mut self) -> ServiceReport {
        self.shared.queue.close();
        for handle in self.dispatchers.drain(..) {
            handle.join().expect("dispatcher panicked");
        }
        self.report()
    }
}

impl<const D: usize, P> Drop for QueryService<D, P> {
    fn drop(&mut self) {
        // Dropping without `shutdown()` still drains and joins — no
        // detached threads, no abandoned (hanging) handles.
        self.shared.queue.close();
        for handle in self.dispatchers.drain(..) {
            let _ = handle.join();
        }
    }
}
