//! Oracle tests for the partitioned parallel executor: for every R-tree
//! variant and both per-tile strategies, the partitioned join must return
//! *exactly* the pair count of `brute_force_pairs` and of the sequential
//! `stt`/`inlj` — including workloads engineered so that most objects span
//! tile boundaries (the duplicate-elimination edge case) and the
//! degenerate 1×1 grid (pure overhead, no partitioning effect).

use cbb_core::{ClipConfig, ClipMethod};
use cbb_datasets::skew::clustered_with_layout;
use cbb_engine::{
    load_imbalance, parallel_range_queries, partitioned_join, sequential_join, AdaptiveGrid,
    JoinAlgo, JoinPlan, QuadtreePartitioner, SplitPolicy, UniformGrid,
};
use cbb_geom::{Point, Rect, SplitMix64};
use cbb_joins::{brute_force_pairs, inlj, stt, JoinResult};
use cbb_rtree::{AccessStats, ClippedRTree, DataId, RTree, TreeConfig, Variant};

const ALL_ALGOS: [JoinAlgo; 4] = [
    JoinAlgo::Stt,
    JoinAlgo::Inlj,
    JoinAlgo::Sweep,
    JoinAlgo::Auto,
];

fn r2(lx: f64, ly: f64, hx: f64, hy: f64) -> Rect<2> {
    Rect::new(Point([lx, ly]), Point([hx, hy]))
}

const WORLD: Rect<2> = Rect {
    lo: Point([0.0, 0.0]),
    hi: Point([500.0, 500.0]),
};

fn boxes(n: usize, seed: u64, max_side: f64) -> Vec<Rect<2>> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            let x = rng.gen_range(0.0, 480.0);
            let y = rng.gen_range(0.0, 480.0);
            let w = rng.gen_range(0.5, max_side);
            let h = rng.gen_range(0.5, max_side);
            r2(x, y, x + w, y + h)
        })
        .collect()
}

fn plan(variant: Variant, per_dim: usize, workers: usize) -> JoinPlan<2> {
    JoinPlan::new(
        UniformGrid::new(WORLD, per_dim),
        TreeConfig::tiny(variant),
        ClipConfig::paper_default::<2>(ClipMethod::Stairline),
        workers,
    )
}

fn global_clipped(objects: &[Rect<2>], variant: Variant) -> ClippedRTree<2> {
    let items: Vec<(Rect<2>, DataId)> = objects
        .iter()
        .enumerate()
        .map(|(i, b)| (*b, DataId(i as u32)))
        .collect();
    ClippedRTree::from_tree(
        RTree::bulk_load(TreeConfig::tiny(variant).with_world(WORLD), &items),
        ClipConfig::paper_default::<2>(ClipMethod::Stairline),
    )
}

#[test]
fn partitioned_join_matches_oracles_on_all_variants() {
    let a = boxes(220, 31, 25.0);
    let b = boxes(260, 32, 25.0);
    let expected = brute_force_pairs(&a, &b);
    for variant in Variant::ALL {
        let left = global_clipped(&a, variant);
        let right = global_clipped(&b, variant);
        assert_eq!(stt(&left, &right, true).pairs, expected, "{variant:?} stt");
        assert_eq!(inlj(&a, &right, true).pairs, expected, "{variant:?} inlj");
        for algo in ALL_ALGOS {
            for workers in [1, 3] {
                let p = plan(variant, 4, workers).with_algo(algo);
                assert_eq!(
                    partitioned_join(&p, &a, &b).pairs,
                    expected,
                    "{variant:?}/{algo:?} workers={workers}"
                );
            }
        }
    }
}

#[test]
fn tile_spanning_objects_are_counted_exactly_once() {
    // 125-wide tiles, objects up to 180 wide: nearly everything spans
    // multiple tiles and many pairs intersect inside several tiles.
    let a = boxes(100, 33, 180.0);
    let b = boxes(120, 34, 180.0);
    let expected = brute_force_pairs(&a, &b);
    for variant in Variant::ALL {
        for algo in ALL_ALGOS {
            let p = plan(variant, 4, 4).with_algo(algo);
            assert_eq!(
                partitioned_join(&p, &a, &b).pairs,
                expected,
                "{variant:?}/{algo:?}"
            );
        }
    }
}

#[test]
fn degenerate_1x1_grid_equals_sequential_exactly() {
    let a = boxes(150, 35, 30.0);
    let b = boxes(170, 36, 30.0);
    for variant in [Variant::Quadratic, Variant::RRStar] {
        for algo in ALL_ALGOS {
            let p = plan(variant, 1, 2).with_algo(algo);
            let par = partitioned_join(&p, &a, &b);
            let seq = sequential_join(&p, &a, &b);
            // One tile holding everything: identical trees, identical
            // traversal, so *all* counters match, not just pairs.
            assert_eq!(par, seq, "{variant:?}/{algo:?}");
        }
    }
}

#[test]
fn partitioned_counters_merge_consistently() {
    let a = boxes(200, 37, 40.0);
    let b = boxes(200, 38, 40.0);
    let p = plan(Variant::RStar, 4, 3);
    let r: JoinResult = partitioned_join(&p, &a, &b);
    // Merged counters come from real per-tile work.
    assert!(r.pairs > 0);
    assert!(r.leaf_accesses() > 0);
    assert!(r.leaf_accesses() == r.leaf_accesses_left + r.leaf_accesses_right);
    // JoinResult::sum agrees with operator merging.
    let halves = [r, JoinResult::default()];
    assert_eq!(JoinResult::sum(halves.iter()), r);
    let mut acc = JoinResult::default();
    acc += r;
    acc += &JoinResult::default();
    assert_eq!(acc, r);
}

#[test]
fn clipping_helps_inside_tiles() {
    // The whole point of the subsystem: per-tile probes still benefit
    // from clip pruning. Compare clipped vs unclipped partitioned INLJ.
    let a = boxes(400, 39, 12.0);
    let b = boxes(500, 40, 12.0);
    let clipped = plan(Variant::RStar, 4, 4).with_algo(JoinAlgo::Inlj);
    let unclipped = clipped.with_clips(false);
    let rc = partitioned_join(&clipped, &a, &b);
    let ru = partitioned_join(&unclipped, &a, &b);
    assert_eq!(rc.pairs, ru.pairs);
    assert!(rc.clip_prunes > 0, "clip points never pruned anything");
    assert!(
        rc.leaf_accesses_right <= ru.leaf_accesses_right,
        "clipping increased per-tile I/O"
    );
}

/// Shared-layout clustered sides: both concentrate at the same Zipf
/// blobs, so a uniform grid goes hot exactly where the join pairs are.
fn skewed_sides(n: usize, seed: u64) -> (Vec<Rect<2>>, Vec<Rect<2>>, Rect<2>) {
    let left = clustered_with_layout::<2>(n, 6, 20_000.0, 0.1, seed, seed);
    let right = clustered_with_layout::<2>(n, 6, 20_000.0, 0.1, seed, seed ^ 0xFACE);
    let domain = left.domain.union(&right.domain);
    (left.boxes, right.boxes, domain)
}

#[test]
fn adaptive_partitioner_matches_oracles_on_all_variants() {
    let (a, b, domain) = skewed_sides(320, 51);
    let expected = brute_force_pairs(&a, &b);
    let mut sample = a.clone();
    sample.extend_from_slice(&b);
    let adaptive = AdaptiveGrid::from_sample(domain, [4, 4], &sample);
    for variant in Variant::ALL {
        for algo in ALL_ALGOS {
            let p = JoinPlan::new(
                adaptive.clone(),
                TreeConfig::tiny(variant),
                ClipConfig::paper_default::<2>(ClipMethod::Stairline),
                3,
            )
            .with_algo(algo);
            assert_eq!(
                partitioned_join(&p, &a, &b).pairs,
                expected,
                "{variant:?}/{algo:?} adaptive"
            );
            assert_eq!(
                sequential_join(&p, &a, &b).pairs,
                expected,
                "{variant:?}/{algo:?} sequential baseline"
            );
        }
    }
}

#[test]
fn quadtree_partitioner_matches_oracles_on_all_variants() {
    let (a, b, domain) = skewed_sides(320, 52);
    let expected = brute_force_pairs(&a, &b);
    let mut sample = a.clone();
    sample.extend_from_slice(&b);
    let quadtree = QuadtreePartitioner::build(domain, &sample, 80);
    for variant in Variant::ALL {
        for algo in ALL_ALGOS {
            let p = JoinPlan::new(
                quadtree.clone(),
                TreeConfig::tiny(variant),
                ClipConfig::paper_default::<2>(ClipMethod::Stairline),
                3,
            )
            .with_algo(algo);
            assert_eq!(
                partitioned_join(&p, &a, &b).pairs,
                expected,
                "{variant:?}/{algo:?} quadtree"
            );
            assert_eq!(
                sequential_join(&p, &a, &b).pairs,
                expected,
                "{variant:?}/{algo:?} sequential baseline"
            );
        }
    }
}

#[test]
fn two_level_scheduling_stays_exact_under_skew() {
    // The intra-tile decomposition (hot tiles → node-pair / probe-chunk
    // subtasks) must not change any counter for any partitioner.
    let (a, b, domain) = skewed_sides(400, 53);
    let mut sample = a.clone();
    sample.extend_from_slice(&b);
    let uniform = UniformGrid::new(domain, 4);
    let adaptive = AdaptiveGrid::from_sample(domain, [4, 4], &sample);
    let tree = TreeConfig::tiny(Variant::RStar);
    let clip = ClipConfig::paper_default::<2>(ClipMethod::Stairline);
    for algo in ALL_ALGOS {
        let base = JoinPlan::new(uniform, tree, clip, 3)
            .with_algo(algo)
            .with_split(SplitPolicy::Never);
        let split = base.with_split(SplitPolicy::Above(0));
        assert_eq!(
            partitioned_join(&base, &a, &b),
            partitioned_join(&split, &a, &b),
            "uniform {algo:?}"
        );
        let base = JoinPlan::new(adaptive.clone(), tree, clip, 3)
            .with_algo(algo)
            .with_split(SplitPolicy::Never);
        let split = base.clone().with_split(SplitPolicy::Above(0));
        assert_eq!(
            partitioned_join(&base, &a, &b),
            partitioned_join(&split, &a, &b),
            "adaptive {algo:?}"
        );
    }
}

#[test]
fn adaptive_partitioners_reduce_imbalance_on_clustered_data() {
    // The acceptance bar BENCH_skew.json demonstrates at scale, asserted
    // here on a small deterministic workload.
    let (a, b, domain) = skewed_sides(2_000, 54);
    let mut sample = a.clone();
    sample.extend_from_slice(&b);
    let uniform = UniformGrid::new(domain, 6);
    let adaptive = AdaptiveGrid::from_sample(domain, [6, 6], &sample);
    let quadtree = QuadtreePartitioner::build(domain, &sample, 2 * 2_000 / 36);
    let ui = load_imbalance(&uniform, &a, &b);
    let ai = load_imbalance(&adaptive, &a, &b);
    let qi = load_imbalance(&quadtree, &a, &b);
    assert!(ai < ui, "adaptive {ai:.2} not below uniform {ui:.2}");
    assert!(qi < ui, "quadtree {qi:.2} not below uniform {ui:.2}");
}

#[test]
fn batched_queries_match_sequential_and_merge_stats() {
    let objects = boxes(1_200, 41, 15.0);
    let tree = global_clipped(&objects, Variant::RRStar);
    let mut rng = SplitMix64::new(42);
    let queries: Vec<Rect<2>> = (0..300)
        .map(|_| {
            let x = rng.gen_range(0.0, 460.0);
            let y = rng.gen_range(0.0, 460.0);
            let s = rng.gen_range(1.0, 30.0);
            r2(x, y, x + s, y + s)
        })
        .collect();

    let mut seq_stats = AccessStats::new();
    let seq: Vec<Vec<DataId>> = queries
        .iter()
        .map(|q| tree.range_query_stats(q, &mut seq_stats))
        .collect();

    for workers in [1, 2, 7] {
        let out = parallel_range_queries(&tree, &queries, workers, true);
        assert_eq!(out.results, seq, "workers = {workers}");
        assert_eq!(out.stats, seq_stats, "workers = {workers}");
    }

    // AccessStats::sum helper merges like repeated absorb.
    let merged = AccessStats::sum([seq_stats, AccessStats::new()].iter());
    assert_eq!(merged, seq_stats);
}
