//! Oracle tests for shared-scan batched query execution: the fused
//! `SharedSweep` and `Auto` paths must be **byte-equal** to the
//! per-query `Descend` path across every partitioner, clip setting and
//! split policy — including empty tiles, point-extent queries and
//! queries straddling tile boundaries — and every path must return each
//! query's results in the canonical order (ascending by id). The kNN
//! half pins the clipped-MBB prefilter: identical answers, no more
//! node accesses than the plain root-MBB ordering.

use cbb_core::{ClipConfig, ClipMethod};
use cbb_engine::{
    AdaptiveGrid, AutoPolicy, DatasetStore, Partitioner, QuadtreePartitioner, QueryAlgo,
    SplitPolicy, UniformGrid,
};
use cbb_geom::{Point, Rect, SplitMix64};
use cbb_rtree::{TreeConfig, Variant};

fn r2(lx: f64, ly: f64, hx: f64, hy: f64) -> Rect<2> {
    Rect::new(Point([lx, ly]), Point([hx, hy]))
}

const WORLD: Rect<2> = Rect {
    lo: Point([0.0, 0.0]),
    hi: Point([500.0, 500.0]),
};

/// Clustered boxes: most mass in one corner so coarse grids carry many
/// EMPTY tiles, plus a sprinkle of wide tile-straddling rectangles.
fn boxes(n: usize, seed: u64) -> Vec<Rect<2>> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|i| {
            if i % 7 == 0 {
                // Wide straddler: up to 200 across — spans tiles.
                let x = rng.gen_range(0.0, 280.0);
                let y = rng.gen_range(0.0, 280.0);
                let w = rng.gen_range(40.0, 200.0);
                let h = rng.gen_range(40.0, 200.0);
                r2(x, y, x + w, y + h)
            } else {
                // Clustered in the lower-left 150×150 corner.
                let x = rng.gen_range(0.0, 140.0);
                let y = rng.gen_range(0.0, 140.0);
                let w = rng.gen_range(0.5, 10.0);
                let h = rng.gen_range(0.5, 10.0);
                r2(x, y, x + w, y + h)
            }
        })
        .collect()
}

/// Mixed query batch: point-extent probes, tile-sized rects, wide
/// straddlers, and a few out-of-cluster rects that hit empty tiles.
fn queries(n: usize, seed: u64) -> Vec<Rect<2>> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|i| {
            let x = rng.gen_range(0.0, 480.0);
            let y = rng.gen_range(0.0, 480.0);
            match i % 4 {
                // Degenerate point-extent query.
                0 => r2(x, y, x, y),
                // Small rect.
                1 => {
                    let s = rng.gen_range(1.0, 20.0);
                    r2(x, y, x + s, y + s)
                }
                // Wide straddler crossing several tile boundaries.
                2 => {
                    let w = rng.gen_range(100.0, 300.0);
                    r2(x, y, (x + w).min(500.0), (y + w * 0.5).min(500.0))
                }
                // Thin sliver along one axis.
                _ => r2(x, y, (x + 250.0).min(500.0), y + 0.25),
            }
        })
        .collect()
}

const SPLITS: [SplitPolicy; 3] = [SplitPolicy::Never, SplitPolicy::Auto, SplitPolicy::Above(0)];

fn check_fusion_oracle<P: Partitioner<2>>(store: &DatasetStore<2, P>, label: &str) {
    let qs = queries(64, 77);
    let policy = AutoPolicy::default();
    for use_clips in [true, false] {
        // The pinned baseline: the per-query descent path.
        let descend = store.run_with(
            &qs,
            1,
            use_clips,
            QueryAlgo::Descend,
            &policy,
            SplitPolicy::Never,
        );
        for ids in &descend.results {
            assert!(
                ids.is_sorted(),
                "{label}: canonical order is ascending by id"
            );
        }
        assert_eq!(descend.tiles_fused, 0);
        assert_eq!(descend.fused_widths, Vec::<u64>::new());
        for algo in [QueryAlgo::SharedSweep, QueryAlgo::Auto] {
            for split in SPLITS {
                for workers in [1, 3] {
                    let out = store.run_with(&qs, workers, use_clips, algo, &policy, split);
                    assert_eq!(
                        out.results, descend.results,
                        "{label}: {algo:?}/{split:?}/workers={workers}/clips={use_clips} \
                         must be byte-equal to Descend"
                    );
                }
            }
        }
        // A policy that never fuses reproduces the whole Descend
        // outcome — counters included — through the Auto path.
        let never = AutoPolicy {
            fuse_min_queries: usize::MAX,
            ..AutoPolicy::default()
        };
        let out = store.run_with(
            &qs,
            1,
            use_clips,
            QueryAlgo::Auto,
            &never,
            SplitPolicy::Never,
        );
        assert_eq!(out, descend, "{label}: non-fusing Auto == Descend");
    }
}

#[test]
fn fused_execution_matches_descend_on_all_partitioners() {
    let objects = boxes(900, 21);
    let tree = TreeConfig::tiny(Variant::RStar);
    let clip = ClipConfig::paper_default::<2>(ClipMethod::Stairline);

    let uniform = DatasetStore::build(UniformGrid::new(WORLD, 5), &objects, tree, clip, 2);
    check_fusion_oracle(&uniform, "uniform");

    let adaptive = DatasetStore::build(
        AdaptiveGrid::from_sample(WORLD, [5, 5], &objects),
        &objects,
        tree,
        clip,
        2,
    );
    check_fusion_oracle(&adaptive, "adaptive");

    let quadtree = DatasetStore::build(
        QuadtreePartitioner::build(WORLD, &objects, 120),
        &objects,
        tree,
        clip,
        2,
    );
    check_fusion_oracle(&quadtree, "quadtree");
}

/// Counters of a fixed algorithm are a pure function of the workload:
/// identical across worker counts and split policies (the chunk-sum
/// exactness of the sweep kernel and of per-query descents), and the
/// per-tile `Auto` resolution is taken before decomposition, so the
/// descend/fused tile mix never moves either.
#[test]
fn fused_counters_are_exact_under_decomposition() {
    let objects = boxes(700, 22);
    let store = DatasetStore::build(
        UniformGrid::new(WORLD, 4),
        &objects,
        TreeConfig::tiny(Variant::RRStar),
        ClipConfig::paper_default::<2>(ClipMethod::Stairline),
        2,
    );
    let qs = queries(48, 23);
    let policy = AutoPolicy::default();
    // Warm every column so Auto's cachedness input is stable across
    // the repeated runs below (a fused run warms them as a side
    // effect; pre-warming makes the baseline itself reproducible).
    for t in 0..store.forest().tile_count() {
        store.forest().columns(t);
    }
    for algo in [QueryAlgo::Descend, QueryAlgo::SharedSweep, QueryAlgo::Auto] {
        let base = store.run_with(&qs, 1, true, algo, &policy, SplitPolicy::Never);
        assert_eq!(
            base.stats,
            cbb_rtree::AccessStats::sum(&base.per_query),
            "{algo:?}: per-query counters must sum to the batch total"
        );
        for split in SPLITS {
            for workers in [1, 2, 5] {
                let out = store.run_with(&qs, workers, true, algo, &policy, split);
                assert_eq!(out, base, "{algo:?}/{split:?}/workers={workers}");
            }
        }
    }
    // The fused paths really fused something on this workload.
    let fused = store.run_with(
        &qs,
        1,
        true,
        QueryAlgo::SharedSweep,
        &policy,
        SplitPolicy::Auto,
    );
    assert!(fused.tiles_fused > 0);
    assert_eq!(fused.fused_widths.len(), fused.tiles_fused as usize);
    let auto = store.run_with(&qs, 1, true, QueryAlgo::Auto, &policy, SplitPolicy::Auto);
    assert!(auto.tiles_fused > 0, "warm columns must let Auto fuse");
}

/// Empty batches and batches probing only empty space stay exact on
/// every path.
#[test]
fn degenerate_batches_answer_identically() {
    let objects = boxes(300, 24);
    let store = DatasetStore::build(
        UniformGrid::new(WORLD, 4),
        &objects,
        TreeConfig::tiny(Variant::RStar),
        ClipConfig::paper_default::<2>(ClipMethod::Stairline),
        1,
    );
    let policy = AutoPolicy::default();
    let empty_space = vec![r2(490.0, 490.0, 499.0, 499.0); 8];
    for algo in [QueryAlgo::Descend, QueryAlgo::SharedSweep, QueryAlgo::Auto] {
        let none = store.run_with(&[], 2, true, algo, &policy, SplitPolicy::Auto);
        assert!(none.results.is_empty());
        assert_eq!(none.stats, cbb_rtree::AccessStats::new());
        let out = store.run_with(&empty_space, 2, true, algo, &policy, SplitPolicy::Auto);
        assert!(out.results.iter().all(|ids| ids.is_empty()));
    }
}

/// The clipped-MBB kNN prefilter: byte-equal neighbour lists, and node
/// accesses never above the plain root-MBB tile ordering. The diagonal
/// workload leaves large dead corners in every tile's root MBB, so the
/// tighter bound must actually skip trees (strictly fewer accesses).
#[test]
fn knn_clipped_prefilter_is_exact_and_cheaper() {
    let mut rng = SplitMix64::new(25);
    // Diagonal band: tiles' root MBBs are mostly dead space off the
    // diagonal — the shape the paper's clipping targets.
    let objects: Vec<Rect<2>> = (0..1_200)
        .map(|_| {
            let t = rng.gen_range(0.0, 480.0);
            let d = rng.gen_range(-8.0, 8.0);
            let s = rng.gen_range(0.5, 6.0);
            let (x, y) = (t, (t + d).clamp(0.0, 480.0));
            r2(x, y, x + s, y + s)
        })
        .collect();
    let store = DatasetStore::build(
        UniformGrid::new(WORLD, 4),
        &objects,
        TreeConfig::tiny(Variant::RStar),
        ClipConfig::paper_default::<2>(ClipMethod::Stairline),
        2,
    );
    // Probes off the diagonal, where the plain root-MBB MINDIST
    // underestimates badly.
    let probes: Vec<(Point<2>, usize)> = (0..40)
        .map(|i| {
            let x = rng.gen_range(0.0, 480.0);
            let y = rng.gen_range(0.0, 480.0);
            (Point([x, y]), 1 + i % 7)
        })
        .collect();
    for workers in [1, 3] {
        let plain = store.run_knn_with(&probes, workers, false);
        let clipped = store.run_knn_with(&probes, workers, true);
        assert_eq!(clipped.results, plain.results, "answers must be identical");
        let accesses = |s: &cbb_rtree::AccessStats| s.leaf_accesses + s.internal_accesses;
        for (c, p) in clipped.per_query.iter().zip(&plain.per_query) {
            assert!(
                accesses(c) <= accesses(p),
                "prefilter must never add node accesses"
            );
        }
        assert!(
            accesses(&clipped.stats) < accesses(&plain.stats),
            "diagonal data must make the clipped prefilter strictly cheaper \
             ({} vs {})",
            accesses(&clipped.stats),
            accesses(&plain.stats)
        );
        // The default path IS the prefiltered one.
        assert_eq!(store.run_knn(&probes, workers), clipped);
    }
}
