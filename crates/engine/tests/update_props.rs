//! Property tests for the mutable versioned store: after *any*
//! interleaving of inserts and deletes, the delta-maintained
//! [`TileForest`] answers range, kNN, and join requests exactly like a
//! forest rebuilt wholesale over the surviving objects.
//!
//! kNN answers are canonical (`(dist², id)`-sorted) and must match
//! byte-for-byte; range answers are compared as sorted id lists
//! (per-query result *sets* — traversal order legitimately differs
//! between bulk-loaded and incrementally grown trees); joins must agree
//! on the exact global pair count. Inputs are adversarially skewed the
//! same way the partitioner property tests are: clustered blobs,
//! tile-spanning rects, and degenerate point-extent rects.

use cbb_core::{ClipConfig, ClipMethod};
use cbb_engine::{
    partitioned_join_with, AdaptiveGrid, BatchExecutor, JoinPlan, Partitioner, QuadtreePartitioner,
    TileForest, UniformGrid, Update,
};
use cbb_geom::{Point, Rect};
use cbb_joins::brute_force_pairs;
use cbb_rtree::{DataId, TreeConfig, Variant};
use proptest::prelude::*;
use std::sync::Arc;

const DOMAIN: Rect<2> = Rect {
    lo: Point([0.0, 0.0]),
    hi: Point([1000.0, 1000.0]),
};

fn r2(lx: f64, ly: f64, hx: f64, hy: f64) -> Rect<2> {
    Rect::new(Point([lx, ly]), Point([hx, hy]))
}

/// One skewed rectangle: clustered small box, tile-spanning box, or
/// degenerate point-extent box (weighted towards the clusters).
fn arb_skewed_rect() -> impl Strategy<Value = Rect<2>> {
    let blob = |cx: f64, cy: f64| {
        (-40.0f64..40.0, -40.0f64..40.0, 0.1f64..8.0, 0.1f64..8.0).prop_map(
            move |(dx, dy, w, h)| {
                let x = (cx + dx).clamp(0.0, 990.0);
                let y = (cy + dy).clamp(0.0, 990.0);
                r2(x, y, x + w, y + h)
            },
        )
    };
    let spanning = (
        0.0f64..700.0,
        0.0f64..700.0,
        100.0f64..300.0,
        100.0f64..300.0,
    )
        .prop_map(|(x, y, w, h)| r2(x, y, x + w, y + h));
    let point_extent = (0.0f64..1000.0, 0.0f64..1000.0).prop_map(|(x, y)| {
        let p = Point([x, y]);
        Rect::new(p, p)
    });
    prop_oneof![
        blob(150.0, 150.0),
        blob(150.0, 150.0),
        blob(820.0, 780.0),
        spanning,
        point_extent,
    ]
}

/// A raw update script: inserts carry a rect; deletes carry an index
/// resolved against the (growing) arena at application time, so scripts
/// can delete initial objects *and* objects inserted earlier in the
/// same script, and occasionally miss (dead/unknown id).
#[derive(Clone, Debug)]
enum ScriptOp {
    Insert(Rect<2>),
    Delete(usize),
}

fn arb_script(max_len: usize) -> impl Strategy<Value = Vec<ScriptOp>> {
    let op = prop_oneof![
        arb_skewed_rect().prop_map(ScriptOp::Insert),
        (0usize..4000).prop_map(ScriptOp::Delete),
    ];
    prop::collection::vec(op, 1..max_len)
}

/// Apply a script through the executor in per-batch chunks, mirroring
/// the arena in plain vectors for the oracle — including the store's
/// documented slot-reclamation semantics: deletes tombstone their slot,
/// a post-batch sweep frees every dead slot once tombstones exceed
/// [`cbb_engine::DEFAULT_COMPACT_DEAD_FRACTION`] of the arena, and
/// later inserts reuse freed slots smallest-id-first before appending.
/// The adversarial delete-heavy scripts cross the threshold routinely,
/// so the mirror exercises compaction on most cases.
fn run_script<P: Partitioner<2> + Clone>(
    partitioner: P,
    initial: &[Rect<2>],
    script: &[ScriptOp],
    chunk: usize,
) -> (BatchExecutor<2, P>, Vec<Rect<2>>, Vec<bool>) {
    let tree = TreeConfig::tiny(Variant::RStar);
    let clip = ClipConfig::paper_default::<2>(ClipMethod::Stairline);
    let mut exec = BatchExecutor::build(partitioner, initial, tree, clip, 2);
    let mut arena: Vec<Rect<2>> = initial.to_vec();
    let mut live = vec![true; initial.len()];
    // Free slots sorted descending: `pop()` reuses the smallest id,
    // exactly as the store does.
    let mut free: Vec<u32> = Vec::new();
    let mut tombstones = 0usize;
    for ops in script.chunks(chunk.max(1)) {
        let batch: Vec<Update<2>> = ops
            .iter()
            .map(|op| match op {
                ScriptOp::Insert(r) => Update::Insert(*r),
                ScriptOp::Delete(i) => Update::Delete(DataId((*i % (arena.len() + 5)) as u32)),
            })
            .collect();
        // Mirror the batch on the oracle arena.
        for u in &batch {
            match u {
                Update::Insert(r) => match free.pop() {
                    Some(slot) => {
                        arena[slot as usize] = *r;
                        live[slot as usize] = true;
                    }
                    None => {
                        arena.push(*r);
                        live.push(true);
                    }
                },
                Update::Delete(id) => {
                    let slot = id.0 as usize;
                    if slot < live.len() && live[slot] {
                        live[slot] = false;
                        tombstones += 1;
                    }
                }
            }
        }
        // Mirror the post-batch compaction sweep.
        if tombstones as f64 > cbb_engine::DEFAULT_COMPACT_DEAD_FRACTION * arena.len() as f64 {
            free = (0..arena.len() as u32)
                .rev()
                .filter(|&s| !live[s as usize])
                .collect();
            tombstones = 0;
        }
        exec.apply_updates(&batch, tree, clip);
    }
    (exec, arena, live)
}

fn check_against_rebuild<P: Partitioner<2> + Clone>(
    exec: &BatchExecutor<2, P>,
    arena: &[Rect<2>],
    live: &[bool],
    queries: &[Rect<2>],
) -> Result<(), TestCaseError> {
    let tree = TreeConfig::tiny(Variant::RStar);
    let clip = ClipConfig::paper_default::<2>(ClipMethod::Stairline);
    prop_assert_eq!(exec.objects(), arena);
    prop_assert_eq!(exec.live(), live);
    let rebuilt_forest = Arc::new(TileForest::build_where(
        exec.partitioner(),
        arena,
        Some(live),
        tree,
        clip,
        2,
    ));
    let rebuilt = BatchExecutor::with_forest_where(
        exec.partitioner().clone(),
        arena.to_vec(),
        live.to_vec(),
        rebuilt_forest.clone(),
    );

    // Ranges: same id sets per query, against brute force over the
    // live arena.
    let delta_out = exec.run(queries, 2, true);
    let rebuilt_out = rebuilt.run(queries, 2, true);
    for (i, q) in queries.iter().enumerate() {
        let mut want: Vec<DataId> = arena
            .iter()
            .enumerate()
            .filter(|(j, r)| live[*j] && r.intersects(q))
            .map(|(j, _)| DataId(j as u32))
            .collect();
        want.sort();
        let mut delta = delta_out.results[i].clone();
        delta.sort();
        let mut reb = rebuilt_out.results[i].clone();
        reb.sort();
        prop_assert_eq!(&delta, &want, "delta range {}", i);
        prop_assert_eq!(&reb, &want, "rebuilt range {}", i);
    }

    // kNN: canonical order, byte-equal.
    let probes: Vec<(Point<2>, usize)> = queries
        .iter()
        .enumerate()
        .map(|(i, q)| (q.center(), [1, 3, 9][i % 3]))
        .collect();
    prop_assert_eq!(
        exec.run_knn(&probes, 2).results,
        rebuilt.run_knn(&probes, 2).results
    );

    // Join: exact pair count vs brute force over live objects.
    let live_rects: Vec<Rect<2>> = arena
        .iter()
        .zip(live)
        .filter(|(_, l)| **l)
        .map(|(r, _)| *r)
        .collect();
    let plan = JoinPlan::new(exec.partitioner().clone(), tree, clip, 2);
    let joined = partitioned_join_with(&plan, queries, exec.objects(), exec.forest());
    prop_assert_eq!(joined.pairs, brute_force_pairs(queries, &live_rects));
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn delta_store_equals_rebuild_uniform_grid(
        initial in prop::collection::vec(arb_skewed_rect(), 0..60),
        script in arb_script(80),
        queries in prop::collection::vec(arb_skewed_rect(), 1..12),
        chunk in 1usize..20,
    ) {
        let grid = UniformGrid::new(DOMAIN, 4);
        let (exec, arena, live) = run_script(grid, &initial, &script, chunk);
        check_against_rebuild(&exec, &arena, &live, &queries)?;
    }

    #[test]
    fn delta_store_equals_rebuild_adaptive_grid(
        initial in prop::collection::vec(arb_skewed_rect(), 1..60),
        script in arb_script(60),
        queries in prop::collection::vec(arb_skewed_rect(), 1..10),
    ) {
        // Boundaries fitted to the initial data only: later inserts
        // cross cuts they never voted for.
        let grid = AdaptiveGrid::from_sample(DOMAIN, [3, 3], &initial);
        let (exec, arena, live) = run_script(grid, &initial, &script, 7);
        check_against_rebuild(&exec, &arena, &live, &queries)?;
    }

    #[test]
    fn delta_store_equals_rebuild_quadtree(
        initial in prop::collection::vec(arb_skewed_rect(), 1..50),
        script in arb_script(60),
        queries in prop::collection::vec(arb_skewed_rect(), 1..10),
    ) {
        let qt = QuadtreePartitioner::build(DOMAIN, &initial, 16);
        let (exec, arena, live) = run_script(qt, &initial, &script, 11);
        check_against_rebuild(&exec, &arena, &live, &queries)?;
    }
}
