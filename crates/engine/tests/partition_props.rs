//! Property tests for the [`Partitioner`] contract on the two adaptive
//! implementations (referenced from the trait's doc comment).
//!
//! The engine's exactness rests on two per-partitioner invariants:
//!
//! 1. **Total ownership** — every point (in-domain or not) is owned by
//!    exactly one tile.
//! 2. **Covering consistency** — `covering_tiles(r)` contains the owner
//!    of every point of `r`; in particular, the owner of any intersecting
//!    pair's reference point sees both rectangles, and no *other* tile
//!    both holds the pair and owns its reference point — so each result
//!    pair is reported exactly once.
//!
//! Inputs are adversarially skewed: most rectangles pile into two dense
//! blobs (so the adaptive boundaries are genuinely non-uniform), a few
//! span many tiles, and a few are degenerate point-extent rectangles.

use cbb_engine::{partitioned_join, AdaptiveGrid, JoinPlan, Partitioner, QuadtreePartitioner};
use cbb_geom::{Point, Rect};
use cbb_joins::{brute_force_pairs, reference_point};
use proptest::prelude::*;

const DOMAIN: Rect<2> = Rect {
    lo: Point([0.0, 0.0]),
    hi: Point([1000.0, 1000.0]),
};

fn r2(lx: f64, ly: f64, hx: f64, hy: f64) -> Rect<2> {
    Rect::new(Point([lx, ly]), Point([hx, hy]))
}

/// One skewed rectangle: clustered small box, tile-spanning box, or
/// degenerate point-extent box (weighted towards the clusters).
fn arb_skewed_rect() -> impl Strategy<Value = Rect<2>> {
    let blob = |cx: f64, cy: f64| {
        (-40.0f64..40.0, -40.0f64..40.0, 0.1f64..8.0, 0.1f64..8.0).prop_map(
            move |(dx, dy, w, h)| {
                let x = (cx + dx).clamp(0.0, 990.0);
                let y = (cy + dy).clamp(0.0, 990.0);
                r2(x, y, x + w, y + h)
            },
        )
    };
    let spanning = (
        0.0f64..700.0,
        0.0f64..700.0,
        100.0f64..300.0,
        100.0f64..300.0,
    )
        .prop_map(|(x, y, w, h)| r2(x, y, x + w, y + h));
    let point_extent = prop_oneof![
        // On a blob (ties with dense data) or anywhere in the domain.
        (-30.0f64..30.0, -30.0f64..30.0).prop_map(|(dx, dy)| {
            let p = Point([150.0 + dx, 150.0 + dy]);
            Rect::new(p, p)
        }),
        (0.0f64..1000.0, 0.0f64..1000.0).prop_map(|(x, y)| {
            let p = Point([x, y]);
            Rect::new(p, p)
        }),
    ];
    prop_oneof![
        blob(150.0, 150.0),
        blob(150.0, 150.0),
        blob(820.0, 780.0),
        spanning,
        point_extent,
    ]
}

fn arb_skewed_set(max: usize) -> impl Strategy<Value = Vec<Rect<2>>> {
    prop::collection::vec(arb_skewed_rect(), 1..max)
}

/// For every intersecting pair, exactly one tile both receives the pair
/// (it is in both covering sets) and owns the pair's reference point —
/// the "each result pair reported exactly once" invariant.
fn assert_pairs_once<P: Partitioner<2>>(
    p: &P,
    left: &[Rect<2>],
    right: &[Rect<2>],
) -> Result<(), TestCaseError> {
    use std::collections::HashSet;
    let ra: Vec<HashSet<usize>> = right
        .iter()
        .map(|b| p.covering_tiles(b).into_iter().collect())
        .collect();
    for (i, a) in left.iter().enumerate() {
        let ca = p.covering_tiles(a);
        for (j, b) in right.iter().enumerate() {
            if !a.intersects(b) {
                continue;
            }
            let rp = reference_point(a, b);
            let owner = p.tile_of(&rp);
            prop_assert!(owner < p.tile_count(), "owner out of range");
            prop_assert!(p.owns(owner, &rp), "tile_of/owns disagree at {rp:?}");
            // A tile reports the pair iff both sides are assigned to it
            // (multi-assignment = the covering set) and it owns the
            // reference point; exactly one such tile may exist.
            let reporters = ca
                .iter()
                .filter(|&&t| ra[j].contains(&t) && p.owns(t, &rp))
                .count();
            prop_assert_eq!(
                reporters,
                1,
                "pair ({}, {}) reported by {} tiles (ref {:?})",
                i,
                j,
                reporters,
                rp
            );
        }
    }
    Ok(())
}

/// Ownership is total and covering sets contain the owner of every
/// sampled point of every rectangle.
fn assert_contract<P: Partitioner<2>>(p: &P, rects: &[Rect<2>]) -> Result<(), TestCaseError> {
    prop_assert!(p.tile_count() >= 1);
    for r in rects {
        let covered = p.covering_tiles(r);
        prop_assert!(!covered.is_empty(), "no tile covers {r:?}");
        // Corners, center, and face midpoints of r must all be owned by
        // a tile in the covering set.
        let probes = [
            r.lo,
            r.hi,
            r.center(),
            Point([r.lo[0], r.hi[1]]),
            Point([r.hi[0], r.lo[1]]),
            Point([r.center()[0], r.lo[1]]),
            Point([r.lo[0], r.center()[1]]),
        ];
        for q in probes {
            let t = p.tile_of(&q);
            prop_assert!(t < p.tile_count());
            prop_assert!(
                covered.contains(&t),
                "owner {t} of {q:?} not covering {r:?}"
            );
            let owners = (0..p.tile_count()).filter(|&u| p.owns(u, &q)).count();
            prop_assert_eq!(owners, 1, "{:?} owned by {} tiles", q, owners);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn adaptive_grid_honours_the_partitioner_contract(
        rects in arb_skewed_set(60),
        dims in (1usize..7, 1usize..7),
    ) {
        let g = AdaptiveGrid::from_sample(DOMAIN, [dims.0, dims.1], &rects);
        assert_contract(&g, &rects)?;
    }

    #[test]
    fn quadtree_honours_the_partitioner_contract(
        rects in arb_skewed_set(60),
        budget in 8usize..32,
    ) {
        let qt = QuadtreePartitioner::build(DOMAIN, &rects, budget);
        assert_contract(&qt, &rects)?;
    }

    #[test]
    fn adaptive_grid_reports_each_pair_exactly_once(
        left in arb_skewed_set(40),
        right in arb_skewed_set(40),
        dims in (1usize..6, 1usize..6),
    ) {
        // Boundaries from the left side only: the right side then crosses
        // cuts it never voted for.
        let g = AdaptiveGrid::from_sample(DOMAIN, [dims.0, dims.1], &left);
        assert_pairs_once(&g, &left, &right)?;
    }

    #[test]
    fn quadtree_reports_each_pair_exactly_once(
        left in arb_skewed_set(40),
        right in arb_skewed_set(40),
        budget in 8usize..24,
    ) {
        let qt = QuadtreePartitioner::build(DOMAIN, &left, budget);
        assert_pairs_once(&qt, &left, &right)?;
    }

    #[test]
    fn partitioned_join_is_exact_end_to_end(
        left in arb_skewed_set(40),
        right in arb_skewed_set(40),
    ) {
        use cbb_core::{ClipConfig, ClipMethod};
        use cbb_rtree::{TreeConfig, Variant};
        let expected = brute_force_pairs(&left, &right);
        let adaptive = AdaptiveGrid::from_sample(DOMAIN, [4, 4], &left);
        let quadtree = QuadtreePartitioner::build(DOMAIN, &left, 12);
        let tree = TreeConfig::tiny(Variant::RStar);
        let clip = ClipConfig::paper_default::<2>(ClipMethod::Stairline);
        prop_assert_eq!(
            partitioned_join(&JoinPlan::new(adaptive, tree, clip, 3), &left, &right).pairs,
            expected,
            "adaptive"
        );
        prop_assert_eq!(
            partitioned_join(&JoinPlan::new(quadtree, tree, clip, 3), &left, &right).pairs,
            expected,
            "quadtree"
        );
    }
}
