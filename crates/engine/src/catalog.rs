//! The multi-dataset layer: a [`DatasetStore`] per named dataset and
//! the [`Catalog`] that owns them.
//!
//! Production spatial systems are *catalogs of layers* joined against
//! each other — SATO-style systems partition and serve many named
//! layers side by side (Aji et al., *Effective Spatial Data
//! Partitioning for Scalable Query Processing*), and parallel in-memory
//! spatial joins are defined across two independently indexed inputs
//! (Tsitsigkos & Mamoulis, *Parallel In-Memory Evaluation of Spatial
//! Joins*). This module promotes the engine's single implicit dataset
//! to that model:
//!
//! * [`DatasetStore`] — the mutable versioned store extracted from the
//!   former `BatchExecutor` internals: object arena, liveness mask,
//!   free-slot list, partitioner, [`TileForest`], and a per-dataset
//!   [`DataVersion`]. It owns the read path (range/kNN batches), the
//!   write path ([`DatasetStore::apply_updates`], with threshold-driven
//!   arena compaction), and wholesale replacement
//!   ([`DatasetStore::swap`]).
//! * [`Catalog`] — a concurrent map `DatasetId -> DatasetStore`, each
//!   store behind its own `RwLock` so writes to dataset A never
//!   serialize reads of dataset B. Ids are never reused, which keeps
//!   `(DatasetId, DataVersion)` cache keys unambiguous forever.
//!
//! Each dataset carries its **own** partitioner instance (and, through
//! [`crate::AnyPartitioner`], its own partitioner *kind*), fitted to
//! its data; cross-dataset joins re-partition the probe side onto the
//! indexed side's tiling (see [`crate::join::partitioned_join_forests`]).

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, RwLock};

use cbb_core::{clipped_min_dist_sq, ClipConfig};
use cbb_geom::{Point, Rect};
use cbb_joins::{reference_point, sweep_queries_scan, SweepSide, TileColumns};
use cbb_rtree::{push_neighbor, AccessStats, DataId, Neighbor, TreeConfig};

use crate::batch::{BatchOutcome, KnnOutcome, QueryAlgo, TileForest};
use crate::join::{AutoPolicy, SplitPolicy};
use crate::partition::{DataVersion, Partitioner};
use crate::pool::map_chunked;
use crate::update::{Update, UpdateOutcome, UpdateResult};

/// Identity of a dataset in a [`Catalog`]. Ids are assigned by the
/// catalog at creation, are unique over the catalog's lifetime, and are
/// **never reused** after a drop — so a `(DatasetId, DataVersion)` pair
/// (the [`crate::ForestCache`] key) can never alias a different
/// dataset's trees.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DatasetId(pub u32);

/// When a [`DatasetStore`] reclaims tombstoned arena slots.
///
/// Deletes tombstone their slot (the id never reappears in any tree,
/// live ids stay stable), but an append-only arena grows without bound
/// under churn. Compaction sweeps the tombstoned slots into a free list
/// once their fraction of the arena exceeds `dead_fraction`; later
/// inserts reuse freed slots (smallest id first) instead of growing the
/// arena. Live ids are untouched — only dead ids are recycled.
///
/// **Id-reuse caveat:** once a dead slot is reclaimed and reassigned,
/// a *stale* delete of the old id (a client retrying a delete whose
/// response was lost) targets the new occupant — [`DataId`]s carry no
/// generation tag to tell the difference, so applied deletes are not
/// idempotent across a sweep. At-least-once clients that retry deletes
/// should run with [`CompactionPolicy::never`] (the pre-catalog
/// append-only behaviour, where retrying an applied delete is a
/// guaranteed no-op) or dedup delete retries on their side.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CompactionPolicy {
    /// Sweep once `tombstoned / arena_len` exceeds this fraction.
    /// `f64::INFINITY` disables compaction (the pre-catalog, append-only
    /// behaviour).
    pub dead_fraction: f64,
}

impl CompactionPolicy {
    /// Never reclaim slots (append-only arena, compaction on swap only).
    pub fn never() -> Self {
        CompactionPolicy {
            dead_fraction: f64::INFINITY,
        }
    }
}

/// Sweep once more than 30 % of the arena is tombstoned: rare enough
/// that id assignment stays append-like under light churn, early enough
/// that a delete-heavy stream cannot triple the arena.
pub const DEFAULT_COMPACT_DEAD_FRACTION: f64 = 0.3;

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy {
            dead_fraction: DEFAULT_COMPACT_DEAD_FRACTION,
        }
    }
}

/// One mutable versioned spatial dataset: the arena / liveness /
/// partitioner / forest state every executor and serving layer shares.
///
/// The store is the unit a [`Catalog`] maps a [`DatasetId`] to. It is
/// deliberately lock-free itself — the catalog wraps each store in an
/// `RwLock`, and a single-dataset [`crate::BatchExecutor`] owns one
/// directly.
///
/// Object ids ([`DataId`]) are arena slots: live ids are stable across
/// every update *and* every compaction; deleted ids are recycled only
/// per the [`CompactionPolicy`].
pub struct DatasetStore<const D: usize, P> {
    partitioner: P,
    /// Object arena: slot `i` is the rect of `DataId(i)`. Slots of
    /// deleted objects stay in place as tombstones until a compaction
    /// sweep moves them to `free` for reuse.
    objects: Vec<Rect<D>>,
    /// Liveness per arena slot.
    live: Vec<bool>,
    /// Dead slots available for reuse, sorted descending so `pop()`
    /// yields the smallest id — deterministic reassignment order.
    free: Vec<u32>,
    /// Dead slots *not* yet in `free` (what compaction can reclaim).
    tombstones: usize,
    forest: Arc<TileForest<D>>,
    version: DataVersion,
    compaction: CompactionPolicy,
    // Per-dataset maintenance counters (mutated under the catalog's
    // write lock, read for per-dataset reports).
    compactions: u64,
    write_batches: u64,
    updates_applied: u64,
    delta_nodes_allocated: u64,
}

impl<const D: usize, P: Partitioner<D>> DatasetStore<D, P> {
    /// Partition `objects` and bulk-load the per-tile trees on `workers`
    /// threads. Trees are always built with clip tables so every batch
    /// can choose clipped or unclipped probing.
    pub fn build(
        partitioner: P,
        objects: &[Rect<D>],
        tree: TreeConfig<D>,
        clip: ClipConfig,
        workers: usize,
    ) -> Self {
        let forest = Arc::new(TileForest::build(
            &partitioner,
            objects,
            tree,
            clip,
            workers,
        ));
        Self::with_forest(partitioner, objects.to_vec(), forest)
    }

    /// Wrap an existing (cached) forest instead of building one. The
    /// forest must have been built from `objects` under `partitioner` —
    /// the tile count is checked, the content correspondence is the
    /// caller's contract. Every slot is taken as live; a forest built
    /// over a tombstoned arena ([`TileForest::build_where`] with a
    /// mask) must come through [`Self::with_forest_where`] instead.
    pub fn with_forest(partitioner: P, objects: Vec<Rect<D>>, forest: Arc<TileForest<D>>) -> Self {
        let live = vec![true; objects.len()];
        Self::with_forest_where(partitioner, objects, live, forest)
    }

    /// [`Self::with_forest`] for a tombstoned arena: `live[i]` flags
    /// slot `i`, and the forest must index exactly the live slots (a
    /// [`TileForest::build_where`] over the same mask does).
    pub fn with_forest_where(
        partitioner: P,
        objects: Vec<Rect<D>>,
        live: Vec<bool>,
        forest: Arc<TileForest<D>>,
    ) -> Self {
        assert_eq!(
            forest.tile_count(),
            partitioner.tile_count(),
            "forest was built under a different partitioning"
        );
        assert_eq!(live.len(), objects.len(), "mask must cover every slot");
        let tombstones = live.iter().filter(|&&l| !l).count();
        DatasetStore {
            partitioner,
            objects,
            live,
            free: Vec::new(),
            tombstones,
            forest,
            version: DataVersion::initial(),
            compaction: CompactionPolicy::default(),
            compactions: 0,
            write_batches: 0,
            updates_applied: 0,
            delta_nodes_allocated: 0,
        }
    }

    /// Reconstruct a store exactly as a snapshot captured it: arena,
    /// liveness, reusable free slots, version, and compaction policy
    /// all restored verbatim, `forest` freshly rebuilt over the live
    /// slots (trees are derived state and are not persisted).
    ///
    /// Restoring the free list and the policy is what makes WAL replay
    /// deterministic — the id a replayed insert takes, and the moment
    /// a sweep fires, depend on both. Lifetime maintenance counters
    /// ([`Self::write_batches`] etc.) restart at zero: they are
    /// process-local observability, not data.
    pub fn restore(
        partitioner: P,
        objects: Vec<Rect<D>>,
        live: Vec<bool>,
        free: Vec<u32>,
        forest: Arc<TileForest<D>>,
        version: DataVersion,
        compaction: CompactionPolicy,
    ) -> Self {
        assert_eq!(
            forest.tile_count(),
            partitioner.tile_count(),
            "forest was built under a different partitioning"
        );
        assert_eq!(live.len(), objects.len(), "mask must cover every slot");
        assert!(
            free.iter()
                .all(|&s| (s as usize) < live.len() && !live[s as usize]),
            "free slots must be dead arena slots"
        );
        let mut free = free;
        free.sort_unstable_by(|a, b| b.cmp(a)); // pop() = smallest id
        let dead = live.iter().filter(|&&l| !l).count();
        let tombstones = dead - free.len();
        DatasetStore {
            partitioner,
            objects,
            live,
            free,
            tombstones,
            forest,
            version,
            compaction,
            compactions: 0,
            write_batches: 0,
            updates_applied: 0,
            delta_nodes_allocated: 0,
        }
    }

    /// Dead slots currently reusable, smallest id first (snapshot
    /// serialization needs the exact set; [`Self::free_slots`] only
    /// counts them).
    pub fn free_list(&self) -> Vec<u32> {
        let mut slots = self.free.clone();
        slots.sort_unstable();
        slots
    }

    /// The slot-reclamation policy in force.
    pub fn compaction(&self) -> CompactionPolicy {
        self.compaction
    }

    /// Replace the slot-reclamation policy (builder style).
    pub fn with_compaction(mut self, policy: CompactionPolicy) -> Self {
        self.compaction = policy;
        self
    }

    /// Change the slot-reclamation policy in place.
    pub fn set_compaction(&mut self, policy: CompactionPolicy) {
        self.compaction = policy;
    }

    /// The partitioner the store was built over.
    pub fn partitioner(&self) -> &P {
        &self.partitioner
    }

    /// The objects the store serves (global [`DataId`] id space,
    /// including tombstoned slots of deleted objects).
    pub fn objects(&self) -> &[Rect<D>] {
        &self.objects
    }

    /// Liveness of every arena slot (parallel to [`Self::objects`]).
    pub fn live(&self) -> &[bool] {
        &self.live
    }

    /// Number of live (queryable) objects.
    pub fn live_count(&self) -> usize {
        self.live.iter().filter(|&&l| l).count()
    }

    /// The live objects, in arena order — the probe side a cross-dataset
    /// join streams against another dataset's indexed forest.
    pub fn live_rects(&self) -> Vec<Rect<D>> {
        self.objects
            .iter()
            .zip(&self.live)
            .filter(|(_, l)| **l)
            .map(|(r, _)| *r)
            .collect()
    }

    /// Total arena slots (live + tombstoned + free).
    pub fn arena_len(&self) -> usize {
        self.objects.len()
    }

    /// Dead slots currently available for id reuse.
    pub fn free_slots(&self) -> usize {
        self.free.len()
    }

    /// Compaction sweeps performed over the store's lifetime.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Write batches that applied at least one update (each bumped the
    /// version exactly once).
    pub fn write_batches(&self) -> u64 {
        self.write_batches
    }

    /// Individual updates applied across all write batches.
    pub fn updates_applied(&self) -> u64 {
        self.updates_applied
    }

    /// R-tree nodes constructed by delta maintenance on this store.
    pub fn delta_nodes_allocated(&self) -> u64 {
        self.delta_nodes_allocated
    }

    /// The data version queries are currently answered from. Bumps once
    /// per applied write batch and once per [`Self::swap`].
    pub fn version(&self) -> DataVersion {
        self.version
    }

    /// The shared per-tile trees (clone the `Arc` to reuse them in a
    /// join, a cache, or a successor store).
    pub fn forest(&self) -> &Arc<TileForest<D>> {
        &self.forest
    }

    /// Number of non-empty tiles (built trees).
    pub fn tile_tree_count(&self) -> usize {
        self.forest.built_tree_count()
    }

    /// Max-tile / mean-tile **live** objects over the non-empty tiles —
    /// the churn-drift observability metric surfaced per dataset in
    /// serve reports. `1.0` is perfect balance (and the empty-forest
    /// value); a data-fitted partitioner whose data moved under churn
    /// shows up here before any re-fit mechanism needs to exist.
    pub fn load_imbalance(&self) -> f64 {
        self.forest.load_imbalance()
    }

    /// Per-tile indexed-object counts over the non-empty tiles (see
    /// [`TileForest::tile_loads`]) — the occupancy distribution the
    /// serve layer histograms so the drift *tail* is visible, not just
    /// the max/mean ratio.
    pub fn tile_loads(&self) -> Vec<u64> {
        self.forest.tile_loads()
    }

    /// Replace the dataset wholesale: new arena (all slots live), a
    /// forest built over it (tile counts checked), and a version bump.
    /// The partitioner is kept; use [`Self::swap_with`] to re-fit it.
    pub fn swap(&mut self, objects: Vec<Rect<D>>, forest: Arc<TileForest<D>>) {
        assert_eq!(
            forest.tile_count(),
            self.partitioner.tile_count(),
            "forest was built under a different partitioning"
        );
        self.live = vec![true; objects.len()];
        self.objects = objects;
        self.free.clear();
        self.tombstones = 0;
        self.forest = forest;
        self.version.bump();
    }

    /// [`Self::swap`] with a replacement partitioner — the re-fit path
    /// for data whose distribution moved.
    pub fn swap_with(&mut self, partitioner: P, objects: Vec<Rect<D>>, forest: Arc<TileForest<D>>) {
        assert_eq!(
            forest.tile_count(),
            partitioner.tile_count(),
            "forest was built under a different partitioning"
        );
        self.partitioner = partitioner;
        self.live = vec![true; objects.len()];
        self.objects = objects;
        self.free.clear();
        self.tombstones = 0;
        self.forest = forest;
        self.version.bump();
    }

    /// Apply an update batch *in order*, copy-on-write: the previous
    /// forest (shared with any cache or in-flight reader via its `Arc`s)
    /// is untouched; this store ends up on a new [`TileForest`] that
    /// shares every tile the batch did not reach. Inserts take the
    /// smallest reclaimed slot when one is free, else a fresh arena
    /// slot; deletes tombstone theirs. `tree`/`clip` only configure
    /// trees for previously empty tiles.
    ///
    /// A batch that applied at least one update bumps the version
    /// exactly once; an all-no-op batch (dead-id deletes, rejected
    /// inserts) changes nothing and bumps nothing. After the batch, a
    /// compaction sweep runs when the [`CompactionPolicy`] threshold is
    /// exceeded — live ids are never moved by it
    /// ([`UpdateOutcome::slots_reclaimed`] counts what it freed).
    ///
    /// Answers afterwards are exactly those of a wholesale rebuild over
    /// the surviving objects ([`TileForest::build_where`]) — the oracle
    /// tests pin that — at a structural cost proportional to the batch,
    /// which [`UpdateOutcome::nodes_allocated`] measures.
    pub fn apply_updates(
        &mut self,
        updates: &[Update<D>],
        tree: TreeConfig<D>,
        clip: ClipConfig,
    ) -> UpdateOutcome {
        let mut forest = TileForest::clone(&self.forest);
        let mut touched = vec![false; forest.tile_count()];
        let mut outcome = UpdateOutcome::default();
        for update in updates {
            let result = match *update {
                Update::Insert(rect) => {
                    if !rect.is_finite() {
                        UpdateResult::Rejected
                    } else {
                        let id = match self.free.pop() {
                            Some(slot) => {
                                self.objects[slot as usize] = rect;
                                self.live[slot as usize] = true;
                                DataId(slot)
                            }
                            None => {
                                assert!(
                                    self.objects.len() < u32::MAX as usize,
                                    "object arena exceeds the u32 id space"
                                );
                                let id = DataId(self.objects.len() as u32);
                                self.objects.push(rect);
                                self.live.push(true);
                                id
                            }
                        };
                        let (nodes, created) = forest.insert_object(
                            &self.partitioner,
                            rect,
                            id,
                            tree,
                            clip,
                            &mut touched,
                        );
                        outcome.nodes_allocated += nodes;
                        outcome.trees_created += created;
                        UpdateResult::Inserted(id)
                    }
                }
                Update::Delete(id) => {
                    let slot = id.0 as usize;
                    if slot >= self.objects.len() || !self.live[slot] {
                        UpdateResult::Deleted(false)
                    } else {
                        let rect = self.objects[slot];
                        let (removed, dropped) =
                            forest.delete_object(&self.partitioner, rect, id, &mut touched);
                        // Under a shard view of the tiling
                        // (`crate::ShardTiling`) a live object whose
                        // coverage misses the shard's tile range is
                        // legitimately unindexed here; the shard that
                        // does cover it removes the entries.
                        debug_assert!(
                            removed || self.partitioner.covering_tiles(&rect).is_empty(),
                            "live object must be indexed"
                        );
                        self.live[slot] = false;
                        self.tombstones += 1;
                        outcome.trees_dropped += dropped;
                        // A live slot always flips to dead: report the
                        // delete as applied regardless of how many
                        // (possibly zero, under a shard view) index
                        // entries existed, so `applied()` — and with
                        // it version bumps — stays identical across
                        // every shard of the same logical store.
                        UpdateResult::Deleted(true)
                    }
                }
            };
            outcome.results.push(result);
        }
        outcome.tiles_touched = touched.iter().filter(|&&t| t).count();
        self.forest = Arc::new(forest);
        let applied = outcome.applied();
        if applied > 0 {
            self.version.bump();
            self.write_batches += 1;
            self.updates_applied += applied;
            self.delta_nodes_allocated += outcome.nodes_allocated;
        }
        // Compaction sweep: once the tombstoned fraction crosses the
        // policy threshold, every dead slot becomes reusable. Live ids
        // are untouched; the arena stops growing under churn.
        if self.tombstones as f64 > self.compaction.dead_fraction * self.objects.len() as f64 {
            outcome.slots_reclaimed = self.tombstones;
            self.free = (0..self.objects.len() as u32)
                .rev()
                .filter(|&s| !self.live[s as usize])
                .collect();
            self.tombstones = 0;
            self.compactions += 1;
        }
        outcome
    }

    /// Answer one query against one tile by tree descent: probe the
    /// tile's tree, keep each object only if this tile owns the
    /// query/object reference point (the duplicate-elimination rule —
    /// a multi-assigned object is reported by exactly one covered tile).
    fn descend_tile(
        &self,
        t: usize,
        q: &Rect<D>,
        use_clips: bool,
        stats: &mut AccessStats,
    ) -> Vec<DataId> {
        let tree = self.forest.tree(t).expect("planned tiles are built");
        let found = if use_clips {
            tree.range_query_stats(q, stats)
        } else {
            tree.tree.range_query_stats(q, stats)
        };
        found
            .into_iter()
            .filter(|id| {
                self.partitioner
                    .owns(t, &reference_point(q, &self.objects[id.0 as usize]))
            })
            .collect()
    }

    /// Answer one kNN probe: visit tile trees in ascending MINDIST of
    /// their *root MBB* (not the tile rectangle — border tiles own
    /// clamped out-of-domain objects that can stick out of their tile),
    /// merge per-tile k-nearest sets with id-dedup (spanning objects
    /// appear in several trees), and stop once the next tree's MINDIST
    /// exceeds the current k-th best distance.
    ///
    /// Exact: an object of the global k-nearest set is, in every tile
    /// containing it, also in that tile's k-nearest set, and the root
    /// MBB lower-bounds the distance of every object in the tile.
    ///
    /// With `clipped_prefilter` the tile ordering bound is
    /// [`cbb_core::clipped_min_dist_sq`] over the root's clip points — a
    /// *tighter* true lower bound on the distance of any object in the
    /// tile, so the early break fires sooner and whole tile trees are
    /// skipped. Answers are identical (the clipped bound is still a
    /// lower bound); only node accesses drop. The prefilter reads the
    /// cached root clip table and ticks no counters itself.
    fn knn_one(
        &self,
        center: &Point<D>,
        k: usize,
        stats: &mut AccessStats,
        clipped_prefilter: bool,
    ) -> Vec<Neighbor> {
        let mut best: Vec<Neighbor> = Vec::new();
        if k == 0 {
            return best;
        }
        let mut tiles: Vec<(f64, usize)> = (0..self.forest.tile_count())
            .filter_map(|t| {
                let tree = self.forest.tree(t)?;
                let mbb = tree.tree.bounds().expect("forest trees are non-empty");
                let bound = if clipped_prefilter {
                    clipped_min_dist_sq(&mbb, tree.clips_of(tree.tree.root_id()), center)
                } else {
                    mbb.min_dist_sq(center)
                };
                Some((bound, t))
            })
            .collect();
        tiles.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        for (tile_dist, t) in tiles {
            if best.len() == k && tile_dist > best[k - 1].1 {
                break;
            }
            let tree = self.forest.tree(t).expect("listed tiles are built");
            for (id, dist) in tree.knn_stats(center, k, stats) {
                if best.iter().any(|&(bid, _)| bid == id) {
                    continue; // multi-assigned object already merged
                }
                push_neighbor(&mut best, k, id, dist);
            }
        }
        best
    }

    /// Execute `queries` on `workers` threads. With `use_clips = false`
    /// the probes run on the base trees (the unclipped baseline on the
    /// same indexes). Shorthand for [`Self::run_with`] on the classic
    /// per-query path ([`QueryAlgo::Descend`]).
    pub fn run(&self, queries: &[Rect<D>], workers: usize, use_clips: bool) -> BatchOutcome {
        self.run_with(
            queries,
            workers,
            use_clips,
            QueryAlgo::Descend,
            &AutoPolicy::default(),
            SplitPolicy::Auto,
        )
    }

    /// Execute `queries` on `workers` threads under an explicit
    /// execution algorithm, [`AutoPolicy`] and intra-tile decomposition
    /// policy.
    ///
    /// The batch is first grouped per covered, populated tile. Each
    /// tile then answers its slice of the batch either by per-query
    /// tree descents ([`QueryAlgo::Descend`]) or by ONE shared plane
    /// sweep of the batch's query rects against the tile's cached
    /// columnar layout ([`QueryAlgo::SharedSweep`], the
    /// [`cbb_joins::sweep_queries`] kernel). [`QueryAlgo::Auto`]
    /// resolves per tile — **before** any decomposition, from the
    /// number of batch queries covering the tile, the tile's
    /// cardinality, and whether the tile's columns are already
    /// extracted — so the resolution (and with it every counter) is
    /// identical across worker counts and [`SplitPolicy`] choices.
    ///
    /// All variants return byte-equal `results` (each per-query list
    /// sorted ascending by id, the canonical order); only the work
    /// counters differ. Fused tiles do zero node accesses and charge
    /// sweep `overlap_tests` (plus raw sweep hits as `results`) to the
    /// exact query that incurred them, so `per_query` attribution stays
    /// counter-exact against the aggregate [`cbb_joins::sweep`]. Note
    /// the fused path never consults clip tables — `use_clips` only
    /// affects descents (clips prune traversals, never answers).
    pub fn run_with(
        &self,
        queries: &[Rect<D>],
        workers: usize,
        use_clips: bool,
        algo: QueryAlgo,
        policy: &AutoPolicy,
        split: SplitPolicy,
    ) -> BatchOutcome {
        let n = queries.len();
        let mut outcome = BatchOutcome {
            results: vec![Vec::new(); n],
            per_query: vec![AccessStats::new(); n],
            ..BatchOutcome::default()
        };
        // Group the batch per covered, populated tile. BTreeMap iteration
        // gives ascending tile order; queries land in workload order.
        let mut by_tile: BTreeMap<usize, Vec<u32>> = BTreeMap::new();
        for (qi, q) in queries.iter().enumerate() {
            for t in self.partitioner.covering_tiles(q) {
                if self.forest.tree(t).is_some() {
                    by_tile.entry(t).or_default().push(qi as u32);
                }
            }
        }
        // Resolve the algorithm per tile and extract fused columns up
        // front, on the coordinating thread: the cold path and the hot
        // decomposition path see the very same per-tile decision, and
        // `Auto` reads the cache state exactly once per tile.
        struct TilePlan<const D: usize> {
            t: usize,
            qs: Vec<u32>,
            tile_len: usize,
            fused: Option<(TileColumns<D>, Arc<TileColumns<D>>)>,
        }
        let mut plans: Vec<TilePlan<D>> = Vec::with_capacity(by_tile.len());
        let mut total_work = 0u64;
        for (t, qs) in by_tile {
            let tree = self.forest.tree(t).expect("grouped tiles are built");
            let tile_len = tree.tree.len();
            let fuse = match algo {
                QueryAlgo::Descend => false,
                QueryAlgo::SharedSweep => true,
                QueryAlgo::Auto => {
                    policy.fuse_tile(qs.len(), tile_len, self.forest.columns_cached(t))
                }
            };
            total_work += qs.len() as u64 * tile_len.max(1) as u64;
            let fused = if fuse {
                outcome.tiles_fused += 1;
                outcome.fused_widths.push(qs.len() as u64);
                // Query ids are *local slots* into `qs`, so the sweep
                // positions map back to workload indices.
                let items: Vec<(Rect<D>, DataId)> = qs
                    .iter()
                    .enumerate()
                    .map(|(local, &qi)| (queries[qi as usize], DataId(local as u32)))
                    .collect();
                let ocols = self.forest.columns(t).expect("grouped tiles are built");
                Some((TileColumns::from_items(&items), ocols))
            } else {
                outcome.tiles_descend += 1;
                None
            };
            plans.push(TilePlan {
                t,
                qs,
                tile_len,
                fused,
            });
        }
        // Cut each tile's work into tasks: hot tiles decompose into
        // outer-index ranges (queries for descents and the Left scan,
        // objects for the Right scan). Chunk sums reproduce the whole
        // tile's pairs and counters exactly, so the decomposition is
        // invisible in every output.
        enum Task {
            Descend {
                plan: usize,
                lo: usize,
                hi: usize,
            },
            Sweep {
                plan: usize,
                side: SweepSide,
                lo: usize,
                hi: usize,
            },
        }
        let threshold = split.threshold(total_work, workers);
        let ranges = |outer: usize, inner: usize| -> Vec<(usize, usize)> {
            let step = match threshold {
                Some(thr) => (thr / inner.max(1) as u64).max(1) as usize,
                None => outer.max(1),
            };
            (0..outer)
                .step_by(step)
                .map(|lo| (lo, (lo + step).min(outer)))
                .collect()
        };
        let mut tasks: Vec<Task> = Vec::new();
        for (pi, plan) in plans.iter().enumerate() {
            match &plan.fused {
                Some((qcols, ocols)) => {
                    for (lo, hi) in ranges(qcols.len(), ocols.len()) {
                        tasks.push(Task::Sweep {
                            plan: pi,
                            side: SweepSide::Left,
                            lo,
                            hi,
                        });
                    }
                    for (lo, hi) in ranges(ocols.len(), qcols.len()) {
                        tasks.push(Task::Sweep {
                            plan: pi,
                            side: SweepSide::Right,
                            lo,
                            hi,
                        });
                    }
                }
                None => {
                    for (lo, hi) in ranges(plan.qs.len(), plan.tile_len) {
                        tasks.push(Task::Descend { plan: pi, lo, hi });
                    }
                }
            }
        }
        let shards = map_chunked(workers, &tasks, |_offset, chunk| {
            let mut out: Vec<(u32, Vec<DataId>, AccessStats)> = Vec::new();
            for task in chunk {
                match *task {
                    Task::Descend { plan, lo, hi } => {
                        let plan = &plans[plan];
                        for &qi in &plan.qs[lo..hi] {
                            let q = &queries[qi as usize];
                            let mut stats = AccessStats::new();
                            let kept = self.descend_tile(plan.t, q, use_clips, &mut stats);
                            out.push((qi, kept, stats));
                        }
                    }
                    Task::Sweep { plan, side, lo, hi } => {
                        let plan = &plans[plan];
                        let (qcols, ocols) =
                            plan.fused.as_ref().expect("sweep tasks target fused tiles");
                        let mut tests = vec![0u64; qcols.len()];
                        let mut hits: Vec<Vec<DataId>> = vec![Vec::new(); qcols.len()];
                        sweep_queries_scan(qcols, ocols, side, lo, hi, &mut tests, &mut |p, id| {
                            hits[p].push(id)
                        });
                        for (pos, ids) in hits.into_iter().enumerate() {
                            if tests[pos] == 0 && ids.is_empty() {
                                continue;
                            }
                            let qi = plan.qs[qcols.id(pos).0 as usize];
                            let q = &queries[qi as usize];
                            let mut stats = AccessStats::new();
                            stats.overlap_tests = tests[pos];
                            // Raw sweep hits mirror the tree-query
                            // `results` semantics: counted before the
                            // ownership filter.
                            stats.results = ids.len() as u64;
                            let kept: Vec<DataId> = ids
                                .into_iter()
                                .filter(|id| {
                                    self.partitioner.owns(
                                        plan.t,
                                        &reference_point(q, &self.objects[id.0 as usize]),
                                    )
                                })
                                .collect();
                            out.push((qi, kept, stats));
                        }
                    }
                }
            }
            out
        });
        for shard in shards {
            for (qi, kept, stats) in shard {
                outcome.per_query[qi as usize].absorb(&stats);
                outcome.stats += stats;
                outcome.results[qi as usize].extend(kept);
            }
        }
        // Canonical result order: ascending by id, independent of tile
        // visit order and of per-query vs fused execution. An object is
        // kept by exactly one covered tile (the reference-point owner),
        // so the lists are duplicate-free by construction.
        for r in &mut outcome.results {
            r.sort_unstable();
        }
        outcome
    }

    /// Execute the kNN probes `(center, k)` on `workers` threads.
    /// Results come back in workload order and are independent of the
    /// worker count. Per-tile searches run the clip-aware kNN
    /// ([`cbb_rtree::ClippedRTree::knn_stats`]): clip points tighten
    /// node MINDISTs for probes near clipped corners, with answers
    /// identical to the base-tree search.
    ///
    /// Tiles are ordered (and early-broken) by the **clipped** root
    /// MINDIST — the [`cbb_core::clipped_min_dist_sq`] prefilter — so
    /// dead corner space in a tile's root MBB no longer forces a
    /// descent into its tree. Answers are identical to the plain-bound
    /// search ([`Self::run_knn_with`] with `clipped_prefilter = false`,
    /// the oracle the tests pin against); node accesses only drop.
    pub fn run_knn(&self, probes: &[(Point<D>, usize)], workers: usize) -> KnnOutcome {
        self.run_knn_with(probes, workers, true)
    }

    /// [`Self::run_knn`] with an explicit choice of tile-ordering bound:
    /// `clipped_prefilter = false` reproduces the plain root-MBB
    /// MINDIST ordering (the baseline), `true` the clipped prefilter.
    pub fn run_knn_with(
        &self,
        probes: &[(Point<D>, usize)],
        workers: usize,
        clipped_prefilter: bool,
    ) -> KnnOutcome {
        let shards = map_chunked(workers, probes, |_offset, chunk| {
            let mut per_query = Vec::with_capacity(chunk.len());
            let results: Vec<Vec<Neighbor>> = chunk
                .iter()
                .map(|(center, k)| {
                    let mut stats = AccessStats::new();
                    let best = self.knn_one(center, *k, &mut stats, clipped_prefilter);
                    per_query.push(stats);
                    best
                })
                .collect();
            (results, per_query)
        });
        let mut outcome = KnnOutcome::default();
        for (results, per_query) in shards {
            outcome.results.extend(results);
            outcome.stats += AccessStats::sum(&per_query);
            outcome.per_query.extend(per_query);
        }
        outcome
    }
}

/// Why a catalog operation was refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CatalogError {
    /// A dataset of this name already exists.
    NameTaken(String),
    /// No dataset with this id (never created, or dropped).
    UnknownDataset(DatasetId),
    /// A dataset with this id already exists (recovery replayed a
    /// create into an occupied slot — the durability log is corrupt).
    IdTaken(DatasetId),
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::NameTaken(name) => write!(f, "dataset name {name:?} is taken"),
            CatalogError::UnknownDataset(id) => write!(f, "unknown dataset {id:?}"),
            CatalogError::IdTaken(id) => write!(f, "dataset id {id:?} is taken"),
        }
    }
}

impl std::error::Error for CatalogError {}

/// One catalog entry: a named dataset behind its own `RwLock`.
///
/// The lock granularity is the whole point — every dataset can be read
/// and written independently, so a write batch draining into dataset A
/// never blocks a query batch reading dataset B.
pub struct Dataset<const D: usize, P> {
    id: DatasetId,
    name: String,
    store: RwLock<DatasetStore<D, P>>,
}

impl<const D: usize, P> Dataset<D, P> {
    /// The catalog-assigned id.
    pub fn id(&self) -> DatasetId {
        self.id
    }

    /// The name the dataset was created under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The store lock. Readers take `read()`, the write path `write()`;
    /// multi-dataset operations must acquire locks in ascending
    /// [`DatasetId`] order to stay deadlock-free.
    pub fn store(&self) -> &RwLock<DatasetStore<D, P>> {
        &self.store
    }
}

struct CatalogInner<const D: usize, P> {
    /// Slot `i` holds the dataset with id `i`; dropped datasets leave a
    /// permanent `None` (ids are never reused).
    entries: Vec<Option<Arc<Dataset<D, P>>>>,
    by_name: HashMap<String, DatasetId>,
}

/// A concurrent map of named datasets: `DatasetId -> DatasetStore`,
/// per-dataset versioning and locking.
///
/// The catalog's own lock guards only the *map* (create / drop /
/// resolve); every returned [`Dataset`] is an `Arc`, so lookups release
/// the map lock immediately and in-flight readers keep a dropped
/// dataset alive until they finish.
pub struct Catalog<const D: usize, P> {
    inner: RwLock<CatalogInner<D, P>>,
}

impl<const D: usize, P> Default for Catalog<D, P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const D: usize, P> Catalog<D, P> {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog {
            inner: RwLock::new(CatalogInner {
                entries: Vec::new(),
                by_name: HashMap::new(),
            }),
        }
    }

    /// Register `store` under `name`, assigning the next [`DatasetId`].
    /// Fails without side effects when the name is taken.
    pub fn create(&self, name: &str, store: DatasetStore<D, P>) -> Result<DatasetId, CatalogError> {
        let mut inner = self.inner.write().expect("catalog poisoned");
        if inner.by_name.contains_key(name) {
            return Err(CatalogError::NameTaken(name.to_string()));
        }
        let id = DatasetId(inner.entries.len() as u32);
        inner.entries.push(Some(Arc::new(Dataset {
            id,
            name: name.to_string(),
            store: RwLock::new(store),
        })));
        inner.by_name.insert(name.to_string(), id);
        Ok(id)
    }

    /// Re-register a recovered dataset under the id it held before the
    /// restart. Slots between the current end and `id` are padded with
    /// `None` (they belonged to datasets dropped before the snapshot —
    /// ids are never reused, even across restarts), so ids assigned by
    /// later [`Catalog::create`] calls continue past every recovered
    /// one.
    pub fn restore_dataset(
        &self,
        id: DatasetId,
        name: &str,
        store: DatasetStore<D, P>,
    ) -> Result<(), CatalogError> {
        let mut inner = self.inner.write().expect("catalog poisoned");
        if inner.by_name.contains_key(name) {
            return Err(CatalogError::NameTaken(name.to_string()));
        }
        let slot = id.0 as usize;
        if inner.entries.len() <= slot {
            inner.entries.resize_with(slot + 1, || None);
        }
        if inner.entries[slot].is_some() {
            return Err(CatalogError::IdTaken(id));
        }
        inner.entries[slot] = Some(Arc::new(Dataset {
            id,
            name: name.to_string(),
            store: RwLock::new(store),
        }));
        inner.by_name.insert(name.to_string(), id);
        Ok(())
    }

    /// Pad the id space so the next [`Catalog::create`] assigns
    /// `DatasetId(next)` or later. Recovery uses this to keep the ids
    /// of datasets dropped *before* a crash retired *after* it —
    /// without it, a restart would reassign the highest dropped id.
    pub fn reserve_ids(&self, next: u32) {
        let mut inner = self.inner.write().expect("catalog poisoned");
        if (inner.entries.len() as u32) < next {
            inner.entries.resize_with(next as usize, || None);
        }
    }

    /// Remove a dataset, returning its entry (callers holding the `Arc`
    /// finish their work; the id is never reassigned). `None` for
    /// unknown/already-dropped ids.
    pub fn drop_dataset(&self, id: DatasetId) -> Option<Arc<Dataset<D, P>>> {
        let mut inner = self.inner.write().expect("catalog poisoned");
        let entry = inner.entries.get_mut(id.0 as usize)?.take()?;
        inner.by_name.remove(entry.name());
        Some(entry)
    }

    /// The dataset with this id, if it exists.
    pub fn get(&self, id: DatasetId) -> Option<Arc<Dataset<D, P>>> {
        self.inner
            .read()
            .expect("catalog poisoned")
            .entries
            .get(id.0 as usize)?
            .clone()
    }

    /// Resolve a dataset name to its id.
    pub fn resolve(&self, name: &str) -> Option<DatasetId> {
        self.inner
            .read()
            .expect("catalog poisoned")
            .by_name
            .get(name)
            .copied()
    }

    /// Ids of every live dataset, ascending.
    pub fn ids(&self) -> Vec<DatasetId> {
        self.inner
            .read()
            .expect("catalog poisoned")
            .entries
            .iter()
            .flatten()
            .map(|d| d.id)
            .collect()
    }

    /// Number of live datasets.
    pub fn len(&self) -> usize {
        self.inner.read().expect("catalog poisoned").by_name.len()
    }

    /// Whether the catalog holds no dataset.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::UniformGrid;
    use cbb_core::{ClipConfig, ClipMethod};
    use cbb_geom::SplitMix64;
    use cbb_rtree::Variant;

    fn r2(lx: f64, ly: f64, hx: f64, hy: f64) -> Rect<2> {
        Rect::new(Point([lx, ly]), Point([hx, hy]))
    }

    fn boxes(n: usize, seed: u64) -> Vec<Rect<2>> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| {
                let x = rng.gen_range(0.0, 90.0);
                let y = rng.gen_range(0.0, 90.0);
                r2(
                    x,
                    y,
                    x + rng.gen_range(0.5, 8.0),
                    y + rng.gen_range(0.5, 8.0),
                )
            })
            .collect()
    }

    fn store(n: usize, seed: u64) -> DatasetStore<2, UniformGrid<2>> {
        DatasetStore::build(
            UniformGrid::new(r2(0.0, 0.0, 100.0, 100.0), 3),
            &boxes(n, seed),
            TreeConfig::tiny(Variant::RStar),
            ClipConfig::paper_default::<2>(ClipMethod::Stairline),
            2,
        )
    }

    #[test]
    fn catalog_creates_resolves_and_drops() {
        let catalog: Catalog<2, UniformGrid<2>> = Catalog::new();
        assert!(catalog.is_empty());
        let a = catalog.create("roads", store(40, 1)).unwrap();
        let b = catalog.create("pois", store(30, 2)).unwrap();
        assert_eq!((a, b), (DatasetId(0), DatasetId(1)));
        assert_eq!(catalog.len(), 2);
        assert_eq!(catalog.resolve("roads"), Some(a));
        assert_eq!(catalog.resolve("nope"), None);
        assert_eq!(
            catalog.create("roads", store(5, 3)),
            Err(CatalogError::NameTaken("roads".into()))
        );
        assert_eq!(catalog.get(a).unwrap().name(), "roads");
        assert_eq!(catalog.ids(), vec![a, b]);

        // Drop: the name frees up, the id never comes back.
        let dropped = catalog.drop_dataset(a).expect("roads existed");
        assert_eq!(dropped.id(), a);
        assert!(catalog.get(a).is_none());
        assert!(catalog.drop_dataset(a).is_none());
        assert_eq!(catalog.resolve("roads"), None);
        let c = catalog.create("roads", store(10, 4)).unwrap();
        assert_eq!(c, DatasetId(2), "ids are never reused");
        assert_eq!(catalog.ids(), vec![b, c]);
        assert!(catalog.drop_dataset(DatasetId(99)).is_none());
    }

    #[test]
    fn store_versions_bump_per_applied_batch_only() {
        let mut s = store(50, 7);
        assert_eq!(s.version(), DataVersion(0));
        let tree = TreeConfig::tiny(Variant::RStar);
        let clip = ClipConfig::paper_default::<2>(ClipMethod::Stairline);
        let out = s.apply_updates(
            &[
                Update::Insert(r2(1.0, 1.0, 2.0, 2.0)),
                Update::Delete(DataId(0)),
            ],
            tree,
            clip,
        );
        assert_eq!(out.applied(), 2);
        assert_eq!(s.version(), DataVersion(1));
        assert_eq!((s.write_batches(), s.updates_applied()), (1, 2));
        // All-no-op batch: nothing bumps.
        let out = s.apply_updates(&[Update::<2>::Delete(DataId(999))], tree, clip);
        assert_eq!(out.applied(), 0);
        assert_eq!(s.version(), DataVersion(1));
        assert_eq!(s.write_batches(), 1);
        // Swap bumps and resets the arena.
        let objs = boxes(9, 9);
        let forest = Arc::new(TileForest::build(s.partitioner(), &objs, tree, clip, 1));
        s.swap(objs, forest);
        assert_eq!(s.version(), DataVersion(2));
        assert_eq!(s.live_count(), 9);
        assert_eq!(s.free_slots(), 0);
    }

    /// The compaction satellite's regression test: a sweep reclaims
    /// tombstoned slots for reuse while every live id keeps answering
    /// exactly as before, and the arena stops growing.
    #[test]
    fn compaction_reclaims_slots_with_stable_live_ids() {
        let tree = TreeConfig::tiny(Variant::RStar);
        let clip = ClipConfig::paper_default::<2>(ClipMethod::Stairline);
        let mut s = store(100, 11).with_compaction(CompactionPolicy { dead_fraction: 0.2 });
        let everything = r2(-10.0, -10.0, 200.0, 200.0);
        let before: Vec<DataId> = {
            let mut ids = s.run(&[everything], 1, true).results.remove(0);
            ids.sort();
            ids
        };
        assert_eq!(before.len(), 100);

        // Delete 30 of 100: 30 % dead > 20 % threshold → sweep.
        let deletes: Vec<Update<2>> = (0..30).map(|i| Update::Delete(DataId(i * 3))).collect();
        let out = s.apply_updates(&deletes, tree, clip);
        assert_eq!(out.slots_reclaimed, 30, "sweep reclaimed every tombstone");
        assert_eq!(s.compactions(), 1);
        assert_eq!(s.free_slots(), 30);
        assert_eq!(s.arena_len(), 100);

        // Live ids are stable across the compaction: the survivors
        // answer under exactly their old ids.
        let survivors: Vec<DataId> = {
            let mut ids = s.run(&[everything], 1, true).results.remove(0);
            ids.sort();
            ids
        };
        let expected: Vec<DataId> = before
            .iter()
            .copied()
            .filter(|id| id.0 % 3 != 0 || id.0 >= 90)
            .collect();
        assert_eq!(survivors, expected);

        // Inserts reuse the reclaimed slots, smallest id first; the
        // arena does not grow until the free list is exhausted.
        let out = s.apply_updates(
            &[
                Update::Insert(r2(50.0, 50.0, 51.0, 51.0)),
                Update::Insert(r2(60.0, 60.0, 61.0, 61.0)),
            ],
            tree,
            clip,
        );
        assert_eq!(
            out.inserted_ids(),
            vec![DataId(0), DataId(3)],
            "smallest reclaimed slots are reused first"
        );
        assert_eq!(s.arena_len(), 100, "reuse does not grow the arena");
        assert_eq!(s.free_slots(), 28);
        let found = s
            .run(&[r2(49.0, 49.0, 52.0, 52.0)], 1, true)
            .results
            .remove(0);
        assert!(found.contains(&DataId(0)), "reused id is queryable");

        // 31 inserts: 28 reuses, then 3 appends.
        let inserts: Vec<Update<2>> = (0..31)
            .map(|i| Update::Insert(r2(i as f64, 0.0, i as f64 + 0.5, 0.5)))
            .collect();
        s.apply_updates(&inserts, tree, clip);
        assert_eq!(s.arena_len(), 103);
        assert_eq!(s.free_slots(), 0);
        assert_eq!(s.live_count(), 103);
    }

    #[test]
    fn never_policy_keeps_the_arena_append_only() {
        let tree = TreeConfig::tiny(Variant::RStar);
        let clip = ClipConfig::paper_default::<2>(ClipMethod::Stairline);
        let mut s = store(10, 13).with_compaction(CompactionPolicy::never());
        let deletes: Vec<Update<2>> = (0..10).map(|i| Update::Delete(DataId(i))).collect();
        let out = s.apply_updates(&deletes, tree, clip);
        assert_eq!(out.slots_reclaimed, 0);
        assert_eq!(s.compactions(), 0);
        let out = s.apply_updates(&[Update::Insert(r2(1.0, 1.0, 2.0, 2.0))], tree, clip);
        assert_eq!(out.inserted_ids(), vec![DataId(10)], "append, not reuse");
        assert_eq!(s.arena_len(), 11);
    }
}
