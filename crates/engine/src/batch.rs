//! Batched range-query execution over one shared clipped tree.
//!
//! A query workload is split into contiguous shards, each shard runs on
//! its own worker against the *same* `&ClippedRTree` (the index types are
//! `Sync`; traversal is read-only), and the per-worker [`AccessStats`]
//! are merged. Results come back **in workload order** regardless of the
//! worker count, so callers can line answers up with their queries.

use cbb_geom::Rect;
use cbb_rtree::{AccessStats, ClippedRTree, DataId};

use crate::pool::map_chunked;

/// Merged outcome of a batched query run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Result ids per query, in workload order (same order the queries
    /// were given; each list in tree traversal order).
    pub results: Vec<Vec<DataId>>,
    /// Access counters summed over all workers.
    pub stats: AccessStats,
}

impl BatchOutcome {
    /// Total result objects over the whole batch.
    pub fn total_results(&self) -> u64 {
        self.results.iter().map(|r| r.len() as u64).sum()
    }
}

/// Execute `queries` against `tree` on `workers` threads. With
/// `use_clips = false` the probes run on the base tree (the unclipped
/// baseline on the same index).
pub fn parallel_range_queries<const D: usize>(
    tree: &ClippedRTree<D>,
    queries: &[Rect<D>],
    workers: usize,
    use_clips: bool,
) -> BatchOutcome {
    let shards = map_chunked(workers, queries, |_offset, chunk| {
        let mut stats = AccessStats::new();
        let results: Vec<Vec<DataId>> = chunk
            .iter()
            .map(|q| {
                if use_clips {
                    tree.range_query_stats(q, &mut stats)
                } else {
                    tree.tree.range_query_stats(q, &mut stats)
                }
            })
            .collect();
        (results, stats)
    });
    let mut outcome = BatchOutcome::default();
    for (results, stats) in shards {
        outcome.results.extend(results);
        outcome.stats += stats;
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbb_core::{ClipConfig, ClipMethod};
    use cbb_geom::{Point, SplitMix64};
    use cbb_rtree::{RTree, TreeConfig, Variant};

    fn r2(lx: f64, ly: f64, hx: f64, hy: f64) -> Rect<2> {
        Rect::new(Point([lx, ly]), Point([hx, hy]))
    }

    fn setup(n: usize) -> (ClippedRTree<2>, Vec<Rect<2>>) {
        let mut rng = SplitMix64::new(21);
        let items: Vec<(Rect<2>, cbb_rtree::DataId)> = (0..n)
            .map(|i| {
                let x = rng.gen_range(0.0, 950.0);
                let y = rng.gen_range(0.0, 950.0);
                (
                    r2(
                        x,
                        y,
                        x + rng.gen_range(0.5, 20.0),
                        y + rng.gen_range(0.5, 20.0),
                    ),
                    cbb_rtree::DataId(i as u32),
                )
            })
            .collect();
        let tree = RTree::bulk_load(
            TreeConfig::tiny(Variant::RStar).with_world(r2(0.0, 0.0, 1000.0, 1000.0)),
            &items,
        );
        let clipped =
            ClippedRTree::from_tree(tree, ClipConfig::paper_default::<2>(ClipMethod::Stairline));
        let queries: Vec<Rect<2>> = (0..200)
            .map(|_| {
                let x = rng.gen_range(0.0, 960.0);
                let y = rng.gen_range(0.0, 960.0);
                let s = rng.gen_range(1.0, 40.0);
                r2(x, y, x + s, y + s)
            })
            .collect();
        (clipped, queries)
    }

    #[test]
    fn parallel_equals_sequential_for_any_worker_count() {
        let (tree, queries) = setup(800);
        let baseline = parallel_range_queries(&tree, &queries, 1, true);
        // Sequential reference computed directly.
        let mut stats = AccessStats::new();
        let expected: Vec<Vec<DataId>> = queries
            .iter()
            .map(|q| tree.range_query_stats(q, &mut stats))
            .collect();
        assert_eq!(baseline.results, expected);
        assert_eq!(baseline.stats, stats);
        for workers in [2, 3, 8, 200] {
            let out = parallel_range_queries(&tree, &queries, workers, true);
            assert_eq!(out.results, expected, "workers = {workers}");
            assert_eq!(out.stats, stats, "workers = {workers}");
        }
    }

    #[test]
    fn clipped_batch_saves_io_but_returns_identical_results() {
        let (tree, queries) = setup(1_000);
        let base = parallel_range_queries(&tree, &queries, 4, false);
        let clip = parallel_range_queries(&tree, &queries, 4, true);
        let sort = |mut v: Vec<DataId>| {
            v.sort();
            v
        };
        for (b, c) in base.results.iter().zip(&clip.results) {
            assert_eq!(sort(b.clone()), sort(c.clone()));
        }
        assert!(clip.stats.leaf_accesses <= base.stats.leaf_accesses);
        assert!(clip.stats.clip_prunes > 0);
        assert_eq!(clip.total_results(), base.total_results());
    }

    #[test]
    fn empty_workload() {
        let (tree, _) = setup(100);
        let out = parallel_range_queries(&tree, &[], 4, true);
        assert!(out.results.is_empty());
        assert_eq!(out.stats, AccessStats::new());
    }
}
