//! Batched range/kNN-query execution: one shared clipped tree
//! ([`parallel_range_queries`]) or a reusable partitioned executor
//! ([`BatchExecutor`]) over a [`TileForest`].
//!
//! A query workload is split into contiguous shards, each shard runs on
//! its own worker against read-only indexes (the index types are `Sync`),
//! and the per-worker [`AccessStats`] are merged. Results come back **in
//! workload order** regardless of the worker count, so callers can line
//! answers up with their queries.
//!
//! The [`TileForest`] — one clipped R-tree per non-empty tile of a
//! [`Partitioner`] — is the unit the serving layer caches across
//! requests: an executor borrows a forest (`Arc`-shared), and the same
//! forest doubles as the prebuilt indexed side of repeated joins
//! ([`crate::join::partitioned_join_with`]), keyed by
//! [`crate::partition::DataVersion`] in a [`crate::join::ForestCache`].

use std::sync::{Arc, OnceLock};

use cbb_core::ClipConfig;
use cbb_geom::{Point, Rect};
use cbb_joins::TileColumns;
use cbb_rtree::{AccessStats, ClippedRTree, DataId, Neighbor, RTree, TreeConfig};

use crate::catalog::DatasetStore;
use crate::partition::Partitioner;
use crate::pool::map_chunked;
use crate::update::{Update, UpdateOutcome};

/// One clipped R-tree per non-empty tile of a partitioner — the shared
/// index substrate of [`BatchExecutor`] and forest-reusing joins.
///
/// Trees are always built *with* clip tables, so every consumer can
/// choose clipped or unclipped probing per call (an unused clip table
/// changes no traversal counter). Ids stored in the trees are global
/// [`DataId`]s into the object slice the forest was built from.
///
/// Each tile tree sits behind its own `Arc`: cloning a forest is a
/// per-tile refcount bump, and the mutable maintenance path
/// ([`Self::insert_object`] / [`Self::delete_object`]) copy-on-writes
/// only the tiles an update actually touches — the shared tiles of
/// every older version stay intact, which is what makes epoch-based
/// version bumps cheap.
///
/// Alongside each tree the forest lazily caches the tile's
/// [`TileColumns`] — the x-sorted SoA layout the plane-sweep join kernel
/// consumes. Columns are extracted from the tile tree on first use
/// ([`Self::columns`]) and share the trees' version-exact lifetime:
/// cloning a forest shares the already-extracted columns, and the
/// maintenance path invalidates exactly the tiles it touches, so a
/// cached forest never serves columns that disagree with its trees.
#[derive(Clone)]
pub struct TileForest<const D: usize> {
    /// One tree per tile; `None` for empty tiles.
    trees: Vec<Option<Arc<ClippedRTree<D>>>>,
    /// Lazily extracted sweep columns per tile, parallel to `trees`.
    columns: Vec<OnceLock<Arc<TileColumns<D>>>>,
}

impl<const D: usize> TileForest<D> {
    /// Multi-assign `objects` to `partitioner`'s tiles and bulk-load one
    /// clipped tree per non-empty tile on `workers` threads.
    pub fn build<P: Partitioner<D>>(
        partitioner: &P,
        objects: &[Rect<D>],
        tree: TreeConfig<D>,
        clip: ClipConfig,
        workers: usize,
    ) -> Self {
        Self::build_where(partitioner, objects, None, tree, clip, workers)
    }

    /// [`Self::build`] over the live subset of a tombstoned object
    /// arena: slot `i` is indexed iff `live[i]` (when a mask is given).
    /// This is the wholesale-rebuild twin of the delta maintenance path
    /// — the oracle tests and `update_scale` compare the two.
    pub fn build_where<P: Partitioner<D>>(
        partitioner: &P,
        objects: &[Rect<D>],
        live: Option<&[bool]>,
        tree: TreeConfig<D>,
        clip: ClipConfig,
        workers: usize,
    ) -> Self {
        if let Some(mask) = live {
            assert_eq!(mask.len(), objects.len(), "mask must cover every slot");
        }
        let assign = partitioner.assign(objects);
        let built = map_chunked(workers, &assign, |_, chunk| {
            chunk
                .iter()
                .map(|ids| {
                    let items: Vec<(Rect<D>, DataId)> = ids
                        .iter()
                        .filter(|&&i| live.is_none_or(|mask| mask[i as usize]))
                        .map(|&i| (objects[i as usize], DataId(i)))
                        .collect();
                    if items.is_empty() {
                        return None;
                    }
                    Some(Arc::new(ClippedRTree::from_tree(
                        RTree::bulk_load(tree, &items),
                        clip,
                    )))
                })
                .collect::<Vec<_>>()
        });
        let trees: Vec<Option<Arc<ClippedRTree<D>>>> = built.into_iter().flatten().collect();
        let columns = trees.iter().map(|_| OnceLock::new()).collect();
        TileForest { trees, columns }
    }

    /// Total number of tiles (matches the partitioner's `tile_count`).
    pub fn tile_count(&self) -> usize {
        self.trees.len()
    }

    /// The tree of tile `t`, `None` when the tile is empty.
    pub fn tree(&self, t: usize) -> Option<&ClippedRTree<D>> {
        self.trees[t].as_deref()
    }

    /// The sweep columns of tile `t`, `None` when the tile is empty.
    ///
    /// Extracted from the tile tree's leaves on first call (one sort),
    /// then cached for the forest's lifetime; concurrent first calls
    /// race benignly (`OnceLock` keeps one winner). The returned `Arc`
    /// is stable across calls — and across forest clones until a
    /// maintenance write touches the tile — so repeated sweeps and
    /// forest-native probe extraction pay the sort exactly once per
    /// tile version.
    pub fn columns(&self, t: usize) -> Option<Arc<TileColumns<D>>> {
        let tree = self.trees[t].as_deref()?;
        Some(
            self.columns[t]
                .get_or_init(|| Arc::new(TileColumns::from_items(&tree.tree.all_objects())))
                .clone(),
        )
    }

    /// Whether tile `t`'s columns are already extracted — a non-forcing
    /// probe of the [`Self::columns`] cache. [`crate::QueryAlgo::Auto`]
    /// reads this: a tile whose columns are in hand fuses a smaller
    /// batch than one that would pay the extraction sort first.
    pub fn columns_cached(&self, t: usize) -> bool {
        self.columns[t].get().is_some()
    }

    /// Drop tile `t`'s cached columns (its tree changed).
    fn invalidate_columns(&mut self, t: usize) {
        self.columns[t] = OnceLock::new();
    }

    /// Number of non-empty tiles (built trees).
    pub fn built_tree_count(&self) -> usize {
        self.trees.iter().filter(|t| t.is_some()).count()
    }

    /// Total objects over all tile trees (≥ the dataset size: spanning
    /// objects are multi-assigned).
    pub fn total_indexed(&self) -> usize {
        self.trees.iter().flatten().map(|t| t.tree.len()).sum()
    }

    /// Cumulative R-tree node constructions over all tile trees (the
    /// structural build-work counter `BENCH_update.json` compares).
    pub fn nodes_allocated(&self) -> u64 {
        self.trees
            .iter()
            .flatten()
            .map(|t| t.tree.nodes_allocated())
            .sum()
    }

    /// Indexed-object count of every non-empty tile tree — the raw
    /// occupancy distribution behind [`Self::load_imbalance`]. Feed it
    /// to a histogram to see the tail (p99 tile), which the max/mean
    /// ratio hides.
    pub fn tile_loads(&self) -> Vec<u64> {
        self.trees
            .iter()
            .flatten()
            .map(|t| t.tree.len() as u64)
            .collect()
    }

    /// Max-tile / mean-tile indexed objects over the non-empty tiles:
    /// `1.0` is perfect balance (and the empty-forest value). Under
    /// churn a data-fitted partitioner drifts away from its sample;
    /// this is the per-dataset observability metric serve reports so
    /// the drift is visible before a re-fit is triggered.
    pub fn load_imbalance(&self) -> f64 {
        let loads: Vec<f64> = self
            .trees
            .iter()
            .flatten()
            .map(|t| t.tree.len() as f64)
            .collect();
        if loads.is_empty() {
            return 1.0;
        }
        let max = loads.iter().cloned().fold(0.0f64, f64::max);
        let mean = loads.iter().sum::<f64>() / loads.len() as f64;
        max / mean
    }

    /// Mutable access to tile `t`'s tree, copy-on-write: if the tree is
    /// shared with another forest (an older version), it is cloned
    /// first, so the sharer is never disturbed.
    fn tile_mut(&mut self, t: usize) -> Option<&mut ClippedRTree<D>> {
        self.trees[t].as_mut().map(Arc::make_mut)
    }

    /// Route one insert to every tile `rect` overlaps, maintaining clip
    /// points through the eager §IV-D path; empty tiles get a fresh
    /// incremental tree. Returns the number of R-tree nodes constructed
    /// (plus whether any tree was created) for the maintenance
    /// accounting.
    ///
    /// The caller owns the id space: `id` must be unique among live
    /// objects (the [`BatchExecutor`] assigns arena slots).
    pub fn insert_object<P: Partitioner<D>>(
        &mut self,
        partitioner: &P,
        rect: Rect<D>,
        id: DataId,
        tree: TreeConfig<D>,
        clip: ClipConfig,
        touched: &mut [bool],
    ) -> (u64, usize) {
        let mut nodes = 0u64;
        let mut created = 0usize;
        for t in partitioner.covering_tiles(&rect) {
            touched[t] = true;
            self.invalidate_columns(t);
            match self.tile_mut(t) {
                Some(tile) => {
                    let before = tile.tree.nodes_allocated();
                    tile.insert(rect, id);
                    nodes += tile.tree.nodes_allocated() - before;
                }
                None => {
                    let mut fresh = ClippedRTree::from_tree(RTree::new(tree), clip);
                    fresh.insert(rect, id);
                    nodes += fresh.tree.nodes_allocated();
                    created += 1;
                    self.trees[t] = Some(Arc::new(fresh));
                }
            }
        }
        (nodes, created)
    }

    /// Route one delete to every tile `rect` overlaps (the same
    /// covering set the insert used — the partitioner must not have
    /// changed in between, which version-bump rebuilds guarantee).
    /// Deletions are lazy per §IV-D; a tile whose last object leaves is
    /// dropped back to `None`. Returns whether the object was present,
    /// plus the number of trees dropped.
    pub fn delete_object<P: Partitioner<D>>(
        &mut self,
        partitioner: &P,
        rect: Rect<D>,
        id: DataId,
        touched: &mut [bool],
    ) -> (bool, usize) {
        let mut found = None;
        let mut dropped = 0usize;
        for t in partitioner.covering_tiles(&rect) {
            let removed = match self.tile_mut(t) {
                Some(tile) => {
                    touched[t] = true;
                    let removed = tile.delete(&rect, id);
                    if removed && tile.tree.is_empty() {
                        self.trees[t] = None;
                        dropped += 1;
                    }
                    removed
                }
                None => false,
            };
            if removed {
                self.invalidate_columns(t);
            }
            // Multi-assignment is all-or-nothing: every covering tile
            // holds the object or none does.
            match found {
                None => found = Some(removed),
                Some(prev) => {
                    debug_assert_eq!(prev, removed, "covering tiles disagree on {id:?}")
                }
            }
        }
        (found.unwrap_or(false), dropped)
    }
}

/// Which execution path a batched range run uses per tile.
///
/// A micro-batch of range queries against one tile **is** a spatial
/// join between the query-rect set and the tile's objects, so the
/// [`cbb_joins::sweep_queries`] kernel can answer the whole batch with
/// ONE shared scan over the tile's cached columnar layout instead of
/// `batch_size` independent tree descents. Answers are **byte-equal**
/// across all three variants for every workload — per-query result
/// lists are canonically sorted ascending by [`DataId`] on every path
/// (the oracle tests pin this across partitioners, clip settings and
/// split policies); only the work counters differ (the fused path does
/// zero node accesses and counts sweep `overlap_tests` instead).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryAlgo {
    /// One clipped-tree descent per (query, covered tile) — the
    /// classic per-query path, and the baseline the fused path is
    /// measured against.
    Descend,
    /// Sort the batch's query rects into their own
    /// [`TileColumns`] and answer each populated tile with one plane
    /// sweep against the tile's cached columns.
    SharedSweep,
    /// Choose per tile, deterministically, from the batch size landing
    /// on the tile, the tile's cardinality, and whether the tile's
    /// columns are already extracted — the thresholds live in
    /// [`crate::AutoPolicy`] (see [`crate::AutoPolicy::fuse_tile`]).
    Auto,
}

/// Merged outcome of a batched query run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Result ids per query, in workload order (same order the queries
    /// were given). Each list is sorted ascending by id — the canonical
    /// order every execution path produces, regardless of tile visit
    /// order and of per-query vs fused execution.
    pub results: Vec<Vec<DataId>>,
    /// Access counters summed over all workers.
    pub stats: AccessStats,
    /// Access counters per query, in workload order (sums to
    /// [`Self::stats`]) — what telemetry layers attribute to individual
    /// requests.
    pub per_query: Vec<AccessStats>,
    /// Populated tiles answered by per-query descents.
    pub tiles_descend: u64,
    /// Populated tiles answered by one fused shared sweep.
    pub tiles_fused: u64,
    /// Per fused tile, how many of the batch's queries rode its shared
    /// sweep (the fused-width distribution telemetry exposes).
    pub fused_widths: Vec<u64>,
}

impl BatchOutcome {
    /// Total result objects over the whole batch.
    pub fn total_results(&self) -> u64 {
        self.results.iter().map(|r| r.len() as u64).sum()
    }
}

/// Execute `queries` against `tree` on `workers` threads. With
/// `use_clips = false` the probes run on the base tree (the unclipped
/// baseline on the same index).
pub fn parallel_range_queries<const D: usize>(
    tree: &ClippedRTree<D>,
    queries: &[Rect<D>],
    workers: usize,
    use_clips: bool,
) -> BatchOutcome {
    let shards = map_chunked(workers, queries, |_offset, chunk| {
        let mut per_query = Vec::with_capacity(chunk.len());
        let results: Vec<Vec<DataId>> = chunk
            .iter()
            .map(|q| {
                let mut stats = AccessStats::new();
                let ids = if use_clips {
                    tree.range_query_stats(q, &mut stats)
                } else {
                    tree.tree.range_query_stats(q, &mut stats)
                };
                per_query.push(stats);
                ids
            })
            .collect();
        (results, per_query)
    });
    let mut outcome = BatchOutcome::default();
    for (results, per_query) in shards {
        outcome.results.extend(results);
        outcome.stats += AccessStats::sum(&per_query);
        outcome.per_query.extend(per_query);
    }
    outcome
}

/// Merged outcome of a batched kNN run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct KnnOutcome {
    /// Neighbour lists per probe, in workload order; each list sorted by
    /// `(squared distance, id)`.
    pub results: Vec<Vec<Neighbor>>,
    /// Access counters summed over all workers.
    pub stats: AccessStats,
    /// Access counters per probe, in workload order (sums to
    /// [`Self::stats`]).
    pub per_query: Vec<AccessStats>,
}

/// A reusable partitioned batch executor: the dataset is multi-assigned
/// to the tiles of any [`Partitioner`], one clipped R-tree is built per
/// non-empty tile **once** (the [`TileForest`]), and query batches are
/// then served against the per-tile trees for the lifetime of the
/// executor (per-tile tree reuse — no rebuilding per batch). The forest
/// is `Arc`-shared, so a serving layer can hand the *same* trees to the
/// join path and to later executors for unchanged data.
///
/// Since the catalog refactor the executor is a thin façade over one
/// [`DatasetStore`] — the arena / liveness / partitioner / forest state
/// now lives there, where a [`crate::Catalog`] can own many of them
/// side by side. The executor remains the convenient single-dataset
/// handle (and the pre-catalog API surface the benches compare
/// against); [`Self::store`] exposes the store for versioning,
/// compaction policy, and catalog interop.
///
/// A range query is probed against every tile it covers; an object found
/// in several tiles is reported once, by the tile owning the query/object
/// reference point (the same duplicate-elimination rule the join uses).
/// Results come back in workload order; each query's result list is
/// sorted ascending by id (the canonical order of [`BatchOutcome`]),
/// independent of the worker count, the partitioner's tile visit order,
/// and the [`QueryAlgo`] execution path.
pub struct BatchExecutor<const D: usize, P> {
    store: DatasetStore<D, P>,
}

impl<const D: usize, P: Partitioner<D>> BatchExecutor<D, P> {
    /// Partition `objects` and bulk-load the per-tile trees on `workers`
    /// threads. Trees are always built with clip tables so every batch
    /// can choose clipped or unclipped probing.
    pub fn build(
        partitioner: P,
        objects: &[Rect<D>],
        tree: TreeConfig<D>,
        clip: ClipConfig,
        workers: usize,
    ) -> Self {
        BatchExecutor {
            store: DatasetStore::build(partitioner, objects, tree, clip, workers),
        }
    }

    /// Wrap an existing (cached) forest instead of building one. The
    /// forest must have been built from `objects` under `partitioner` —
    /// the tile count is checked, the content correspondence is the
    /// caller's contract. Every slot is taken as live; a forest built
    /// over a tombstoned arena ([`TileForest::build_where`] with a
    /// mask) must come through [`Self::with_forest_where`] instead, or
    /// the executor's liveness bookkeeping disagrees with its trees.
    pub fn with_forest(partitioner: P, objects: Vec<Rect<D>>, forest: Arc<TileForest<D>>) -> Self {
        BatchExecutor {
            store: DatasetStore::with_forest(partitioner, objects, forest),
        }
    }

    /// [`Self::with_forest`] for a tombstoned arena: `live[i]` flags
    /// slot `i`, and the forest must index exactly the live slots (a
    /// [`TileForest::build_where`] over the same mask does).
    pub fn with_forest_where(
        partitioner: P,
        objects: Vec<Rect<D>>,
        live: Vec<bool>,
        forest: Arc<TileForest<D>>,
    ) -> Self {
        BatchExecutor {
            store: DatasetStore::with_forest_where(partitioner, objects, live, forest),
        }
    }

    /// Wrap an existing store (the catalog interop path).
    pub fn from_store(store: DatasetStore<D, P>) -> Self {
        BatchExecutor { store }
    }

    /// The underlying dataset store.
    pub fn store(&self) -> &DatasetStore<D, P> {
        &self.store
    }

    /// Mutable access to the underlying store (version, compaction
    /// policy, swaps).
    pub fn store_mut(&mut self) -> &mut DatasetStore<D, P> {
        &mut self.store
    }

    /// Unwrap into the dataset store (for handing to a catalog).
    pub fn into_store(self) -> DatasetStore<D, P> {
        self.store
    }

    /// The partitioner the executor was built over.
    pub fn partitioner(&self) -> &P {
        self.store.partitioner()
    }

    /// The objects the executor serves (global [`DataId`] id space,
    /// including tombstoned slots of deleted objects).
    pub fn objects(&self) -> &[Rect<D>] {
        self.store.objects()
    }

    /// Liveness of every arena slot (parallel to [`Self::objects`]).
    pub fn live(&self) -> &[bool] {
        self.store.live()
    }

    /// Number of live (queryable) objects.
    pub fn live_count(&self) -> usize {
        self.store.live_count()
    }

    /// Apply an update batch *in order*, copy-on-write — see
    /// [`DatasetStore::apply_updates`], which this delegates to
    /// (including the version bump per applied batch and the
    /// threshold-driven compaction sweep).
    pub fn apply_updates(
        &mut self,
        updates: &[Update<D>],
        tree: TreeConfig<D>,
        clip: ClipConfig,
    ) -> UpdateOutcome {
        self.store.apply_updates(updates, tree, clip)
    }

    /// The shared per-tile trees (clone the `Arc` to reuse them in a
    /// join or a successor executor).
    pub fn forest(&self) -> &Arc<TileForest<D>> {
        self.store.forest()
    }

    /// Number of non-empty tiles (built trees).
    pub fn tile_tree_count(&self) -> usize {
        self.store.tile_tree_count()
    }

    /// Execute `queries` on `workers` threads. With `use_clips = false`
    /// the probes run on the base trees (the unclipped baseline on the
    /// same indexes). Shorthand for [`Self::run_with`] on the classic
    /// per-query path ([`QueryAlgo::Descend`]).
    pub fn run(&self, queries: &[Rect<D>], workers: usize, use_clips: bool) -> BatchOutcome {
        self.store.run(queries, workers, use_clips)
    }

    /// Execute `queries` under an explicit [`QueryAlgo`],
    /// [`crate::AutoPolicy`] and [`crate::SplitPolicy`] — see
    /// [`DatasetStore::run_with`] for the fused shared-sweep execution
    /// model and its byte-equality guarantee.
    pub fn run_with(
        &self,
        queries: &[Rect<D>],
        workers: usize,
        use_clips: bool,
        algo: QueryAlgo,
        policy: &crate::AutoPolicy,
        split: crate::SplitPolicy,
    ) -> BatchOutcome {
        self.store
            .run_with(queries, workers, use_clips, algo, policy, split)
    }

    /// Execute the kNN probes `(center, k)` on `workers` threads.
    /// Results come back in workload order and are independent of the
    /// worker count. Per-tile searches run the clip-aware kNN
    /// ([`ClippedRTree::knn_stats`]): clip points tighten node MINDISTs
    /// for probes near clipped corners, with answers identical to the
    /// base-tree search.
    pub fn run_knn(&self, probes: &[(Point<D>, usize)], workers: usize) -> KnnOutcome {
        self.store.run_knn(probes, workers)
    }

    /// [`Self::run_knn`] with an explicit choice of tile-ordering bound
    /// — see [`DatasetStore::run_knn_with`].
    pub fn run_knn_with(
        &self,
        probes: &[(Point<D>, usize)],
        workers: usize,
        clipped_prefilter: bool,
    ) -> KnnOutcome {
        self.store.run_knn_with(probes, workers, clipped_prefilter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbb_core::{ClipConfig, ClipMethod};
    use cbb_geom::{Point, SplitMix64};
    use cbb_rtree::{RTree, TreeConfig, Variant};

    fn r2(lx: f64, ly: f64, hx: f64, hy: f64) -> Rect<2> {
        Rect::new(Point([lx, ly]), Point([hx, hy]))
    }

    fn setup(n: usize) -> (ClippedRTree<2>, Vec<Rect<2>>) {
        let mut rng = SplitMix64::new(21);
        let items: Vec<(Rect<2>, cbb_rtree::DataId)> = (0..n)
            .map(|i| {
                let x = rng.gen_range(0.0, 950.0);
                let y = rng.gen_range(0.0, 950.0);
                (
                    r2(
                        x,
                        y,
                        x + rng.gen_range(0.5, 20.0),
                        y + rng.gen_range(0.5, 20.0),
                    ),
                    cbb_rtree::DataId(i as u32),
                )
            })
            .collect();
        let tree = RTree::bulk_load(
            TreeConfig::tiny(Variant::RStar).with_world(r2(0.0, 0.0, 1000.0, 1000.0)),
            &items,
        );
        let clipped =
            ClippedRTree::from_tree(tree, ClipConfig::paper_default::<2>(ClipMethod::Stairline));
        let queries: Vec<Rect<2>> = (0..200)
            .map(|_| {
                let x = rng.gen_range(0.0, 960.0);
                let y = rng.gen_range(0.0, 960.0);
                let s = rng.gen_range(1.0, 40.0);
                r2(x, y, x + s, y + s)
            })
            .collect();
        (clipped, queries)
    }

    #[test]
    fn parallel_equals_sequential_for_any_worker_count() {
        let (tree, queries) = setup(800);
        let baseline = parallel_range_queries(&tree, &queries, 1, true);
        // Sequential reference computed directly.
        let mut stats = AccessStats::new();
        let expected: Vec<Vec<DataId>> = queries
            .iter()
            .map(|q| tree.range_query_stats(q, &mut stats))
            .collect();
        assert_eq!(baseline.results, expected);
        assert_eq!(baseline.stats, stats);
        for workers in [2, 3, 8, 200] {
            let out = parallel_range_queries(&tree, &queries, workers, true);
            assert_eq!(out.results, expected, "workers = {workers}");
            assert_eq!(out.stats, stats, "workers = {workers}");
        }
    }

    #[test]
    fn clipped_batch_saves_io_but_returns_identical_results() {
        let (tree, queries) = setup(1_000);
        let base = parallel_range_queries(&tree, &queries, 4, false);
        let clip = parallel_range_queries(&tree, &queries, 4, true);
        let sort = |mut v: Vec<DataId>| {
            v.sort();
            v
        };
        for (b, c) in base.results.iter().zip(&clip.results) {
            assert_eq!(sort(b.clone()), sort(c.clone()));
        }
        assert!(clip.stats.leaf_accesses <= base.stats.leaf_accesses);
        assert!(clip.stats.clip_prunes > 0);
        assert_eq!(clip.total_results(), base.total_results());
    }

    #[test]
    fn empty_workload() {
        let (tree, _) = setup(100);
        let out = parallel_range_queries(&tree, &[], 4, true);
        assert!(out.results.is_empty());
        assert_eq!(out.stats, AccessStats::new());
    }

    mod executor {
        use super::*;
        use crate::adaptive::AdaptiveGrid;
        use crate::partition::UniformGrid;
        use crate::quadtree::QuadtreePartitioner;
        use cbb_rtree::{TreeConfig, Variant};

        fn objects_and_queries() -> (Vec<Rect<2>>, Vec<Rect<2>>) {
            let mut rng = SplitMix64::new(31);
            // Clustered objects, some spanning many tiles.
            let objects: Vec<Rect<2>> = (0..1_500)
                .map(|_| {
                    let clustered = rng.gen_range(0.0, 1.0) < 0.6;
                    let (cx, cy) = if clustered {
                        (120.0, 120.0)
                    } else {
                        (rng.gen_range(0.0, 900.0), rng.gen_range(0.0, 900.0))
                    };
                    let x = (cx + rng.gen_range(-80.0, 80.0)).clamp(0.0, 900.0);
                    let y = (cy + rng.gen_range(-80.0, 80.0)).clamp(0.0, 900.0);
                    let w = rng.gen_range(0.0, 60.0); // degenerate extents included
                    let h = rng.gen_range(0.0, 60.0);
                    r2(x, y, x + w, y + h)
                })
                .collect();
            let queries: Vec<Rect<2>> = (0..250)
                .map(|_| {
                    let x = rng.gen_range(-20.0, 950.0);
                    let y = rng.gen_range(-20.0, 950.0);
                    let s = rng.gen_range(1.0, 120.0);
                    r2(x, y, x + s, y + s)
                })
                .collect();
            (objects, queries)
        }

        fn brute(objects: &[Rect<2>], q: &Rect<2>) -> Vec<DataId> {
            let mut ids: Vec<DataId> = objects
                .iter()
                .enumerate()
                .filter(|(_, o)| o.intersects(q))
                .map(|(i, _)| DataId(i as u32))
                .collect();
            ids.sort();
            ids
        }

        fn sorted(mut v: Vec<DataId>) -> Vec<DataId> {
            v.sort();
            v
        }

        #[test]
        fn partitioned_batches_match_brute_force_exactly_once() {
            let (objects, queries) = objects_and_queries();
            let domain = r2(0.0, 0.0, 1000.0, 1000.0);
            let clip = ClipConfig::paper_default::<2>(ClipMethod::Stairline);
            let tree = TreeConfig::tiny(Variant::RStar);
            let uniform =
                BatchExecutor::build(UniformGrid::new(domain, 4), &objects, tree, clip, 2);
            let adaptive = BatchExecutor::build(
                AdaptiveGrid::from_sample(domain, [4, 4], &objects),
                &objects,
                tree,
                clip,
                2,
            );
            let quadtree = BatchExecutor::build(
                QuadtreePartitioner::build(domain, &objects, 300),
                &objects,
                tree,
                clip,
                2,
            );
            let out_u = uniform.run(&queries, 3, true);
            let out_a = adaptive.run(&queries, 3, true);
            let out_q = quadtree.run(&queries, 3, true);
            for (i, q) in queries.iter().enumerate() {
                let want = brute(&objects, q);
                // Exactly once: sorted equality fails on duplicates too.
                assert_eq!(sorted(out_u.results[i].clone()), want, "uniform q{i}");
                assert_eq!(sorted(out_a.results[i].clone()), want, "adaptive q{i}");
                assert_eq!(sorted(out_q.results[i].clone()), want, "quadtree q{i}");
            }
        }

        #[test]
        fn executor_is_deterministic_across_workers_and_reusable() {
            let (objects, queries) = objects_and_queries();
            let domain = r2(0.0, 0.0, 1000.0, 1000.0);
            let exec = BatchExecutor::build(
                AdaptiveGrid::from_sample(domain, [3, 5], &objects),
                &objects,
                TreeConfig::tiny(Variant::RRStar),
                ClipConfig::paper_default::<2>(ClipMethod::Stairline),
                2,
            );
            assert!(exec.tile_tree_count() > 1);
            assert_eq!(exec.partitioner().dims(), [3, 5]);
            let base = exec.run(&queries, 1, true);
            for workers in [2, 5, 64] {
                let out = exec.run(&queries, workers, true);
                assert_eq!(out.results, base.results, "workers = {workers}");
                assert_eq!(out.stats, base.stats, "workers = {workers}");
            }
            // Second batch on the same executor: trees are reused, fresh
            // counters.
            let again = exec.run(&queries, 3, true);
            assert_eq!(again.results, base.results);
            // Unclipped probing answers identically with no prunes.
            let unclipped = exec.run(&queries, 3, false);
            assert_eq!(unclipped.results.len(), base.results.len());
            for (b, u) in base.results.iter().zip(&unclipped.results) {
                assert_eq!(sorted(b.clone()), sorted(u.clone()));
            }
            assert_eq!(unclipped.stats.clip_prunes, 0);
            assert!(base.stats.clip_prunes > 0);
        }

        /// Brute-force kNN oracle over raw objects: sort by (dist², id).
        fn brute_knn(objects: &[Rect<2>], center: &Point<2>, k: usize) -> Vec<(DataId, f64)> {
            let mut all: Vec<(DataId, f64)> = objects
                .iter()
                .enumerate()
                .map(|(i, o)| (DataId(i as u32), o.min_dist_sq(center)))
                .collect();
            all.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
            all.truncate(k);
            all
        }

        #[test]
        fn partitioned_knn_matches_brute_force() {
            let (mut objects, _) = objects_and_queries();
            // Out-of-domain objects land in clamped border tiles whose
            // tile rect does NOT contain them — the case that forces the
            // executor to bound tiles by root MBB, not tile geometry.
            objects.push(r2(-250.0, -250.0, -240.0, -240.0));
            objects.push(r2(1_500.0, 400.0, 1_510.0, 410.0));
            let domain = r2(0.0, 0.0, 1000.0, 1000.0);
            let clip = ClipConfig::paper_default::<2>(ClipMethod::Stairline);
            let tree = TreeConfig::tiny(Variant::RStar);
            let uniform =
                BatchExecutor::build(UniformGrid::new(domain, 4), &objects, tree, clip, 2);
            let quad = BatchExecutor::build(
                QuadtreePartitioner::build(domain, &objects, 300),
                &objects,
                tree,
                clip,
                2,
            );
            let mut rng = SplitMix64::new(99);
            let mut probes: Vec<(Point<2>, usize)> = (0..60)
                .map(|i| {
                    let p = Point([rng.gen_range(-300.0, 1300.0), rng.gen_range(-300.0, 1300.0)]);
                    (p, [1, 3, 10, 64][i % 4])
                })
                .collect();
            // Probe right at the out-of-domain stragglers too.
            probes.push((Point([-245.0, -245.0]), 2));
            probes.push((Point([1_505.0, 405.0]), 5));
            let out = uniform.run_knn(&probes, 3);
            for (i, (p, k)) in probes.iter().enumerate() {
                assert_eq!(
                    out.results[i],
                    brute_knn(&objects, p, *k),
                    "uniform probe {i}"
                );
            }
            // Worker-count independence.
            let again = uniform.run_knn(&probes, 7);
            assert_eq!(again.results, out.results);
            assert_eq!(again.stats, out.stats);
            let out = quad.run_knn(&probes, 2);
            for (i, (p, k)) in probes.iter().enumerate() {
                assert_eq!(
                    out.results[i],
                    brute_knn(&objects, p, *k),
                    "quadtree probe {i}"
                );
            }
        }

        #[test]
        fn forest_is_shareable_across_executors() {
            let (objects, queries) = objects_and_queries();
            let domain = r2(0.0, 0.0, 1000.0, 1000.0);
            let grid = UniformGrid::new(domain, 4);
            let built = BatchExecutor::build(
                grid,
                &objects,
                TreeConfig::tiny(Variant::RStar),
                ClipConfig::paper_default::<2>(ClipMethod::Stairline),
                2,
            );
            assert_eq!(built.forest().tile_count(), grid.tile_count());
            assert!(built.forest().total_indexed() >= objects.len());
            // A second executor over the same Arc answers identically
            // without building anything.
            let shared =
                BatchExecutor::with_forest(grid, built.objects().to_vec(), built.forest().clone());
            assert_eq!(
                shared.run(&queries, 2, true).results,
                built.run(&queries, 2, true).results
            );
            assert_eq!(std::sync::Arc::strong_count(built.forest()), 2);
        }

        #[test]
        fn apply_updates_matches_wholesale_rebuild() {
            use crate::update::{Update, UpdateResult};
            let (objects, queries) = objects_and_queries();
            let domain = r2(0.0, 0.0, 1000.0, 1000.0);
            let grid = UniformGrid::new(domain, 4);
            let tree = TreeConfig::tiny(Variant::RStar);
            let clip = ClipConfig::paper_default::<2>(ClipMethod::Stairline);
            let mut exec = BatchExecutor::build(grid, &objects, tree, clip, 2);
            let before_forest = exec.forest().clone();
            let before_answers = exec.run(&queries, 2, true);

            // A mixed batch: deletes across the id range (including a
            // spanning-object-rich low range), fresh inserts (one
            // spanning many tiles, one out-of-domain), a dead delete, a
            // delete of a just-inserted object, and a rejected insert.
            let mut rng = SplitMix64::new(77);
            let mut updates: Vec<Update<2>> = (0..200)
                .map(|_| Update::Delete(DataId(rng.gen_range(0.0, 1_500.0) as u32)))
                .collect();
            for _ in 0..150 {
                let x = rng.gen_range(-30.0, 950.0);
                let y = rng.gen_range(-30.0, 950.0);
                updates.push(Update::Insert(r2(
                    x,
                    y,
                    x + rng.gen_range(0.0, 80.0),
                    y + rng.gen_range(0.0, 80.0),
                )));
            }
            updates.push(Update::Insert(r2(-100.0, 400.0, 1_200.0, 460.0)));
            updates.push(Update::Insert(r2(1_500.0, 1_500.0, 1_600.0, 1_600.0)));
            updates.push(Update::Delete(DataId(1_500))); // first insert above
            updates.push(Update::Delete(DataId(999_999)));
            updates.push(Update::Insert(Rect::new(
                Point([0.0, 0.0]),
                Point([f64::INFINITY, 1.0]),
            )));
            let outcome = exec.apply_updates(&updates, tree, clip);
            assert_eq!(outcome.results.len(), updates.len());
            assert!(outcome.nodes_allocated > 0);
            assert!(outcome.tiles_touched > 0);
            assert!(matches!(
                outcome.results[updates.len() - 3],
                UpdateResult::Deleted(true)
            ));
            assert_eq!(
                outcome.results[updates.len() - 2],
                UpdateResult::Deleted(false)
            );
            assert_eq!(outcome.results.last(), Some(&UpdateResult::Rejected));

            // Oracle: a wholesale rebuild over the surviving arena
            // answers identically (kNN byte-equal, ranges as sets —
            // traversal order differs between built and grown trees).
            let rebuilt_forest = Arc::new(TileForest::build_where(
                exec.partitioner(),
                exec.objects(),
                Some(exec.live()),
                tree,
                clip,
                2,
            ));
            let rebuilt = BatchExecutor::with_forest_where(
                *exec.partitioner(),
                exec.objects().to_vec(),
                exec.live().to_vec(),
                rebuilt_forest,
            );
            let delta_out = exec.run(&queries, 2, true);
            let rebuilt_out = rebuilt.run(&queries, 2, true);
            for (i, (d, r)) in delta_out
                .results
                .iter()
                .zip(&rebuilt_out.results)
                .enumerate()
            {
                assert_eq!(sorted(d.clone()), sorted(r.clone()), "query {i}");
            }
            let probes: Vec<(Point<2>, usize)> =
                queries.iter().take(60).map(|q| (q.center(), 7)).collect();
            assert_eq!(
                exec.run_knn(&probes, 2).results,
                rebuilt.run_knn(&probes, 2).results,
                "kNN answers are canonical and must match exactly"
            );

            // Copy-on-write: the pre-update forest still answers the
            // original dataset — shared tiles were never disturbed.
            let old = BatchExecutor::with_forest(
                *exec.partitioner(),
                objects.clone(),
                before_forest.clone(),
            );
            assert_eq!(old.run(&queries, 2, true).results, before_answers.results);
        }

        #[test]
        fn delta_apply_shares_untouched_tiles() {
            use crate::update::Update;
            let (objects, _) = objects_and_queries();
            let domain = r2(0.0, 0.0, 1000.0, 1000.0);
            let grid = UniformGrid::new(domain, 4);
            let tree = TreeConfig::tiny(Variant::RStar);
            let clip = ClipConfig::paper_default::<2>(ClipMethod::Stairline);
            let mut exec = BatchExecutor::build(grid, &objects, tree, clip, 2);
            let before = exec.forest().clone();
            // One tiny insert confined to a single tile.
            let outcome =
                exec.apply_updates(&[Update::Insert(r2(10.0, 10.0, 12.0, 12.0))], tree, clip);
            assert_eq!(outcome.tiles_touched, 1);
            let shared = (0..before.tile_count())
                .filter(
                    |&t| match (before.trees[t].as_ref(), exec.forest().trees[t].as_ref()) {
                        (Some(a), Some(b)) => Arc::ptr_eq(a, b),
                        _ => false,
                    },
                )
                .count();
            assert_eq!(
                shared,
                before.built_tree_count() - 1,
                "only the touched tile may be copied"
            );
        }

        #[test]
        fn incremental_inserts_from_empty_executor() {
            use crate::update::Update;
            let domain = r2(0.0, 0.0, 100.0, 100.0);
            let grid = UniformGrid::new(domain, 2);
            let tree = TreeConfig::tiny(Variant::Quadratic);
            let clip = ClipConfig::paper_default::<2>(ClipMethod::Stairline);
            let mut exec = BatchExecutor::build(grid, &[], tree, clip, 1);
            assert_eq!(exec.tile_tree_count(), 0);
            let updates: Vec<Update<2>> = (0..40)
                .map(|i| {
                    let t = (i % 10) as f64 * 9.0;
                    Update::Insert(r2(t, t, t + 8.0, t + 8.0))
                })
                .collect();
            let outcome = exec.apply_updates(&updates, tree, clip);
            assert_eq!(outcome.inserted_ids().len(), 40);
            assert!(outcome.trees_created >= 1);
            assert_eq!(exec.live_count(), 40);
            let q = r2(0.0, 0.0, 100.0, 100.0);
            assert_eq!(exec.run(&[q], 1, true).results[0].len(), 40);
            // Delete everything again: trees drop, answers empty.
            let deletes: Vec<Update<2>> = (0..40).map(|i| Update::Delete(DataId(i))).collect();
            let outcome = exec.apply_updates(&deletes, tree, clip);
            assert_eq!(outcome.deletes_applied(), 40);
            assert!(outcome.trees_dropped >= 1);
            assert_eq!(exec.live_count(), 0);
            assert_eq!(exec.tile_tree_count(), 0);
            assert!(exec.run(&[q], 1, true).results[0].is_empty());
            // Double delete reports false.
            let again = exec.apply_updates(&[Update::<2>::Delete(DataId(3))], tree, clip);
            assert_eq!(
                again.results,
                vec![crate::update::UpdateResult::Deleted(false)]
            );
        }

        #[test]
        fn columns_cache_is_lazy_shared_and_invalidated_per_tile() {
            use crate::update::Update;
            let (objects, _) = objects_and_queries();
            let domain = r2(0.0, 0.0, 1000.0, 1000.0);
            let grid = UniformGrid::new(domain, 4);
            let tree = TreeConfig::tiny(Variant::RStar);
            let clip = ClipConfig::paper_default::<2>(ClipMethod::Stairline);
            let mut exec = BatchExecutor::build(grid, &objects, tree, clip, 2);
            let before = exec.forest().clone();
            let t = (0..before.tile_count())
                .find(|&t| before.tree(t).is_some())
                .unwrap();
            // Lazy extraction, stable Arc across calls.
            let c1 = before.columns(t).unwrap();
            let c2 = before.columns(t).unwrap();
            assert!(Arc::ptr_eq(&c1, &c2));
            assert_eq!(c1.len(), before.tree(t).unwrap().tree.len());
            // Columns agree with the tree's objects.
            let mut from_tree = before.tree(t).unwrap().tree.all_objects();
            from_tree.sort_by_key(|(_, id)| *id);
            let mut from_cols: Vec<(Rect<2>, DataId)> =
                (0..c1.len()).map(|i| (c1.rect(i), c1.id(i))).collect();
            from_cols.sort_by_key(|(_, id)| *id);
            assert_eq!(from_cols, from_tree);
            // A forest clone shares the already-extracted columns.
            assert!(Arc::ptr_eq(&before.clone().columns(t).unwrap(), &c1));
            // A write confined to one tile invalidates only that tile.
            let touched = before
                .tree(t)
                .unwrap()
                .tree
                .all_objects()
                .first()
                .map(|(r, _)| *r)
                .unwrap();
            exec.apply_updates(&[Update::Insert(touched)], tree, clip);
            let after = exec.forest();
            assert!(
                !Arc::ptr_eq(&after.columns(t).unwrap(), &c1),
                "touched tile must re-extract"
            );
            assert_eq!(
                after.columns(t).unwrap().len(),
                c1.len() + 1,
                "re-extracted columns see the insert"
            );
            for u in 0..before.tile_count() {
                if u != t && before.tree(u).is_some() && after.tree(u).is_some() {
                    // Untouched tiles still share the original columns.
                    let _ = before.columns(u).unwrap();
                }
            }
            // Empty tiles have no columns.
            if let Some(e) = (0..before.tile_count()).find(|&u| before.tree(u).is_none()) {
                assert!(before.columns(e).is_none());
            }
        }

        #[test]
        #[should_panic(expected = "different partitioning")]
        fn with_forest_rejects_mismatched_tiling() {
            let (objects, _) = objects_and_queries();
            let domain = r2(0.0, 0.0, 1000.0, 1000.0);
            let built = BatchExecutor::build(
                UniformGrid::new(domain, 4),
                &objects,
                TreeConfig::tiny(Variant::RStar),
                ClipConfig::paper_default::<2>(ClipMethod::Stairline),
                2,
            );
            let _ = BatchExecutor::with_forest(
                UniformGrid::new(domain, 5),
                objects,
                built.forest().clone(),
            );
        }
    }
}
