//! Batched range-query execution: one shared clipped tree
//! ([`parallel_range_queries`]) or a reusable partitioned executor
//! ([`BatchExecutor`]).
//!
//! A query workload is split into contiguous shards, each shard runs on
//! its own worker against read-only indexes (the index types are `Sync`),
//! and the per-worker [`AccessStats`] are merged. Results come back **in
//! workload order** regardless of the worker count, so callers can line
//! answers up with their queries.

use cbb_core::ClipConfig;
use cbb_geom::Rect;
use cbb_joins::reference_point;
use cbb_rtree::{AccessStats, ClippedRTree, DataId, RTree, TreeConfig};

use crate::partition::Partitioner;
use crate::pool::map_chunked;

/// Merged outcome of a batched query run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Result ids per query, in workload order (same order the queries
    /// were given; each list in tree traversal order).
    pub results: Vec<Vec<DataId>>,
    /// Access counters summed over all workers.
    pub stats: AccessStats,
}

impl BatchOutcome {
    /// Total result objects over the whole batch.
    pub fn total_results(&self) -> u64 {
        self.results.iter().map(|r| r.len() as u64).sum()
    }
}

/// Execute `queries` against `tree` on `workers` threads. With
/// `use_clips = false` the probes run on the base tree (the unclipped
/// baseline on the same index).
pub fn parallel_range_queries<const D: usize>(
    tree: &ClippedRTree<D>,
    queries: &[Rect<D>],
    workers: usize,
    use_clips: bool,
) -> BatchOutcome {
    let shards = map_chunked(workers, queries, |_offset, chunk| {
        let mut stats = AccessStats::new();
        let results: Vec<Vec<DataId>> = chunk
            .iter()
            .map(|q| {
                if use_clips {
                    tree.range_query_stats(q, &mut stats)
                } else {
                    tree.tree.range_query_stats(q, &mut stats)
                }
            })
            .collect();
        (results, stats)
    });
    let mut outcome = BatchOutcome::default();
    for (results, stats) in shards {
        outcome.results.extend(results);
        outcome.stats += stats;
    }
    outcome
}

/// A reusable partitioned batch executor: the dataset is multi-assigned
/// to the tiles of any [`Partitioner`], one clipped R-tree is built per
/// non-empty tile **once**, and query batches are then served against the
/// per-tile trees for the lifetime of the executor (per-tile tree reuse —
/// no rebuilding per batch).
///
/// A query is probed against every tile it covers; an object found in
/// several tiles is reported once, by the tile owning the query/object
/// reference point (the same duplicate-elimination rule the join uses).
/// Results come back in workload order; the id order *within* one query's
/// result list follows per-tile traversal order and is deterministic for
/// a fixed partitioner, independent of the worker count.
pub struct BatchExecutor<const D: usize, P> {
    partitioner: P,
    objects: Vec<Rect<D>>,
    /// One clipped tree per tile; `None` for empty tiles. Ids are global
    /// [`DataId`]s into `objects`.
    tiles: Vec<Option<ClippedRTree<D>>>,
}

impl<const D: usize, P: Partitioner<D>> BatchExecutor<D, P> {
    /// Partition `objects` and bulk-load the per-tile trees on `workers`
    /// threads. Trees are always built with clip tables so every batch
    /// can choose clipped or unclipped probing.
    pub fn build(
        partitioner: P,
        objects: &[Rect<D>],
        tree: TreeConfig<D>,
        clip: ClipConfig,
        workers: usize,
    ) -> Self {
        let assign = partitioner.assign(objects);
        let built = map_chunked(workers, &assign, |_, chunk| {
            chunk
                .iter()
                .map(|ids| {
                    if ids.is_empty() {
                        return None;
                    }
                    let items: Vec<(Rect<D>, DataId)> = ids
                        .iter()
                        .map(|&i| (objects[i as usize], DataId(i)))
                        .collect();
                    Some(ClippedRTree::from_tree(
                        RTree::bulk_load(tree, &items),
                        clip,
                    ))
                })
                .collect::<Vec<_>>()
        });
        BatchExecutor {
            partitioner,
            objects: objects.to_vec(),
            tiles: built.into_iter().flatten().collect(),
        }
    }

    /// The partitioner the executor was built over.
    pub fn partitioner(&self) -> &P {
        &self.partitioner
    }

    /// Number of non-empty tiles (built trees).
    pub fn tile_tree_count(&self) -> usize {
        self.tiles.iter().filter(|t| t.is_some()).count()
    }

    /// Answer one query: probe every covered tile, keep each object only
    /// in the tile owning the query/object reference point.
    fn query_one(&self, q: &Rect<D>, use_clips: bool, stats: &mut AccessStats) -> Vec<DataId> {
        let mut tiles = self.partitioner.covering_tiles(q);
        tiles.sort_unstable();
        let mut out = Vec::new();
        for t in tiles {
            let Some(tree) = &self.tiles[t] else {
                continue;
            };
            let found = if use_clips {
                tree.range_query_stats(q, stats)
            } else {
                tree.tree.range_query_stats(q, stats)
            };
            out.extend(found.into_iter().filter(|id| {
                self.partitioner
                    .owns(t, &reference_point(q, &self.objects[id.0 as usize]))
            }));
        }
        out
    }

    /// Execute `queries` on `workers` threads. With `use_clips = false`
    /// the probes run on the base trees (the unclipped baseline on the
    /// same indexes).
    pub fn run(&self, queries: &[Rect<D>], workers: usize, use_clips: bool) -> BatchOutcome {
        let shards = map_chunked(workers, queries, |_offset, chunk| {
            let mut stats = AccessStats::new();
            let results: Vec<Vec<DataId>> = chunk
                .iter()
                .map(|q| self.query_one(q, use_clips, &mut stats))
                .collect();
            (results, stats)
        });
        let mut outcome = BatchOutcome::default();
        for (results, stats) in shards {
            outcome.results.extend(results);
            outcome.stats += stats;
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbb_core::{ClipConfig, ClipMethod};
    use cbb_geom::{Point, SplitMix64};
    use cbb_rtree::{RTree, TreeConfig, Variant};

    fn r2(lx: f64, ly: f64, hx: f64, hy: f64) -> Rect<2> {
        Rect::new(Point([lx, ly]), Point([hx, hy]))
    }

    fn setup(n: usize) -> (ClippedRTree<2>, Vec<Rect<2>>) {
        let mut rng = SplitMix64::new(21);
        let items: Vec<(Rect<2>, cbb_rtree::DataId)> = (0..n)
            .map(|i| {
                let x = rng.gen_range(0.0, 950.0);
                let y = rng.gen_range(0.0, 950.0);
                (
                    r2(
                        x,
                        y,
                        x + rng.gen_range(0.5, 20.0),
                        y + rng.gen_range(0.5, 20.0),
                    ),
                    cbb_rtree::DataId(i as u32),
                )
            })
            .collect();
        let tree = RTree::bulk_load(
            TreeConfig::tiny(Variant::RStar).with_world(r2(0.0, 0.0, 1000.0, 1000.0)),
            &items,
        );
        let clipped =
            ClippedRTree::from_tree(tree, ClipConfig::paper_default::<2>(ClipMethod::Stairline));
        let queries: Vec<Rect<2>> = (0..200)
            .map(|_| {
                let x = rng.gen_range(0.0, 960.0);
                let y = rng.gen_range(0.0, 960.0);
                let s = rng.gen_range(1.0, 40.0);
                r2(x, y, x + s, y + s)
            })
            .collect();
        (clipped, queries)
    }

    #[test]
    fn parallel_equals_sequential_for_any_worker_count() {
        let (tree, queries) = setup(800);
        let baseline = parallel_range_queries(&tree, &queries, 1, true);
        // Sequential reference computed directly.
        let mut stats = AccessStats::new();
        let expected: Vec<Vec<DataId>> = queries
            .iter()
            .map(|q| tree.range_query_stats(q, &mut stats))
            .collect();
        assert_eq!(baseline.results, expected);
        assert_eq!(baseline.stats, stats);
        for workers in [2, 3, 8, 200] {
            let out = parallel_range_queries(&tree, &queries, workers, true);
            assert_eq!(out.results, expected, "workers = {workers}");
            assert_eq!(out.stats, stats, "workers = {workers}");
        }
    }

    #[test]
    fn clipped_batch_saves_io_but_returns_identical_results() {
        let (tree, queries) = setup(1_000);
        let base = parallel_range_queries(&tree, &queries, 4, false);
        let clip = parallel_range_queries(&tree, &queries, 4, true);
        let sort = |mut v: Vec<DataId>| {
            v.sort();
            v
        };
        for (b, c) in base.results.iter().zip(&clip.results) {
            assert_eq!(sort(b.clone()), sort(c.clone()));
        }
        assert!(clip.stats.leaf_accesses <= base.stats.leaf_accesses);
        assert!(clip.stats.clip_prunes > 0);
        assert_eq!(clip.total_results(), base.total_results());
    }

    #[test]
    fn empty_workload() {
        let (tree, _) = setup(100);
        let out = parallel_range_queries(&tree, &[], 4, true);
        assert!(out.results.is_empty());
        assert_eq!(out.stats, AccessStats::new());
    }

    mod executor {
        use super::*;
        use crate::adaptive::AdaptiveGrid;
        use crate::partition::UniformGrid;
        use crate::quadtree::QuadtreePartitioner;
        use cbb_rtree::{TreeConfig, Variant};

        fn objects_and_queries() -> (Vec<Rect<2>>, Vec<Rect<2>>) {
            let mut rng = SplitMix64::new(31);
            // Clustered objects, some spanning many tiles.
            let objects: Vec<Rect<2>> = (0..1_500)
                .map(|_| {
                    let clustered = rng.gen_range(0.0, 1.0) < 0.6;
                    let (cx, cy) = if clustered {
                        (120.0, 120.0)
                    } else {
                        (rng.gen_range(0.0, 900.0), rng.gen_range(0.0, 900.0))
                    };
                    let x = (cx + rng.gen_range(-80.0, 80.0)).clamp(0.0, 900.0);
                    let y = (cy + rng.gen_range(-80.0, 80.0)).clamp(0.0, 900.0);
                    let w = rng.gen_range(0.0, 60.0); // degenerate extents included
                    let h = rng.gen_range(0.0, 60.0);
                    r2(x, y, x + w, y + h)
                })
                .collect();
            let queries: Vec<Rect<2>> = (0..250)
                .map(|_| {
                    let x = rng.gen_range(-20.0, 950.0);
                    let y = rng.gen_range(-20.0, 950.0);
                    let s = rng.gen_range(1.0, 120.0);
                    r2(x, y, x + s, y + s)
                })
                .collect();
            (objects, queries)
        }

        fn brute(objects: &[Rect<2>], q: &Rect<2>) -> Vec<DataId> {
            let mut ids: Vec<DataId> = objects
                .iter()
                .enumerate()
                .filter(|(_, o)| o.intersects(q))
                .map(|(i, _)| DataId(i as u32))
                .collect();
            ids.sort();
            ids
        }

        fn sorted(mut v: Vec<DataId>) -> Vec<DataId> {
            v.sort();
            v
        }

        #[test]
        fn partitioned_batches_match_brute_force_exactly_once() {
            let (objects, queries) = objects_and_queries();
            let domain = r2(0.0, 0.0, 1000.0, 1000.0);
            let clip = ClipConfig::paper_default::<2>(ClipMethod::Stairline);
            let tree = TreeConfig::tiny(Variant::RStar);
            let uniform =
                BatchExecutor::build(UniformGrid::new(domain, 4), &objects, tree, clip, 2);
            let adaptive = BatchExecutor::build(
                AdaptiveGrid::from_sample(domain, [4, 4], &objects),
                &objects,
                tree,
                clip,
                2,
            );
            let quadtree = BatchExecutor::build(
                QuadtreePartitioner::build(domain, &objects, 300),
                &objects,
                tree,
                clip,
                2,
            );
            let out_u = uniform.run(&queries, 3, true);
            let out_a = adaptive.run(&queries, 3, true);
            let out_q = quadtree.run(&queries, 3, true);
            for (i, q) in queries.iter().enumerate() {
                let want = brute(&objects, q);
                // Exactly once: sorted equality fails on duplicates too.
                assert_eq!(sorted(out_u.results[i].clone()), want, "uniform q{i}");
                assert_eq!(sorted(out_a.results[i].clone()), want, "adaptive q{i}");
                assert_eq!(sorted(out_q.results[i].clone()), want, "quadtree q{i}");
            }
        }

        #[test]
        fn executor_is_deterministic_across_workers_and_reusable() {
            let (objects, queries) = objects_and_queries();
            let domain = r2(0.0, 0.0, 1000.0, 1000.0);
            let exec = BatchExecutor::build(
                AdaptiveGrid::from_sample(domain, [3, 5], &objects),
                &objects,
                TreeConfig::tiny(Variant::RRStar),
                ClipConfig::paper_default::<2>(ClipMethod::Stairline),
                2,
            );
            assert!(exec.tile_tree_count() > 1);
            assert_eq!(exec.partitioner().dims(), [3, 5]);
            let base = exec.run(&queries, 1, true);
            for workers in [2, 5, 64] {
                let out = exec.run(&queries, workers, true);
                assert_eq!(out.results, base.results, "workers = {workers}");
                assert_eq!(out.stats, base.stats, "workers = {workers}");
            }
            // Second batch on the same executor: trees are reused, fresh
            // counters.
            let again = exec.run(&queries, 3, true);
            assert_eq!(again.results, base.results);
            // Unclipped probing answers identically with no prunes.
            let unclipped = exec.run(&queries, 3, false);
            assert_eq!(unclipped.results.len(), base.results.len());
            for (b, u) in base.results.iter().zip(&unclipped.results) {
                assert_eq!(sorted(b.clone()), sorted(u.clone()));
            }
            assert_eq!(unclipped.stats.clip_prunes, 0);
            assert!(base.stats.clip_prunes > 0);
        }
    }
}
