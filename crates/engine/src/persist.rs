//! Dataset persistence: snapshot and WAL-record codecs over the
//! `cbb-storage` page layer.
//!
//! A [`crate::DatasetStore`] becomes durable as two files managed by
//! the serve layer:
//!
//! * a **snapshot** — the full store state (partitioner, object arena,
//!   per-slot liveness/free state, version, compaction policy) written
//!   through [`write_snapshot`] into any [`PageStore`]. Live rects ride
//!   in the paper's own Figure-4a page layout: each arena page is a
//!   level-0 node whose entries are `(rect, DataId(slot))`, encoded by
//!   the existing [`cbb_storage::codec`]. Forests are *not* persisted —
//!   they are derived state, rebuilt over the live slots on recovery
//!   ([`restore_store`]), exactly as a swap builds them.
//! * a **WAL tail** — one [`encode_update_batch`] record per applied
//!   update micro-batch (already an atomic one-[`DataVersion`] unit).
//!   Replay ([`replay_update_batch`]) is idempotent by version: records
//!   at or below the store's version are skipped, so a snapshot taken
//!   mid-log replays cleanly over any prefix.
//!
//! Determinism note: replaying the logged batches over the restored
//! store must reassign exactly the ids the original run assigned.
//! That is why the snapshot carries the free list and the
//! [`CompactionPolicy`] — insert slot choice (`free.pop()`) and sweep
//! timing both depend on them.
//!
//! Every section is checksummed (IEEE CRC-32, the WAL's checksum): a
//! flipped bit anywhere in a snapshot surfaces as
//! [`PersistError::Corrupt`] instead of a silently wrong dataset.

use std::sync::Arc;

use cbb_core::ClipConfig;
use cbb_geom::{Point, Rect};
use cbb_rtree::config::{entry_bytes, NODE_HEADER_BYTES, PAGE_SIZE};
use cbb_rtree::{DataId, Entry, Node, TreeConfig};
use cbb_storage::codec::{decode_node, encode_node};
use cbb_storage::{crc32, PageStore};

use crate::batch::TileForest;
use crate::catalog::{CompactionPolicy, DatasetStore};
use crate::partition::{AnyPartitioner, DataVersion, Partitioner, UniformGrid};
use crate::shard::ShardTiling;
use crate::update::Update;

/// Identifies a snapshot header page.
pub const SNAP_MAGIC: [u8; 8] = *b"CBBSNAP1";

/// Snapshot format version (bumped on layout changes).
pub const SNAP_FORMAT: u32 = 1;

/// Why a snapshot or WAL record failed to decode.
#[derive(Debug)]
pub enum PersistError {
    /// The bytes are not a valid encoding (bad magic, failed checksum,
    /// truncated section, out-of-range value).
    Corrupt(String),
    /// The underlying storage failed.
    Io(std::io::Error),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Corrupt(why) => write!(f, "corrupt persisted state: {why}"),
            PersistError::Io(e) => write!(f, "storage I/O failed: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

fn corrupt(why: impl Into<String>) -> PersistError {
    PersistError::Corrupt(why.into())
}

// ---------------------------------------------------------------------
// Byte codec helpers
// ---------------------------------------------------------------------

/// Append a `u32` little-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64` little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append an `f64` little-endian (bit pattern, so `INFINITY` and
/// friends round-trip exactly).
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a rectangle: `D` low then `D` high coordinates.
pub fn put_rect<const D: usize>(out: &mut Vec<u8>, r: &Rect<D>) {
    for i in 0..D {
        put_f64(out, r.lo[i]);
    }
    for i in 0..D {
        put_f64(out, r.hi[i]);
    }
}

/// Append a point: `D` coordinates.
pub fn put_point<const D: usize>(out: &mut Vec<u8>, p: &Point<D>) {
    for i in 0..D {
        put_f64(out, p[i]);
    }
}

/// Bounds-checked front-to-back reader over an encoded buffer — the
/// decoding twin of the `put_*` helpers. Never panics on short input;
/// every overrun is a [`PersistError::Corrupt`].
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.buf.len() - self.pos < n {
            return Err(corrupt("truncated encoding"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Next byte.
    pub fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    /// Next little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Next little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Next little-endian `f64` (bit pattern).
    pub fn f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Next point (`D` coordinates).
    pub fn point<const D: usize>(&mut self) -> Result<Point<D>, PersistError> {
        let mut c = [0.0; D];
        for v in c.iter_mut() {
            *v = self.f64()?;
        }
        Ok(Point(c))
    }

    /// Next rectangle (`D` low, `D` high coordinates).
    pub fn rect<const D: usize>(&mut self) -> Result<Rect<D>, PersistError> {
        let lo = self.point::<D>()?;
        let hi = self.point::<D>()?;
        Ok(Rect::new(lo, hi))
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Assert the buffer was consumed exactly.
    pub fn finish(self) -> Result<(), PersistError> {
        if self.remaining() != 0 {
            return Err(corrupt("trailing bytes after encoding"));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Partitioner codecs
// ---------------------------------------------------------------------

/// A partitioner that can round-trip through bytes — the bound the
/// durable serve layer adds on top of [`Partitioner`]. Each impl owns
/// its own self-contained encoding; [`AnyPartitioner`] tags the kind,
/// so a snapshot records *which* partitioner a dataset was fitted
/// with, not just its parameters.
pub trait PersistPartitioner: Sized {
    /// Append this partitioner's byte encoding.
    fn encode_blob(&self, out: &mut Vec<u8>);
    /// Decode one partitioner from the front of `r`.
    fn decode_blob(r: &mut ByteReader<'_>) -> Result<Self, PersistError>;
}

impl<const D: usize> PersistPartitioner for UniformGrid<D> {
    fn encode_blob(&self, out: &mut Vec<u8>) {
        put_rect(out, self.domain());
        for d in self.dims() {
            put_u32(out, d as u32);
        }
    }

    fn decode_blob(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let domain = r.rect::<D>()?;
        let mut dims = [0usize; D];
        for d in dims.iter_mut() {
            *d = r.u32()? as usize;
            if *d == 0 {
                return Err(corrupt("uniform grid with a zero-tile axis"));
            }
        }
        Ok(UniformGrid::with_dims(domain, dims))
    }
}

impl<const D: usize> PersistPartitioner for AnyPartitioner<D> {
    fn encode_blob(&self, out: &mut Vec<u8>) {
        match self {
            AnyPartitioner::Uniform(p) => {
                out.push(0);
                p.encode_blob(out);
            }
            AnyPartitioner::Adaptive(p) => {
                out.push(1);
                p.encode_blob(out);
            }
            AnyPartitioner::Quadtree(p) => {
                out.push(2);
                p.encode_blob(out);
            }
        }
    }

    fn decode_blob(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        match r.u8()? {
            0 => Ok(AnyPartitioner::Uniform(UniformGrid::decode_blob(r)?)),
            1 => Ok(AnyPartitioner::Adaptive(crate::AdaptiveGrid::decode_blob(
                r,
            )?)),
            2 => Ok(AnyPartitioner::Quadtree(
                crate::QuadtreePartitioner::decode_blob(r)?,
            )),
            tag => Err(corrupt(format!("unknown partitioner tag {tag}"))),
        }
    }
}

impl<P: PersistPartitioner> PersistPartitioner for ShardTiling<P> {
    fn encode_blob(&self, out: &mut Vec<u8>) {
        self.inner().encode_blob(out);
        let tiles = self.tiles();
        put_u64(out, tiles.start as u64);
        put_u64(out, tiles.end as u64);
    }

    fn decode_blob(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let inner = P::decode_blob(r)?;
        let lo = r.u64()? as usize;
        let hi = r.u64()? as usize;
        if lo > hi {
            return Err(corrupt("shard tiling with inverted tile range"));
        }
        Ok(ShardTiling::new(inner, lo..hi))
    }
}

// ---------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------

/// Per-slot arena state in the snapshot's 2-bit state map.
const SLOT_FREE: u8 = 0; // dead, on the free list (reusable)
const SLOT_LIVE: u8 = 1;
const SLOT_TOMBSTONE: u8 = 2; // dead, not yet swept

/// Level-0 node entries that fit one page — the arena-section packing
/// factor (113 for `D = 2`, the paper's Figure-4a fan-out).
pub const fn arena_entries_per_page(d: usize) -> usize {
    (PAGE_SIZE - NODE_HEADER_BYTES) / entry_bytes(d)
}

const fn div_ceil(a: usize, b: usize) -> usize {
    a.div_ceil(b)
}

/// Everything [`read_snapshot`] recovers — the exact inputs of
/// [`DatasetStore::restore`] minus the forest, which
/// [`restore_store`] rebuilds.
pub struct SnapshotContents<const D: usize, P> {
    /// The partitioner the dataset was fitted with.
    pub partitioner: P,
    /// The full object arena (dead slots hold a zero placeholder —
    /// their values are unobservable by queries and replay).
    pub objects: Vec<Rect<D>>,
    /// Per-slot liveness.
    pub live: Vec<bool>,
    /// Dead slots that were reusable at snapshot time.
    pub free: Vec<u32>,
    /// The version queries were answered from at snapshot time.
    pub version: DataVersion,
    /// The slot-reclamation policy in force (replay determinism).
    pub compaction: CompactionPolicy,
}

fn pack_states(states: &[u8]) -> Vec<u8> {
    let mut packed = vec![0u8; div_ceil(states.len(), 4)];
    for (slot, &s) in states.iter().enumerate() {
        packed[slot / 4] |= s << ((slot % 4) * 2);
    }
    packed
}

fn write_section<S: PageStore>(store: &mut S, first_page: u32, bytes: &[u8]) -> u32 {
    let pages = div_ceil(bytes.len(), PAGE_SIZE) as u32;
    let mut page = vec![0u8; PAGE_SIZE];
    for i in 0..pages {
        let start = i as usize * PAGE_SIZE;
        let end = (start + PAGE_SIZE).min(bytes.len());
        page.fill(0);
        page[..end - start].copy_from_slice(&bytes[start..end]);
        store.write_page(first_page + i, &page);
    }
    pages
}

fn read_section<S: PageStore>(store: &mut S, first_page: u32, len: usize) -> Vec<u8> {
    let pages = div_ceil(len, PAGE_SIZE) as u32;
    let mut bytes = vec![0u8; pages as usize * PAGE_SIZE];
    for i in 0..pages {
        let start = i as usize * PAGE_SIZE;
        store.read_page(first_page + i, &mut bytes[start..start + PAGE_SIZE]);
    }
    bytes.truncate(len);
    bytes
}

/// Serialize the full `ds` state into `store`, starting at page 0.
/// Returns the number of pages written. The caller owns making the
/// write atomic (the serve layer writes a temp file and renames).
pub fn write_snapshot<const D: usize, P, S>(store: &mut S, ds: &DatasetStore<D, P>) -> u32
where
    P: Partitioner<D> + PersistPartitioner,
    S: PageStore,
{
    // Partitioner blob.
    let mut blob = Vec::new();
    ds.partitioner().encode_blob(&mut blob);

    // 2-bit per-slot state map.
    let mut states = vec![SLOT_TOMBSTONE; ds.arena_len()];
    for (slot, &live) in ds.live().iter().enumerate() {
        if live {
            states[slot] = SLOT_LIVE;
        }
    }
    for slot in ds.free_list() {
        states[slot as usize] = SLOT_FREE;
    }
    let packed = pack_states(&states);

    // Arena pages: live slots ascending, packed as level-0 nodes.
    let cap = arena_entries_per_page(D);
    let live_slots: Vec<u32> = (0..ds.arena_len() as u32)
        .filter(|&s| ds.live()[s as usize])
        .collect();
    let arena_first =
        1 + div_ceil(blob.len(), PAGE_SIZE) as u32 + div_ceil(packed.len(), PAGE_SIZE) as u32;
    let mut arena_page_crcs = Vec::new();
    for (i, chunk) in live_slots.chunks(cap).enumerate() {
        let mut node = Node::<D>::new(0);
        for &slot in chunk {
            node.entries
                .push(Entry::data(ds.objects()[slot as usize], DataId(slot)));
        }
        node.recompute_mbb();
        let page = encode_node(&node);
        put_u32(&mut arena_page_crcs, crc32(&page));
        store.write_page(arena_first + i as u32, &page);
    }

    // Header (page 0), checksummed last-field-over-the-rest.
    let mut header = Vec::with_capacity(80);
    header.extend_from_slice(&SNAP_MAGIC);
    put_u32(&mut header, SNAP_FORMAT);
    put_u32(&mut header, D as u32);
    put_u64(&mut header, ds.version().0);
    put_u64(&mut header, ds.arena_len() as u64);
    put_u64(&mut header, live_slots.len() as u64);
    put_u32(&mut header, blob.len() as u32);
    put_f64(&mut header, ds.compaction().dead_fraction);
    put_u32(&mut header, crc32(&blob));
    put_u32(&mut header, crc32(&packed));
    put_u32(&mut header, crc32(&arena_page_crcs));
    let hcrc = crc32(&header);
    put_u32(&mut header, hcrc);
    let mut page0 = vec![0u8; PAGE_SIZE];
    page0[..header.len()].copy_from_slice(&header);
    store.write_page(0, &page0);

    let blob_pages = write_section(store, 1, &blob);
    let state_pages = write_section(store, 1 + blob_pages, &packed);
    debug_assert_eq!(arena_first, 1 + blob_pages + state_pages);
    arena_first + div_ceil(live_slots.len(), cap) as u32
}

/// Decode a snapshot previously written by [`write_snapshot`]. Any
/// damage — header, partitioner blob, state map, or an arena page —
/// fails with [`PersistError::Corrupt`] via the section checksums.
pub fn read_snapshot<const D: usize, P, S>(
    store: &mut S,
) -> Result<SnapshotContents<D, P>, PersistError>
where
    P: Partitioner<D> + PersistPartitioner,
    S: PageStore,
{
    if store.page_count() == 0 {
        return Err(corrupt("empty snapshot file"));
    }
    let mut page0 = vec![0u8; PAGE_SIZE];
    store.read_page(0, &mut page0);
    let mut r = ByteReader::new(&page0);
    if r.take(SNAP_MAGIC.len())? != SNAP_MAGIC {
        return Err(corrupt("bad snapshot magic"));
    }
    if r.u32()? != SNAP_FORMAT {
        return Err(corrupt("unknown snapshot format"));
    }
    if r.u32()? != D as u32 {
        return Err(corrupt("snapshot dimensionality mismatch"));
    }
    let version = DataVersion(r.u64()?);
    let arena_len = r.u64()? as usize;
    let live_count = r.u64()? as usize;
    let blob_len = r.u32()? as usize;
    let dead_fraction = r.f64()?;
    let part_crc = r.u32()?;
    let state_crc = r.u32()?;
    let arena_crc = r.u32()?;
    let header_len = SNAP_MAGIC.len() + 4 + 4 + 8 + 8 + 8 + 4 + 8 + 4 + 4 + 4;
    let hcrc = r.u32()?;
    if crc32(&page0[..header_len]) != hcrc {
        return Err(corrupt("snapshot header checksum mismatch"));
    }
    if live_count > arena_len {
        return Err(corrupt("live count exceeds arena length"));
    }

    let blob_pages = div_ceil(blob_len, PAGE_SIZE) as u32;
    let state_len = div_ceil(arena_len, 4);
    let state_pages = div_ceil(state_len, PAGE_SIZE) as u32;
    let cap = arena_entries_per_page(D);
    let arena_pages = div_ceil(live_count, cap) as u32;
    let total = 1 + blob_pages + state_pages + arena_pages;
    if store.page_count() < total {
        return Err(corrupt("snapshot truncated mid-section"));
    }

    let blob = read_section(store, 1, blob_len);
    if crc32(&blob) != part_crc {
        return Err(corrupt("partitioner blob checksum mismatch"));
    }
    let mut br = ByteReader::new(&blob);
    let partitioner = P::decode_blob(&mut br)?;
    br.finish()?;

    let packed = read_section(store, 1 + blob_pages, state_len);
    if crc32(&packed) != state_crc {
        return Err(corrupt("state map checksum mismatch"));
    }
    let mut live = vec![false; arena_len];
    let mut free = Vec::new();
    for slot in 0..arena_len {
        match (packed[slot / 4] >> ((slot % 4) * 2)) & 0b11 {
            SLOT_FREE => free.push(slot as u32),
            SLOT_LIVE => live[slot] = true,
            SLOT_TOMBSTONE => {}
            _ => return Err(corrupt("invalid arena slot state")),
        }
    }
    if live.iter().filter(|&&l| l).count() != live_count {
        return Err(corrupt("state map live count disagrees with header"));
    }

    let zero = Rect::new(Point([0.0; D]), Point([0.0; D]));
    let mut objects = vec![zero; arena_len];
    let mut seen = 0usize;
    let mut arena_page_crcs = Vec::new();
    let mut page = vec![0u8; PAGE_SIZE];
    let arena_first = 1 + blob_pages + state_pages;
    for i in 0..arena_pages {
        store.read_page(arena_first + i, &mut page);
        put_u32(&mut arena_page_crcs, crc32(&page));
        let node = decode_node::<D>(&page);
        if node.level != 0 {
            return Err(corrupt("arena page is not a leaf node"));
        }
        for e in &node.entries {
            let slot = e.child.data_id().0 as usize;
            if slot >= arena_len || !live[slot] {
                return Err(corrupt("arena entry addresses a non-live slot"));
            }
            objects[slot] = e.mbb;
            seen += 1;
        }
    }
    if crc32(&arena_page_crcs) != arena_crc {
        return Err(corrupt("arena section checksum mismatch"));
    }
    if seen != live_count {
        return Err(corrupt("arena section entry count disagrees with header"));
    }

    Ok(SnapshotContents {
        partitioner,
        objects,
        live,
        free,
        version,
        compaction: CompactionPolicy { dead_fraction },
    })
}

/// Rebuild a ready-to-serve [`DatasetStore`] from snapshot contents:
/// forests are derived state, so they are constructed fresh over the
/// live slots (same path as a swap), then the store is restored
/// verbatim around them.
pub fn restore_store<const D: usize, P>(
    contents: SnapshotContents<D, P>,
    tree: TreeConfig<D>,
    clip: ClipConfig,
    workers: usize,
) -> DatasetStore<D, P>
where
    P: Partitioner<D>,
{
    let forest = Arc::new(TileForest::build_where(
        &contents.partitioner,
        &contents.objects,
        Some(&contents.live),
        tree,
        clip,
        workers,
    ));
    DatasetStore::restore(
        contents.partitioner,
        contents.objects,
        contents.live,
        contents.free,
        forest,
        contents.version,
        contents.compaction,
    )
}

// ---------------------------------------------------------------------
// WAL record codec + replay
// ---------------------------------------------------------------------

/// Encode one applied update micro-batch as a WAL record payload:
/// the [`DataVersion`] the batch produced, then the full op list —
/// including ops that individually no-opped, so replay re-applies the
/// batch exactly as the original `apply_updates` call saw it.
pub fn encode_update_batch<const D: usize>(version: DataVersion, ops: &[Update<D>]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + 4 + ops.len() * (1 + 2 * D * 8));
    put_u64(&mut out, version.0);
    put_u32(&mut out, ops.len() as u32);
    for op in ops {
        match *op {
            Update::Insert(rect) => {
                out.push(0);
                put_rect(&mut out, &rect);
            }
            Update::Delete(id) => {
                out.push(1);
                put_u32(&mut out, id.0);
            }
        }
    }
    out
}

/// Decode a WAL record payload written by [`encode_update_batch`].
pub fn decode_update_batch<const D: usize>(
    buf: &[u8],
) -> Result<(DataVersion, Vec<Update<D>>), PersistError> {
    let mut r = ByteReader::new(buf);
    let version = DataVersion(r.u64()?);
    let count = r.u32()? as usize;
    let mut ops = Vec::with_capacity(count);
    for _ in 0..count {
        ops.push(match r.u8()? {
            0 => Update::Insert(r.rect::<D>()?),
            1 => Update::Delete(DataId(r.u32()?)),
            tag => return Err(corrupt(format!("unknown update tag {tag}"))),
        });
    }
    r.finish()?;
    Ok((version, ops))
}

/// Replay one logged batch into `store`, idempotently: records at or
/// below the store's current version are skipped (they are already in
/// the snapshot), later records must advance the version to exactly
/// theirs — anything else means the log does not belong to this
/// snapshot lineage. Returns whether the batch was applied.
pub fn replay_update_batch<const D: usize, P: Partitioner<D>>(
    store: &mut DatasetStore<D, P>,
    version: DataVersion,
    ops: &[Update<D>],
    tree: TreeConfig<D>,
    clip: ClipConfig,
) -> Result<bool, PersistError> {
    if version.0 <= store.version().0 {
        return Ok(false);
    }
    if version.0 != store.version().0 + 1 {
        return Err(corrupt(format!(
            "WAL gap: store at version {}, next record at {}",
            store.version().0,
            version.0
        )));
    }
    store.apply_updates(ops, tree, clip);
    if store.version() != version {
        return Err(corrupt(
            "replayed batch did not reproduce the logged version",
        ));
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quadtree::QuadtreePartitioner;
    use crate::AdaptiveGrid;
    use cbb_core::ClipMethod;
    use cbb_geom::SplitMix64;
    use cbb_rtree::Variant;
    use cbb_storage::{FaultyPageStore, MemPageStore};

    fn r2(lx: f64, ly: f64, hx: f64, hy: f64) -> Rect<2> {
        Rect::new(Point([lx, ly]), Point([hx, hy]))
    }

    fn boxes(n: usize, seed: u64) -> Vec<Rect<2>> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| {
                let x = rng.gen_range(0.0, 90.0);
                let y = rng.gen_range(0.0, 90.0);
                r2(
                    x,
                    y,
                    x + rng.gen_range(0.5, 8.0),
                    y + rng.gen_range(0.5, 8.0),
                )
            })
            .collect()
    }

    fn tree() -> TreeConfig<2> {
        TreeConfig::tiny(Variant::RStar)
    }

    fn clip() -> ClipConfig {
        ClipConfig::paper_default::<2>(ClipMethod::Stairline)
    }

    fn any_partitioners(data: &[Rect<2>]) -> Vec<AnyPartitioner<2>> {
        let domain = r2(0.0, 0.0, 100.0, 100.0);
        vec![
            UniformGrid::new(domain, 3).into(),
            AdaptiveGrid::from_sample(domain, [3, 4], data).into(),
            QuadtreePartitioner::build(domain, data, 25).into(),
        ]
    }

    #[test]
    fn partitioner_blobs_round_trip() {
        let data = boxes(120, 3);
        for p in any_partitioners(&data) {
            let mut blob = Vec::new();
            p.encode_blob(&mut blob);
            let mut r = ByteReader::new(&blob);
            let back = AnyPartitioner::<2>::decode_blob(&mut r).expect("round trip");
            r.finish().expect("fully consumed");
            assert_eq!(p, back);
            // The decoded partitioner behaves identically.
            for rect in &data[..20] {
                assert_eq!(p.covering_tiles(rect), back.covering_tiles(rect));
            }
        }
    }

    #[test]
    fn shard_tiling_blob_round_trips() {
        let p = ShardTiling::new(UniformGrid::new(r2(0.0, 0.0, 10.0, 10.0), 4), 3..9);
        let mut blob = Vec::new();
        p.encode_blob(&mut blob);
        let mut r = ByteReader::new(&blob);
        let back = ShardTiling::<UniformGrid<2>>::decode_blob(&mut r).expect("round trip");
        assert_eq!(back.tiles(), 3..9);
        assert_eq!(back.inner(), p.inner());
    }

    /// Snapshot → restore round-trips a churned store exactly: same
    /// version, arena, liveness, free list, answers, and same replay
    /// behaviour (id assignment) afterwards.
    #[test]
    fn snapshot_round_trips_churned_store() {
        let data = boxes(90, 7);
        for p in any_partitioners(&data) {
            let mut ds = DatasetStore::build(p, &data, tree(), clip(), 2)
                .with_compaction(CompactionPolicy { dead_fraction: 0.2 });
            // Churn: deletes past the sweep threshold + fresh inserts,
            // so the snapshot carries tombstones AND free slots.
            let deletes: Vec<Update<2>> = (0..25).map(|i| Update::Delete(DataId(i * 3))).collect();
            ds.apply_updates(&deletes, tree(), clip());
            ds.apply_updates(
                &[
                    Update::Insert(r2(4.0, 4.0, 6.0, 6.0)),
                    Update::Insert(r2(70.0, 70.0, 75.0, 75.0)),
                ],
                tree(),
                clip(),
            );

            let mut store = MemPageStore::new();
            let pages = write_snapshot(&mut store, &ds);
            assert_eq!(pages, store.page_count());
            let contents = read_snapshot::<2, AnyPartitioner<2>, _>(&mut store).expect("clean");
            let back = restore_store(contents, tree(), clip(), 2);

            assert_eq!(back.version(), ds.version());
            assert_eq!(back.live(), ds.live());
            assert_eq!(back.free_list(), ds.free_list());
            assert_eq!(back.compaction(), ds.compaction());
            assert_eq!(back.live_rects(), ds.live_rects());
            // Queries answer identically (ranges as sets — traversal
            // order differs between grown and rebuilt trees; see the
            // batch.rs rebuild oracle) and kNN byte-equal.
            let probe = r2(0.0, 0.0, 50.0, 50.0);
            let mut got = back.run(&[probe], 1, true).results.remove(0);
            let mut want = ds.run(&[probe], 1, true).results.remove(0);
            got.sort();
            want.sort();
            assert_eq!(got, want);
            assert_eq!(
                back.run_knn(&[(Point([30.0, 30.0]), 5)], 1).results,
                ds.run_knn(&[(Point([30.0, 30.0]), 5)], 1).results
            );
            // Replay determinism: the next insert takes the same slot.
            let up = [Update::Insert(r2(1.0, 1.0, 2.0, 2.0))];
            let mut ds2 = ds;
            let mut back2 = back;
            assert_eq!(
                ds2.apply_updates(&up, tree(), clip()).inserted_ids(),
                back2.apply_updates(&up, tree(), clip()).inserted_ids()
            );
        }
    }

    #[test]
    fn wal_batch_codec_round_trips() {
        let ops: Vec<Update<2>> = vec![
            Update::Insert(r2(1.0, 2.0, 3.0, 4.0)),
            Update::Delete(DataId(17)),
            Update::Insert(r2(-5.0, -5.0, 0.0, 0.0)),
        ];
        let payload = encode_update_batch(DataVersion(42), &ops);
        let (v, back) = decode_update_batch::<2>(&payload).expect("round trip");
        assert_eq!(v, DataVersion(42));
        assert_eq!(back, ops);
        assert!(decode_update_batch::<2>(&payload[..payload.len() - 1]).is_err());
    }

    #[test]
    fn replay_is_idempotent_and_gap_checked() {
        let data = boxes(40, 11);
        let mut ds = DatasetStore::build(
            UniformGrid::new(r2(0.0, 0.0, 100.0, 100.0), 3),
            &data,
            tree(),
            clip(),
            1,
        );
        let ops = [Update::Insert(r2(9.0, 9.0, 10.0, 10.0))];
        ds.apply_updates(&ops, tree(), clip());
        assert_eq!(ds.version(), DataVersion(1));
        // At-or-below records are skipped.
        assert!(!replay_update_batch(&mut ds, DataVersion(1), &ops, tree(), clip()).unwrap());
        assert_eq!(ds.live_count(), 41);
        // The next version applies.
        assert!(replay_update_batch(&mut ds, DataVersion(2), &ops, tree(), clip()).unwrap());
        assert_eq!(ds.version(), DataVersion(2));
        // A gap is corruption, not silence.
        assert!(replay_update_batch(&mut ds, DataVersion(9), &ops, tree(), clip()).is_err());
    }

    /// The fault-injection satellite at the engine layer: a flipped bit
    /// in any snapshot section is detected, never deserialized into a
    /// wrong store.
    #[test]
    fn corrupt_snapshot_pages_are_detected() {
        let data = boxes(260, 13); // > 1 arena page at D=2 (113/page)
        let ds = DatasetStore::build(
            AnyPartitioner::from(UniformGrid::new(r2(0.0, 0.0, 100.0, 100.0), 4)),
            &data,
            tree(),
            clip(),
            1,
        );
        let mut clean = MemPageStore::new();
        let pages = write_snapshot(&mut clean, &ds);
        assert!(pages >= 4, "header + blob + state + 2 arena pages");
        for bad_page in 0..pages {
            let mut store = MemPageStore::new();
            write_snapshot(&mut store, &ds);
            let mut faulty = FaultyPageStore::new(store, vec![bad_page]);
            let err = read_snapshot::<2, AnyPartitioner<2>, _>(&mut faulty);
            assert!(
                err.is_err(),
                "corruption in page {bad_page}/{pages} must be detected"
            );
        }
    }
}
